"""Tests for causal span trees built over the flat trace recorder."""

from __future__ import annotations

import json

import pytest

from repro.cluster import ClusterConfig, DesisCluster
from repro.core.query import Query, WindowSpec
from repro.core.types import AggFunction
from repro.network.simnet import FaultPlan
from repro.network.topology import three_tier
from repro.obs import (
    TraceRecorder,
    build_window_trace,
    build_window_traces,
    render_spans_jsonl,
    write_spans_jsonl,
)

from tests.cluster.test_desis_parity import TICK, make_streams

QUERIES = [Query.of("q", WindowSpec.tumbling(1_000), AggFunction.SUM)]


def run_traced(streams, **cfg):
    cfg.setdefault("tick_interval", TICK)
    cfg.setdefault("trace", True)
    cluster = DesisCluster(
        QUERIES, three_tier(3, 1), config=ClusterConfig(**cfg)
    )
    return cluster.run({k: list(v) for k, v in streams.items()})


class TestSpanTreeShape:
    @pytest.fixture(scope="class")
    def traced(self):
        streams = make_streams(3, 1_200)
        result = run_traced(streams)
        return result, build_window_traces(result.recorder, result.sink.results)

    def test_one_trace_per_explainable_window(self, traced):
        result, traces = traced
        assert len(traces) == len(result.sink.results)
        assert {t.trace_id for t in traces} == {
            f"{r.query_id}:{r.start}:{r.end}" for r in result.sink.results
        }

    def test_root_covers_ingest_to_emit(self, traced):
        _, traces = traced
        for trace in traces:
            root = trace.root
            assert root.name == "window"
            assert root.parent_id is None
            assert root.start == trace.ingested_at
            assert root.end == trace.emitted_at
            assert trace.latency == root.duration >= 0

    def test_children_sorted_and_parented(self, traced):
        _, traces = traced
        for trace in traces:
            ids = {trace.root.span_id}
            previous = -1
            for span in trace.spans[1:]:
                assert span.span_id > previous  # recorder-seq order
                previous = span.span_id
                assert span.parent_id in ids or span.parent_id == trace.root.span_id
                ids.add(span.span_id)
            # every child's parent is some earlier span in the same tree
            for span in trace.spans[1:]:
                assert span.parent_id in ids

    def test_expected_span_names_present(self, traced):
        _, traces = traced
        names = {s.name for t in traces for s in t.spans}
        # "send" spans come from the reliable channel, which only engages
        # under a fault plan (see TestSpanDeterminism).
        assert {"window", "slice", "ship", "transit",
                "merge", "consume"} <= names

    def test_transit_span_covers_the_hop(self, traced):
        _, traces = traced
        transits = [
            s for t in traces for s in t.spans if s.name == "transit"
        ]
        assert transits
        for span in transits:
            assert span.duration >= 0  # sender release -> delivery
            assert "->" in span.attrs.get("link", "")

    def test_untraced_window_raises_keyerror(self, traced):
        result, _ = traced

        class Fake:
            query_id, start, end = "nope", 0, 100

        with pytest.raises(KeyError):
            build_window_trace(result.recorder, Fake())


class TestSpanDeterminism:
    KWARGS = dict(
        fault_plan=None,
        node_timeout=10**9,
    )

    def _render(self, streams, seed):
        result = run_traced(
            streams,
            fault_plan=FaultPlan(
                seed=seed, drop_rate=0.05, jitter_ms=3.0, reorder_rate=0.1
            ),
            node_timeout=10**9,
        )
        traces = build_window_traces(result.recorder, result.sink.results)
        assert traces
        return render_spans_jsonl(traces)

    def test_same_seed_span_trees_byte_identical(self):
        streams = make_streams(3, 1_000)
        assert self._render(streams, 9) == self._render(streams, 9)

    def test_different_seed_span_trees_differ(self):
        streams = make_streams(3, 1_000)
        assert self._render(streams, 9) != self._render(streams, 10)

    def test_retransmits_attach_to_their_send(self):
        streams = make_streams(3, 1_500)
        result = run_traced(
            streams,
            fault_plan=FaultPlan(seed=3, drop_rate=0.08),
            node_timeout=10**9,
        )
        assert result.network.retransmits > 0
        traces = build_window_traces(result.recorder, result.sink.results)
        names = {s.name for t in traces for s in t.spans}
        assert "send" in names  # reliable channel engaged
        retrans = [
            (t, s) for t in traces for s in t.spans if s.name == "retransmit"
        ]
        assert retrans
        for trace, span in retrans:
            by_id = {s.span_id: s for s in trace.spans}
            parent = by_id[span.parent_id]
            assert parent.name in ("send", "window")
            if parent.name == "send":
                assert parent.attrs["link"] == span.attrs["link"]
                assert parent.attrs["seq"] == span.attrs["seq"]


class TestSpansJsonl:
    def test_round_trips_as_json_lines(self, tmp_path):
        streams = make_streams(3, 600)
        result = run_traced(streams)
        traces = build_window_traces(result.recorder, result.sink.results)
        out = tmp_path / "spans.jsonl"
        written = write_spans_jsonl(traces, str(out))
        assert written == len(traces)
        lines = out.read_text().splitlines()
        assert len(lines) == len(traces)
        for line, trace in zip(lines, traces):
            doc = json.loads(line)
            assert doc["trace_id"] == trace.trace_id
            assert doc["latency"] == trace.latency
            assert doc["spans"][0]["name"] == "window"
            assert len(doc["spans"]) == len(trace.spans)

    def test_empty_trace_list_writes_empty_file(self, tmp_path):
        out = tmp_path / "spans.jsonl"
        assert write_spans_jsonl([], str(out)) == 0
        assert out.read_text() == ""

    def test_hand_built_trace(self):
        recorder = TraceRecorder()
        recorder.record("slice.close", 90, node="local-0", group=0,
                        index=0, start=0, end=100)
        recorder.record("partial.ship", 100, node="local-0", group=0,
                        first_seq=0, records=1, start=0, end=100)
        recorder.record("root.consume", 105, node="root", group=0,
                        records=1, start=0, end=100)
        recorder.record("window.emit", 106, node="root", group=0,
                        query_id="q", start=0, end=100, event_count=7)

        class Res:
            query_id, start, end = "q", 0, 100

        trace = build_window_trace(recorder, Res())
        assert trace.ingested_at == 0 and trace.emitted_at == 106
        by_name = {s.name: s for s in trace.spans}
        assert by_name["slice"].parent_id == trace.root.span_id
        assert by_name["ship"].parent_id == by_name["slice"].span_id
        # no transit recorded -> consume falls back to the root parent
        assert by_name["consume"].parent_id == trace.root.span_id
