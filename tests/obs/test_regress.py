"""Tests for the benchmark regression gate (repro.obs.regress)."""

from __future__ import annotations

import json
import shutil
import subprocess
import sys
from pathlib import Path

import pytest

from repro.obs.regress import (
    DEFAULT_GATES,
    BaselineManifest,
    check_benchmarks,
    extract_metric,
    render_regression_report,
)

REPO_ROOT = Path(__file__).resolve().parent.parent.parent
BENCH_CHECK = REPO_ROOT / "benchmarks" / "bench_check.py"
BASELINE = REPO_ROOT / "benchmarks" / "baseline.json"


class TestExtractMetric:
    DOC = {"a": {"b": {"c": 1.5, "flag": True, "name": "x"}}, "top": 2}

    def test_resolves_dotted_paths(self):
        assert extract_metric(self.DOC, "a.b.c") == 1.5
        assert extract_metric(self.DOC, "top") == 2.0

    @pytest.mark.parametrize(
        "path", ["a.b.missing", "a.b.c.deeper", "a.b.flag", "a.b.name", "nope"]
    )
    def test_missing_or_non_numeric_raises(self, path):
        with pytest.raises(KeyError):
            extract_metric(self.DOC, path)


def write_report(directory: Path, name: str, document: dict) -> None:
    (directory / name).write_text(json.dumps(document))


def manifest_for(directory: Path, gates) -> BaselineManifest:
    return BaselineManifest.from_reports(str(directory), gates)


class TestCheckBenchmarks:
    GATES = {"BENCH_x.json": {"m.speedup": (0.15, "higher"),
                              "m.exact": (0.0, "both")}}

    def _dir(self, tmp_path, speedup=5.0, exact=42):
        write_report(
            tmp_path, "BENCH_x.json", {"m": {"speedup": speedup, "exact": exact}}
        )
        return tmp_path

    def test_identical_reports_pass(self, tmp_path):
        manifest = manifest_for(self._dir(tmp_path), self.GATES)
        report = check_benchmarks(manifest, str(tmp_path))
        assert report.ok
        assert [c.status for c in report.checks] == ["ok", "ok"]

    def test_twenty_percent_regression_trips_the_gate(self, tmp_path):
        manifest = manifest_for(self._dir(tmp_path), self.GATES)
        write_report(
            tmp_path, "BENCH_x.json", {"m": {"speedup": 4.0, "exact": 42}}
        )
        report = check_benchmarks(manifest, str(tmp_path))
        assert not report.ok
        failed = report.failures
        assert [c.metric for c in failed] == ["m.speedup"]
        assert failed[0].status == "regression"
        assert "floor" in failed[0].detail

    def test_within_tolerance_passes(self, tmp_path):
        manifest = manifest_for(self._dir(tmp_path), self.GATES)
        write_report(
            tmp_path, "BENCH_x.json", {"m": {"speedup": 4.5, "exact": 42}}
        )
        assert check_benchmarks(manifest, str(tmp_path)).ok

    def test_exact_gate_rejects_any_drift(self, tmp_path):
        manifest = manifest_for(self._dir(tmp_path), self.GATES)
        write_report(
            tmp_path, "BENCH_x.json", {"m": {"speedup": 5.0, "exact": 43}}
        )
        report = check_benchmarks(manifest, str(tmp_path))
        assert [c.metric for c in report.failures] == ["m.exact"]

    def test_improvement_passes_higher_gate(self, tmp_path):
        manifest = manifest_for(self._dir(tmp_path), self.GATES)
        write_report(
            tmp_path, "BENCH_x.json", {"m": {"speedup": 9.0, "exact": 42}}
        )
        assert check_benchmarks(manifest, str(tmp_path)).ok

    def test_lower_direction(self, tmp_path):
        gates = {"BENCH_x.json": {"m.latency": (0.10, "lower")}}
        write_report(tmp_path, "BENCH_x.json", {"m": {"latency": 100.0}})
        manifest = manifest_for(tmp_path, gates)
        write_report(tmp_path, "BENCH_x.json", {"m": {"latency": 109.0}})
        assert check_benchmarks(manifest, str(tmp_path)).ok
        write_report(tmp_path, "BENCH_x.json", {"m": {"latency": 120.0}})
        report = check_benchmarks(manifest, str(tmp_path))
        assert not report.ok and "ceiling" in report.failures[0].detail

    def test_missing_metric_is_a_failure(self, tmp_path):
        manifest = manifest_for(self._dir(tmp_path), self.GATES)
        write_report(tmp_path, "BENCH_x.json", {"m": {"speedup": 5.0}})
        report = check_benchmarks(manifest, str(tmp_path))
        assert [c.status for c in report.failures] == ["missing"]
        assert report.failures[0].current is None

    def test_missing_file_fails_every_gated_metric(self, tmp_path):
        manifest = manifest_for(self._dir(tmp_path), self.GATES)
        (tmp_path / "BENCH_x.json").unlink()
        report = check_benchmarks(manifest, str(tmp_path))
        assert len(report.failures) == 2
        assert all(c.status == "missing" for c in report.failures)

    def test_render_report_lines(self, tmp_path):
        manifest = manifest_for(self._dir(tmp_path), self.GATES)
        write_report(
            tmp_path, "BENCH_x.json", {"m": {"speedup": 4.0, "exact": 42}}
        )
        text = render_regression_report(check_benchmarks(manifest, str(tmp_path)))
        assert "[FAIL] BENCH_x.json:m.speedup" in text
        assert "[ok  ] BENCH_x.json:m.exact" in text
        assert "1 gated metric(s) failed" in text


class TestManifestRoundTrip:
    def test_save_load_round_trip(self, tmp_path):
        gates = {"BENCH_x.json": {"m.v": (0.0, "both")}}
        write_report(tmp_path, "BENCH_x.json", {"m": {"v": 3}})
        manifest = manifest_for(tmp_path, gates)
        manifest.save(str(tmp_path / "baseline.json"))
        loaded = BaselineManifest.load(str(tmp_path / "baseline.json"))
        assert loaded.benchmarks == manifest.benchmarks

    def test_unsupported_version_rejected(self, tmp_path):
        (tmp_path / "baseline.json").write_text('{"version": 2}')
        with pytest.raises(ValueError, match="version"):
            BaselineManifest.load(str(tmp_path / "baseline.json"))

    def test_from_reports_refuses_incomplete_baseline(self, tmp_path):
        gates = {"BENCH_x.json": {"m.v": (0.0, "both")}}
        with pytest.raises(FileNotFoundError):
            manifest_for(tmp_path, gates)
        write_report(tmp_path, "BENCH_x.json", {"m": {}})
        with pytest.raises(KeyError):
            manifest_for(tmp_path, gates)


class TestCommittedBaseline:
    """The repo's own contract: the committed reports satisfy the
    committed baseline, and the acceptance regression trips it."""

    def test_committed_reports_pass_the_committed_baseline(self):
        manifest = BaselineManifest.load(str(BASELINE))
        report = check_benchmarks(manifest, str(REPO_ROOT))
        assert report.ok, render_regression_report(report)

    def test_baseline_covers_every_default_gate(self):
        manifest = BaselineManifest.load(str(BASELINE))
        assert set(manifest.benchmarks) == set(DEFAULT_GATES)
        for filename, metrics in DEFAULT_GATES.items():
            assert set(manifest.benchmarks[filename]) == set(metrics)

    def test_injected_hot_path_regression_exits_nonzero(self, tmp_path):
        """Acceptance check: a 20% hot-path slowdown fails the gate."""
        for filename in DEFAULT_GATES:
            shutil.copy(REPO_ROOT / filename, tmp_path / filename)
        document = json.loads((tmp_path / "BENCH_hot_path.json").read_text())
        for workload in document["workloads"].values():
            workload["speedup"] *= 0.8
        (tmp_path / "BENCH_hot_path.json").write_text(json.dumps(document))
        proc = subprocess.run(
            [sys.executable, str(BENCH_CHECK), "--bench-dir", str(tmp_path),
             "--json", str(tmp_path / "verdict.json")],
            capture_output=True, text=True,
        )
        assert proc.returncode == 1
        assert "FAIL" in proc.stdout and "speedup" in proc.stdout
        verdict = json.loads((tmp_path / "verdict.json").read_text())
        assert verdict["ok"] is False
        assert verdict["failures"] == 2  # both hot-path workloads

    def test_cli_passes_on_committed_state(self):
        proc = subprocess.run(
            [sys.executable, str(BENCH_CHECK)], capture_output=True, text=True
        )
        assert proc.returncode == 0, proc.stdout + proc.stderr
        assert "benchmark baseline holds" in proc.stdout

    def test_cli_update_round_trip(self, tmp_path):
        for filename in DEFAULT_GATES:
            shutil.copy(REPO_ROOT / filename, tmp_path / filename)
        baseline = tmp_path / "baseline.json"
        proc = subprocess.run(
            [sys.executable, str(BENCH_CHECK), "--bench-dir", str(tmp_path),
             "--baseline", str(baseline), "--update"],
            capture_output=True, text=True,
        )
        assert proc.returncode == 0 and baseline.exists()
        proc = subprocess.run(
            [sys.executable, str(BENCH_CHECK), "--bench-dir", str(tmp_path),
             "--baseline", str(baseline)],
            capture_output=True, text=True,
        )
        assert proc.returncode == 0

    def test_cli_missing_baseline_exits_2(self, tmp_path):
        proc = subprocess.run(
            [sys.executable, str(BENCH_CHECK), "--baseline",
             str(tmp_path / "nope.json")],
            capture_output=True, text=True,
        )
        assert proc.returncode == 2
        assert "--update" in proc.stderr
