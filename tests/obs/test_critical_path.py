"""Tests for critical-path latency attribution and its exports."""

from __future__ import annotations

import json

import pytest

from repro.cluster import ClusterConfig, DesisCluster
from repro.core.engine import AggregationEngine
from repro.core.event import Event
from repro.core.query import Query, WindowSpec
from repro.core.types import AggFunction
from repro.network.simnet import FaultPlan
from repro.network.topology import three_tier
from repro.obs import (
    STAGES,
    MetricsRegistry,
    TraceRecorder,
    build_window_traces,
    compute_critical_path,
    compute_critical_paths,
    publish_span_metrics,
    render_chrome_trace,
    render_waterfall,
    top_slowest,
)

from tests.cluster.test_desis_parity import TICK, make_streams

QUERIES = [Query.of("q", WindowSpec.tumbling(1_000), AggFunction.SUM)]


def run_traced(streams, **cfg):
    cfg.setdefault("tick_interval", TICK)
    cfg.setdefault("trace", True)
    cluster = DesisCluster(
        QUERIES, three_tier(3, 1), config=ClusterConfig(**cfg)
    )
    return cluster.run({k: list(v) for k, v in streams.items()})


def assert_exact_attribution(path):
    """The tentpole invariant: stages sum to the emission latency."""
    assert sum(path.stage_totals().values()) == path.latency
    previous_end = path.ingested_at
    for segment in path.segments:
        assert segment.duration > 0
        assert segment.start == previous_end  # contiguous, earliest-first
        previous_end = segment.end
    if path.segments:
        assert path.segments[-1].end == path.emitted_at


class TestExactStageSum:
    def test_clean_cluster_run(self):
        streams = make_streams(3, 1_200)
        result = run_traced(streams)
        paths = compute_critical_paths(result.recorder, result.sink.results)
        assert len(paths) == len(result.sink.results)
        for path in paths:
            assert_exact_attribution(path)
            assert set(path.stage_totals()) == set(STAGES)

    def test_faulty_cluster_run_includes_retransmit_stage(self):
        streams = make_streams(3, 2_000)
        result = run_traced(
            streams,
            fault_plan=FaultPlan(
                seed=3, drop_rate=0.08, jitter_ms=3.0, reorder_rate=0.1
            ),
            node_timeout=10**9,
        )
        assert result.network.retransmits > 0
        paths = compute_critical_paths(result.recorder, result.sink.results)
        assert paths
        for path in paths:
            assert_exact_attribution(path)
        assert any(
            path.stage_totals()["retransmit"] > 0 for path in paths
        ), "no window was gated by a retransmitted hop"

    def test_engine_only_run(self):
        recorder = TraceRecorder()
        engine = AggregationEngine(QUERIES, recorder=recorder)
        for i in range(4_000):
            engine.process(Event(time=i, key="k", value=float(i % 7)))
        results = list(engine.close())
        assert len(results) > 2
        for result in results:
            path = compute_critical_path(recorder, result)
            assert_exact_attribution(path)
            totals = path.stage_totals()
            # no network stages on a single engine
            assert totals["network"] == totals["retransmit"] == 0
            assert totals["root-assembly"] == 0

    def test_untraced_window_raises_keyerror(self):
        recorder = TraceRecorder()

        class Fake:
            query_id, start, end = "q", 0, 100

        with pytest.raises(KeyError):
            compute_critical_path(recorder, Fake())


class TestTopSlowest:
    def test_orders_by_latency_then_id(self):
        streams = make_streams(3, 1_500)
        result = run_traced(streams)
        top = top_slowest(result.recorder, result.sink.results, n=3)
        assert len(top) == 3
        latencies = [p.latency for p in top]
        assert latencies == sorted(latencies, reverse=True)
        everything = top_slowest(
            result.recorder, result.sink.results, n=10**6
        )
        assert len(everything) == len(result.sink.results)
        assert everything[0].latency >= everything[-1].latency


class TestSpanMetrics:
    def test_publish_span_metrics(self):
        streams = make_streams(3, 1_200)
        result = run_traced(streams)
        paths = compute_critical_paths(result.recorder, result.sink.results)
        registry = MetricsRegistry()
        publish_span_metrics(registry, paths)
        assert registry.value("span.windows") == len(paths)
        stage_sum = sum(
            registry.value("span.stage_ms", stage=stage) for stage in STAGES
        )
        assert stage_sum == sum(p.latency for p in paths)
        histogram = registry.histogram("span.latency_ms")
        assert histogram.count == len(paths)
        assert histogram.sum == float(sum(p.latency for p in paths))


class TestRenderings:
    @pytest.fixture(scope="class")
    def traced(self):
        streams = make_streams(3, 1_200)
        result = run_traced(streams)
        return result

    def test_waterfall_lists_every_segment(self, traced):
        path = compute_critical_path(
            traced.recorder, traced.sink.results[-1]
        )
        text = render_waterfall(path)
        lines = text.splitlines()
        assert f"{path.latency} ms" in lines[0]
        assert len(lines) == 1 + len(path.segments)
        for line, segment in zip(lines[1:], path.segments):
            assert segment.stage in line
            assert f"{segment.duration:>7} ms" in line
            assert "#" in line

    def test_waterfall_is_deterministic(self, traced):
        path = compute_critical_path(
            traced.recorder, traced.sink.results[-1]
        )
        assert render_waterfall(path) == render_waterfall(path)

    def test_chrome_trace_export(self, traced):
        traces = build_window_traces(
            traced.recorder, traced.sink.results
        )
        document = json.loads(render_chrome_trace(traces))
        assert document["displayTimeUnit"] == "ms"
        events = document["traceEvents"]
        metadata = [e for e in events if e["ph"] == "M"]
        spans = [e for e in events if e["ph"] == "X"]
        assert len(spans) == sum(len(t.spans) for t in traces)
        thread_names = {m["args"]["name"] for m in metadata}
        assert {"root", "local-0"} <= thread_names
        for event in spans:
            assert event["ts"] % 1000 == 0  # sim-ms -> microseconds
            assert event["dur"] >= 0
            assert "trace_id" in event["args"]

    def test_chrome_trace_is_deterministic(self, traced):
        traces = build_window_traces(traced.recorder, traced.sink.results)
        assert render_chrome_trace(traces) == render_chrome_trace(traces)
