"""Tests for the labeled metrics registry and its publish bridges."""

from __future__ import annotations

import pytest

from repro.cluster import ClusterConfig, DesisCluster
from repro.core.engine import AggregationEngine
from repro.core.query import Query, WindowSpec
from repro.core.types import AggFunction
from repro.metrics import summarize
from repro.network.topology import three_tier
from repro.obs import (
    Histogram,
    MetricsRegistry,
    publish_cluster_result,
    publish_engine_stats,
    publish_latency_summary,
    publish_network_stats,
)

from tests.cluster.test_desis_parity import TICK, make_streams
from tests.conftest import make_stream


class TestInstruments:
    def test_counter_accumulates(self):
        registry = MetricsRegistry()
        registry.counter("hits").inc()
        registry.counter("hits").inc(4)
        assert registry.value("hits") == 5

    def test_counter_rejects_negative(self):
        registry = MetricsRegistry()
        with pytest.raises(ValueError):
            registry.counter("hits").inc(-1)

    def test_gauge_sets_and_moves(self):
        registry = MetricsRegistry()
        gauge = registry.gauge("depth")
        gauge.set(10)
        gauge.inc(-3)
        assert registry.value("depth") == 7

    def test_labels_partition_series(self):
        registry = MetricsRegistry()
        registry.counter("bytes", link="a->b").inc(10)
        registry.counter("bytes", link="b->c").inc(20)
        assert registry.value("bytes", link="a->b") == 10
        assert registry.value("bytes", link="b->c") == 20
        assert registry.value("bytes") == 0.0  # unlabeled series untouched
        assert len(registry) == 2

    def test_label_order_is_irrelevant(self):
        registry = MetricsRegistry()
        registry.counter("x", a="1", b="2").inc()
        assert registry.counter("x", b="2", a="1").value == 1

    def test_kind_conflict_rejected(self):
        registry = MetricsRegistry()
        registry.counter("n")
        with pytest.raises(ValueError, match="already registered"):
            registry.gauge("n")

    def test_histogram_cumulative_buckets(self):
        hist = Histogram(buckets=(1.0, 10.0, 100.0))
        for value in (0.5, 5.0, 50.0, 500.0):
            hist.observe(value)
        assert hist.counts == [1, 2, 3]  # cumulative per bound
        assert hist.count == 4  # +Inf sees everything
        assert hist.sum == 555.5
        assert hist.value == pytest.approx(555.5 / 4)

    def test_histogram_requires_sorted_buckets(self):
        with pytest.raises(ValueError):
            Histogram(buckets=(10.0, 1.0))

    def test_histogram_bucket_mismatch_rejected(self):
        registry = MetricsRegistry()
        registry.histogram("lat", buckets=(1.0, 2.0))
        with pytest.raises(ValueError, match="buckets"):
            registry.histogram("lat", buckets=(1.0, 5.0))

    def test_collect_is_deterministically_ordered(self):
        registry = MetricsRegistry()
        registry.counter("z").inc()
        registry.counter("a", link="2").inc()
        registry.counter("a", link="1").inc()
        names = [(s.name, s.labels) for s in registry.collect()]
        assert names == [("a", {"link": "1"}), ("a", {"link": "2"}), ("z", {})]


class TestBridges:
    def _engine_stats(self):
        queries = [Query.of("q", WindowSpec.tumbling(200), AggFunction.SUM)]
        engine = AggregationEngine(queries)
        engine.process_batch(make_stream(400))
        engine.close()
        return engine.stats

    def test_engine_stats_land_under_stable_names(self):
        stats = self._engine_stats()
        registry = MetricsRegistry()
        publish_engine_stats(registry, stats)
        assert registry.value("engine.events") == stats.events
        assert registry.value("engine.calculations") == stats.calculations
        assert registry.value("engine.peak_live_slices") == stats.peak_live_slices

    def test_engine_merge_ops_published(self):
        queries = [
            Query.of("q", WindowSpec.sliding(800, 100), AggFunction.AVERAGE)
        ]
        engine = AggregationEngine(queries)
        engine.process_batch(make_stream(400))
        engine.close()
        assert engine.stats.merge_ops > 0
        registry = MetricsRegistry()
        publish_engine_stats(registry, engine.stats)
        assert registry.value("engine.merge_ops") == engine.stats.merge_ops

    def test_engine_stats_labels_pass_through(self):
        stats = self._engine_stats()
        registry = MetricsRegistry()
        publish_engine_stats(registry, stats, node="local-3")
        assert registry.value("engine.events", node="local-3") == stats.events
        assert registry.value("engine.events") == 0.0

    def test_cluster_result_covers_network_and_nodes(self):
        queries = [Query.of("q", WindowSpec.tumbling(1_000), AggFunction.SUM)]
        streams = make_streams(2, 300)
        result = DesisCluster(
            queries, three_tier(2, 1), config=ClusterConfig(tick_interval=TICK)
        ).run(streams)
        registry = MetricsRegistry()
        publish_cluster_result(registry, result)
        assert registry.value("cluster.events") == result.events
        assert registry.value("cluster.results") == len(result.sink)
        assert registry.value("net.total_bytes") == result.network.total_bytes
        assert registry.value("net.retransmits") == 0
        assert (
            registry.value("node.slices_shipped", role="local", node="local-0")
            == result.local_stats["local-0"].slices_closed
        )
        # per-link series exist for every link that carried traffic
        links = {
            s.labels["link"] for s in registry.collect() if s.name == "net.bytes"
        }
        assert "local-0->mid-0" in links

    def test_cluster_root_merge_ops_published(self):
        queries = [
            Query.of("q", WindowSpec.sliding(4_000, 500), AggFunction.SUM)
        ]
        streams = make_streams(2, 300)
        result = DesisCluster(
            queries, three_tier(2, 1), config=ClusterConfig(tick_interval=TICK)
        ).run(streams)
        assert result.root_merge_ops > 0
        registry = MetricsRegistry()
        publish_cluster_result(registry, result)
        assert registry.value("cluster.root_merge_ops") == result.root_merge_ops

    def test_network_reliability_counters_published(self):
        queries = [Query.of("q", WindowSpec.tumbling(1_000), AggFunction.SUM)]
        from repro.network.simnet import FaultPlan

        streams = make_streams(2, 400)
        result = DesisCluster(
            queries,
            three_tier(2, 1),
            config=ClusterConfig(
                tick_interval=TICK,
                fault_plan=FaultPlan(seed=3, drop_rate=0.1),
                node_timeout=10**9,
            ),
        ).run(streams)
        registry = MetricsRegistry()
        publish_network_stats(registry, result.network)
        assert registry.value("net.retransmits") == result.network.retransmits
        assert registry.value("net.acks") == result.network.acks
        assert registry.value("net.drops") == result.network.drops

    def test_latency_summary_gauges(self):
        registry = MetricsRegistry()
        publish_latency_summary(registry, summarize([1.0, 2.0, 3.0]), probe="x")
        assert registry.value("latency.count", probe="x") == 3
        assert registry.value("latency.p50", probe="x") == 2.0
        assert registry.value("latency.max", probe="x") == 3.0
