"""Tests for the slice-lifecycle trace recorder and window provenance."""

from __future__ import annotations

import pytest

from repro.cluster import ClusterConfig, DesisCluster
from repro.core.query import Query, WindowSpec
from repro.core.results import WindowResult
from repro.core.types import AggFunction
from repro.network.simnet import FaultPlan
from repro.network.topology import three_tier
from repro.obs import NULL_RECORDER, TraceRecorder, render_trace_jsonl

from tests.cluster.test_desis_parity import TICK, make_streams


class TestRecorder:
    def test_records_in_sequence_order(self):
        recorder = TraceRecorder()
        recorder.record("slice.close", 100, node="n0", group=0, index=0)
        recorder.record("window.emit", 200, node="n0", group=0)
        events = list(recorder.events())
        assert [e.seq for e in events] == [1, 2]
        assert [e.at for e in events] == [100, 200]

    def test_filters_by_kind_group_node(self):
        recorder = TraceRecorder()
        recorder.record("slice.close", 1, node="a", group=0)
        recorder.record("slice.close", 2, node="b", group=1)
        recorder.record("window.emit", 3, node="a", group=0)
        assert len(list(recorder.events("slice.close"))) == 2
        assert len(list(recorder.events(group=1))) == 1
        assert len(list(recorder.events("slice.close", node="a"))) == 1

    def test_ring_buffer_evicts_oldest_and_counts(self):
        recorder = TraceRecorder(capacity=3)
        for i in range(5):
            recorder.record("slice.close", i, node="n", group=0)
        assert len(recorder) == 3
        assert recorder.dropped == 2
        assert [e.at for e in recorder.events()] == [2, 3, 4]
        assert next(iter(recorder.events())).seq == 3  # seq keeps counting

    def test_clear_resets(self):
        recorder = TraceRecorder(capacity=2)
        for i in range(4):
            recorder.record("x", i)
        recorder.clear()
        assert len(recorder) == 0
        assert recorder.dropped == 0

    def test_first_eviction_warns_once(self, caplog):
        recorder = TraceRecorder(capacity=2)
        with caplog.at_level("WARNING", logger="repro.obs.tracing"):
            for i in range(6):
                recorder.record("x", i)
        warnings = [
            r for r in caplog.records if "ring buffer full" in r.getMessage()
        ]
        assert len(warnings) == 1  # 4 evictions, one warning
        assert "capacity=2" in warnings[0].getMessage()
        assert recorder.dropped == 4

    def test_clear_rearms_the_eviction_warning(self, caplog):
        recorder = TraceRecorder(capacity=1)
        with caplog.at_level("WARNING", logger="repro.obs.tracing"):
            recorder.record("x", 0)
            recorder.record("x", 1)
            recorder.clear()
            recorder.record("x", 2)
            recorder.record("x", 3)
        warnings = [
            r for r in caplog.records if "ring buffer full" in r.getMessage()
        ]
        assert len(warnings) == 2

    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            TraceRecorder(capacity=0)

    def test_null_recorder_is_shared_and_inert(self):
        assert NULL_RECORDER.enabled is False
        NULL_RECORDER.record("slice.close", 1, node="n", group=0)
        assert len(NULL_RECORDER) == 0


class TestExplainWindow:
    def _trace_one_window(self):
        recorder = TraceRecorder()
        recorder.record("slice.close", 90, node="local-0", group=0,
                        index=0, start=0, end=100)
        recorder.record("slice.close", 95, node="local-1", group=0,
                        index=0, start=0, end=100)
        recorder.record("slice.close", 95, node="local-1", group=1,
                        index=0, start=0, end=100)  # other group: excluded
        recorder.record("partial.ship", 100, node="local-0", group=0,
                        first_seq=0, records=1, start=0, end=100)
        recorder.record("net.retransmit", 101, link="local-0->root", seq=0,
                        attempt=1)
        recorder.record("root.consume", 105, node="root", group=0,
                        records=2, start=0, end=100)
        recorder.record("window.emit", 106, node="root", group=0,
                        query_id="q", start=0, end=100, event_count=7)
        recorder.record("slice.close", 190, node="local-0", group=0,
                        index=1, start=100, end=200)  # later slice: excluded
        return recorder

    def test_provenance_contents(self):
        recorder = self._trace_one_window()
        result = WindowResult("q", 0, 100, 1.0, 7, emitted_at=106)
        prov = recorder.explain_window(result)
        assert prov.sources == ["local-0", "local-1"]
        assert len(prov.slices) == 2
        assert [h.kind for h in prov.hops] == ["partial.ship", "root.consume"]
        assert prov.retransmits == {"local-0->root": 1}
        assert prov.total_retransmits == 1
        assert prov.emitted_at == 106
        assert prov.event_count == 7
        assert prov.to_dict()["sources"] == ["local-0", "local-1"]

    def test_untraced_window_raises(self):
        recorder = self._trace_one_window()
        missing = WindowResult("q", 500, 600, 1.0, 1, emitted_at=601)
        with pytest.raises(KeyError):
            recorder.explain_window(missing)

    def test_empty_span_slice_counts_once(self):
        recorder = TraceRecorder()
        recorder.record("slice.close", 100, node="n", group=0,
                        index=0, start=100, end=100)  # boundary cut, no span
        recorder.record("window.emit", 101, node="root", group=0,
                        query_id="q", start=0, end=200, event_count=0)
        prov = recorder.explain_window(
            WindowResult("q", 0, 200, 0.0, 0, emitted_at=101)
        )
        assert len(prov.slices) == 1
        # ... but not for a window the empty cut sits outside of
        recorder.record("window.emit", 201, node="root", group=0,
                        query_id="q", start=200, end=400, event_count=0)
        prov = recorder.explain_window(
            WindowResult("q", 200, 400, 0.0, 0, emitted_at=201)
        )
        assert prov.slices == []


QUERIES = [Query.of("q", WindowSpec.tumbling(1_000), AggFunction.SUM)]


def run_traced(streams, **cfg):
    cfg.setdefault("tick_interval", TICK)
    cfg.setdefault("trace", True)
    cluster = DesisCluster(
        QUERIES, three_tier(3, 1), config=ClusterConfig(**cfg)
    )
    return cluster.run({k: list(v) for k, v in streams.items()})


class TestClusterTracing:
    def test_trace_off_by_default(self):
        streams = make_streams(3, 200)
        result = run_traced(streams, trace=False)
        assert result.recorder is NULL_RECORDER
        assert len(result.recorder) == 0

    def test_traced_run_captures_full_lifecycle(self):
        streams = make_streams(3, 400)
        result = run_traced(streams)
        kinds = {e.kind for e in result.recorder.events()}
        assert {"slice.close", "partial.ship", "merge.release",
                "root.consume", "window.emit"} <= kinds

    def test_explain_window_on_faulty_run(self):
        """The acceptance scenario: full provenance under >=1% drop."""
        streams = make_streams(3, 1_500)
        result = run_traced(
            streams,
            fault_plan=FaultPlan(seed=3, drop_rate=0.05),
            node_timeout=10**9,
        )
        assert result.network.retransmits > 0
        assert len(result.sink) > 1
        prov = result.recorder.explain_window(result.sink.results[-1])
        assert prov.sources == ["local-0", "local-1", "local-2"]
        assert prov.slices and prov.hops
        # hop timestamps are simulated ms, causally ordered
        assert all(h.at <= prov.emitted_at for h in prov.hops)
        assert prov.total_retransmits > 0

    def test_same_seed_traces_are_byte_identical(self):
        streams = make_streams(3, 800)
        kwargs = dict(
            fault_plan=FaultPlan(seed=9, drop_rate=0.05, jitter_ms=3.0),
            node_timeout=10**9,
        )
        first = run_traced(streams, **kwargs)
        second = run_traced(streams, **kwargs)
        assert len(first.recorder) > 0
        assert render_trace_jsonl(first.recorder) == render_trace_jsonl(
            second.recorder
        )
