"""Tests for the trace/metrics exporters and structured logging."""

from __future__ import annotations

import io
import json
import logging

from repro.obs import (
    MetricsRegistry,
    TraceRecorder,
    configure_logging,
    get_logger,
    kv,
    metrics_to_dict,
    render_metrics_json,
    render_prometheus,
    render_report,
    render_trace_jsonl,
    write_metrics,
    write_trace_jsonl,
)


def small_registry():
    registry = MetricsRegistry()
    registry.counter("engine.events").inc(100)
    registry.counter("net.bytes", link="a->b").inc(42)
    registry.gauge("cluster.wall_seconds").set(1.5)
    hist = registry.histogram("latency.ms", buckets=(1.0, 10.0))
    hist.observe(0.5)
    hist.observe(5.0)
    hist.observe(50.0)
    return registry


class TestTraceJsonl:
    def test_one_event_per_line_with_stable_keys(self):
        recorder = TraceRecorder()
        recorder.record("slice.close", 10, node="n0", group=0, index=3,
                        start=0, end=100)
        text = render_trace_jsonl(recorder)
        (line,) = text.splitlines()
        assert json.loads(line) == {
            "seq": 1, "at": 10, "kind": "slice.close", "node": "n0",
            "group": 0, "index": 3, "start": 0, "end": 100,
        }

    def test_write_returns_count_and_round_trips(self, tmp_path):
        recorder = TraceRecorder()
        for i in range(3):
            recorder.record("window.emit", i, node="root", group=0,
                            query_id="q", start=i, end=i + 1)
        path = tmp_path / "trace.jsonl"
        assert write_trace_jsonl(recorder, str(path)) == 3
        lines = path.read_text().splitlines()
        assert len(lines) == 3
        assert all(json.loads(line)["kind"] == "window.emit" for line in lines)

    def test_empty_trace_writes_empty_file(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        assert write_trace_jsonl(TraceRecorder(), str(path)) == 0
        assert path.read_text() == ""


class TestPrometheus:
    def test_exposition_format(self):
        text = render_prometheus(small_registry())
        assert "# TYPE engine_events counter" in text
        assert "engine_events 100" in text
        assert 'net_bytes{link="a->b"} 42' in text
        assert "cluster_wall_seconds 1.5" in text

    def test_merge_op_counters_render(self):
        """The merge-work counters the bridges publish (engine.merge_ops,
        cluster.root_merge_ops) survive the name mangling."""
        registry = MetricsRegistry()
        registry.counter("engine.merge_ops").inc(7)
        registry.counter("cluster.root_merge_ops").inc(3)
        text = render_prometheus(registry)
        assert "engine_merge_ops 7" in text
        assert "cluster_root_merge_ops 3" in text

    def test_histogram_expansion(self):
        lines = render_prometheus(small_registry()).splitlines()
        assert 'latency_ms_bucket{le="1"} 1' in lines
        assert 'latency_ms_bucket{le="10"} 2' in lines
        assert 'latency_ms_bucket{le="+Inf"} 3' in lines
        assert "latency_ms_sum 55.5" in lines
        assert "latency_ms_count 3" in lines

    def test_label_values_escaped(self):
        registry = MetricsRegistry()
        registry.counter("x", path='a"b\\c').inc()
        assert 'x{path="a\\"b\\\\c"} 1' in render_prometheus(registry)

    def test_newlines_in_label_values_escaped(self):
        registry = MetricsRegistry()
        registry.counter("x", msg="line1\nline2").inc()
        text = render_prometheus(registry)
        assert 'x{msg="line1\\nline2"} 1' in text
        # a raw newline inside a label would corrupt the exposition format
        for line in text.splitlines():
            assert line.count("{") == line.count("}")

    def test_backslash_escaped_before_quote_and_newline(self):
        registry = MetricsRegistry()
        registry.counter("x", odd="a\\nb").inc()  # literal backslash-n
        assert 'x{odd="a\\\\nb"} 1' in render_prometheus(registry)

    def test_histogram_sum_and_count_have_type_lines(self):
        lines = render_prometheus(small_registry()).splitlines()
        assert "# TYPE latency_ms histogram" in lines
        assert "# TYPE latency_ms_sum counter" in lines
        assert "# TYPE latency_ms_count counter" in lines
        # each series is typed exactly once
        assert len([l for l in lines if l.startswith("# TYPE latency_ms")]) == 3

    def test_empty_registry_renders_empty(self):
        assert render_prometheus(MetricsRegistry()) == ""


class TestJson:
    def test_document_shape(self):
        document = metrics_to_dict(small_registry())
        by_name = {m["name"]: m for m in document["metrics"]}
        assert by_name["engine.events"]["value"] == 100
        assert by_name["net.bytes"]["labels"] == {"link": "a->b"}
        assert by_name["latency.ms"]["buckets"] == [[1.0, 1], [10.0, 2]]
        assert by_name["latency.ms"]["count"] == 3

    def test_extra_keys_merged(self):
        document = json.loads(
            render_metrics_json(small_registry(), benchmark="bench", seed=7)
        )
        assert document["benchmark"] == "bench"
        assert document["seed"] == 7

    def test_write_metrics_picks_format_by_extension(self, tmp_path):
        registry = small_registry()
        json_path = tmp_path / "m.json"
        prom_path = tmp_path / "m.prom"
        write_metrics(registry, str(json_path), run="x")
        write_metrics(registry, str(prom_path))
        assert json.loads(json_path.read_text())["run"] == "x"
        assert prom_path.read_text().startswith("# TYPE")


class TestReport:
    def test_report_renders_every_metric(self):
        text = render_report(small_registry(), "My run")
        assert "=== My run ===" in text
        assert "engine.events" in text
        assert "link=a->b" in text
        assert "histogram" in text


class TestLogging:
    def test_get_logger_nests_under_repro(self):
        assert get_logger("repro.cluster.desis").name == "repro.cluster.desis"
        assert get_logger("benchmarks.x").name == "repro.benchmarks.x"

    def test_kv_is_sorted_and_deterministic(self):
        assert kv(b=2, a=1, c="x") == "a=1 b=2 c=x"

    def test_silent_until_configured_then_structured(self):
        logger = get_logger("repro.obs.test_target")
        buffer = io.StringIO()
        handler = configure_logging(logging.INFO, stream=buffer)
        try:
            logger.info("run finished %s", kv(events=5, wall=0.1))
            line = buffer.getvalue().strip()
            assert "INFO repro.obs.test_target run finished" in line
            assert "events=5 wall=0.1" in line
        finally:
            logging.getLogger("repro").removeHandler(handler)

    def test_configure_is_idempotent(self):
        first = configure_logging(logging.INFO, stream=io.StringIO())
        second = configure_logging(logging.INFO, stream=io.StringIO())
        try:
            handlers = [
                h for h in logging.getLogger("repro").handlers
                if getattr(h, "_repro_structured", False)
            ]
            assert handlers == [second]
            assert first is not second
        finally:
            logging.getLogger("repro").removeHandler(second)
