"""Tests for the data, DEBS, and query generators."""

from __future__ import annotations

import pytest

from repro.core.errors import ReproError
from repro.core.event import ensure_ordered
from repro.core.types import AggFunction, WindowMeasure, WindowType
from repro.datagen import (
    DataGenerator,
    DataGeneratorConfig,
    DebsConfig,
    DebsGenerator,
    QueryGenerator,
    QueryGeneratorConfig,
    zipf_weights,
)


class TestDataGenerator:
    def test_deterministic_under_seed(self):
        cfg = DataGeneratorConfig(keys=("a", "b"))
        one = list(DataGenerator(cfg, seed=42).events(200))
        two = list(DataGenerator(cfg, seed=42).events(200))
        assert one == two
        other = list(DataGenerator(cfg, seed=43).events(200))
        assert one != other

    def test_events_are_ordered(self):
        cfg = DataGeneratorConfig(rate=5_000)
        events = list(DataGenerator(cfg, seed=1).events(1_000))
        list(ensure_ordered(events))  # raises on disorder

    def test_rate_is_roughly_honoured(self):
        cfg = DataGeneratorConfig(rate=1_000, jitter=0.5)
        events = list(DataGenerator(cfg, seed=1).events(2_000))
        span_s = (events[-1].time - events[0].time) / 1_000
        assert 2_000 / span_s == pytest.approx(1_000, rel=0.1)

    def test_key_weights(self):
        cfg = DataGeneratorConfig(
            keys=("hot", "cold"), key_weights=(9.0, 1.0)
        )
        events = list(DataGenerator(cfg, seed=1).events(5_000))
        hot = sum(1 for e in events if e.key == "hot")
        assert 0.85 < hot / 5_000 < 0.95

    def test_markers_at_interval(self):
        cfg = DataGeneratorConfig(marker="end", marker_every_ms=1_000, rate=1_000)
        events = list(DataGenerator(cfg, seed=1).events(5_000))
        markers = [e for e in events if e.marker == "end"]
        assert len(markers) == pytest.approx(5, abs=2)

    def test_gaps_injected(self):
        cfg = DataGeneratorConfig(gap_every_ms=1_000, gap_ms=4_000, rate=1_000)
        events = list(DataGenerator(cfg, seed=1).events(3_000))
        deltas = [b.time - a.time for a, b in zip(events, events[1:])]
        assert max(deltas) >= 4_000

    def test_streams_have_distinct_content(self):
        cfg = DataGeneratorConfig()
        streams = DataGenerator(cfg, seed=1).streams(3, 100)
        assert set(streams) == {"local-0", "local-1", "local-2"}
        assert streams["local-0"] != streams["local-1"]

    @pytest.mark.parametrize(
        "bad",
        [
            dict(rate=0),
            dict(keys=()),
            dict(keys=("a",), key_weights=(1.0, 2.0)),
            dict(value_lo=5.0, value_hi=5.0),
        ],
    )
    def test_invalid_config(self, bad):
        with pytest.raises(ReproError):
            DataGeneratorConfig(**bad)

    def test_zipf_weights(self):
        weights = zipf_weights(4, skew=1.0)
        assert weights == [1.0, 0.5, pytest.approx(1 / 3), 0.25]
        with pytest.raises(ReproError):
            zipf_weights(0)


class TestDebsGenerator:
    def test_keys_cover_players_and_channels(self):
        generator = DebsGenerator(DebsConfig(players=2))
        assert len(generator.keys) == 8
        assert "p0-px" in generator.keys and "p1-a" in generator.keys

    def test_values_within_pitch(self):
        generator = DebsGenerator(DebsConfig(players=4), seed=3)
        for event in generator.events(2_000):
            if event.key.endswith("-px"):
                assert 0.0 <= event.value <= 105.0
            elif event.key.endswith("-py"):
                assert 0.0 <= event.value <= 68.0
            else:
                assert event.value >= 0.0

    def test_ordered_and_deterministic(self):
        generator = DebsGenerator(DebsConfig(players=4), seed=3)
        events = list(generator.events(500))
        list(ensure_ordered(events))
        assert events == list(DebsGenerator(DebsConfig(players=4), seed=3).events(500))

    def test_out_of_play_markers(self):
        generator = DebsGenerator(
            DebsConfig(players=2, out_of_play_every_ms=500), seed=1
        )
        events = list(generator.events(5_000))
        assert any(e.marker == "out_of_play" for e in events)

    def test_streams(self):
        streams = DebsGenerator(DebsConfig(players=2), seed=1).streams(2, 100)
        assert set(streams) == {"local-0", "local-1"}


class TestQueryGenerator:
    def test_count_and_ids(self):
        queries = QueryGenerator(seed=1).queries(25)
        assert len(queries) == 25
        assert len({q.query_id for q in queries}) == 25

    def test_deterministic(self):
        assert QueryGenerator(seed=5).queries(10) == QueryGenerator(seed=5).queries(10)

    def test_respects_window_types(self):
        cfg = QueryGeneratorConfig(window_types=(WindowType.TUMBLING,))
        queries = QueryGenerator(cfg, seed=1).queries(20)
        assert all(q.window.window_type is WindowType.TUMBLING for q in queries)

    def test_decomposable_only(self):
        cfg = QueryGeneratorConfig(decomposable_only=True)
        queries = QueryGenerator(cfg, seed=1).queries(50)
        assert all(q.is_decomposable for q in queries)

    def test_quantiles_get_parameters(self):
        cfg = QueryGeneratorConfig(functions=(AggFunction.QUANTILE,),
                                   window_types=(WindowType.TUMBLING,))
        queries = QueryGenerator(cfg, seed=1).queries(10)
        assert all(0 < q.function.quantile < 1 for q in queries)

    def test_count_measures(self):
        cfg = QueryGeneratorConfig(
            window_types=(WindowType.TUMBLING,),
            measures=(WindowMeasure.COUNT,),
        )
        queries = QueryGenerator(cfg, seed=1).queries(10)
        assert all(q.is_count_based for q in queries)

    def test_generated_queries_are_runnable(self):
        from repro.core.engine import AggregationEngine
        from repro.datagen import DataGenerator, DataGeneratorConfig

        queries = QueryGenerator(seed=9).queries(30)
        engine = AggregationEngine(queries)
        events = DataGenerator(DataGeneratorConfig(rate=2_000), seed=2).events(2_000)
        for event in events:
            engine.process(event)
        sink = engine.close()
        assert sink.count > 0
