"""Tests for the discrete-event simulated network."""

from __future__ import annotations

import pytest

from repro.core.errors import TopologyError
from repro.core.event import Event
from repro.core.types import NodeRole
from repro.network.codec import BinaryCodec, StringCodec
from repro.network.messages import ControlMessage, EventBatchMessage
from repro.network.simnet import (
    CrashWindow,
    FaultPlan,
    LinkFaults,
    SimNetwork,
    SimNode,
)


class Recorder(SimNode):
    """Test node that records everything it sees."""

    def __init__(self, node_id, role=NodeRole.ROOT):
        super().__init__(node_id, role)
        self.events: list[tuple[int, Event]] = []
        self.messages: list[tuple[int, object]] = []
        self.ticks: list[int] = []
        self.finished_at: int | None = None

    def on_event(self, event, now, net):
        self.events.append((now, event))

    def on_message(self, message, now, net):
        self.messages.append((now, message))

    def on_tick(self, now, net):
        self.ticks.append(now)

    def on_finish(self, now, net):
        self.finished_at = now


class Forwarder(Recorder):
    """Forwards every event upstream immediately as a one-event batch."""

    def __init__(self, node_id, parent):
        super().__init__(node_id, NodeRole.LOCAL)
        self.parent = parent

    def on_event(self, event, now, net):
        super().on_event(event, now, net)
        net.send(
            self.node_id,
            self.parent,
            EventBatchMessage(sender=self.node_id, covered_to=now, events=[event]),
        )


def build(latency=2.0, bandwidth=None, codec=None):
    net = SimNetwork(
        default_latency_ms=latency,
        default_bandwidth_bytes_per_ms=bandwidth,
        default_codec=codec if codec is not None else BinaryCodec(),
    )
    root = Recorder("root")
    local = Forwarder("local", "root")
    net.add_node(root)
    net.add_node(local)
    net.connect("local", "root")
    return net, root, local


class TestDelivery:
    def test_events_arrive_in_time_order(self):
        net, root, local = build()
        net.inject_stream("local", [Event(10, "a", 1.0), Event(30, "a", 2.0)])
        net.run()
        assert [e.time for _, e in local.events] == [10, 30]

    def test_messages_delayed_by_latency(self):
        net, root, local = build(latency=5.0)
        net.inject_stream("local", [Event(10, "a", 1.0)])
        net.run()
        (arrival, message), = root.messages
        assert arrival == 15
        assert message.events[0] == Event(10, "a", 1.0)

    def test_roundtrip_through_codec(self):
        net, root, local = build(codec=StringCodec())
        net.inject_stream("local", [Event(10, "a", 1.5, "end")])
        net.run()
        (_, message), = root.messages
        assert isinstance(message, EventBatchMessage)
        assert message.events[0].marker == "end"

    def test_bandwidth_cap_serializes_transfers(self):
        # 1 byte/ms: two back-to-back messages queue behind each other.
        net, root, local = build(latency=0.0, bandwidth=1.0)
        net.inject_stream(
            "local", [Event(0, "a", 1.0), Event(0, "a", 2.0)]
        )
        net.run()
        first, second = (t for t, _ in root.messages)
        size = net.links[("local", "root")].bytes_sent / 2
        assert first == pytest.approx(size, rel=0.1)
        assert second == pytest.approx(2 * size, rel=0.1)

    def test_ticks_fire_between_events(self):
        net, root, local = build()
        net.inject_stream("local", [Event(0, "a", 1.0), Event(100, "a", 1.0)])
        net.schedule_ticks("local", start=0, end=100, interval=25)
        net.run()
        assert local.ticks == [25, 50, 75, 100]

    def test_finish_fires_after_stream(self):
        net, root, local = build()
        last = net.inject_stream("local", [Event(0, "a", 1.0)])
        net.schedule_finish("local", last + 1_000)
        net.run()
        assert local.finished_at == 1_000

    def test_run_until_pauses(self):
        net, root, local = build()
        net.inject_stream("local", [Event(10, "a", 1.0), Event(500, "a", 2.0)])
        net.run(until=100)
        assert len(local.events) == 1
        net.run()
        assert len(local.events) == 2


class TestAccounting:
    def test_stats_rollup(self):
        net, root, local = build()
        net.inject_stream("local", [Event(10, "a", 1.0), Event(20, "a", 2.0)])
        net.run()
        stats = net.stats()
        assert stats.total_messages == 2
        assert stats.bytes_by_link[("local", "root")] > 0
        assert stats.bytes_from_role[NodeRole.LOCAL] == stats.total_bytes
        assert net.cpu_time_by_role()[NodeRole.LOCAL] > 0.0

    def test_send_without_link_raises(self):
        net, root, local = build()
        with pytest.raises(TopologyError):
            net.send("root", "ghost", ControlMessage(sender="root", kind="x"))

    def test_duplicate_node_rejected(self):
        net, root, local = build()
        with pytest.raises(TopologyError):
            net.add_node(Recorder("root"))

    def test_inject_into_unknown_node_raises(self):
        net, root, local = build()
        with pytest.raises(TopologyError):
            net.inject_stream("ghost", [Event(0, "a", 1.0)])


def build_reliable(plan, *, latency=2.0, timeout=50.0, retries=8):
    net = SimNetwork(
        default_latency_ms=latency,
        default_codec=BinaryCodec(),
        fault_plan=plan,
        retransmit_timeout_ms=timeout,
        max_retries=retries,
    )
    root = Recorder("root")
    local = Forwarder("local", "root")
    net.add_node(root)
    net.add_node(local)
    net.connect("local", "root")
    return net, root, local


STREAM = [Event(100 * (i + 1), "a", float(i)) for i in range(8)]


def batch_times(root):
    """covered_to of each delivered batch — the in-order witness."""
    return [m.covered_to for _, m in root.messages]


class TestReliableChannel:
    def test_zero_rate_plan_delivers_in_order_with_acks(self):
        net, root, local = build_reliable(FaultPlan(seed=0))
        net.inject_stream("local", list(STREAM))
        net.run()
        assert batch_times(root) == [e.time for e in STREAM]
        stats = net.stats()
        assert stats.acks == len(STREAM)
        assert stats.drops == 0
        assert stats.retransmits == 0
        assert stats.dedup_dropped == 0

    def test_drops_are_retransmitted_exactly_once_in_order(self):
        net, root, local = build_reliable(FaultPlan(seed=1, drop_rate=0.3))
        net.inject_stream("local", list(STREAM))
        net.run()
        assert batch_times(root) == [e.time for e in STREAM]
        stats = net.stats()
        assert stats.drops > 0
        assert stats.retransmits > 0
        assert stats.retransmit_exhausted == 0

    def test_duplicates_are_deduplicated(self):
        net, root, local = build_reliable(FaultPlan(seed=2, duplicate_rate=1.0))
        net.inject_stream("local", list(STREAM))
        net.run()
        assert batch_times(root) == [e.time for e in STREAM]
        stats = net.stats()
        assert stats.duplicates >= len(STREAM)
        assert stats.dedup_dropped >= len(STREAM)

    def test_reorder_and_jitter_still_deliver_in_order(self):
        plan = FaultPlan(seed=3, reorder_rate=1.0, reorder_delay_ms=40.0, jitter_ms=9.0)
        net, root, local = build_reliable(plan)
        net.inject_stream("local", list(STREAM))
        net.run()
        assert batch_times(root) == [e.time for e in STREAM]

    def test_sender_crash_buffers_and_reships_after_restart(self):
        plan = FaultPlan(seed=0, crashes=(CrashWindow("local", 250, 650),))
        net, root, local = build_reliable(plan)
        net.inject_stream("local", list(STREAM))
        net.run()
        # Crash is a partition: the local still sees its own events...
        assert [e.time for _, e in local.events] == [e.time for e in STREAM]
        # ...and everything buffered during the outage arrives, in order,
        # only after the restart.
        assert batch_times(root) == [e.time for e in STREAM]
        crashed = [t for t, m in root.messages if 250 <= m.covered_to < 650]
        assert crashed and min(crashed) >= 650

    def test_receiver_crash_drops_inbound_until_restart(self):
        plan = FaultPlan(seed=0, crashes=(CrashWindow("root", 250, 650),))
        net, root, local = build_reliable(plan)
        net.inject_stream("local", list(STREAM))
        net.run()
        assert batch_times(root) == [e.time for e in STREAM]
        stats = net.stats()
        assert stats.drops > 0  # dead interface while crashed
        assert stats.retransmits > 0

    def test_exhausted_retries_give_up_and_terminate(self):
        net, root, local = build_reliable(
            FaultPlan(seed=0, drop_rate=1.0), timeout=20.0, retries=1
        )
        net.inject_stream("local", list(STREAM))
        net.run()  # must not spin forever
        assert root.messages == []
        assert net.stats().retransmit_exhausted == len(STREAM)

    def test_same_seed_replays_identically(self):
        def run_once():
            plan = FaultPlan(seed=7, drop_rate=0.25, duplicate_rate=0.2, jitter_ms=4.0)
            net, root, local = build_reliable(plan)
            net.inject_stream("local", list(STREAM))
            net.run()
            s = net.stats()
            return (
                [(t, m.covered_to) for t, m in root.messages],
                s.drops, s.duplicates, s.retransmits, s.dedup_dropped, s.total_bytes,
            )

        assert run_once() == run_once()

    def test_fault_plan_validation(self):
        with pytest.raises(ValueError):
            LinkFaults(drop_rate=1.5)
        with pytest.raises(ValueError):
            FaultPlan(duplicate_rate=-0.1)
        with pytest.raises(ValueError):
            CrashWindow("x", 100, 100)


class TestReliableAccounting:
    def _stats(self, plan, **kw):
        net, root, local = build_reliable(plan, **kw)
        net.inject_stream("local", list(STREAM))
        net.run()
        return net.stats()

    def test_retransmits_bill_the_data_bucket(self):
        zero = self._stats(FaultPlan(seed=0))
        drop = self._stats(FaultPlan(seed=4, drop_rate=0.3))
        assert drop.retransmit_bytes > 0
        assert drop.data_bytes == zero.data_bytes + drop.retransmit_bytes
        assert drop.goodput_data_bytes == zero.data_bytes

    def test_acks_bill_the_control_bucket(self):
        none = SimNetwork(default_latency_ms=2.0, default_codec=BinaryCodec())
        none.add_node(Recorder("root"))
        none.add_node(Forwarder("local", "root"))
        none.connect("local", "root")
        none.inject_stream("local", list(STREAM))
        none.run()
        zero = self._stats(FaultPlan(seed=0))
        assert zero.ack_bytes > 0
        assert zero.control_bytes == none.stats().control_bytes + zero.ack_bytes
