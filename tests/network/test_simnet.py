"""Tests for the discrete-event simulated network."""

from __future__ import annotations

import pytest

from repro.core.errors import TopologyError
from repro.core.event import Event
from repro.core.types import NodeRole
from repro.network.codec import BinaryCodec, StringCodec
from repro.network.messages import ControlMessage, EventBatchMessage
from repro.network.simnet import SimNetwork, SimNode


class Recorder(SimNode):
    """Test node that records everything it sees."""

    def __init__(self, node_id, role=NodeRole.ROOT):
        super().__init__(node_id, role)
        self.events: list[tuple[int, Event]] = []
        self.messages: list[tuple[int, object]] = []
        self.ticks: list[int] = []
        self.finished_at: int | None = None

    def on_event(self, event, now, net):
        self.events.append((now, event))

    def on_message(self, message, now, net):
        self.messages.append((now, message))

    def on_tick(self, now, net):
        self.ticks.append(now)

    def on_finish(self, now, net):
        self.finished_at = now


class Forwarder(Recorder):
    """Forwards every event upstream immediately as a one-event batch."""

    def __init__(self, node_id, parent):
        super().__init__(node_id, NodeRole.LOCAL)
        self.parent = parent

    def on_event(self, event, now, net):
        super().on_event(event, now, net)
        net.send(
            self.node_id,
            self.parent,
            EventBatchMessage(sender=self.node_id, covered_to=now, events=[event]),
        )


def build(latency=2.0, bandwidth=None, codec=None):
    net = SimNetwork(
        default_latency_ms=latency,
        default_bandwidth_bytes_per_ms=bandwidth,
        default_codec=codec if codec is not None else BinaryCodec(),
    )
    root = Recorder("root")
    local = Forwarder("local", "root")
    net.add_node(root)
    net.add_node(local)
    net.connect("local", "root")
    return net, root, local


class TestDelivery:
    def test_events_arrive_in_time_order(self):
        net, root, local = build()
        net.inject_stream("local", [Event(10, "a", 1.0), Event(30, "a", 2.0)])
        net.run()
        assert [e.time for _, e in local.events] == [10, 30]

    def test_messages_delayed_by_latency(self):
        net, root, local = build(latency=5.0)
        net.inject_stream("local", [Event(10, "a", 1.0)])
        net.run()
        (arrival, message), = root.messages
        assert arrival == 15
        assert message.events[0] == Event(10, "a", 1.0)

    def test_roundtrip_through_codec(self):
        net, root, local = build(codec=StringCodec())
        net.inject_stream("local", [Event(10, "a", 1.5, "end")])
        net.run()
        (_, message), = root.messages
        assert isinstance(message, EventBatchMessage)
        assert message.events[0].marker == "end"

    def test_bandwidth_cap_serializes_transfers(self):
        # 1 byte/ms: two back-to-back messages queue behind each other.
        net, root, local = build(latency=0.0, bandwidth=1.0)
        net.inject_stream(
            "local", [Event(0, "a", 1.0), Event(0, "a", 2.0)]
        )
        net.run()
        first, second = (t for t, _ in root.messages)
        size = net.links[("local", "root")].bytes_sent / 2
        assert first == pytest.approx(size, rel=0.1)
        assert second == pytest.approx(2 * size, rel=0.1)

    def test_ticks_fire_between_events(self):
        net, root, local = build()
        net.inject_stream("local", [Event(0, "a", 1.0), Event(100, "a", 1.0)])
        net.schedule_ticks("local", start=0, end=100, interval=25)
        net.run()
        assert local.ticks == [25, 50, 75, 100]

    def test_finish_fires_after_stream(self):
        net, root, local = build()
        last = net.inject_stream("local", [Event(0, "a", 1.0)])
        net.schedule_finish("local", last + 1_000)
        net.run()
        assert local.finished_at == 1_000

    def test_run_until_pauses(self):
        net, root, local = build()
        net.inject_stream("local", [Event(10, "a", 1.0), Event(500, "a", 2.0)])
        net.run(until=100)
        assert len(local.events) == 1
        net.run()
        assert len(local.events) == 2


class TestAccounting:
    def test_stats_rollup(self):
        net, root, local = build()
        net.inject_stream("local", [Event(10, "a", 1.0), Event(20, "a", 2.0)])
        net.run()
        stats = net.stats()
        assert stats.total_messages == 2
        assert stats.bytes_by_link[("local", "root")] > 0
        assert stats.bytes_from_role[NodeRole.LOCAL] == stats.total_bytes
        assert net.cpu_time_by_role()[NodeRole.LOCAL] > 0.0

    def test_send_without_link_raises(self):
        net, root, local = build()
        with pytest.raises(TopologyError):
            net.send("root", "ghost", ControlMessage(sender="root", kind="x"))

    def test_duplicate_node_rejected(self):
        net, root, local = build()
        with pytest.raises(TopologyError):
            net.add_node(Recorder("root"))

    def test_inject_into_unknown_node_raises(self):
        net, root, local = build()
        with pytest.raises(TopologyError):
            net.inject_stream("ghost", [Event(0, "a", 1.0)])
