"""Fuzz tests: codecs must fail cleanly on arbitrary bytes."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.errors import CodecError
from repro.network.codec import BinaryCodec, StringCodec
from repro.network.messages import Message


@settings(max_examples=300, deadline=None)
@given(data=st.binary(max_size=300))
def test_binary_decode_never_crashes(data):
    """Arbitrary bytes either decode to a message or raise CodecError —
    never an uncaught struct/index/decode error."""
    codec = BinaryCodec()
    try:
        message = codec.decode(data)
    except CodecError:
        return
    assert isinstance(message, Message)


@settings(max_examples=200, deadline=None)
@given(data=st.binary(max_size=300))
def test_string_decode_never_crashes(data):
    codec = StringCodec()
    try:
        message = codec.decode(data)
    except (CodecError, KeyError, TypeError, AttributeError):
        # JSON that parses but has the wrong shape may surface shape
        # errors; they must at least be deterministic exceptions, not
        # crashes deeper in the stack.
        return
    assert isinstance(message, Message)


@settings(max_examples=100, deadline=None)
@given(data=st.binary(min_size=1, max_size=300))
def test_truncations_of_valid_messages_fail_cleanly(data):
    """Prefixes of a real message must raise CodecError, not misparse
    silently into a different valid message of the same type."""
    from repro.core.event import Event
    from repro.network.messages import EventBatchMessage

    codec = BinaryCodec()
    message = EventBatchMessage(
        sender="local-0",
        covered_to=1_000,
        events=[Event(t, "k", float(t)) for t in range(5)],
    )
    encoded = codec.encode(message)
    cut = len(data) % len(encoded)
    if cut == 0:
        return
    try:
        decoded = codec.decode(encoded[:cut])
    except CodecError:
        return
    # A short prefix can only decode "successfully" if every trailing
    # field it lost was optional-with-zero-count; never a different type.
    assert type(decoded) is EventBatchMessage


@settings(max_examples=100, deadline=None)
@given(data=st.binary(min_size=1, max_size=300))
def test_truncated_reliability_frames_fail_cleanly(data):
    """The reliable-channel frames get the same truncation guarantee:
    a cut sequenced envelope or ack must raise, never half-deliver."""
    from repro.core.event import Event
    from repro.network.messages import (
        AckMessage,
        EventBatchMessage,
        SequencedMessage,
    )

    codec = BinaryCodec()
    frames = [
        SequencedMessage(
            epoch=3,
            seq=17,
            inner=EventBatchMessage(
                sender="local-0",
                covered_to=1_000,
                events=[Event(t, "k", float(t)) for t in range(5)],
            ),
        ),
        AckMessage(sender="mid-0", epoch=3, cumulative=16, selective=[18, 21]),
    ]
    for message in frames:
        encoded = codec.encode(message)
        cut = len(data) % len(encoded)
        if cut == 0:
            continue
        try:
            decoded = codec.decode(encoded[:cut])
        except CodecError:
            continue
        assert type(decoded) is type(message)


@settings(max_examples=100, deadline=None)
@given(data=st.binary(min_size=1, max_size=300))
def test_truncated_checkpoint_messages_fail_cleanly(data):
    """Checkpoint headers and snapshot chunks — the persisted recovery
    format — get the same truncation guarantee as the wire."""
    from repro.network.messages import (
        CheckpointMessage,
        ContextPartial,
        SliceRecord,
        SnapshotChunk,
    )
    from repro.core.types import OperatorKind

    codec = BinaryCodec()
    frames = [
        CheckpointMessage(
            sender="mid-0",
            checkpoint_id=4,
            at=9_000,
            emit_seq=12,
            groups={0: (5, 0, 8_000), 1: (2, 1_000, 7_000)},
            cursors=[(0, "local-0", 5, 8_000), (1, "local-1", 2, 7_000)],
            safe_to={0: 6_000},
        ),
        SnapshotChunk(
            sender="mid-0",
            checkpoint_id=4,
            group_id=0,
            kind="pending",
            child="local-0",
            records=[
                SliceRecord(
                    start=0,
                    end=500,
                    contexts={0: ContextPartial(count=3, ops={OperatorKind.SUM: 4.5})},
                )
            ],
        ),
        SnapshotChunk(
            sender="root",
            checkpoint_id=4,
            group_id=1,
            kind="assembler",
            covered=8_000,
            state={"covered": 8_000, "fixed": [["q", 7_000]]},
        ),
    ]
    for message in frames:
        encoded = codec.encode(message)
        cut = len(data) % len(encoded)
        if cut == 0:
            continue
        try:
            decoded = codec.decode(encoded[:cut])
        except CodecError:
            continue
        assert type(decoded) is type(message)
