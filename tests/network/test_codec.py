"""Codec tests: exact roundtrips for both wire formats."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.errors import CodecError
from repro.core.event import Event
from repro.core.types import OperatorKind
from repro.network.codec import BinaryCodec, StringCodec
from repro.network.messages import (
    AckMessage,
    CheckpointMessage,
    ContextPartial,
    ControlMessage,
    EventBatchMessage,
    PartialBatchMessage,
    ResyncMessage,
    SequencedMessage,
    ShardBatchMessage,
    ShardResultMessage,
    ShardWindowRecord,
    SliceRecord,
    SnapshotChunk,
    WindowPartialMessage,
)

K = OperatorKind
CODECS = [BinaryCodec(), StringCodec()]

floats = st.floats(min_value=-1e9, max_value=1e9, allow_nan=False)
times = st.integers(0, 2**40)


ops_strategy = st.fixed_dictionaries(
    {},
    optional={
        K.SUM: floats,
        K.COUNT: st.integers(0, 2**40),
        K.MULTIPLICATION: floats,
        K.DECOMPOSABLE_SORT: st.one_of(
            st.none(), st.tuples(floats, floats).map(lambda t: (min(t), max(t)))
        ),
        K.NON_DECOMPOSABLE_SORT: st.lists(floats, max_size=12).map(sorted),
    },
)

context_strategy = st.builds(
    ContextPartial,
    count=st.integers(0, 10_000),
    ops=ops_strategy,
    span=st.one_of(st.none(), st.tuples(times, times).map(lambda t: (min(t), max(t)))),
    timed=st.one_of(
        st.none(), st.lists(st.tuples(times, floats), max_size=8)
    ),
)

record_strategy = st.builds(
    SliceRecord,
    start=times,
    end=times,
    contexts=st.dictionaries(st.integers(0, 500), context_strategy, max_size=4),
    userdef_eps=st.lists(
        st.tuples(st.text(min_size=1, max_size=8), times), max_size=3
    ),
)

partial_msg_strategy = st.builds(
    PartialBatchMessage,
    sender=st.text(min_size=1, max_size=12),
    group_id=st.integers(0, 1_000),
    first_slice_seq=st.integers(0, 2**40),
    covered_to=times,
    records=st.lists(record_strategy, max_size=4),
)

event_strategy = st.builds(
    Event,
    time=times,
    key=st.text(min_size=1, max_size=6),
    value=floats,
    marker=st.one_of(st.none(), st.sampled_from(["end", "trip_end"])),
)

event_msg_strategy = st.builds(
    EventBatchMessage,
    sender=st.text(min_size=1, max_size=12),
    covered_to=times,
    events=st.lists(event_strategy, max_size=10),
)

window_msg_strategy = st.builds(
    WindowPartialMessage,
    sender=st.text(min_size=1, max_size=12),
    query_id=st.text(min_size=1, max_size=8),
    start=times,
    end=times,
    count=st.integers(0, 10_000),
    covered_to=times,
    ops=ops_strategy,
    values=st.one_of(st.none(), st.lists(floats, max_size=10).map(sorted)),
)


seqs = st.integers(-(2**40), 2**40)
epochs = st.integers(0, 2**32 - 1)  # u32 on the binary wire

ack_msg_strategy = st.builds(
    AckMessage,
    sender=st.text(min_size=1, max_size=12),
    epoch=epochs,
    cumulative=seqs,
    selective=st.lists(seqs, max_size=8),
)

resync_msg_strategy = st.builds(
    ResyncMessage,
    sender=st.text(min_size=1, max_size=12),
    epoch=epochs,
    entries=st.dictionaries(
        st.integers(0, 2**16 - 1),  # group ids are u16 on the binary wire
        st.tuples(seqs, times),
        max_size=6,
    ),
    recover=st.booleans(),
    new_parent=st.one_of(st.just(""), st.text(min_size=1, max_size=12)),
)

group_ids = st.integers(0, 2**16 - 1)

checkpoint_msg_strategy = st.builds(
    CheckpointMessage,
    sender=st.text(min_size=1, max_size=12),
    checkpoint_id=st.integers(0, 2**40),
    at=times,
    emit_seq=st.integers(0, 2**40),
    groups=st.dictionaries(group_ids, st.tuples(seqs, times, times), max_size=5),
    cursors=st.lists(
        st.tuples(group_ids, st.text(min_size=1, max_size=10), seqs, times),
        max_size=6,
    ),
    safe_to=st.dictionaries(group_ids, times, max_size=5),
)

# ``state`` must survive canonical-JSON round-tripping, so the strategy
# only produces jsonable shapes (string keys, lists not tuples).
jsonable = st.recursive(
    st.one_of(st.none(), st.booleans(), st.integers(-(2**40), 2**40), floats,
              st.text(max_size=8)),
    lambda leaf: st.one_of(
        st.lists(leaf, max_size=4),
        st.dictionaries(st.text(max_size=6), leaf, max_size=4),
    ),
    max_leaves=10,
)

snapshot_msg_strategy = st.builds(
    SnapshotChunk,
    sender=st.text(min_size=1, max_size=12),
    checkpoint_id=st.integers(0, 2**40),
    group_id=group_ids,
    kind=st.sampled_from(["pending", "retained", "assembler"]),
    child=st.one_of(st.just(""), st.text(min_size=1, max_size=10)),
    seq=seqs,
    covered=times,
    records=st.lists(record_strategy, max_size=3),
    state=st.one_of(st.none(), st.dictionaries(st.text(max_size=6), jsonable, max_size=4)),
)

sequenced_msg_strategy = st.builds(
    SequencedMessage,
    epoch=epochs,
    seq=seqs,
    inner=st.one_of(partial_msg_strategy, event_msg_strategy, window_msg_strategy),
)


@st.composite
def shard_batch_strategy(draw):
    key_table = draw(
        st.lists(st.text(min_size=1, max_size=8), min_size=1, max_size=5,
                 unique=True)
    )
    n = draw(st.integers(0, 16))
    markers = (
        draw(
            st.lists(
                st.tuples(st.integers(0, n - 1),
                          st.text(min_size=1, max_size=6)),
                max_size=3,
            )
        )
        if n
        else []
    )
    return ShardBatchMessage(
        seq=draw(seqs),
        advance_before=draw(st.one_of(st.none(), times)),
        advance_after=draw(st.one_of(st.none(), times)),
        close=draw(st.booleans()),
        final_time=draw(st.one_of(st.none(), times)),
        times=draw(st.lists(times, min_size=n, max_size=n)),
        values=draw(st.lists(floats, min_size=n, max_size=n)),
        key_table=key_table,
        key_index=draw(
            st.lists(st.integers(0, len(key_table) - 1),
                     min_size=n, max_size=n)
        ),
        markers=markers,
    )


shard_record_strategy = st.builds(
    ShardWindowRecord,
    group_id=group_ids,
    ctx=st.integers(0, 2**16 - 1),
    start=times,
    end=times,
    event_count=st.integers(0, 2**30),
    emitted_at=times,
    query_ids=st.lists(st.text(min_size=1, max_size=8), max_size=3).map(tuple),
    ops=ops_strategy,
)

shard_result_strategy = st.builds(
    ShardResultMessage,
    shard=st.integers(0, 2**16 - 1),
    seq=seqs,
    windows=st.lists(shard_record_strategy, max_size=3),
    done=st.booleans(),
    busy_ns=st.integers(0, 2**60),
    stats=st.dictionaries(st.text(min_size=1, max_size=10),
                          st.integers(0, 2**40), max_size=4),
    error=st.one_of(st.just(""), st.text(min_size=1, max_size=20)),
)


@pytest.mark.parametrize("codec", CODECS, ids=lambda c: c.name)
class TestRoundtrip:
    @given(message=partial_msg_strategy)
    def test_partial_batch(self, codec, message):
        assert codec.decode(codec.encode(message)) == message

    @given(message=event_msg_strategy)
    def test_event_batch(self, codec, message):
        assert codec.decode(codec.encode(message)) == message

    @given(message=window_msg_strategy)
    def test_window_partial(self, codec, message):
        assert codec.decode(codec.encode(message)) == message

    def test_control(self, codec):
        message = ControlMessage(
            sender="root", kind="topology", payload={"a": [1, 2], "b": "x"}
        )
        assert codec.decode(codec.encode(message)) == message

    @given(message=ack_msg_strategy)
    def test_ack(self, codec, message):
        assert codec.decode(codec.encode(message)) == message

    @given(message=resync_msg_strategy)
    def test_resync(self, codec, message):
        assert codec.decode(codec.encode(message)) == message

    @given(message=sequenced_msg_strategy)
    def test_sequenced(self, codec, message):
        assert codec.decode(codec.encode(message)) == message

    @given(message=checkpoint_msg_strategy)
    def test_checkpoint(self, codec, message):
        assert codec.decode(codec.encode(message)) == message

    @given(message=snapshot_msg_strategy)
    def test_snapshot(self, codec, message):
        assert codec.decode(codec.encode(message)) == message

    @given(message=shard_batch_strategy())
    def test_shard_batch(self, codec, message):
        assert codec.decode(codec.encode(message)) == message

    @given(message=shard_result_strategy)
    def test_shard_result(self, codec, message):
        assert codec.decode(codec.encode(message)) == message

    def test_shard_batch_key_table_overflow_raises(self, codec):
        message = ShardBatchMessage(
            seq=0, key_table=[f"k{i}" for i in range(2**16)]
        )
        if isinstance(codec, BinaryCodec):
            with pytest.raises(CodecError):
                codec.encode(message)
        else:  # the string codec has no dictionary-width limit
            assert codec.decode(codec.encode(message)) == message

    def test_checkpoint_empty_state_edge(self, codec):
        """A virgin node's checkpoint — no groups, cursors, or floors."""
        message = CheckpointMessage(sender="mid-0", checkpoint_id=1, at=0)
        assert codec.decode(codec.encode(message)) == message

    def test_snapshot_empty_state_edge(self, codec):
        message = SnapshotChunk(
            sender="root", checkpoint_id=1, group_id=0, kind="assembler"
        )
        assert codec.decode(codec.encode(message)) == message

    def test_checkpoint_max_group_count_edge(self, codec):
        """The binary wire counts groups in a u16: the maximum load —
        65535 groups, including id 0xFFFF — must round-trip exactly."""
        n = 2**16 - 1
        message = CheckpointMessage(
            sender="root",
            checkpoint_id=7,
            at=10_000,
            emit_seq=123,
            groups={g: (g, g + 1, g + 2) for g in range(n)},
            safe_to={0: 1_000, n - 1: 2_000},
        )
        assert codec.decode(codec.encode(message)) == message

    def test_snapshot_max_group_id_edge(self, codec):
        message = SnapshotChunk(
            sender="mid-0",
            checkpoint_id=2,
            group_id=2**16 - 1,
            kind="pending",
            child="local-9",
            seq=2**40,
            covered=2**40,
        )
        assert codec.decode(codec.encode(message)) == message

    def test_snapshot_unjsonable_state_raises(self, codec):
        message = SnapshotChunk(
            sender="root", checkpoint_id=1, group_id=0, kind="assembler",
            state={"bad": {1, 2}},
        )
        with pytest.raises(CodecError):
            codec.encode(message)

    def test_sequenced_frames_do_not_nest(self, codec):
        inner = SequencedMessage(
            epoch=0,
            seq=1,
            inner=ControlMessage(sender="a", kind="hb", payload={}),
        )
        with pytest.raises(CodecError):
            codec.encode(SequencedMessage(epoch=0, seq=2, inner=inner))


class TestSizes:
    def test_string_codec_is_larger(self):
        """Fig 11b: Disco's string messages cost more bytes than binary."""
        import random

        rng = random.Random(3)
        message = EventBatchMessage(
            sender="local-0",
            covered_to=1_000,
            events=[
                Event(t, "speed", rng.uniform(0.0, 120.0)) for t in range(100)
            ],
        )
        binary = len(BinaryCodec().encode(message))
        text = len(StringCodec().encode(message))
        assert text > binary * 1.2

    def test_partials_much_smaller_than_events(self):
        """Sec 6.4.1: a slice partial replaces thousands of raw events."""
        events = EventBatchMessage(
            sender="l",
            covered_to=1_000,
            events=[Event(t, "k", 1.0) for t in range(1_000)],
        )
        partial = PartialBatchMessage(
            sender="l",
            group_id=0,
            first_slice_seq=0,
            covered_to=1_000,
            records=[
                SliceRecord(
                    start=0,
                    end=1_000,
                    contexts={0: ContextPartial(count=1_000, ops={K.SUM: 1_000.0, K.COUNT: 1_000})},
                )
            ],
        )
        codec = BinaryCodec()
        assert len(codec.encode(partial)) < len(codec.encode(events)) / 100

    def test_corrupt_data_raises(self):
        with pytest.raises(CodecError):
            BinaryCodec().decode(b"\x01\x00\x05ab")
        with pytest.raises(CodecError):
            BinaryCodec().decode(b"\xff")
        with pytest.raises(CodecError):
            StringCodec().decode(b"not json")

    def test_unknown_string_type_raises(self):
        with pytest.raises(CodecError):
            StringCodec().decode(b'{"type": "mystery"}')

    def test_control_payload_must_be_jsonable(self):
        message = ControlMessage(sender="r", kind="x", payload={1, 2})
        with pytest.raises(CodecError):
            BinaryCodec().encode(message)
