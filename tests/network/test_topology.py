"""Tests for topology construction and runtime membership changes."""

from __future__ import annotations

import pytest

from repro.core.errors import TopologyError
from repro.core.types import NodeRole
from repro.network.topology import Topology, chain, star, three_tier


class TestBuilders:
    def test_star(self):
        topo = star(3)
        assert topo.root == "root"
        assert topo.locals_() == ["local-0", "local-1", "local-2"]
        assert topo.intermediates() == []
        assert topo.children("root") == ["local-0", "local-1", "local-2"]
        assert topo.hops_to_root("local-1") == 1

    def test_three_tier(self):
        topo = three_tier(4, 2)
        assert topo.intermediates() == ["mid-0", "mid-1"]
        assert topo.parent("local-0") == "mid-0"
        assert topo.parent("local-1") == "mid-1"
        assert topo.hops_to_root("local-0") == 2

    def test_chain(self):
        topo = chain(2, hops=3)
        assert topo.hops_to_root("local-0") == 4
        assert len(topo.intermediates()) == 3

    def test_chain_zero_hops_is_star(self):
        assert chain(2, hops=0).intermediates() == []

    def test_depth_order_is_deepest_first(self):
        topo = three_tier(2, 1)
        order = topo.depth_order()
        assert order.index("local-0") < order.index("mid-0") < order.index("root")

    @pytest.mark.parametrize(
        "bad", [lambda: star(0), lambda: three_tier(0), lambda: chain(1, -1)]
    )
    def test_invalid_builders(self, bad):
        with pytest.raises(TopologyError):
            bad()


class TestValidation:
    def test_unknown_parent_rejected(self):
        with pytest.raises(TopologyError):
            Topology(root="r", parents={"a": "ghost"})

    def test_cycle_rejected(self):
        with pytest.raises(TopologyError):
            Topology(root="r", parents={"a": "b", "b": "a"})

    def test_second_root_role_rejected(self):
        with pytest.raises(TopologyError):
            Topology(
                root="r",
                parents={"a": "r"},
                roles={"a": NodeRole.ROOT},
            )


class TestMembership:
    def test_add_and_remove_local(self):
        topo = star(2)
        topo.add_node("local-9", "root", NodeRole.LOCAL)
        assert "local-9" in topo.locals_()
        topo.remove_node("local-9")
        assert "local-9" not in topo.nodes()

    def test_remove_intermediate_reattaches_children(self):
        topo = three_tier(2, 1)
        topo.remove_node("mid-0")
        assert topo.parent("local-0") == "root"
        assert topo.parent("local-1") == "root"
        topo.validate()

    def test_remove_root_rejected(self):
        with pytest.raises(TopologyError):
            star(1).remove_node("root")

    def test_duplicate_add_rejected(self):
        topo = star(1)
        with pytest.raises(TopologyError):
            topo.add_node("local-0", "root", NodeRole.LOCAL)

    def test_payload_roundtrip(self):
        topo = three_tier(3, 2)
        clone = Topology.from_payload(topo.to_payload())
        assert clone.parents == topo.parents
        assert clone.roles == topo.roles
        assert clone.root == topo.root
