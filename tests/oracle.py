"""Compatibility shim: the naive reference oracle moved into the package.

It now lives at :mod:`repro.conformance.oracle` so the conformance harness
can use it as its independent reference implementation.  Test modules keep
importing from ``tests.oracle``.
"""

from __future__ import annotations

from repro.conformance.oracle import (  # noqa: F401
    EXACT,
    FLOAT_FOLD_FUNCTIONS,
    OracleWindow,
    TolerancePolicy,
    naive_results,
    naive_value,
    naive_windows,
    tolerance_for,
    values_match,
)

__all__ = [
    "EXACT",
    "FLOAT_FOLD_FUNCTIONS",
    "OracleWindow",
    "TolerancePolicy",
    "naive_results",
    "naive_value",
    "naive_windows",
    "tolerance_for",
    "values_match",
]
