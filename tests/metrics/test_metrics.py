"""Tests for throughput, latency, and network metrics."""

from __future__ import annotations

import pytest

from repro.baselines import CeBufferProcessor, DesisProcessor
from repro.core.errors import ReproError
from repro.core.event import Event
from repro.core.query import Query, WindowSpec
from repro.core.results import WindowResult
from repro.core.types import AggFunction, NodeRole
from repro.metrics import (
    LatencyProbe,
    breakdown,
    event_time_latencies,
    fmt_bytes,
    measure_throughput,
    modeled_sustainable_throughput,
    summarize,
)
from repro.network.simnet import NetworkStats

from tests.conftest import make_stream


def queries():
    return [Query.of("q", WindowSpec.tumbling(500), AggFunction.AVERAGE)]


class TestThroughput:
    def test_measure_counts_events_and_results(self):
        events = make_stream(500)
        result = measure_throughput(DesisProcessor(queries()), events)
        assert result.events == 500
        assert result.results > 0
        assert result.events_per_second > 0

    def test_close_time_split_out_of_process_time(self):
        events = make_stream(500)
        result = measure_throughput(DesisProcessor(queries()), events)
        assert result.process_seconds > 0
        assert result.close_seconds > 0
        assert result.seconds == pytest.approx(
            result.process_seconds + result.close_seconds
        )
        # the sustained rate bills the ingest loop only
        assert result.events_per_second == pytest.approx(
            result.events / result.process_seconds
        )

    def test_legacy_results_fall_back_to_total_seconds(self):
        from repro.metrics import ThroughputResult

        legacy = ThroughputResult(events=100, seconds=2.0, results=1)
        assert legacy.events_per_second == 50.0

    def test_modeled_sustainable_is_minimum(self):
        assert modeled_sustainable_throughput(node_rates=[5e6, 2e6, 9e6]) == 2e6

    def test_bandwidth_cap_applies(self):
        # 1 Gbit/s ~ 125e6 B/s over 31-byte events -> ~4M events/s cap.
        capped = modeled_sustainable_throughput(
            node_rates=[10e6],
            bytes_per_event=31.0,
            link_bandwidth_bytes_per_s=125e6,
        )
        assert capped == pytest.approx(125e6 / 31.0)

    def test_empty_rates_rejected(self):
        with pytest.raises(ReproError):
            modeled_sustainable_throughput(node_rates=[])


class TestLatencyProbe:
    def test_collects_samples(self):
        events = make_stream(1_000)
        probe = LatencyProbe(sample_every=50)
        processor = DesisProcessor(queries(), sink=probe)
        for event in events:
            probe.on_ingest(event)
            processor.process(event)
        processor.close()
        summary = probe.summary()
        assert summary.count > 0
        assert 0 <= summary.p50 <= summary.p95 <= summary.p99 <= summary.max

    def test_cebuffer_latency_is_higher(self):
        """Fig 6a: buffer iteration at window end shows up as latency."""
        events = make_stream(8_000, dt_choices=(2,))
        big_window = [Query.of("q", WindowSpec.tumbling(4_000), AggFunction.AVERAGE)]

        def run(cls):
            probe = LatencyProbe(sample_every=200)
            processor = cls(big_window, sink=probe)
            for event in events:
                probe.on_ingest(event)
                processor.process(event)
            processor.close()
            return probe.summary()

        slow = run(CeBufferProcessor)
        fast = run(DesisProcessor)
        assert slow.count and fast.count
        # Not asserting a ratio (timing noise) but CeBuffer cannot be
        # dramatically faster at p95 than the incremental engine.
        assert slow.p95 >= fast.p95 * 0.5

    def test_summarize_empty(self):
        summary = summarize([])
        assert summary.count == 0 and summary.max == 0.0

    def test_percentiles_use_nearest_rank(self):
        # p99 of 10 samples is the 10th-smallest (ceil(0.99 * 10) = 10),
        # not the 9th that floor-indexing used to return.
        summary = summarize([float(i) for i in range(1, 11)])
        assert summary.p50 == 5.0
        assert summary.p95 == 10.0
        assert summary.p99 == 10.0
        # p50 of 2 samples is the 1st (ceil(0.5 * 2) = 1), never the min
        # by accident of flooring q * (n - 1) to index 0.
        assert summarize([1.0, 100.0]).p50 == 1.0
        assert summarize([7.0]).p50 == 7.0
        assert summarize([7.0]).p99 == 7.0

    def test_pending_samples_expire_past_the_horizon(self):
        probe = LatencyProbe(sample_every=1, expiry_horizon_ms=1_000)
        probe.on_ingest(Event(time=0, key="a", value=1.0))
        probe.on_ingest(Event(time=500, key="a", value=1.0))
        probe.on_ingest(Event(time=2_000, key="a", value=1.0))  # evicts 0, 500
        assert probe.expired_samples == 2
        assert [t for t, _ in probe._pending] == [2_000]
        # an expired sample can no longer match a late result
        probe.emit(WindowResult("q", 0, 100, 1.0, 1, emitted_at=100))
        assert probe.samples == []

    def test_no_horizon_keeps_everything(self):
        probe = LatencyProbe(sample_every=1, expiry_horizon_ms=None)
        probe.on_ingest(Event(time=0, key="a", value=1.0))
        probe.on_ingest(Event(time=10**9, key="a", value=1.0))
        assert probe.expired_samples == 0
        assert len(probe._pending) == 2


class TestEventTimeLatency:
    def test_positive_latencies_only(self):
        from repro.core.results import ResultSink

        sink = ResultSink()
        sink.emit(WindowResult("q", 0, 100, 1.0, 1, emitted_at=150))
        sink.emit(WindowResult("q", 0, 500, 1.0, 1, emitted_at=400))  # forced
        assert event_time_latencies(sink) == [50.0]

    def test_emit_at_window_end_counts_as_zero(self):
        from repro.core.results import ResultSink

        sink = ResultSink()
        sink.emit(WindowResult("q", 0, 100, 1.0, 1, emitted_at=100))
        assert event_time_latencies(sink) == [0.0]

    def test_empty_sink(self):
        from repro.core.results import ResultSink

        assert event_time_latencies(ResultSink()) == []


class TestNetworkBreakdown:
    def test_rollup(self):
        stats = NetworkStats(
            bytes_by_link={("a", "b"): 100, ("b", "c"): 40},
            messages_by_link={("a", "b"): 2, ("b", "c"): 1},
            bytes_from_role={NodeRole.LOCAL: 100, NodeRole.INTERMEDIATE: 40},
            data_bytes_from_role={NodeRole.LOCAL: 90, NodeRole.INTERMEDIATE: 40},
            control_bytes=10,
        )
        rolled = breakdown(stats)
        assert rolled.local_bytes == 90
        assert rolled.intermediate_bytes == 40
        assert rolled.total_bytes == 140
        assert rolled.data_bytes == 130

    def test_data_bytes_with_reliability_counters(self):
        # data_bytes stays total - control even when repair traffic is
        # in play: retransmits bill data, acks bill control.
        stats = NetworkStats(
            bytes_by_link={("a", "b"): 500},
            messages_by_link={("a", "b"): 5},
            bytes_from_role={NodeRole.LOCAL: 500},
            data_bytes_from_role={NodeRole.LOCAL: 420},
            control_bytes=80,
            drops=3,
            retransmits=2,
            retransmit_bytes=60,
            acks=4,
            ack_bytes=40,
            duplicates=1,
            duplicate_data_bytes=30,
            dedup_dropped=1,
        )
        rolled = breakdown(stats)
        assert rolled.data_bytes == 420
        assert rolled.retransmit_bytes == 60
        assert rolled.ack_bytes == 40
        assert rolled.dedup_dropped == 1
        # goodput identity: payload minus repair and duplicate bytes
        assert (
            rolled.goodput_data_bytes
            == rolled.data_bytes - rolled.retransmit_bytes - 30
        )

    def test_bandwidth_cap_ignored_without_both_inputs(self):
        assert (
            modeled_sustainable_throughput(
                node_rates=[5e6], bytes_per_event=31.0
            )
            == 5e6
        )
        assert (
            modeled_sustainable_throughput(
                node_rates=[5e6], link_bandwidth_bytes_per_s=125e6
            )
            == 5e6
        )
        # zero-sized events can never saturate the link
        assert (
            modeled_sustainable_throughput(
                node_rates=[5e6],
                bytes_per_event=0.0,
                link_bandwidth_bytes_per_s=125e6,
            )
            == 5e6
        )

    def test_fmt_bytes(self):
        assert fmt_bytes(512) == "512.0 B"
        assert fmt_bytes(2_048) == "2.0 KB"
        assert fmt_bytes(3 * 1024**3) == "3.0 GB"

    def test_fmt_bytes_boundaries(self):
        assert fmt_bytes(0) == "0.0 B"
        assert fmt_bytes(1023) == "1023.0 B"
        assert fmt_bytes(1024) == "1.0 KB"
        assert fmt_bytes(1023.9) == "1023.9 B"
        assert fmt_bytes(1536) == "1.5 KB"
        assert fmt_bytes(-2_048) == "-2.0 KB"
        assert fmt_bytes(2 * 1024**4) == "2.0 TB"
