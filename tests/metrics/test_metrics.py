"""Tests for throughput, latency, and network metrics."""

from __future__ import annotations

import pytest

from repro.baselines import CeBufferProcessor, DesisProcessor
from repro.core.errors import ReproError
from repro.core.event import Event
from repro.core.query import Query, WindowSpec
from repro.core.results import WindowResult
from repro.core.types import AggFunction, NodeRole
from repro.metrics import (
    LatencyProbe,
    breakdown,
    event_time_latencies,
    fmt_bytes,
    measure_throughput,
    modeled_sustainable_throughput,
    summarize,
)
from repro.network.simnet import NetworkStats

from tests.conftest import make_stream


def queries():
    return [Query.of("q", WindowSpec.tumbling(500), AggFunction.AVERAGE)]


class TestThroughput:
    def test_measure_counts_events_and_results(self):
        events = make_stream(500)
        result = measure_throughput(DesisProcessor(queries()), events)
        assert result.events == 500
        assert result.results > 0
        assert result.events_per_second > 0

    def test_modeled_sustainable_is_minimum(self):
        assert modeled_sustainable_throughput(node_rates=[5e6, 2e6, 9e6]) == 2e6

    def test_bandwidth_cap_applies(self):
        # 1 Gbit/s ~ 125e6 B/s over 31-byte events -> ~4M events/s cap.
        capped = modeled_sustainable_throughput(
            node_rates=[10e6],
            bytes_per_event=31.0,
            link_bandwidth_bytes_per_s=125e6,
        )
        assert capped == pytest.approx(125e6 / 31.0)

    def test_empty_rates_rejected(self):
        with pytest.raises(ReproError):
            modeled_sustainable_throughput(node_rates=[])


class TestLatencyProbe:
    def test_collects_samples(self):
        events = make_stream(1_000)
        probe = LatencyProbe(sample_every=50)
        processor = DesisProcessor(queries(), sink=probe)
        for event in events:
            probe.on_ingest(event)
            processor.process(event)
        processor.close()
        summary = probe.summary()
        assert summary.count > 0
        assert 0 <= summary.p50 <= summary.p95 <= summary.p99 <= summary.max

    def test_cebuffer_latency_is_higher(self):
        """Fig 6a: buffer iteration at window end shows up as latency."""
        events = make_stream(8_000, dt_choices=(2,))
        big_window = [Query.of("q", WindowSpec.tumbling(4_000), AggFunction.AVERAGE)]

        def run(cls):
            probe = LatencyProbe(sample_every=200)
            processor = cls(big_window, sink=probe)
            for event in events:
                probe.on_ingest(event)
                processor.process(event)
            processor.close()
            return probe.summary()

        slow = run(CeBufferProcessor)
        fast = run(DesisProcessor)
        assert slow.count and fast.count
        # Not asserting a ratio (timing noise) but CeBuffer cannot be
        # dramatically faster at p95 than the incremental engine.
        assert slow.p95 >= fast.p95 * 0.5

    def test_summarize_empty(self):
        summary = summarize([])
        assert summary.count == 0 and summary.max == 0.0


class TestEventTimeLatency:
    def test_positive_latencies_only(self):
        from repro.core.results import ResultSink

        sink = ResultSink()
        sink.emit(WindowResult("q", 0, 100, 1.0, 1, emitted_at=150))
        sink.emit(WindowResult("q", 0, 500, 1.0, 1, emitted_at=400))  # forced
        assert event_time_latencies(sink) == [50.0]


class TestNetworkBreakdown:
    def test_rollup(self):
        stats = NetworkStats(
            bytes_by_link={("a", "b"): 100, ("b", "c"): 40},
            messages_by_link={("a", "b"): 2, ("b", "c"): 1},
            bytes_from_role={NodeRole.LOCAL: 100, NodeRole.INTERMEDIATE: 40},
            data_bytes_from_role={NodeRole.LOCAL: 90, NodeRole.INTERMEDIATE: 40},
            control_bytes=10,
        )
        rolled = breakdown(stats)
        assert rolled.local_bytes == 90
        assert rolled.intermediate_bytes == 40
        assert rolled.total_bytes == 140
        assert rolled.data_bytes == 130

    def test_fmt_bytes(self):
        assert fmt_bytes(512) == "512.0 B"
        assert fmt_bytes(2_048) == "2.0 KB"
        assert fmt_bytes(3 * 1024**3) == "3.0 GB"
