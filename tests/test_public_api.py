"""The public API surface stays importable and coherent."""

from __future__ import annotations

import importlib

import pytest

import repro


def test_version():
    assert repro.__version__ == "1.0.0"


def test_top_level_exports_exist():
    for name in repro.__all__:
        assert getattr(repro, name, None) is not None, name


@pytest.mark.parametrize(
    "module",
    [
        "repro.core",
        "repro.baselines",
        "repro.network",
        "repro.cluster",
        "repro.datagen",
        "repro.metrics",
        "repro.harness",
        "repro.interface",
        "repro.parallel",
        "repro.conformance",
        "repro.obs",
    ],
)
def test_subpackage_all_exports_resolve(module):
    mod = importlib.import_module(module)
    for name in getattr(mod, "__all__", []):
        assert getattr(mod, name, None) is not None, f"{module}.{name}"


def test_readme_quickstart_runs():
    """The README's programmatic quickstart, executed verbatim-ish."""
    from repro import AggregationEngine, AggFunction, Event, Query, WindowSpec

    queries = [
        Query.of("avg", WindowSpec.tumbling(1_000), AggFunction.AVERAGE),
        Query.of(
            "p99",
            WindowSpec.sliding(5_000, 1_000),
            AggFunction.QUANTILE,
            quantile=0.99,
        ),
    ]
    engine = AggregationEngine(queries)
    for t in range(0, 10_000, 20):
        engine.process(Event(time=t, key="sensor-1", value=float(t % 97)))
    results = engine.close()
    assert results.for_query("avg")
    assert results.for_query("p99")


def test_session_quickstart_runs():
    """The top-of-README session quickstart: top-level imports only."""
    from repro import DesisSession, EngineConfig, Event

    session = DesisSession(config=EngineConfig(shards=1))
    session.submit("SELECT AVG(value) FROM stream WINDOW TUMBLING 1s")
    for t in range(0, 5_000, 10):
        session.process(Event(time=t, key="sensor-1", value=float(t % 97)))
    results = session.close()
    assert results

    sharded = DesisSession(shards=2)
    sharded.submit("SELECT AVG(value) FROM stream WINDOW TUMBLING 1s")
    for t in range(0, 5_000, 10):
        sharded.process(Event(time=t, key=f"sensor-{t % 3}", value=1.0))
    assert sharded.close()
    assert sharded.shard_stats.shards == 2
