"""Decentralized deployments of the restricted-sharing baselines.

The paper's DeSW and DeBucket "are developed based on Desis and have the
same architecture that can calculate decentralized aggregations"
(Sec 6.1.1) — in this code base that is a :class:`DesisCluster` with a
restricted sharing policy.
"""

from __future__ import annotations

import pytest

from repro.core.query import Query, WindowSpec
from repro.core.types import AggFunction, SharingPolicy
from repro.cluster import ClusterConfig, DesisCluster
from repro.network.topology import three_tier

from tests.cluster.test_desis_parity import (
    TICK,
    centralized_reference,
    make_streams,
    signature,
)


def mixed_queries():
    return [
        Query.of("avg1", WindowSpec.tumbling(1_000), AggFunction.AVERAGE),
        Query.of("avg2", WindowSpec.tumbling(2_000), AggFunction.AVERAGE),
        Query.of("sum1", WindowSpec.sliding(2_000, 500), AggFunction.SUM),
    ]


@pytest.mark.parametrize(
    "policy",
    [
        SharingPolicy.FULL,
        SharingPolicy.SAME_FUNCTION,
        SharingPolicy.SAME_FUNCTION_AND_MEASURE,
        SharingPolicy.NONE,
    ],
)
def test_results_identical_under_any_policy(policy):
    """Sharing changes who does the work, never the answers — in the
    decentralized deployment too."""
    queries = mixed_queries()
    streams = make_streams(2, 250)
    cluster = DesisCluster(
        queries,
        three_tier(2, 1),
        config=ClusterConfig(tick_interval=TICK),
        policy=policy,
    )
    result = cluster.run(streams)
    reference = centralized_reference(queries, streams)
    assert signature(result.sink) == signature(reference)


def test_restricted_policies_create_more_groups_and_traffic():
    queries = mixed_queries()
    streams = make_streams(2, 400)

    def run(policy):
        cluster = DesisCluster(
            queries,
            three_tier(2, 1),
            config=ClusterConfig(tick_interval=TICK),
            policy=policy,
        )
        result = cluster.run(dict(streams))
        return len(cluster.plan.groups), result.network.data_bytes

    full_groups, full_bytes = run(SharingPolicy.FULL)
    none_groups, none_bytes = run(SharingPolicy.NONE)
    assert full_groups == 1
    assert none_groups == 3
    # Per-group slice batches mean the unshared deployment ships more.
    assert none_bytes > 1.5 * full_bytes
