"""Direct unit coverage for ``repro.cluster.reliability``.

The chaos suite exercises these pieces end-to-end; this file pins their
edge behavior in isolation — empty merger lists, heartbeat flapping, and
the retransmit-exhausted counter surfacing through the metrics registry.
"""

from __future__ import annotations

from repro.cluster import ClusterConfig, DesisCluster
from repro.cluster.merger import GroupMerger
from repro.cluster.reliability import (
    ChildLiveness,
    recovery_entries,
    resync_entries,
)
from repro.core.analyzer import analyze
from repro.core.query import Query, WindowSpec
from repro.core.types import AggFunction
from repro.network.simnet import FaultPlan
from repro.network.topology import three_tier
from repro.obs.registry import MetricsRegistry, publish_network_stats

from tests.cluster.test_desis_parity import TICK, make_streams

NEVER = 10**9


def _merger(children=("a", "b"), origin=0):
    plan = analyze(
        [Query.of("t", WindowSpec.tumbling(1_000), AggFunction.SUM)],
        decentralized=True,
    )
    return GroupMerger(plan.groups[0], children, origin)


class TestResyncEntries:
    def test_zero_mergers_yield_no_entries(self):
        assert resync_entries([]) == {}

    def test_entries_restart_sequence_at_parent_coverage(self):
        merger = _merger(origin=500)
        merger.forwarded_to = 2_500
        assert resync_entries([merger]) == {0: (0, 2_500)}

    def test_recovery_entries_keep_checkpointed_cursors(self):
        merger = _merger(origin=0)
        merger.children["a"].next_seq = 7
        merger.children["a"].covered = 3_000
        assert recovery_entries([merger], "a") == {0: (7, 3_000)}
        # unknown children simply have no cursor — no entry, no KeyError
        assert recovery_entries([merger], "ghost") == {}
        assert recovery_entries([], "a") == {}


class TestChildLivenessFlapping:
    def test_evict_rejoin_cycles_count_separately(self):
        liveness = ChildLiveness(["a", "b"], origin=0, timeout=100)
        assert liveness.sweep(50) == []
        assert liveness.sweep(150) == ["a", "b"]
        assert liveness.soft_evictions == 2
        # both are remembered, not forgotten
        assert liveness.tracks("a") and liveness.tracks("b")
        # "a" flaps back; its beat is a rejoin, the next beat is not
        assert liveness.beat("a", 160) is True
        assert liveness.beat("a", 170) is False
        assert liveness.rejoins == 1
        # "a" goes silent again: a second eviction for the same child
        assert liveness.sweep(300) == ["a"]
        assert liveness.soft_evictions == 3
        assert liveness.beat("a", 310) is True
        assert liveness.rejoins == 2
        # "b" never came back and stays evicted throughout
        assert "b" in liveness.evicted

    def test_beat_from_unknown_child_is_ignored(self):
        liveness = ChildLiveness(["a"], origin=0, timeout=100)
        assert liveness.beat("stranger", 10) is False
        assert "stranger" not in liveness.last_seen
        assert liveness.rejoins == 0

    def test_hard_remove_forgets_even_evicted_children(self):
        liveness = ChildLiveness(["a"], origin=0, timeout=100)
        liveness.sweep(500)
        assert liveness.tracks("a")
        liveness.remove("a")
        assert not liveness.tracks("a")
        # a later beat is a stranger's, not a rejoin
        assert liveness.beat("a", 600) is False


class TestRetransmitExhaustionObservability:
    def test_exhaustion_counter_reaches_registry(self):
        streams = make_streams(3, 120)
        cluster = DesisCluster(
            [Query.of("t", WindowSpec.tumbling(1_000), AggFunction.SUM)],
            three_tier(3, 1),
            config=ClusterConfig(
                tick_interval=TICK,
                fault_plan=FaultPlan(seed=0, drop_rate=1.0),
                node_timeout=NEVER,
                retransmit_timeout=50.0,
                max_retries=2,
            ),
        )
        result = cluster.run({k: list(v) for k, v in streams.items()})
        registry = MetricsRegistry()
        publish_network_stats(registry, result.network)
        assert registry.value("net.retransmit_exhausted") > 0
        assert (
            registry.value("net.retransmit_exhausted")
            == result.network.retransmit_exhausted
        )
