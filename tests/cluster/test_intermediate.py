"""Unit tests for the intermediate node's merge-and-forward behaviour."""

from __future__ import annotations

import pytest

from repro.core.analyzer import analyze
from repro.core.query import Query, WindowSpec
from repro.core.types import AggFunction, NodeRole, OperatorKind
from repro.cluster.config import ClusterConfig
from repro.cluster.intermediate import IntermediateNode
from repro.network.codec import BinaryCodec
from repro.network.messages import (
    ContextPartial,
    ControlMessage,
    PartialBatchMessage,
    SliceRecord,
)
from repro.network.simnet import SimNetwork, SimNode

K = OperatorKind


class _Sink(SimNode):
    def __init__(self):
        super().__init__("root", NodeRole.ROOT)
        self.messages = []

    def on_message(self, message, now, net):
        self.messages.append(message)


def build(*queries):
    plan = analyze(queries, decentralized=True)
    net = SimNetwork(default_codec=BinaryCodec(), default_latency_ms=0.0)
    sink = _Sink()
    mid = IntermediateNode("mid", "root", ["a", "b"], plan, ClusterConfig())
    net.add_node(sink)
    net.add_node(mid)
    a = SimNode("a", NodeRole.LOCAL)
    b = SimNode("b", NodeRole.LOCAL)
    net.add_node(a)
    net.add_node(b)
    net.connect("mid", "root")
    net.connect("a", "mid")
    net.connect("b", "mid")
    return net, mid, sink


def record(start, end, total, count):
    return SliceRecord(
        start=start,
        end=end,
        contexts={0: ContextPartial(count=count, ops={K.SUM: total})},
    )


def batch(sender, seq, covered, records):
    return PartialBatchMessage(
        sender=sender,
        group_id=0,
        first_slice_seq=seq,
        covered_to=covered,
        records=records,
    )


def test_forwards_only_when_all_children_covered():
    net, mid, sink = build(
        Query.of("q", WindowSpec.tumbling(1_000), AggFunction.SUM)
    )
    mid.on_message(batch("a", 0, 1_000, [record(0, 1_000, 3.0, 2)]), 0, net)
    net.run()
    assert sink.messages == []  # b has not reported yet
    mid.on_message(batch("b", 0, 1_000, [record(0, 1_000, 4.0, 1)]), 0, net)
    net.run()
    (message,) = sink.messages
    assert message.covered_to == 1_000
    (merged,) = message.records
    assert merged.contexts[0].ops[K.SUM] == 7.0
    assert merged.contexts[0].count == 3


def test_own_slice_sequence_assigned():
    net, mid, sink = build(
        Query.of("q", WindowSpec.tumbling(1_000), AggFunction.SUM)
    )
    for covered in (1_000, 2_000):
        seq = covered // 1_000 - 1
        mid.on_message(
            batch("a", seq, covered, [record(covered - 1_000, covered, 1.0, 1)]),
            0,
            net,
        )
        mid.on_message(
            batch("b", seq, covered, [record(covered - 1_000, covered, 1.0, 1)]),
            0,
            net,
        )
    net.run()
    first, second = sink.messages
    assert first.first_slice_seq == 0
    assert second.first_slice_seq == 1  # one merged record forwarded before


def test_heartbeats_relayed_upward():
    net, mid, sink = build(
        Query.of("q", WindowSpec.tumbling(1_000), AggFunction.SUM)
    )
    mid.on_message(
        ControlMessage(sender="a", kind="heartbeat", payload=5_000), 0, net
    )
    net.run()
    (message,) = sink.messages
    assert isinstance(message, ControlMessage)
    assert message.sender == "a"  # original sender preserved for timeouts


def test_dead_intermediate_forwards_nothing():
    net, mid, sink = build(
        Query.of("q", WindowSpec.tumbling(1_000), AggFunction.SUM)
    )
    mid.alive = False
    mid.on_message(batch("a", 0, 1_000, [record(0, 1_000, 1.0, 1)]), 0, net)
    mid.on_message(batch("b", 0, 1_000, [record(0, 1_000, 1.0, 1)]), 0, net)
    net.run()
    assert sink.messages == []


def test_child_membership_changes():
    net, mid, sink = build(
        Query.of("q", WindowSpec.tumbling(1_000), AggFunction.SUM)
    )
    mid.remove_child("b")
    mid.on_message(batch("a", 0, 1_000, [record(0, 1_000, 2.0, 1)]), 0, net)
    net.run()
    (message,) = sink.messages  # no longer waits for b
    assert message.records[0].contexts[0].ops[K.SUM] == 2.0
    mid.add_child("c")
    assert "c" in mid.children
