"""Unit tests for the local node's slicing and batching behaviour."""

from __future__ import annotations

import pytest

from repro.core.analyzer import analyze
from repro.core.engine import EngineStats
from repro.core.event import Event
from repro.core.predicates import Selection
from repro.core.query import Query, WindowSpec
from repro.core.types import AggFunction, OperatorKind, WindowMeasure
from repro.cluster.config import ClusterConfig
from repro.cluster.local import _RootEvalLocalGroup, _SlicedLocalGroup

K = OperatorKind


def sliced_group(*queries, tick=1_000):
    plan = analyze(queries, decentralized=True)
    (group,) = [g for g in plan.groups if not g.root_evaluated]
    return _SlicedLocalGroup(
        "local-0", group, ClusterConfig(tick_interval=tick), EngineStats()
    )


def rooteval_group(*queries, tick=1_000):
    plan = analyze(queries, decentralized=True)
    (group,) = [g for g in plan.groups if g.root_evaluated]
    return _RootEvalLocalGroup(
        "local-0", group, ClusterConfig(tick_interval=tick), EngineStats()
    )


class TestSlicedLocalGroup:
    def test_flush_ships_partials_not_events(self):
        handler = sliced_group(
            Query.of("avg", WindowSpec.tumbling(500), AggFunction.AVERAGE)
        )
        for t in range(0, 1_000, 100):
            handler.on_event(Event(t, "k", 2.0))
        message = handler.flush(1_000)
        assert message.covered_to == 1_000
        assert len(message.records) == 2  # two 500ms slices
        first = message.records[0]
        assert first.contexts[0].ops[K.SUM] == 10.0
        assert first.contexts[0].ops[K.COUNT] == 5
        assert first.contexts[0].count == 5

    def test_slice_seq_increments_across_flushes(self):
        handler = sliced_group(
            Query.of("avg", WindowSpec.tumbling(500), AggFunction.AVERAGE)
        )
        handler.on_event(Event(100, "k", 1.0))
        first = handler.flush(1_000)
        handler.on_event(Event(1_100, "k", 1.0))
        second = handler.flush(2_000)
        assert first.first_slice_seq == 0
        assert second.first_slice_seq == len(first.records)

    def test_empty_interval_still_advances_coverage(self):
        handler = sliced_group(
            Query.of("avg", WindowSpec.tumbling(500), AggFunction.AVERAGE)
        )
        message = handler.flush(1_000)
        assert message.covered_to == 1_000
        assert message.records == []

    def test_session_groups_ship_activity_spans(self):
        handler = sliced_group(
            Query.of("s", WindowSpec.session(300), AggFunction.SUM)
        )
        handler.on_event(Event(120, "k", 1.0))
        handler.on_event(Event(180, "k", 1.0))
        message = handler.flush(1_000)
        spans = [
            part.span
            for record in message.records
            for part in record.contexts.values()
        ]
        assert (120, 180) in spans

    def test_userdef_eps_marked_on_slices(self):
        handler = sliced_group(
            Query.of(
                "u", WindowSpec.user_defined(end_marker="end"), AggFunction.SUM
            )
        )
        handler.on_event(Event(100, "k", 1.0))
        handler.on_event(Event(200, "k", 2.0, "end"))
        message = handler.flush(1_000)
        eps = [ep for record in message.records for ep in record.userdef_eps]
        assert eps == [("u", 200)]


class TestRootEvalLocalGroup:
    def test_median_ships_sorted_values(self):
        handler = rooteval_group(
            Query.of("m", WindowSpec.tumbling(1_000), AggFunction.MEDIAN)
        )
        for t, v in ((10, 5.0), (20, 1.0), (30, 3.0)):
            handler.on_event(Event(t, "k", v))
        message = handler.flush(1_000)
        (record,) = message.records
        assert record.contexts[0].ops[K.NON_DECOMPOSABLE_SORT] == [1.0, 3.0, 5.0]

    def test_count_groups_ship_timestamps(self):
        handler = rooteval_group(
            Query.of(
                "c",
                WindowSpec.tumbling(10, measure=WindowMeasure.COUNT),
                AggFunction.SUM,
            )
        )
        handler.on_event(Event(10, "k", 5.0))
        message = handler.flush(1_000)
        (record,) = message.records
        assert record.contexts[0].timed == [(10, 5.0)]
        assert not record.contexts[0].ops

    def test_boundary_event_kept_for_next_slice(self):
        handler = rooteval_group(
            Query.of("m", WindowSpec.tumbling(1_000), AggFunction.MEDIAN)
        )
        handler.on_event(Event(999, "k", 1.0))
        handler.on_event(Event(1_000, "k", 2.0))  # exactly at the tick
        first = handler.flush(1_000)
        assert first.records[0].contexts[0].count == 1
        second = handler.flush(2_000)
        assert second.records[0].contexts[0].count == 1

    def test_selection_contexts_separated(self):
        handler = rooteval_group(
            Query.of(
                "m1",
                WindowSpec.tumbling(1_000),
                AggFunction.MEDIAN,
                selection=Selection(key="a"),
            ),
            Query.of(
                "m2",
                WindowSpec.tumbling(1_000),
                AggFunction.MEDIAN,
                selection=Selection(key="b"),
            ),
        )
        handler.on_event(Event(10, "a", 1.0))
        handler.on_event(Event(20, "b", 2.0))
        message = handler.flush(1_000)
        (record,) = message.records
        assert len(record.contexts) == 2
