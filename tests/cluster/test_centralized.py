"""Tests for centralized aggregation over a topology (CeBuffer/Scotty)."""

from __future__ import annotations

import pytest

from repro.baselines import CeBufferProcessor, ScottyProcessor
from repro.core.engine import AggregationEngine
from repro.core.event import merge_streams
from repro.core.query import Query, WindowSpec
from repro.core.types import AggFunction, NodeRole
from repro.cluster import CentralizedCluster, ClusterConfig
from repro.network.topology import chain, three_tier

from tests.cluster.test_desis_parity import TICK, make_streams


def queries():
    return [
        Query.of("avg", WindowSpec.tumbling(1_000), AggFunction.AVERAGE),
        Query.of("max", WindowSpec.sliding(2_000, 500), AggFunction.MAX),
    ]


@pytest.mark.parametrize("factory", [ScottyProcessor, CeBufferProcessor])
def test_results_match_local_processor(factory):
    """Shipping events to the root must not change any result."""
    streams = make_streams(3, 300)
    cluster = CentralizedCluster(
        queries(),
        three_tier(3, 1),
        factory,
        config=ClusterConfig(tick_interval=TICK),
    )
    result = cluster.run(streams)

    merged = list(merge_streams(*streams.values()))
    reference = factory(queries())
    reference.advance(0)  # the deployment anchors windows at the origin
    for event in merged:
        reference.process(event)
    reference.close(((merged[-1].time // TICK) + 1) * TICK)

    got = sorted(
        (r.query_id, r.start, r.end, r.event_count, round(float(r.value), 9))
        for r in result.sink
    )
    expected = sorted(
        (r.query_id, r.start, r.end, r.event_count, round(float(r.value), 9))
        for r in reference.sink
    )
    assert got == expected


def test_intermediates_pay_the_bytes_again():
    """Sec 6.4.1: every hop of a centralized deployment re-ships all data."""
    streams = make_streams(2, 400)
    cluster = CentralizedCluster(
        queries(),
        chain(2, hops=2),
        ScottyProcessor,
        config=ClusterConfig(tick_interval=TICK),
    )
    result = cluster.run(streams)
    by_role = result.network.bytes_from_role
    # Two intermediate layers forward everything the locals sent.
    assert by_role[NodeRole.INTERMEDIATE] == pytest.approx(
        2 * by_role[NodeRole.LOCAL], rel=0.01
    )


def test_unknown_stream_target_rejected():
    from repro.core.errors import ClusterError

    cluster = CentralizedCluster(queries(), three_tier(2, 1), ScottyProcessor)
    with pytest.raises(ClusterError):
        cluster.run({"ghost": []})
