"""Property-based decentralized-vs-centralized parity.

Hypothesis generates random multi-node workloads (streams with unique
timestamps, random fixed/session windows and decomposable/holistic
functions) and checks the cluster's results equal the centralized
engine's exactly.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.engine import AggregationEngine
from repro.core.event import Event, merge_streams
from repro.core.functions import FunctionSpec
from repro.core.predicates import Selection
from repro.core.query import Query, WindowSpec
from repro.core.types import AggFunction
from repro.cluster import ClusterConfig, DesisCluster
from repro.network.topology import three_tier

TICK = 500


@st.composite
def node_streams(draw, n_nodes=2, max_events=60):
    """Per-node streams with globally unique timestamps."""
    streams = {}
    for i in range(n_nodes):
        n = draw(st.integers(3, max_events))
        deltas = draw(
            st.lists(st.integers(1, 40), min_size=n, max_size=n)
        )
        values = draw(
            st.lists(st.integers(-30, 30).map(float), min_size=n, max_size=n)
        )
        t = i
        events = []
        for dt, v in zip(deltas, values):
            t += dt * n_nodes
            events.append(Event(t, "k", v))
        streams[f"local-{i}"] = events
    return streams


@st.composite
def query_sets(draw):
    from repro.core.types import WindowMeasure

    queries = []
    n = draw(st.integers(1, 3))
    for i in range(n):
        kind = draw(
            st.sampled_from(["tumbling", "sliding", "session", "count"])
        )
        if kind == "tumbling":
            window = WindowSpec.tumbling(draw(st.sampled_from([250, 500, 1_000])))
        elif kind == "sliding":
            window = WindowSpec.sliding(
                draw(st.sampled_from([500, 1_000])),
                draw(st.sampled_from([250, 500])),
            )
        elif kind == "count":
            window = WindowSpec.tumbling(
                draw(st.sampled_from([3, 7, 16])), measure=WindowMeasure.COUNT
            )
        else:
            window = WindowSpec.session(draw(st.sampled_from([100, 300])))
        fn = draw(
            st.sampled_from(
                [
                    AggFunction.SUM,
                    AggFunction.AVERAGE,
                    AggFunction.MAX,
                    AggFunction.MEDIAN,
                ]
            )
        )
        queries.append(
            Query(
                query_id=f"q{i}",
                window=window,
                function=FunctionSpec(fn),
                selection=Selection(),
            )
        )
    return queries


@settings(max_examples=40, deadline=None)
@given(streams=node_streams(), queries=query_sets())
def test_cluster_matches_centralized_on_random_workloads(streams, queries):
    cluster = DesisCluster(
        queries, three_tier(2, 1), config=ClusterConfig(tick_interval=TICK)
    )
    result = cluster.run({k: list(v) for k, v in streams.items()})

    merged = list(merge_streams(*streams.values()))
    engine = AggregationEngine(queries)
    engine.advance(0)
    for event in merged:
        engine.process(event)
    final = ((merged[-1].time // TICK) + 1) * TICK
    reference = engine.close(final)

    def signature(sink):
        return sorted(
            (
                r.query_id,
                r.start,
                r.end,
                r.event_count,
                round(float(r.value), 9) if r.value is not None else None,
            )
            for r in sink
        )

    assert signature(result.sink) == signature(reference)
