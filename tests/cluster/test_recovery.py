"""Checkpointed recovery, exactly-once emission, and failover (DESIGN.md §8).

The contract under test: a run with state-losing crashes and restarts —
or a permanently dead intermediate failed over to its parent — produces a
sink byte-identical to the fault-free run, whether the restarted node
restores from a checkpoint or replays from scratch.  Byte-identical means
``(query_id, start, end, event_count, value)`` per emitted row, in order;
only ``emitted_at`` may differ.
"""

from __future__ import annotations

import pytest

from repro.cluster import (
    ClusterConfig,
    DesisCluster,
    DirCheckpointStore,
    InMemoryCheckpointStore,
)
from repro.cluster.checkpoint import decode_checkpoint, encode_checkpoint
from repro.core.errors import ClusterError
from repro.core.query import Query, WindowSpec
from repro.core.types import AggFunction, WindowMeasure
from repro.network.messages import CheckpointMessage, SnapshotChunk
from repro.network.simnet import CrashWindow, FaultPlan
from repro.network.topology import three_tier
from repro.obs import compute_critical_path
from repro.obs.registry import MetricsRegistry, publish_cluster_result

from tests.cluster.test_desis_parity import TICK, make_streams

NEVER = 10**9  # a node_timeout that never fires: isolate recovery from eviction

QUERIES = {
    "mixed": [
        Query.of("t", WindowSpec.tumbling(1_000), AggFunction.SUM),
        Query.of("s", WindowSpec.sliding(2_000, 500), AggFunction.MIN),
        Query.of("g", WindowSpec.session(gap=300), AggFunction.COUNT),
    ],
    "count": [
        Query.of(
            "c",
            WindowSpec.tumbling(40, measure=WindowMeasure.COUNT),
            AggFunction.COUNT,
        )
    ],
}


def rows(result):
    return [
        (r.query_id, r.start, r.end, r.event_count, r.value) for r in result.sink
    ]


def run_desis(kind, topo_args, streams, **cfg):
    cfg.setdefault("tick_interval", TICK)
    cluster = DesisCluster(
        QUERIES[kind], three_tier(*topo_args), config=ClusterConfig(**cfg)
    )
    result = cluster.run({k: list(v) for k, v in streams.items()})
    return cluster, result


@pytest.fixture(scope="module")
def streams():
    return make_streams(3, 3000)


@pytest.fixture(scope="module")
def baselines(streams):
    """Fault-free reference rows per query kind and topology width."""
    return {
        (kind, width): rows(run_desis(kind, (3, width), streams)[1])
        for kind in QUERIES
        for width in (1, 2)
    }


class TestCheckpointStores:
    def test_in_memory_roundtrip_keeps_latest_only(self):
        store = InMemoryCheckpointStore()
        assert store.load_latest("mid-0") is None
        store.save("mid-0", 1, [b"one"])
        store.save("mid-0", 2, [b"two", b"three"])
        store.save("other", 9, [b"x"])
        assert store.load_latest("mid-0") == (2, [b"two", b"three"])
        assert store.saves == 3
        assert store.bytes_written == len(b"one") + len(b"twothree") + 1

    def test_dir_store_roundtrip(self, tmp_path):
        store = DirCheckpointStore(str(tmp_path))
        assert store.load_latest("root") is None
        store.save("root", 3, [b"alpha", b"", b"beta"])
        assert store.load_latest("root") == (3, [b"alpha", b"", b"beta"])
        # latest-only: a second save replaces the file
        store.save("root", 4, [b"gamma"])
        assert store.load_latest("root") == (4, [b"gamma"])
        assert sorted(p.name for p in tmp_path.iterdir()) == ["root.ckpt"]

    def test_dir_store_corrupt_file_raises(self, tmp_path):
        store = DirCheckpointStore(str(tmp_path))
        (tmp_path / "mid-0.ckpt").write_bytes(b"\x00\x00")
        with pytest.raises(ClusterError):
            store.load_latest("mid-0")
        # truncated chunk table
        store.save("mid-1", 1, [b"payload"])
        blob = (tmp_path / "mid-1.ckpt").read_bytes()
        (tmp_path / "mid-1.ckpt").write_bytes(blob[:-3])
        with pytest.raises(ClusterError):
            store.load_latest("mid-1")

    def test_decode_checkpoint_validates_shape(self):
        header = CheckpointMessage(sender="mid-0", checkpoint_id=1, at=0)
        chunk = SnapshotChunk(
            sender="mid-0", checkpoint_id=1, group_id=0, kind="pending"
        )
        blobs = encode_checkpoint([header, chunk])
        decoded_header, decoded_chunks = decode_checkpoint(blobs)
        assert decoded_header == header
        assert decoded_chunks == [chunk]
        with pytest.raises(ClusterError):
            decode_checkpoint([])
        with pytest.raises(ClusterError):
            decode_checkpoint(list(reversed(blobs)))  # chunk before header


class TestIntermediateRecovery:
    def test_checkpointed_restore_is_byte_identical(self, streams, baselines):
        plan = FaultPlan(
            seed=2,
            crashes=(CrashWindow("mid-0", 8_000, 12_000, lose_state=True),),
        )
        _, result = run_desis(
            "mixed",
            (3, 1),
            streams,
            fault_plan=plan,
            node_timeout=NEVER,
            checkpoint_interval=3_000,
        )
        assert rows(result) == baselines[("mixed", 1)]
        assert result.recoveries == 1
        assert result.checkpoints > 0

    def test_scratch_restore_is_byte_identical(self, streams, baselines):
        """No checkpointing at all: recovery replays the full retained
        suffix from the children and still converges byte-identically."""
        plan = FaultPlan(
            seed=2,
            crashes=(CrashWindow("mid-0", 8_000, 12_000, lose_state=True),),
        )
        _, result = run_desis(
            "mixed", (3, 1), streams, fault_plan=plan, node_timeout=NEVER
        )
        assert rows(result) == baselines[("mixed", 1)]
        assert result.recoveries == 1
        assert result.checkpoints == 0

    def test_checkpointing_reships_fewer_bytes_than_scratch(self, streams):
        plan = lambda: FaultPlan(  # noqa: E731 — fresh plan per run
            seed=2,
            crashes=(CrashWindow("mid-0", 8_000, 12_000, lose_state=True),),
        )
        _, with_ckpt = run_desis(
            "mixed",
            (3, 1),
            streams,
            fault_plan=plan(),
            node_timeout=NEVER,
            checkpoint_interval=3_000,
        )
        _, scratch = run_desis(
            "mixed", (3, 1), streams, fault_plan=plan(), node_timeout=NEVER
        )
        # Scratch recovery re-ships the children's full retained history;
        # a checkpoint restores the merge cursors so only the suffix past
        # them travels again.
        assert with_ckpt.network.data_bytes < scratch.network.data_bytes


class TestRootRecovery:
    def test_restore_is_exactly_once(self, streams, baselines):
        plan = FaultPlan(
            seed=2,
            crashes=(CrashWindow("root", 9_000, 13_000, lose_state=True),),
        )
        _, result = run_desis(
            "mixed",
            (3, 1),
            streams,
            fault_plan=plan,
            node_timeout=NEVER,
            checkpoint_interval=3_000,
        )
        assert rows(result) == baselines[("mixed", 1)]
        assert result.recoveries == 1
        # Windows emitted before the crash are regenerated during replay;
        # the emit-sequence ledger must have kept them out of the sink.
        assert result.duplicates_suppressed > 0

    def test_scratch_restore_is_exactly_once(self, streams, baselines):
        plan = FaultPlan(
            seed=2,
            crashes=(CrashWindow("root", 9_000, 13_000, lose_state=True),),
        )
        _, result = run_desis(
            "mixed", (3, 1), streams, fault_plan=plan, node_timeout=NEVER
        )
        assert rows(result) == baselines[("mixed", 1)]
        assert result.checkpoints == 0


class TestCombinedCrashSchedule:
    @pytest.mark.parametrize("kind", ["mixed", "count"])
    def test_every_role_crashes_once(self, kind, streams, baselines):
        """One schedule that loses state on an intermediate *and* the root
        (disjoint windows) still emits the fault-free rows exactly once."""
        plan = FaultPlan(
            seed=2,
            crashes=(
                CrashWindow("mid-0", 6_000, 9_000, lose_state=True),
                CrashWindow("root", 10_000, 13_000, lose_state=True),
            ),
        )
        _, result = run_desis(
            kind,
            (3, 1),
            streams,
            fault_plan=plan,
            node_timeout=NEVER,
            checkpoint_interval=3_000,
        )
        assert rows(result) == baselines[(kind, 1)]
        assert result.recoveries == 2


class TestIntermediateFailover:
    @pytest.mark.parametrize("kind", ["mixed", "count"])
    def test_permanent_death_reroutes_children(self, kind, streams, baselines):
        plan = FaultPlan(seed=2, crashes=(CrashWindow("mid-0", 8_000, None),))
        _, result = run_desis(
            kind,
            (3, 2),
            streams,
            fault_plan=plan,
            node_timeout=6_000,
            heartbeat_interval=2_000,
            checkpoint_interval=3_000,
        )
        assert rows(result) == baselines[(kind, 2)]
        assert result.reroutes > 0

    def test_failover_without_checkpoints(self, streams, baselines):
        plan = FaultPlan(seed=2, crashes=(CrashWindow("mid-0", 8_000, None),))
        _, result = run_desis(
            "mixed",
            (3, 2),
            streams,
            fault_plan=plan,
            node_timeout=6_000,
            heartbeat_interval=2_000,
        )
        assert rows(result) == baselines[("mixed", 2)]
        assert result.reroutes > 0
        assert result.checkpoints == 0


class TestDirStoreEndToEnd:
    def test_checkpoint_dir_survives_crash(self, tmp_path, streams, baselines):
        plan = FaultPlan(
            seed=2,
            crashes=(CrashWindow("mid-0", 8_000, 12_000, lose_state=True),),
        )
        cluster, result = run_desis(
            "mixed",
            (3, 1),
            streams,
            fault_plan=plan,
            node_timeout=NEVER,
            checkpoint_interval=3_000,
            checkpoint_dir=str(tmp_path),
        )
        assert isinstance(cluster.checkpoint_store, DirCheckpointStore)
        assert rows(result) == baselines[("mixed", 1)]
        assert (tmp_path / "mid-0.ckpt").exists()


class TestRecoveryErrors:
    def test_lose_state_on_local_is_rejected(self, streams):
        plan = FaultPlan(
            seed=2,
            crashes=(CrashWindow("local-0", 8_000, 12_000, lose_state=True),),
        )
        with pytest.raises(ClusterError, match="local"):
            run_desis(
                "mixed", (3, 1), streams, fault_plan=plan, node_timeout=NEVER
            )


class TestRecoveryObservability:
    def test_counters_reach_the_registry(self, streams):
        plan = FaultPlan(
            seed=2,
            crashes=(CrashWindow("mid-0", 8_000, 12_000, lose_state=True),),
        )
        _, result = run_desis(
            "mixed",
            (3, 1),
            streams,
            fault_plan=plan,
            node_timeout=NEVER,
            checkpoint_interval=3_000,
        )
        registry = MetricsRegistry()
        publish_cluster_result(registry, result)
        assert registry.value("cluster.checkpoints") == result.checkpoints > 0
        assert registry.value("cluster.recoveries") == 1
        assert registry.value("net.reroutes") == 0
        assert (
            registry.value("cluster.duplicates_suppressed")
            == result.duplicates_suppressed
        )

    def test_trace_events_cover_the_lifecycle(self, streams):
        plan = FaultPlan(
            seed=2,
            crashes=(
                CrashWindow("mid-0", 8_000, 12_000, lose_state=True),
                CrashWindow("mid-1", 8_000, None),
            ),
        )
        _, result = run_desis(
            "mixed",
            (3, 2),
            streams,
            fault_plan=plan,
            node_timeout=6_000,
            heartbeat_interval=2_000,
            checkpoint_interval=3_000,
            trace=True,
        )
        saves = list(result.recorder.events("checkpoint.save"))
        recovers = list(result.recorder.events("node.recover"))
        reroutes = list(result.recorder.events("child.reroute"))
        assert saves and recovers and reroutes
        assert any(e.node == "mid-0" for e in recovers)
        assert all(e.data["new_parent"] == "root" for e in reroutes)

    def test_zero_overhead_when_disabled(self, streams):
        cluster, result = run_desis("mixed", (3, 1), streams)
        assert cluster.checkpoint_store is None
        assert result.checkpoints == 0
        assert result.recoveries == 0
        assert result.reroutes == 0
        assert result.duplicates_suppressed == 0
        assert not any(n._retain for n in cluster.locals.values())
        assert not any(n._retain for n in cluster.intermediates.values())
        assert not any(n._retained for n in cluster.locals.values())


class TestExplainSurvivesRecovery:
    """Provenance and critical-path attribution on crashed-and-healed runs.

    Recovery replays traffic and failover reroutes it; neither may leave
    the final windows unexplainable or break the stage-sum invariant
    (DESIGN.md §11)."""

    def _check_last_windows(self, result, n=3):
        for res in result.sink.results[-n:]:
            prov = result.recorder.explain_window(res)
            assert prov.sources and prov.slices and prov.hops
            path = compute_critical_path(result.recorder, res)
            assert sum(path.stage_totals().values()) == path.latency
            assert all(seg.duration > 0 for seg in path.segments)

    def test_explain_after_checkpointed_recovery(self, streams):
        plan = FaultPlan(
            seed=2,
            crashes=(CrashWindow("mid-0", 8_000, 12_000, lose_state=True),),
        )
        _, result = run_desis(
            "mixed",
            (3, 1),
            streams,
            fault_plan=plan,
            node_timeout=NEVER,
            checkpoint_interval=3_000,
            trace=True,
        )
        assert result.recoveries == 1
        assert list(result.recorder.events("node.recover"))
        self._check_last_windows(result)

    def test_explain_after_failover(self, streams):
        plan = FaultPlan(seed=2, crashes=(CrashWindow("mid-0", 8_000, None),))
        _, result = run_desis(
            "mixed",
            (3, 2),
            streams,
            fault_plan=plan,
            node_timeout=6_000,
            heartbeat_interval=2_000,
            trace=True,
        )
        assert result.reroutes > 0
        assert list(result.recorder.events("child.reroute"))
        self._check_last_windows(result)

    def test_recovery_spans_attach_to_covering_windows(self, streams):
        """Windows whose span covers the crash carry the lifecycle span
        (recover/checkpoint) as attributed context, not silence."""
        plan = FaultPlan(
            seed=2,
            crashes=(CrashWindow("mid-0", 8_000, 12_000, lose_state=True),),
        )
        _, result = run_desis(
            "mixed",
            (3, 1),
            streams,
            fault_plan=plan,
            node_timeout=NEVER,
            checkpoint_interval=3_000,
            trace=True,
        )
        from repro.obs import build_window_traces

        traces = build_window_traces(result.recorder, result.sink.results)
        assert traces
        names = {s.name for t in traces for s in t.spans}
        assert "checkpoint" in names  # checkpoints overlap emitted windows
        for trace in traces:
            root = trace.root
            for span in trace.spans[1:]:
                if span.name in ("checkpoint", "recover", "reroute"):
                    # lifecycle spans only attach inside the window's life
                    assert root.start <= span.start <= root.end
                assert span.parent_id is not None
