"""Behavioural tests for the Desis cluster: traffic shape and statistics."""

from __future__ import annotations

import pytest

from repro.baselines import ScottyProcessor
from repro.core.query import Query, WindowSpec
from repro.core.types import AggFunction, NodeRole
from repro.cluster import CentralizedCluster, ClusterConfig, DesisCluster
from repro.network.topology import chain, three_tier

from tests.cluster.test_desis_parity import TICK, make_streams


def avg_query():
    return [Query.of("avg", WindowSpec.tumbling(1_000), AggFunction.AVERAGE)]


def median_query():
    return [Query.of("med", WindowSpec.tumbling(1_000), AggFunction.MEDIAN)]


def run_desis(queries, streams, topology, **kwargs):
    cluster = DesisCluster(
        queries, topology, config=ClusterConfig(tick_interval=TICK, **kwargs)
    )
    return cluster.run(streams), cluster


class TestNetworkShape:
    def test_partials_save_an_order_of_magnitude(self):
        """Fig 11a: decomposable partial results vs raw event shipping."""
        streams = make_streams(3, 1_000)
        desis, _ = run_desis(avg_query(), streams, three_tier(3, 1))
        central = CentralizedCluster(
            avg_query(),
            three_tier(3, 1),
            ScottyProcessor,
            config=ClusterConfig(tick_interval=TICK),
        ).run(make_streams(3, 1_000))
        assert desis.network.data_bytes < central.network.data_bytes / 10

    def test_non_decomposable_ships_everything(self):
        """Fig 11b: medians force all values to the root for everyone."""
        streams = make_streams(3, 1_000)
        desis, _ = run_desis(median_query(), streams, three_tier(3, 1))
        central = CentralizedCluster(
            median_query(),
            three_tier(3, 1),
            ScottyProcessor,
            config=ClusterConfig(tick_interval=TICK),
        ).run(make_streams(3, 1_000))
        # Same order of magnitude — no decomposable reduction possible.
        assert desis.network.data_bytes > central.network.data_bytes / 3

    def test_deep_topology_barely_costs_desis(self):
        """Sec 6.4.1: extra hops multiply centralized traffic, while the
        decentralized increase is negligible in absolute bytes."""
        def desis_bytes(hops):
            result, _ = run_desis(
                avg_query(), make_streams(2, 800), chain(2, hops=hops)
            )
            return result.network.data_bytes

        def central_bytes(hops):
            return CentralizedCluster(
                avg_query(),
                chain(2, hops=hops),
                ScottyProcessor,
                config=ClusterConfig(tick_interval=TICK),
            ).run(make_streams(2, 800)).network.data_bytes

        assert central_bytes(3) > 3 * central_bytes(0)
        assert desis_bytes(3) - desis_bytes(0) < central_bytes(0)

    def test_desis_traffic_flat_in_window_count(self):
        """Fig 11d: per-slice shipping is independent of concurrent windows."""
        def data_bytes(n):
            queries = [
                Query.of(f"q{i}", WindowSpec.tumbling(1_000), AggFunction.AVERAGE)
                for i in range(n)
            ]
            result, _ = run_desis(queries, make_streams(2, 500), three_tier(2, 1))
            return result.network.data_bytes

        assert data_bytes(10) < 1.2 * data_bytes(1)

    def test_traffic_grows_with_keys(self):
        """Fig 11c: per-key partial results are shipped individually."""
        def data_bytes(n_keys):
            keys = tuple(f"k{i}" for i in range(n_keys))
            queries = [
                Query.of(
                    f"q-{key}",
                    WindowSpec.tumbling(1_000),
                    AggFunction.AVERAGE,
                    selection=__import__(
                        "repro.core.predicates", fromlist=["Selection"]
                    ).Selection(key=key),
                )
                for key in keys
            ]
            result, _ = run_desis(
                queries, make_streams(2, 600, keys=keys), three_tier(2, 1)
            )
            return result.network.data_bytes

        assert data_bytes(8) > 3 * data_bytes(1)

    def test_bandwidth_cap_delays_delivery(self):
        """Fig 13: a 1G-like cap makes event shipping the bottleneck."""
        streams = make_streams(2, 500)
        capped = CentralizedCluster(
            avg_query(),
            three_tier(2, 1),
            ScottyProcessor,
            config=ClusterConfig(
                tick_interval=TICK, bandwidth_bytes_per_ms=2.0
            ),
        ).run(streams)
        assert capped.sink.count > 0
        # The simulated clock ran far past event time while draining links.
        assert capped.network.total_bytes > 0


class TestStatsAndResults:
    def test_result_latency_is_positive_and_bounded(self):
        streams = make_streams(2, 400)
        last_event = max(e.time for s in streams.values() for e in s)
        result, _ = run_desis(avg_query(), streams, three_tier(2, 1))
        regular = [r for r in result.sink if r.end <= last_event]
        assert regular
        for r in regular:
            lag = r.emitted_at - r.end
            assert lag >= 0
            # one tick to cut + per-hop latency, with slack
            assert lag <= TICK + 100

    def test_local_stats_collected(self):
        streams = make_streams(2, 400)
        result, _ = run_desis(avg_query(), streams, three_tier(2, 1))
        assert set(result.local_stats) == {"local-0", "local-1"}
        assert sum(s.events for s in result.local_stats.values()) == 800

    def test_cpu_time_by_role(self):
        streams = make_streams(2, 400)
        result, _ = run_desis(avg_query(), streams, three_tier(2, 1))
        assert result.cpu_by_role[NodeRole.LOCAL] > 0
        assert result.cpu_by_role[NodeRole.ROOT] > 0
        assert result.throughput > 0

    def test_empty_local_stream_does_not_stall_coverage(self):
        streams = make_streams(2, 300)
        streams["local-2"] = []
        result, _ = run_desis(avg_query(), streams, three_tier(3, 1))
        assert result.sink.count > 0
