"""Fault tolerance and runtime management tests (Sec 3.2)."""

from __future__ import annotations

import pytest

from repro.core.errors import ClusterError
from repro.core.event import Event
from repro.core.query import Query, WindowSpec
from repro.core.types import AggFunction
from repro.cluster import ClusterConfig, DesisCluster
from repro.network.simnet import FaultPlan
from repro.network.topology import star, three_tier

from tests.cluster.test_desis_parity import TICK, make_streams


def avg(qid="avg", length=1_000):
    return Query.of(qid, WindowSpec.tumbling(length), AggFunction.AVERAGE)


def build(queries, topo, **cfg):
    return DesisCluster(
        queries, topo, config=ClusterConfig(tick_interval=TICK, **cfg)
    )


class TestRuntimeQueries:
    def test_add_query_mid_run(self):
        streams = make_streams(2, 600)
        cluster = build([avg()], three_tier(2, 1))
        result = cluster.run(
            streams,
            actions=[(3_000, lambda c: c.add_query(avg("late", 500)))],
        )
        late = result.sink.for_query("late")
        assert late
        assert min(r.start for r in late) >= 3_000
        assert result.sink.for_query("avg")

    def test_add_duplicate_query_rejected(self):
        cluster = build([avg()], star(1))
        with pytest.raises(ClusterError):
            cluster.add_query(avg())

    def test_remove_query_mid_run(self):
        streams = make_streams(2, 600)
        cluster = build([avg("keep"), avg("drop", 500)], three_tier(2, 1))
        result = cluster.run(
            streams,
            actions=[(3_000, lambda c: c.remove_query("drop"))],
        )
        dropped = result.sink.for_query("drop")
        kept = result.sink.for_query("keep")
        assert max(r.end for r in kept) > 3_000
        assert all(r.end <= 3_500 for r in dropped)


class TestMembership:
    def test_add_local_node_mid_run(self):
        streams = make_streams(2, 600)
        extra = [Event(4_000 + 10 * i, "k", float(i)) for i in range(200)]
        cluster = build([avg()], three_tier(2, 1))
        result = cluster.run(
            streams,
            actions=[
                (3_500, lambda c: c.add_local_node("local-9", "mid-0", extra))
            ],
        )
        assert "local-9" in result.local_stats
        assert result.local_stats["local-9"].events == 200

    def test_remove_local_node_mid_run(self):
        streams = make_streams(3, 600)
        cluster = build([avg()], three_tier(3, 1))
        result = cluster.run(
            streams,
            actions=[(3_000, lambda c: c.remove_node("local-2"))],
        )
        # Results keep flowing after the removal.
        assert any(r.end > 4_000 for r in result.sink)
        assert "local-2" not in cluster.topology.nodes()

    def test_remove_node_leaves_no_stale_state(self):
        # Regression: hard removal must free *all* per-child state — the
        # reliable-channel tables (else retransmits fire into the void),
        # the parent's merger cursors, and the liveness ledgers.
        streams = make_streams(3, 600)
        cluster = build(
            [avg()],
            star(3),
            fault_plan=FaultPlan(seed=5, drop_rate=0.05),
            node_timeout=10**9,
        )
        cluster.run(
            streams,
            actions=[(3_000, lambda c: c.remove_node("local-2"))],
        )
        for table in (
            cluster.net._send_channels,
            cluster.net._recv_channels,
            cluster.net._rngs,
        ):
            assert not [key for key in table if "local-2" in key]
        for merger in cluster.root.mergers:
            assert "local-2" not in merger.children
        assert "local-2" not in cluster.root.last_seen
        if cluster.root.liveness is not None:
            assert "local-2" not in cluster.root.liveness.last_seen

    def test_remove_unknown_node_rejected(self):
        cluster = build([avg()], star(2))
        with pytest.raises(ClusterError):
            cluster.remove_node("ghost")

    def test_heartbeat_timeout_eviction(self):
        streams = make_streams(2, 800)
        cluster = build(
            [avg()],
            star(2),
            heartbeat_interval=TICK,
            node_timeout=2 * TICK,
        )

        def kill(c):
            c.locals["local-1"].alive = False

        def evict(c):
            dead = c.evict_timed_out()
            assert dead == ["local-1"]

        last = max(e.time for s in streams.values() for e in s)
        result = cluster.run(
            streams,
            actions=[(2_000, kill), (last - 100, evict)],
        )
        assert "local-1" not in cluster.topology.nodes()
        # Coverage resumed after eviction: windows past the kill time were
        # produced from the surviving node.
        assert any(r.end > 2_500 for r in result.sink)

    def test_no_eviction_while_heartbeats_flow(self):
        streams = make_streams(2, 600)
        cluster = build(
            [avg()], star(2), heartbeat_interval=TICK, node_timeout=3 * TICK
        )
        checked = []

        def check(c):
            checked.append(c.evict_timed_out())

        last = max(e.time for s in streams.values() for e in s)
        cluster.run(streams, actions=[(last - 100, check)])
        assert checked == [[]]
