"""Decentralized-vs-centralized parity: the core correctness property of
Section 5.

For every workload, a Desis cluster over a multi-node topology must produce
exactly the results the centralized engine produces on the merged stream
(user-defined windows excepted: their decentralized termination is
watermark-granular by design, Sec 5.1.2, and is tested by invariants).

Streams use globally unique timestamps: with equal timestamps from
different nodes the merge order at the root is physically arbitrary in the
real system (and value-ordered here), so count-window contents would
differ from an arbitrary centralized interleaving.
"""

from __future__ import annotations

import random

import pytest

from repro.core.engine import AggregationEngine
from repro.core.event import Event, merge_streams
from repro.core.predicates import Selection
from repro.core.query import Query, WindowSpec
from repro.core.types import AggFunction, WindowMeasure
from repro.cluster import ClusterConfig, DesisCluster
from repro.network.topology import chain, star, three_tier

TICK = 500


def make_streams(n_nodes, n_events, *, seed=11, keys=("k",), gap_every=None,
                 marker_every=None):
    """Per-node streams with globally unique timestamps."""
    rng = random.Random(seed)
    streams = {}
    for i in range(n_nodes):
        t = i
        events = []
        for j in range(n_events):
            if gap_every is not None and j and j % gap_every == 0:
                t += 2_000 + n_nodes
            else:
                t += rng.choice([n_nodes, 2 * n_nodes, 5 * n_nodes])
            marker = (
                "end"
                if marker_every is not None and j % marker_every == marker_every - 1
                else None
            )
            events.append(
                Event(t, rng.choice(keys), float((j * 7 + i) % 89), marker)
            )
        streams[f"local-{i}"] = events
    return streams


def centralized_reference(queries, streams):
    merged = list(merge_streams(*streams.values()))
    engine = AggregationEngine(queries)
    engine.advance(0)
    for event in merged:
        engine.process(event)
    final = ((merged[-1].time // TICK) + 1) * TICK
    return engine.close(final)


def run_cluster(queries, streams, topology):
    cluster = DesisCluster(
        queries, topology, config=ClusterConfig(tick_interval=TICK)
    )
    return cluster.run(streams)


def signature(sink, *, skip_start=()):
    out = []
    for r in sink:
        start = None if r.query_id in skip_start else r.start
        value = round(float(r.value), 9) if r.value is not None else None
        out.append((r.query_id, start, r.end, r.event_count, value))
    return sorted(out, key=repr)


def assert_parity(queries, streams, topology, *, skip_start=()):
    result = run_cluster(queries, streams, topology)
    reference = centralized_reference(queries, streams)
    assert signature(result.sink, skip_start=skip_start) == signature(
        reference, skip_start=skip_start
    )
    return result


class TestDecomposableParity:
    @pytest.mark.parametrize("fn", [AggFunction.SUM, AggFunction.AVERAGE,
                                    AggFunction.MAX, AggFunction.COUNT])
    def test_tumbling(self, fn):
        queries = [Query.of("q", WindowSpec.tumbling(1_000), fn)]
        assert_parity(queries, make_streams(3, 300), three_tier(3, 1))

    def test_sliding_overlaps(self):
        queries = [Query.of("q", WindowSpec.sliding(2_000, 500), AggFunction.SUM)]
        assert_parity(queries, make_streams(3, 300), three_tier(3, 1))

    def test_star_topology(self):
        queries = [Query.of("q", WindowSpec.tumbling(1_000), AggFunction.AVERAGE)]
        assert_parity(queries, make_streams(4, 200), star(4))

    def test_deep_chain_topology(self):
        queries = [Query.of("q", WindowSpec.tumbling(1_000), AggFunction.AVERAGE)]
        assert_parity(queries, make_streams(2, 200), chain(2, hops=3))

    def test_multiple_keys_and_selections(self):
        keys = ("speed", "temp", "rpm")
        queries = [
            Query.of(
                f"q-{key}",
                WindowSpec.tumbling(1_000),
                AggFunction.AVERAGE,
                selection=Selection(key=key),
            )
            for key in keys
        ]
        assert_parity(
            queries, make_streams(3, 400, keys=keys), three_tier(3, 1)
        )

    def test_many_concurrent_windows(self):
        queries = [
            Query.of(f"q{i}", WindowSpec.tumbling(500 * (i + 1)), AggFunction.SUM)
            for i in range(6)
        ]
        assert_parity(queries, make_streams(3, 300), three_tier(3, 1))


class TestSessionParity:
    def test_cross_node_sessions_exact(self):
        """Gap covering (Sec 5.1.2) reproduces centralized sessions exactly:
        a gap on one node that another node's events bridge must NOT close
        the session, and a global gap must."""
        queries = [Query.of("s", WindowSpec.session(gap=800), AggFunction.SUM)]
        assert_parity(
            queries, make_streams(3, 300, gap_every=60), three_tier(3, 1)
        )

    def test_bridged_gap_stays_open(self):
        # Node a pauses 0.9s, node b keeps emitting: one global session.
        streams = {
            "local-0": [Event(0, "k", 1.0), Event(2_000, "k", 2.0)],
            "local-1": [Event(500, "k", 4.0), Event(1_000, "k", 8.0),
                        Event(1_500, "k", 16.0)],
        }
        queries = [Query.of("s", WindowSpec.session(gap=800), AggFunction.SUM)]
        result = run_cluster(queries, streams, star(2))
        results = result.sink.for_query("s")
        assert len(results) == 1
        assert results[0].value == 31.0

    def test_global_gap_closes(self):
        streams = {
            "local-0": [Event(0, "k", 1.0), Event(5_000, "k", 2.0)],
            "local-1": [Event(100, "k", 4.0), Event(5_100, "k", 8.0)],
        }
        queries = [Query.of("s", WindowSpec.session(gap=800), AggFunction.SUM)]
        result = run_cluster(queries, streams, star(2))
        results = sorted(result.sink.for_query("s"), key=lambda r: r.start)
        assert len(results) == 2
        assert results[0].value == 5.0
        assert results[0].end == 100 + 800
        assert results[1].value == 10.0

    def test_sessions_mixed_with_fixed(self):
        queries = [
            Query.of("s", WindowSpec.session(gap=900), AggFunction.AVERAGE),
            Query.of("t", WindowSpec.tumbling(1_000), AggFunction.AVERAGE),
        ]
        assert_parity(
            queries, make_streams(2, 250, gap_every=50), three_tier(2, 1)
        )


class TestRootEvaluatedParity:
    def test_median(self):
        queries = [Query.of("m", WindowSpec.tumbling(1_500), AggFunction.MEDIAN)]
        assert_parity(queries, make_streams(3, 300), three_tier(3, 1))

    def test_quantiles_share_shipped_sort(self):
        queries = [
            Query.of("q1", WindowSpec.tumbling(1_000), AggFunction.QUANTILE,
                     quantile=0.25),
            Query.of("q2", WindowSpec.tumbling(1_000), AggFunction.QUANTILE,
                     quantile=0.75),
        ]
        assert_parity(queries, make_streams(3, 300), three_tier(3, 1))

    def test_count_windows(self):
        queries = [
            Query.of(
                "c",
                WindowSpec.tumbling(50, measure=WindowMeasure.COUNT),
                AggFunction.SUM,
            )
        ]
        assert_parity(queries, make_streams(3, 300), three_tier(3, 1))

    def test_count_sliding_windows(self):
        queries = [
            Query.of(
                "c",
                WindowSpec.sliding(60, 20, measure=WindowMeasure.COUNT),
                AggFunction.AVERAGE,
            )
        ]
        assert_parity(queries, make_streams(2, 250), star(2))

    def test_holistic_session(self):
        queries = [Query.of("m", WindowSpec.session(gap=900), AggFunction.MEDIAN)]
        assert_parity(
            queries, make_streams(2, 250, gap_every=50), three_tier(2, 1)
        )


class TestMixedWorkloadParity:
    def test_full_mix(self):
        queries = [
            Query.of("avg", WindowSpec.tumbling(1_000), AggFunction.AVERAGE),
            Query.of("sum", WindowSpec.sliding(2_000, 500), AggFunction.SUM),
            Query.of("med", WindowSpec.tumbling(1_500), AggFunction.MEDIAN),
            Query.of("ses", WindowSpec.session(gap=900), AggFunction.MAX),
            Query.of(
                "cnt",
                WindowSpec.tumbling(64, measure=WindowMeasure.COUNT),
                AggFunction.SUM,
            ),
        ]
        assert_parity(
            queries, make_streams(3, 400, gap_every=120), three_tier(3, 1)
        )

    def test_single_local_node(self):
        """A 1-local cluster must equal centralized processing exactly."""
        queries = [
            Query.of("avg", WindowSpec.tumbling(700), AggFunction.AVERAGE),
            Query.of("ud", WindowSpec.user_defined(end_marker="end"),
                     AggFunction.SUM),
        ]
        streams = make_streams(1, 300, marker_every=40)
        # With one local, user-defined cuts happen exactly at markers, so
        # even user-defined content matches (start semantics differ).
        assert_parity(queries, streams, star(1), skip_start=("ud",))


class TestUserDefinedInvariants:
    """Multi-node user-defined windows are watermark-granular (Sec 5.1.2);
    exact parity is not promised, but conservation must hold."""

    def test_total_conservation(self):
        queries = [
            Query.of("ud", WindowSpec.user_defined(end_marker="end"),
                     AggFunction.COUNT)
        ]
        streams = make_streams(3, 300, marker_every=50)
        result = run_cluster(queries, streams, three_tier(3, 1))
        total_events = sum(len(s) for s in streams.values())
        assert sum(r.event_count for r in result.sink) == total_events
        # Window ends are exactly the marker times plus the final flush.
        markers = sorted(
            e.time for s in streams.values() for e in s if e.marker == "end"
        )
        ends = sorted(r.end for r in result.sink)
        assert ends[: len(markers)] == markers
