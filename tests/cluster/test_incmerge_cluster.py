"""Cluster-level merge-mode parity and root merge-op accounting.

Same-seed runs of one workload through ``merge_mode="exact"`` and
``merge_mode="incremental"`` must emit the same windows (values within
1e-9, everything else identical), while the incremental mode does strictly
less merge work at the root on overlapping sliding windows — the cluster
half of the contract tested per-engine in
``tests/core/test_incmerge_parity.py``.
"""

from __future__ import annotations

import pytest

from repro.cluster import (
    ClusterConfig,
    DesisCluster,
    InMemoryCheckpointStore,
)
from repro.core.query import Query, WindowSpec
from repro.core.types import AggFunction
from repro.network.simnet import CrashWindow, FaultPlan
from repro.network.topology import star, three_tier

from tests.cluster.test_desis_parity import (
    TICK,
    centralized_reference,
    make_streams,
    signature,
)

SLIDING = [
    # 8x overlap: every root window close covers 8 slide intervals
    Query.of("sum", WindowSpec.sliding(4_000, 500), AggFunction.SUM),
    Query.of("avg", WindowSpec.sliding(4_000, 500), AggFunction.AVERAGE),
]


def run_mode(queries, streams, topology, merge_mode, **cfg):
    cfg.setdefault("tick_interval", TICK)
    cluster = DesisCluster(
        queries,
        topology,
        config=ClusterConfig(merge_mode=merge_mode, **cfg),
    )
    result = cluster.run({k: list(v) for k, v in streams.items()})
    return result


def exact_rows(result):
    """Full-precision rows (no rounding): byte-identity comparisons."""
    return [
        (r.query_id, r.start, r.end, r.event_count, repr(r.value))
        for r in result.sink
    ]


class TestModeParity:
    def test_same_seed_sliding_parity(self):
        streams = make_streams(3, 400)
        exact = run_mode(SLIDING, streams, three_tier(3, 1), "exact")
        inc = run_mode(SLIDING, streams, three_tier(3, 1), "incremental")
        assert signature(exact.sink) == signature(inc.sink)
        # Both modes agree with the centralized engine on the merged stream.
        assert signature(inc.sink) == signature(
            centralized_reference(SLIDING, streams)
        )

    def test_root_merge_ops_reduced_on_overlap(self):
        streams = make_streams(4, 400)
        exact = run_mode(SLIDING, streams, star(4), "exact")
        inc = run_mode(SLIDING, streams, star(4), "incremental")
        assert exact.root_merge_ops > 0
        assert inc.root_merge_ops * 2 <= exact.root_merge_ops

    def test_tumbling_root_work_is_identical(self):
        """Zero-regression guard: tumbling windows share no records, so
        the root does the same plain merge in both modes."""
        queries = [Query.of("q", WindowSpec.tumbling(1_000), AggFunction.SUM)]
        streams = make_streams(3, 300)
        exact = run_mode(queries, streams, three_tier(3, 1), "exact")
        inc = run_mode(queries, streams, three_tier(3, 1), "incremental")
        assert exact_rows(exact) == exact_rows(inc)
        assert exact.root_merge_ops == inc.root_merge_ops

    def test_exact_mode_is_deterministic(self):
        """Two exact-mode runs are byte-identical — the reference the
        seed-parity CI check pins."""
        streams = make_streams(3, 300)
        first = run_mode(SLIDING, streams, three_tier(3, 1), "exact")
        second = run_mode(SLIDING, streams, three_tier(3, 1), "exact")
        assert exact_rows(first) == exact_rows(second)

    def test_mixed_group_with_sessions_stays_correct(self):
        """Session queries disable the root's incremental path for their
        group (data-driven closes break the FIFO discipline); results must
        still match between modes."""
        queries = SLIDING + [
            Query.of("sess", WindowSpec.session(gap=300), AggFunction.COUNT),
        ]
        streams = make_streams(3, 300)
        exact = run_mode(queries, streams, three_tier(3, 1), "exact")
        inc = run_mode(queries, streams, three_tier(3, 1), "incremental")
        assert signature(exact.sink) == signature(inc.sink)


class TestModeParityUnderFaults:
    def test_same_seed_parity_with_drops(self):
        """The merge mode never touches what goes over the wire, so a
        faulty same-seed run sees identical traffic in both modes."""
        plan = lambda: FaultPlan(seed=3, drop_rate=0.05, duplicate_rate=0.02)
        streams = make_streams(3, 250)
        exact = run_mode(
            SLIDING, streams, three_tier(3, 1), "exact", fault_plan=plan()
        )
        inc = run_mode(
            SLIDING, streams, three_tier(3, 1), "incremental",
            fault_plan=plan(),
        )
        assert signature(exact.sink) == signature(inc.sink)

    @pytest.mark.parametrize("merge_mode", ["exact", "incremental"])
    def test_root_crash_recovery_keeps_parity(self, merge_mode):
        """A state-losing root crash restores from checkpoint; the
        incremental aggregates are derived caches that must rebuild
        cleanly (restore resets them), so the recovered run matches the
        fault-free one."""
        streams = make_streams(3, 1500)
        fault_free = run_mode(SLIDING, streams, three_tier(3, 1), merge_mode)
        plan = FaultPlan(
            seed=1,
            crashes=(CrashWindow("root", 9_000, 13_000, lose_state=True),),
        )
        crashed = run_mode(
            SLIDING,
            streams,
            three_tier(3, 1),
            merge_mode,
            fault_plan=plan,
            checkpoint_store=InMemoryCheckpointStore(),
            checkpoint_interval=3_000,
            node_timeout=10**9,
        )
        assert signature(crashed.sink) == signature(fault_free.sink)
        assert crashed.root_merge_ops > 0
