"""Regression: a marker event landing exactly on a fixed-window boundary.

Found by the conformance fuzzer (and shrunk to this one-event case): the
local's post-insert marker cut used to ship a slice labeled ``end=T`` that
*contained* the event stamped ``T``, so when ``T`` coincided with a fixed
punctuation the root attributed the marker event to the sliding windows
ending at ``T`` instead of the ones starting there.  Marker-inclusive
slices now carry their truthful exclusive end ``T + 1``.
"""

from __future__ import annotations

from repro.cluster import ClusterConfig, DesisCluster
from repro.core.engine import AggregationEngine
from repro.core.event import Event
from repro.core.query import Query, WindowSpec
from repro.core.types import AggFunction
from repro.network.topology import three_tier


def build_queries():
    return [
        Query.of("slide", WindowSpec.sliding(1_000, 100), AggFunction.AVERAGE),
        Query.of("trip", WindowSpec.user_defined("end"), AggFunction.MIN),
    ]


def run_cluster(streams):
    config = ClusterConfig(tick_interval=500)
    result = DesisCluster(build_queries(), three_tier(3, 1), config=config).run(
        {node: list(events) for node, events in streams.items()}
    )
    return sorted(
        (r.query_id, r.start, r.end, r.event_count, r.value)
        for r in result.sink
    )


def run_engine(streams, final):
    engine = AggregationEngine(build_queries())
    engine.advance(0)
    merged = sorted(
        (e for events in streams.values() for e in events),
        key=lambda e: e.time,
    )
    for event in merged:
        engine.process(event)
    return sorted(
        (r.query_id, r.start, r.end, r.event_count, r.value)
        for r in engine.close(final)
    )


def slide_only(rows):
    # user-defined trips open at watermark granularity in decentralized
    # deployments (Sec 5.1.2), so only the fixed windows are comparable
    # across deployments
    return [row for row in rows if row[0] == "slide"]


def test_marker_on_slide_boundary_counts_into_opening_windows():
    # t=8400 is a slide-grid punctuation (multiple of 100): the marker
    # event must land in windows [7500,8500)..[8400,9400), never [7400,8400)
    streams = {
        "local-0": [Event(8400, "k0", 95.0, "end")],
        "local-1": [],
        "local-2": [],
    }
    rows = slide_only(run_cluster(streams))
    assert rows == slide_only(run_engine(streams, final=8500))
    assert rows
    assert all(start <= 8400 < end for _, start, end, _, _ in rows)


def test_marker_off_the_grid_unchanged():
    streams = {
        "local-0": [Event(8433, "k0", 95.0, "end")],
        "local-1": [],
        "local-2": [],
    }
    assert slide_only(run_cluster(streams)) == slide_only(
        run_engine(streams, final=8500)
    )


def test_marker_trip_still_includes_its_marker_event():
    streams = {
        "local-0": [Event(100, "k0", 5.0, None), Event(8400, "k0", 3.0, "end")],
        "local-1": [Event(301, "k1", 9.0, None)],
        "local-2": [],
    }
    rows = run_cluster(streams)
    trips = [row for row in rows if row[0] == "trip"]
    assert len(trips) == 1
    _, _, end, count, value = trips[0]
    assert end == 8400
    assert count == 3  # the t=8400 marker event belongs to the trip it ends
    assert value == 3.0
