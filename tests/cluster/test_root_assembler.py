"""Direct unit tests for the root's window assembly from slice records."""

from __future__ import annotations

import pytest

from repro.core.analyzer import analyze
from repro.core.query import Query, WindowSpec
from repro.core.types import AggFunction, OperatorKind, WindowMeasure
from repro.cluster.config import ClusterConfig
from repro.cluster.root import RootAssembler, derive_ops_from_timed
from repro.network.messages import ContextPartial, SliceRecord

K = OperatorKind


def assembler_for(*queries):
    plan = analyze(queries, decentralized=True)
    (group,) = plan.groups
    emitted = []

    def emit(query, start, end, ops, count, now):
        emitted.append((query.query_id, start, end, dict(ops), count))

    return (
        RootAssembler(group, origin=0, emit=emit, config=ClusterConfig()),
        emitted,
    )


def rec(start, end, *, total=None, count=0, span=None, values=None, timed=None,
        eps=()):
    ops = {}
    if total is not None:
        ops = {K.SUM: total, K.COUNT: count}
    if values is not None:
        ops[K.NON_DECOMPOSABLE_SORT] = values
    return SliceRecord(
        start=start,
        end=end,
        contexts={
            0: ContextPartial(count=count, ops=ops, span=span, timed=timed)
        },
        userdef_eps=list(eps),
    )


class TestFixedAssembly:
    def test_window_closes_when_covered(self):
        assembler, emitted = assembler_for(
            Query.of("q", WindowSpec.tumbling(1_000), AggFunction.SUM)
        )
        assembler.consume(500, [rec(0, 500, total=3.0, count=2)], now=500)
        assert emitted == []  # window [0,1000) not covered yet
        assembler.consume(1_000, [rec(500, 1_000, total=4.0, count=1)], now=1_000)
        # Only the query's required operators are merged (SUM for a sum
        # query), even though the records also shipped COUNT.
        assert emitted == [("q", 0, 1_000, {K.SUM: 7.0}, 3)]

    def test_sliding_windows_reuse_records(self):
        assembler, emitted = assembler_for(
            Query.of("q", WindowSpec.sliding(1_000, 500), AggFunction.SUM)
        )
        records = [
            rec(0, 500, total=1.0, count=1),
            rec(500, 1_000, total=2.0, count=1),
            rec(1_000, 1_500, total=4.0, count=1),
        ]
        assembler.consume(1_500, records, now=1_500)
        sums = [(start, ops[K.SUM]) for _, start, _, ops, _ in emitted]
        assert sums == [(0, 3.0), (500, 6.0)]

    def test_empty_windows_not_emitted(self):
        assembler, emitted = assembler_for(
            Query.of("q", WindowSpec.tumbling(1_000), AggFunction.SUM)
        )
        assembler.consume(3_000, [rec(2_000, 2_500, total=1.0, count=1)], now=3_000)
        assert [e[1] for e in emitted] == [2_000]

    def test_gc_drops_consumed_records(self):
        assembler, _ = assembler_for(
            Query.of("q", WindowSpec.tumbling(1_000), AggFunction.SUM)
        )
        records = [rec(i * 500, (i + 1) * 500, total=1.0, count=1) for i in range(8)]
        assembler.consume(4_000, records, now=4_000)
        assert len(assembler.records) == 0


class TestSessionAssembly:
    def query(self):
        return Query.of("s", WindowSpec.session(300), AggFunction.SUM)

    def test_spans_within_gap_cluster(self):
        assembler, emitted = assembler_for(self.query())
        assembler.consume(
            1_000,
            [
                rec(0, 1_000, total=1.0, count=1, span=(100, 100)),
                rec(0, 1_000, total=2.0, count=1, span=(250, 250)),
            ],
            now=1_000,
        )
        assert emitted == [("s", 100, 550, {K.SUM: 3.0, K.COUNT: 2}, 2)]

    def test_spans_beyond_gap_split(self):
        assembler, emitted = assembler_for(self.query())
        assembler.consume(
            2_000,
            [
                rec(0, 1_000, total=1.0, count=1, span=(100, 100)),
                rec(1_000, 2_000, total=2.0, count=1, span=(1_500, 1_500)),
            ],
            now=2_000,
        )
        assert [(e[1], e[2]) for e in emitted] == [(100, 400), (1_500, 1_800)]

    def test_session_stays_open_until_gap_covered(self):
        assembler, emitted = assembler_for(self.query())
        assembler.consume(
            1_000, [rec(0, 1_000, total=1.0, count=1, span=(900, 900))], now=1_000
        )
        assert emitted == []  # gap not yet covered (900 + 300 > 1000)
        assembler.consume(2_000, [], now=2_000)
        assert emitted == [("s", 900, 1_200, {K.SUM: 1.0, K.COUNT: 1}, 1)]

    def test_missing_span_is_an_error(self):
        from repro.core.errors import ClusterError

        assembler, _ = assembler_for(self.query())
        with pytest.raises(ClusterError):
            assembler.consume(
                1_000, [rec(0, 1_000, total=1.0, count=1)], now=1_000
            )


class TestTimedDerivation:
    def test_derive_ops_from_timed(self):
        record = rec(0, 100, timed=[(10, 4.0), (20, 2.0)], count=2)
        derive_ops_from_timed(record, (K.SUM, K.COUNT, K.NON_DECOMPOSABLE_SORT))
        part = record.contexts[0]
        assert part.ops[K.SUM] == 6.0
        assert part.ops[K.COUNT] == 2
        assert part.ops[K.NON_DECOMPOSABLE_SORT] == [2.0, 4.0]
        assert part.span == (10, 20)

    def test_count_window_replay(self):
        assembler, emitted = assembler_for(
            Query.of(
                "c",
                WindowSpec.tumbling(3, measure=WindowMeasure.COUNT),
                AggFunction.SUM,
            )
        )
        record = rec(0, 1_000, timed=[(10, 1.0), (20, 2.0), (30, 4.0), (40, 8.0)],
                     count=4)
        assembler.consume(1_000, [record], now=1_000)
        assert [(e[1], e[2], e[4]) for e in emitted] == [(10, 30, 3)]
        assembler.finish(2_000)
        # The partial fourth-event window flushes at finish.
        assert emitted[-1][4] == 1
