"""Unit tests for coverage tracking and slice-record merging."""

from __future__ import annotations

import pytest

from repro.core.analyzer import analyze
from repro.core.errors import ClusterError
from repro.core.query import Query, WindowSpec
from repro.core.types import AggFunction, OperatorKind
from repro.cluster.merger import GroupMerger, group_has_sessions, merge_records
from repro.network.messages import ContextPartial, PartialBatchMessage, SliceRecord

K = OperatorKind


def group_for(*queries):
    return analyze(queries).groups[0]


def tumbling_group():
    return group_for(Query.of("q", WindowSpec.tumbling(100), AggFunction.AVERAGE))


def session_group():
    return group_for(
        Query.of("q", WindowSpec.tumbling(100), AggFunction.SUM),
        Query.of("s", WindowSpec.session(50), AggFunction.SUM),
    )


def record(start, end, total=1.0, count=1, ctx=0):
    return SliceRecord(
        start=start,
        end=end,
        contexts={ctx: ContextPartial(count=count, ops={K.SUM: total, K.COUNT: count})},
    )


def batch(sender, seq, covered, records):
    return PartialBatchMessage(
        sender=sender,
        group_id=0,
        first_slice_seq=seq,
        covered_to=covered,
        records=records,
    )


class TestMergeRecords:
    def test_same_interval_merges(self):
        merged = merge_records([record(0, 100, 2.0, 2), record(0, 100, 3.0, 1)])
        assert len(merged) == 1
        part = merged[0].contexts[0]
        assert part.ops[K.SUM] == 5.0
        assert part.count == 3

    def test_different_intervals_kept(self):
        merged = merge_records([record(0, 100), record(100, 200)])
        assert [(r.start, r.end) for r in merged] == [(0, 100), (100, 200)]

    def test_span_union(self):
        a = record(0, 100)
        a.contexts[0].span = (10, 20)
        b = record(0, 100)
        b.contexts[0].span = (50, 80)
        merged = merge_records([a, b])
        assert merged[0].contexts[0].span == (10, 80)

    def test_timed_concat_sorted(self):
        a = record(0, 100)
        a.contexts[0].timed = [(5, 1.0), (50, 2.0)]
        b = record(0, 100)
        b.contexts[0].timed = [(10, 3.0)]
        merged = merge_records([a, b])
        assert merged[0].contexts[0].timed == [(5, 1.0), (10, 3.0), (50, 2.0)]

    def test_userdef_eps_concatenated(self):
        a = record(0, 100)
        a.userdef_eps.append(("q", 42))
        merged = merge_records([a, record(0, 100)])
        assert merged[0].userdef_eps == [("q", 42)]

    def test_disjoint_contexts_combined(self):
        merged = merge_records([record(0, 100, ctx=0), record(0, 100, ctx=1)])
        assert set(merged[0].contexts) == {0, 1}


class TestGroupMerger:
    def test_coverage_is_minimum_over_children(self):
        merger = GroupMerger(tumbling_group(), ["a", "b"], origin=0)
        merger.on_batch(batch("a", 0, 200, [record(0, 100)]))
        assert merger.advance() is None  # b has not covered anything
        merger.on_batch(batch("b", 0, 100, [record(0, 100)]))
        covered, records = merger.advance()
        assert covered == 100
        assert len(records) == 1  # merged across children
        assert records[0].contexts[0].count == 2

    def test_records_beyond_coverage_stay_pending(self):
        merger = GroupMerger(tumbling_group(), ["a", "b"], origin=0)
        merger.on_batch(batch("a", 0, 200, [record(0, 100), record(100, 200)]))
        merger.on_batch(batch("b", 0, 100, [record(0, 100)]))
        covered, records = merger.advance()
        assert covered == 100
        assert [(r.start, r.end) for r in records] == [(0, 100)]
        merger.on_batch(batch("b", 1, 200, [record(100, 200)]))
        covered, records = merger.advance()
        assert covered == 200
        assert [(r.start, r.end) for r in records] == [(100, 200)]

    def test_duplicate_slices_dropped(self):
        """Sec 5.1.1: re-delivered slice ids are recognized and dropped."""
        merger = GroupMerger(tumbling_group(), ["a"], origin=0)
        merger.on_batch(batch("a", 0, 100, [record(0, 100, 1.0)]))
        merger.on_batch(batch("a", 0, 200, [record(0, 100, 1.0), record(100, 200)]))
        assert merger.duplicates_dropped == 1
        covered, records = merger.advance()
        assert covered == 200
        assert records[0].contexts[0].ops[K.SUM] == 1.0  # not double-counted

    def test_missing_slices_detected(self):
        merger = GroupMerger(tumbling_group(), ["a"], origin=0)
        merger.on_batch(batch("a", 0, 100, [record(0, 100)]))
        with pytest.raises(ClusterError):
            merger.on_batch(batch("a", 5, 200, [record(100, 200)]))

    def test_unknown_child_batch_dropped(self):
        """In-flight batches from removed nodes are dropped, not fatal."""
        merger = GroupMerger(tumbling_group(), ["a"], origin=0)
        merger.on_batch(batch("ghost", 0, 100, [record(0, 100)]))
        assert merger.stray_batches == 1
        assert merger.coverage() == 0

    def test_session_group_passes_through_unmerged(self):
        """Merging would fuse spans across children and hide gaps."""
        group = session_group()
        assert group_has_sessions(group)
        merger = GroupMerger(group, ["a", "b"], origin=0)
        merger.on_batch(batch("a", 0, 100, [record(0, 100)]))
        merger.on_batch(batch("b", 0, 100, [record(0, 100)]))
        covered, records = merger.advance()
        assert len(records) == 2  # one per child, unmerged

    def test_add_child_starts_at_progress(self):
        merger = GroupMerger(tumbling_group(), ["a"], origin=0)
        merger.on_batch(batch("a", 0, 100, [record(0, 100)]))
        merger.advance()
        merger.add_child("b")
        # New child must not stall previously-forwarded coverage.
        assert merger.coverage() == 100

    def test_remove_child_unblocks_coverage(self):
        merger = GroupMerger(tumbling_group(), ["a", "b"], origin=0)
        merger.on_batch(batch("a", 0, 100, [record(0, 100)]))
        assert merger.advance() is None
        merger.remove_child("b")
        covered, records = merger.advance()
        assert covered == 100
