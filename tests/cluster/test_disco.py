"""Tests for the Disco baseline cluster."""

from __future__ import annotations

import pytest

from repro.core.engine import AggregationEngine
from repro.core.errors import ClusterError
from repro.core.event import merge_streams
from repro.core.query import Query, WindowSpec
from repro.core.types import AggFunction
from repro.cluster import ClusterConfig, DesisCluster, DiscoCluster
from repro.network.topology import three_tier

from tests.cluster.test_desis_parity import TICK, make_streams


def run_disco(queries, streams, topology):
    cluster = DiscoCluster(
        queries, topology, config=ClusterConfig(tick_interval=TICK)
    )
    return cluster.run(streams)


def reference(queries, streams):
    merged = list(merge_streams(*streams.values()))
    engine = AggregationEngine(queries)
    engine.advance(0)
    for event in merged:
        engine.process(event)
    return engine.close(((merged[-1].time // TICK) + 1) * TICK)


def signature(sink):
    return sorted(
        (r.query_id, r.start, r.end, r.event_count, round(float(r.value), 9))
        for r in sink
    )


class TestCorrectness:
    def test_decomposable_parity(self):
        queries = [
            Query.of("avg", WindowSpec.tumbling(1_000), AggFunction.AVERAGE),
            Query.of("sum", WindowSpec.sliding(2_000, 500), AggFunction.SUM),
        ]
        streams = make_streams(3, 300)
        result = run_disco(queries, streams, three_tier(3, 1))
        assert signature(result.sink) == signature(reference(queries, streams))

    def test_holistic_parity(self):
        queries = [Query.of("med", WindowSpec.tumbling(1_500), AggFunction.MEDIAN)]
        streams = make_streams(2, 250)
        result = run_disco(queries, streams, three_tier(2, 1))
        assert signature(result.sink) == signature(reference(queries, streams))

    def test_unsupported_windows_rejected(self):
        with pytest.raises(ClusterError):
            DiscoCluster(
                [Query.of("s", WindowSpec.session(100), AggFunction.SUM)],
                three_tier(2, 1),
            )


class TestTrafficBehaviour:
    def test_string_messages_cost_more_than_desis(self):
        """Fig 11a/11b: Disco ships per-window strings, Desis per-slice bytes."""
        queries = [Query.of("avg", WindowSpec.tumbling(1_000), AggFunction.AVERAGE)]
        streams = make_streams(2, 400)
        disco = run_disco(queries, streams, three_tier(2, 1))
        desis = DesisCluster(
            queries, three_tier(2, 1), config=ClusterConfig(tick_interval=TICK)
        ).run(streams)
        assert disco.network.total_bytes > desis.network.total_bytes

    def test_per_window_traffic_grows_with_windows(self):
        """Fig 11d: Disco's traffic grows with concurrent windows; Desis'
        per-slice shipping stays flat."""
        streams = make_streams(2, 400)

        def disco_bytes(n_queries):
            queries = [
                Query.of(f"q{i}", WindowSpec.tumbling(1_000), AggFunction.AVERAGE)
                for i in range(n_queries)
            ]
            return run_disco(
                queries, dict(streams), three_tier(2, 1)
            ).network.data_bytes

        def desis_bytes(n_queries):
            queries = [
                Query.of(f"q{i}", WindowSpec.tumbling(1_000), AggFunction.AVERAGE)
                for i in range(n_queries)
            ]
            cluster = DesisCluster(
                queries, three_tier(2, 1), config=ClusterConfig(tick_interval=TICK)
            )
            return cluster.run(dict(streams)).network.data_bytes

        assert disco_bytes(8) > 4 * disco_bytes(1) * 0.9
        assert desis_bytes(8) < 1.5 * desis_bytes(1)
