"""Seeded chaos suite: fault injection must not change *what* Desis computes.

The reliable channel (`repro.network.simnet`) turns each lossy directed
link back into an in-order exactly-once stream, so any *recoverable*
:class:`~repro.network.simnet.FaultPlan` — drops, duplicates, reorders,
jitter, crashes short enough that nobody gets evicted — must yield
results byte-identical to the fault-free run, in the same order.  Only
``emitted_at`` (wall-clock of the simulated emission) may move.

Unrecoverable plans degrade *gracefully*: bounded result loss around the
outage, no spurious or duplicated windows, and a clean termination.

Fast representatives of every scenario run in tier-1; the heavier sweeps
carry ``@pytest.mark.chaos`` and are excluded by the default ``-m "not
chaos"`` (see ``pyproject.toml``).
"""

from __future__ import annotations

import os

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines import ScottyProcessor
from repro.cluster import CentralizedCluster, ClusterConfig, DesisCluster
from repro.core.query import Query, WindowSpec
from repro.core.types import AggFunction, WindowMeasure
from repro.network.simnet import CrashWindow, FaultPlan
from repro.network.topology import chain, star, three_tier

from tests.cluster.test_desis_parity import TICK, make_streams

NEVER = 10**9  # node_timeout that disables eviction for pure-link chaos

#: seed-sweep width, overridable from CI (``CHAOS_SEEDS=8`` in the weekly
#: chaos job) without editing the suite
CHAOS_SEEDS = int(os.environ.get("CHAOS_SEEDS", "3"))


def rows(result):
    """Exact result rows, order preserved; only ``emitted_at`` is free."""
    return [
        (r.query_id, r.start, r.end, r.event_count, r.value) for r in result.sink
    ]


def run_desis(queries, topo, streams, **cfg):
    cfg.setdefault("tick_interval", TICK)
    cluster = DesisCluster(queries, topo, config=ClusterConfig(**cfg))
    result = cluster.run({k: list(v) for k, v in streams.items()})
    return cluster, result


QUERY_SETS = {
    "tumbling": [Query.of("t", WindowSpec.tumbling(1_000), AggFunction.SUM)],
    "sliding": [Query.of("s", WindowSpec.sliding(1_500, 500), AggFunction.AVERAGE)],
    "session": [Query.of("g", WindowSpec.session(gap=400), AggFunction.MAX)],
    "count": [
        Query.of(
            "c",
            WindowSpec.tumbling(40, measure=WindowMeasure.COUNT),
            AggFunction.COUNT,
        )
    ],
    "mixed": [
        Query.of("t", WindowSpec.tumbling(1_000), AggFunction.SUM),
        Query.of("s", WindowSpec.sliding(2_000, 500), AggFunction.MIN),
        Query.of("g", WindowSpec.session(gap=300), AggFunction.COUNT),
    ],
}


class TestZeroOverheadDefault:
    """``fault_plan=None`` must be indistinguishable from the seed repo."""

    def test_no_plan_keeps_reliability_counters_zero(self):
        streams = make_streams(3, 300)
        cluster, result = run_desis(QUERY_SETS["mixed"], three_tier(3, 1), streams)
        net = result.network
        assert net.drops == 0
        assert net.duplicates == 0
        assert net.retransmits == 0
        assert net.retransmit_bytes == 0
        assert net.retransmit_exhausted == 0
        assert net.acks == 0
        assert net.ack_bytes == 0
        assert net.dedup_dropped == 0
        assert net.goodput_data_bytes == net.data_bytes
        # The recovery subsystem (DESIGN.md §8) is equally invisible:
        # no store, no retention, no checkpoint/recovery/reroute activity.
        assert cluster.checkpoint_store is None
        assert result.checkpoints == 0
        assert result.recoveries == 0
        assert result.reroutes == 0
        assert result.duplicates_suppressed == 0
        for node in (*cluster.locals.values(), *cluster.intermediates.values()):
            assert node._retain is False
            assert node._retained == []

    def test_zero_rate_plan_matches_no_plan_results(self):
        streams = make_streams(3, 300)
        _, none = run_desis(QUERY_SETS["mixed"], three_tier(3, 1), streams)
        _, zero = run_desis(
            QUERY_SETS["mixed"],
            three_tier(3, 1),
            streams,
            fault_plan=FaultPlan(seed=0),
            node_timeout=NEVER,
        )
        assert rows(zero) == rows(none)

    def test_no_plan_wire_is_strictly_cheaper(self):
        # Enabling reliability adds envelopes + acks even with zero fault
        # rates; the default path must not pay any of that.
        streams = make_streams(3, 300)
        _, none = run_desis(QUERY_SETS["tumbling"], three_tier(3, 1), streams)
        _, zero = run_desis(
            QUERY_SETS["tumbling"],
            three_tier(3, 1),
            streams,
            fault_plan=FaultPlan(seed=0),
            node_timeout=NEVER,
        )
        assert none.network.total_bytes < zero.network.total_bytes


class TestRecoverableParity:
    """Lossy-but-recoverable links: byte-identical results, same order."""

    PLAN = dict(drop_rate=0.05, duplicate_rate=0.03, reorder_rate=0.1, jitter_ms=5.0)

    @pytest.mark.parametrize("kind", sorted(QUERY_SETS))
    def test_parity_per_window_kind(self, kind):
        queries = QUERY_SETS[kind]
        streams = make_streams(3, 300, gap_every=7)
        _, baseline = run_desis(queries, three_tier(3, 1), streams)
        _, faulty = run_desis(
            queries,
            three_tier(3, 1),
            streams,
            fault_plan=FaultPlan(seed=1, **self.PLAN),
            node_timeout=NEVER,
        )
        assert rows(faulty) == rows(baseline)
        assert faulty.network.retransmits > 0 or faulty.network.drops == 0

    @pytest.mark.parametrize("seed", range(CHAOS_SEEDS))
    def test_parity_across_seeds(self, seed):
        streams = make_streams(3, 300, keys=("a", "b"))
        _, baseline = run_desis(QUERY_SETS["mixed"], three_tier(3, 1), streams)
        _, faulty = run_desis(
            QUERY_SETS["mixed"],
            three_tier(3, 1),
            streams,
            fault_plan=FaultPlan(seed=seed, **self.PLAN),
            node_timeout=NEVER,
        )
        assert rows(faulty) == rows(baseline)

    @pytest.mark.parametrize(
        "topo", [star(4), chain(3, 2), three_tier(2, 2)], ids=["star", "chain", "tree"]
    )
    def test_parity_across_topologies(self, topo):
        streams = make_streams(len(topo.locals_()), 240)
        _, baseline = run_desis(QUERY_SETS["tumbling"], topo, streams)
        _, faulty = run_desis(
            QUERY_SETS["tumbling"],
            topo,
            streams,
            fault_plan=FaultPlan(seed=4, **self.PLAN),
            node_timeout=NEVER,
        )
        assert rows(faulty) == rows(baseline)

    def test_same_seed_is_deterministic(self):
        streams = make_streams(3, 300)
        plan = FaultPlan(seed=9, **self.PLAN)
        _, first = run_desis(
            QUERY_SETS["mixed"], three_tier(3, 1), streams,
            fault_plan=plan, node_timeout=NEVER,
        )
        _, second = run_desis(
            QUERY_SETS["mixed"], three_tier(3, 1), streams,
            fault_plan=plan, node_timeout=NEVER,
        )
        assert rows(first) == rows(second)
        assert first.network.drops == second.network.drops
        assert first.network.retransmits == second.network.retransmits
        assert first.network.dedup_dropped == second.network.dedup_dropped


class TestTracedRunParity:
    """``ClusterConfig.trace=True`` must not change what Desis computes —
    with or without a fault plan — it only fills the run's recorder."""

    PLAN = FaultPlan(seed=6, drop_rate=0.05, duplicate_rate=0.03, jitter_ms=4.0)

    def test_traced_rows_identical_fault_free(self):
        streams = make_streams(3, 300)
        _, plain = run_desis(QUERY_SETS["mixed"], three_tier(3, 1), streams)
        _, traced = run_desis(
            QUERY_SETS["mixed"], three_tier(3, 1), streams, trace=True
        )
        assert rows(traced) == rows(plain)
        assert len(traced.recorder) > 0
        assert len(plain.recorder) == 0

    def test_traced_rows_identical_under_chaos(self):
        streams = make_streams(3, 300)
        kw = dict(fault_plan=self.PLAN, node_timeout=NEVER)
        _, plain = run_desis(QUERY_SETS["mixed"], three_tier(3, 1), streams, **kw)
        _, traced = run_desis(
            QUERY_SETS["mixed"], three_tier(3, 1), streams, trace=True, **kw
        )
        assert rows(traced) == rows(plain)
        assert traced.network.retransmits == plain.network.retransmits
        traced_retx = sum(1 for _ in traced.recorder.events("net.retransmit"))
        assert traced_retx == traced.network.retransmits


class _ParityOracle:
    """Fault-free baselines, computed once per (window kind, mode) pair."""

    def __init__(self):
        self.cache = {}
        self.streams = make_streams(3, 220, gap_every=9)

    def baseline(self, kind, punctuation_mode):
        key = (kind, punctuation_mode)
        if key not in self.cache:
            _, result = run_desis(
                QUERY_SETS[kind],
                three_tier(3, 1),
                self.streams,
                punctuation_mode=punctuation_mode,
            )
            self.cache[key] = rows(result)
        return self.cache[key]


_ORACLE = _ParityOracle()

_chaos_params = dict(
    seed=st.integers(min_value=0, max_value=2**31 - 1),
    kind=st.sampled_from(sorted(QUERY_SETS)),
    punctuation_mode=st.sampled_from(["heap", "scan"]),
    drop_rate=st.floats(min_value=0.0, max_value=0.15),
    duplicate_rate=st.floats(min_value=0.0, max_value=0.1),
    reorder_rate=st.floats(min_value=0.0, max_value=0.2),
    jitter_ms=st.floats(min_value=0.0, max_value=8.0),
)


def _assert_chaos_parity(
    seed, kind, punctuation_mode, drop_rate, duplicate_rate, reorder_rate, jitter_ms
):
    plan = FaultPlan(
        seed=seed,
        drop_rate=drop_rate,
        duplicate_rate=duplicate_rate,
        reorder_rate=reorder_rate,
        jitter_ms=jitter_ms,
    )
    _, faulty = run_desis(
        QUERY_SETS[kind],
        three_tier(3, 1),
        _ORACLE.streams,
        fault_plan=plan,
        node_timeout=NEVER,
        punctuation_mode=punctuation_mode,
    )
    assert rows(faulty) == _ORACLE.baseline(kind, punctuation_mode)


class TestPropertyChaosParity:
    """Hypothesis sweep over seeds, fault rates, window kinds and modes."""

    @settings(max_examples=10, deadline=None)
    @given(**_chaos_params)
    def test_parity_holds_for_random_recoverable_plans(self, **kw):
        _assert_chaos_parity(**kw)

    @pytest.mark.chaos
    @settings(max_examples=100, deadline=None)
    @given(**_chaos_params)
    def test_parity_sweep_heavy(self, **kw):
        _assert_chaos_parity(**kw)


class TestCrashRecovery:
    """Crashes shorter than the eviction timeout replay from the buffer."""

    def test_local_crash_and_restart_is_exact(self):
        streams = make_streams(3, 3000)
        _, baseline = run_desis(QUERY_SETS["mixed"], three_tier(3, 1), streams)
        plan = FaultPlan(seed=2, crashes=(CrashWindow("local-0", 3_000, 6_000),))
        _, faulty = run_desis(
            QUERY_SETS["mixed"],
            three_tier(3, 1),
            streams,
            fault_plan=plan,
            node_timeout=NEVER,
        )
        assert rows(faulty) == rows(baseline)
        assert faulty.network.retransmits > 0

    def test_intermediate_crash_and_restart_is_exact(self):
        streams = make_streams(3, 800)
        _, baseline = run_desis(QUERY_SETS["tumbling"], three_tier(3, 1), streams)
        plan = FaultPlan(seed=2, crashes=(CrashWindow("mid-0", 2_000, 4_500),))
        _, faulty = run_desis(
            QUERY_SETS["tumbling"],
            three_tier(3, 1),
            streams,
            fault_plan=plan,
            node_timeout=NEVER,
        )
        assert rows(faulty) == rows(baseline)
        assert faulty.network.drops > 0

    @pytest.mark.chaos
    def test_crash_plus_link_chaos_is_exact(self):
        streams = make_streams(3, 3000)
        _, baseline = run_desis(QUERY_SETS["mixed"], three_tier(3, 1), streams)
        plan = FaultPlan(
            seed=7,
            drop_rate=0.05,
            duplicate_rate=0.03,
            reorder_rate=0.1,
            jitter_ms=5.0,
            crashes=(CrashWindow("local-1", 4_000, 7_000),),
        )
        _, faulty = run_desis(
            QUERY_SETS["mixed"],
            three_tier(3, 1),
            streams,
            fault_plan=plan,
            node_timeout=NEVER,
        )
        assert rows(faulty) == rows(baseline)


class TestSoftEvictionRejoin:
    """Outages past the timeout: evict, rejoin via heartbeat, resync."""

    CRASH = CrashWindow("local-0", 2_000, 16_000)
    CFG = dict(node_timeout=4_000, heartbeat_interval=2_000)

    def _run(self):
        streams = make_streams(3, 3000)
        _, baseline = run_desis(
            QUERY_SETS["tumbling"], three_tier(3, 1), streams, **self.CFG
        )
        cluster, faulty = run_desis(
            QUERY_SETS["tumbling"],
            three_tier(3, 1),
            streams,
            fault_plan=FaultPlan(seed=3, crashes=(self.CRASH,)),
            **self.CFG,
        )
        return cluster, rows(baseline), rows(faulty)

    def test_eviction_and_rejoin_counters(self):
        cluster, _, _ = self._run()
        liveness = cluster.intermediates["mid-0"].liveness
        assert liveness is not None
        assert liveness.soft_evictions == 1
        assert liveness.rejoins == 1
        assert not liveness.evicted

    def test_degradation_is_bounded_to_the_outage(self):
        _, baseline, faulty = self._run()
        # No spurious windows: everything emitted exists in the baseline
        # with at most the degraded (smaller) event count.
        base_by_window = {(q, s, e): n for q, s, e, n, _ in baseline}
        for q, s, e, n, _ in faulty:
            assert (q, s, e) in base_by_window
            assert n <= base_by_window[(q, s, e)]
        assert len(faulty) <= len(baseline)

    def test_windows_outside_the_outage_are_exact(self):
        _, baseline, faulty = self._run()
        # Exact before the crash, and after the rejoin settles (one
        # heartbeat to readmit plus two ticks to flush the resync).
        settle = self.CRASH.end + self.CFG["heartbeat_interval"] + 2 * TICK
        before = lambda r: r[2] < self.CRASH.start
        after = lambda r: r[1] >= settle
        assert [r for r in faulty if before(r)] == [r for r in baseline if before(r)]
        assert [r for r in faulty if after(r)] == [r for r in baseline if after(r)]


class TestUnrecoverable:
    """A dead link past ``max_retries`` degrades, never hangs or lies."""

    def test_blackout_terminates_and_reports_exhaustion(self):
        streams = make_streams(3, 300)
        plan = FaultPlan(seed=0, drop_rate=1.0)
        _, result = run_desis(
            QUERY_SETS["tumbling"],
            three_tier(3, 1),
            streams,
            fault_plan=plan,
            node_timeout=NEVER,
            retransmit_timeout=50.0,
            max_retries=2,
        )
        assert rows(result) == []
        assert result.network.retransmit_exhausted > 0


class TestAccountingRegression:
    """Retransmits bill data, acks bill control — pinned by identities."""

    QUERIES = QUERY_SETS["tumbling"]

    def _nets(self):
        streams = make_streams(3, 800)
        topo = three_tier(3, 1)
        _, none = run_desis(self.QUERIES, topo, streams)
        _, zero = run_desis(
            self.QUERIES, topo, streams,
            fault_plan=FaultPlan(seed=0), node_timeout=NEVER,
        )
        _, drop = run_desis(
            self.QUERIES, topo, streams,
            fault_plan=FaultPlan(seed=3, drop_rate=0.08), node_timeout=NEVER,
        )
        _, dupdrop = run_desis(
            self.QUERIES, topo, streams,
            fault_plan=FaultPlan(seed=3, drop_rate=0.06, duplicate_rate=0.05),
            node_timeout=NEVER,
        )
        return none.network, zero.network, drop.network, dupdrop.network

    def test_data_bytes_identity_under_retransmission(self):
        # Every extra data byte on a lossy link is a retransmission:
        # data_bytes(drop plan) == data_bytes(zero plan) + retransmit_bytes.
        _, zero, drop, _ = self._nets()
        assert drop.retransmit_bytes > 0
        assert drop.data_bytes == zero.data_bytes + drop.retransmit_bytes

    def test_acks_bill_the_control_bucket(self):
        # Every extra control byte of the reliable channel is an ack:
        # control_bytes(zero plan) == control_bytes(no plan) + ack_bytes.
        none, zero, _, _ = self._nets()
        assert zero.ack_bytes > 0
        assert zero.control_bytes == none.control_bytes + zero.ack_bytes

    def test_goodput_recovers_the_fault_free_data_volume(self):
        # goodput = data - retransmits - network duplicates must land
        # exactly on the fault-free data volume.
        _, zero, _, dupdrop = self._nets()
        assert dupdrop.duplicate_data_bytes > 0
        assert dupdrop.goodput_data_bytes == zero.data_bytes


class TestCentralizedChaosParity:
    """The reliable channel is protocol-agnostic: centralized shipping
    of raw event batches survives the same chaos bit-exactly."""

    def test_centralized_scotty_parity_under_chaos(self):
        streams = make_streams(3, 800)
        topo = three_tier(3, 1)
        queries = QUERY_SETS["tumbling"]

        def central(plan):
            cfg = ClusterConfig(
                tick_interval=TICK, fault_plan=plan, node_timeout=NEVER
            )
            cluster = CentralizedCluster(queries, topo, ScottyProcessor, config=cfg)
            return cluster.run({k: list(v) for k, v in streams.items()})

        baseline = central(None)
        faulty = central(
            FaultPlan(
                seed=5,
                drop_rate=0.08,
                duplicate_rate=0.04,
                reorder_rate=0.1,
                jitter_ms=4.0,
            )
        )
        assert rows(faulty) == rows(baseline)
        assert faulty.network.retransmits > 0


def _expected_completeness(row):
    """Union-sweep the shed coverage clipped to the window (DESIGN.md §12)."""
    span = max(row.end - row.start, 1)
    intervals = sorted(
        (max(lo, row.start), min(hi, row.end)) for _, lo, hi in row.shed_slices
    )
    union = 0
    cursor = row.start
    for lo, hi in intervals:
        if hi > cursor:
            union += hi - max(lo, cursor)
            cursor = hi
    return max(1.0 - union / span, 0.0)


def _assert_shed_accounting(result):
    """Every emitted window's completeness exactly accounts its shed
    coverage: no shed intervals means 1.0, otherwise the clipped union."""
    for row in result.sink:
        if not row.shed_slices:
            assert row.completeness == 1.0
        else:
            assert abs(row.completeness - _expected_completeness(row)) < 1e-12


#: heavier than the parity streams on purpose: together with the slow
#: bandwidth-limited links below this load reliably exhausts tight credit
#: windows, so the bounded runs exercise staging and shedding for real
_OVERLOAD_STREAMS = make_streams(2, 1500)

#: a 20 ms / 0.2 B-per-ms link: slow enough that a tight credit window
#: (1500 B / 6 frames) stalls senders and fills the bounded staging area
_SLOW_LINK = dict(latency_ms=20.0, bandwidth_bytes_per_ms=0.2)


def _run_overload(staging_limit, *, seed=7, drop_rate=0.0, **extra):
    return run_desis(
        QUERY_SETS["tumbling"],
        three_tier(2, 2),
        _OVERLOAD_STREAMS,
        fault_plan=FaultPlan(seed=seed, drop_rate=drop_rate),
        node_timeout=NEVER,
        channel_credit_bytes=1_500,
        channel_credit_frames=6,
        staging_limit=staging_limit,
        **_SLOW_LINK,
        **extra,
    )


_overload_params = dict(
    seed=st.integers(min_value=0, max_value=2**31 - 1),
    staging_limit=st.integers(min_value=4, max_value=12),
    drop_rate=st.floats(min_value=0.0, max_value=0.08),
)


def _assert_bounded_occupancy(seed, staging_limit, drop_rate):
    _, result = _run_overload(staging_limit, seed=seed, drop_rate=drop_rate)
    assert result.peak_staging <= staging_limit
    assert rows(result)  # degraded or not, the pipeline keeps emitting
    _assert_shed_accounting(result)


class TestOverloadInvariants:
    """Backpressure and bounded buffering (DESIGN.md §12).

    Two invariants across seeded fault plans: staging occupancy never
    exceeds its cap no matter the seed, and when the caps are generous
    enough that nothing is shed the bounded run is byte-identical to the
    unbounded one (overload control may *delay*, never *change*, results
    it did not explicitly shed).
    """

    @settings(max_examples=6, deadline=None)
    @given(**_overload_params)
    def test_staging_occupancy_never_exceeds_cap(self, **kw):
        _assert_bounded_occupancy(**kw)

    @pytest.mark.chaos
    @settings(max_examples=40, deadline=None)
    @given(**_overload_params)
    def test_staging_occupancy_sweep_heavy(self, **kw):
        _assert_bounded_occupancy(**kw)

    @settings(max_examples=6, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=2**31 - 1),
        kind=st.sampled_from(["tumbling", "sliding", "session"]),
        drop_rate=st.floats(min_value=0.0, max_value=0.1),
    )
    def test_zero_shed_is_byte_identical(self, seed, kind, drop_rate):
        plan = FaultPlan(seed=seed, drop_rate=drop_rate)
        _, unbounded = run_desis(
            QUERY_SETS[kind],
            three_tier(3, 1),
            _ORACLE.streams,
            fault_plan=plan,
            node_timeout=NEVER,
        )
        _, bounded = run_desis(
            QUERY_SETS[kind],
            three_tier(3, 1),
            _ORACLE.streams,
            fault_plan=plan,
            node_timeout=NEVER,
            channel_credit_bytes=64_000,
            channel_credit_frames=256,
            staging_limit=4_096,
            retention_limit=4_096,
        )
        assert bounded.slices_shed == 0
        assert bounded.degraded_windows == 0
        assert rows(bounded) == rows(unbounded)

    def test_tight_caps_shed_and_account_exactly(self):
        # The canonical overload recipe (also bench_overload.py): tight
        # caps on the slow link must actually shed, emit degraded windows,
        # and account every shed interval in the completeness figure.
        _, result = _run_overload(8)
        assert result.network.credit_stalls > 0
        assert result.slices_shed > 0
        assert result.degraded_windows > 0
        degraded = [r for r in result.sink if r.completeness < 1.0]
        assert len(degraded) == result.degraded_windows
        assert all(r.shed_slices for r in degraded)
        _assert_shed_accounting(result)
