"""Tests for the experiment harness and reporting helpers."""

from __future__ import annotations

import pytest

from repro.baselines import CENTRALIZED_SYSTEMS, DesisProcessor
from repro.core.types import AggFunction
from repro.harness import (
    fmt_ms,
    fmt_rate,
    print_table,
    quantile_queries,
    run_processor,
    run_systems,
    tumbling_queries,
)

from tests.conftest import make_stream


class TestQueryBuilders:
    def test_tumbling_queries_spread_lengths(self):
        queries = tumbling_queries(10)
        lengths = [q.window.length for q in queries]
        assert lengths[0] == 1_000
        assert lengths[-1] == 10_000
        assert lengths == sorted(lengths)

    def test_single_query(self):
        (query,) = tumbling_queries(1)
        assert query.window.length == 1_000

    def test_quantile_queries_are_distinct(self):
        queries = quantile_queries(100)
        assert len({q.function.quantile for q in queries}) == 100


class TestRunners:
    def test_run_processor_collects_stats(self):
        stats = run_processor(
            DesisProcessor, tumbling_queries(3), make_stream(400)
        )
        assert stats.name == "Desis"
        assert stats.results > 0
        assert stats.calculations > 0
        assert stats.events_per_second > 0
        assert stats.latency is None

    def test_run_processor_with_latency(self):
        stats = run_processor(
            DesisProcessor,
            tumbling_queries(2),
            make_stream(600),
            measure_latency=True,
            latency_sample_every=50,
        )
        assert stats.latency is not None
        assert stats.latency.count > 0

    def test_run_systems_covers_all(self):
        rows = run_systems(
            CENTRALIZED_SYSTEMS, tumbling_queries(2), make_stream(300)
        )
        assert {r.name for r in rows} == set(CENTRALIZED_SYSTEMS)
        # All systems agree on results produced.
        assert len({r.results for r in rows}) == 1


class TestReporting:
    def test_fmt_rate(self):
        assert fmt_rate(2_500_000) == "2.50 M ev/s"
        assert fmt_rate(2_500) == "2.5 K ev/s"
        assert fmt_rate(25) == "25 ev/s"

    def test_fmt_ms(self):
        assert fmt_ms(0.0123) == "12.300 ms"

    def test_print_table(self, capsys):
        print_table("Fig X", ["system", "rate"], [["Desis", "1 M"], ["Scotty", "2 K"]])
        out = capsys.readouterr().out
        assert "Fig X" in out
        assert "Desis" in out and "Scotty" in out
