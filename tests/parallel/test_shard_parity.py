"""Shard-invariance parity: the sharded backend reproduces the engine.

The contract (DESIGN.md §13): for any fixed-time-window workload,
``ShardedEngine`` emits exactly the windows the in-process
``AggregationEngine`` would — byte-identical ``(query_id, start, end,
event_count, emitted_at)`` always; byte-identical values for operator
kinds whose merges are exact (count, extrema, sorted order statistics);
within 1e-9 relative for float folds, because the reduce recombines
per-shard partials in shard order rather than event order.  ``shards=1``
is byte-identical outright, and the same seed always yields the same
bytes.

The small cases here run in tier-1; the wide sweep is ``-m parallel``
(the weekly job).
"""

from __future__ import annotations

import pytest

from repro.core.config import EngineConfig
from repro.core.engine import AggregationEngine
from repro.core.errors import EngineError, OutOfOrderError
from repro.core.event import Event
from repro.core.query import Query, WindowSpec
from repro.core.types import AggFunction, WindowMeasure
from repro.datagen import DataGenerator, DataGeneratorConfig
from repro.interface import DesisSession
from repro.obs import TraceRecorder
from repro.parallel import ShardedEngine, shard_of

REL_TOL = 1e-9

#: float folds recombine across shards -> tolerance; everything else exact
FLOAT_FOLDS = {
    AggFunction.SUM,
    AggFunction.AVERAGE,
    AggFunction.PRODUCT,
    AggFunction.GEOMETRIC_MEAN,
    AggFunction.VARIANCE,
    AggFunction.STDDEV,
}


def stream(n=4_000, *, keys=6, rate=20_000.0, seed=7):
    config = DataGeneratorConfig(
        keys=tuple(f"k{i}" for i in range(keys)), rate=rate
    )
    return list(DataGenerator(config, seed=seed).events(n))


def queries_for(fn: AggFunction, *, quantile=None) -> list[Query]:
    return [
        Query.of("tum", WindowSpec.tumbling(500), fn, quantile=quantile),
        Query.of("sli", WindowSpec.sliding(800, 200), fn, quantile=quantile),
    ]


def rows_of(sink):
    rows = [
        (r.query_id, r.start, r.end, r.event_count, r.emitted_at, r.value)
        for r in sink.results
    ]
    rows.sort(key=lambda row: row[:5])
    return rows


def run_inline(queries, events):
    engine = AggregationEngine(queries)
    engine.process_batch(events)
    return rows_of(engine.close()), engine.stats


def run_sharded(queries, events, shards, **config):
    engine = ShardedEngine(
        queries, config=EngineConfig(shards=shards, **config)
    )
    engine.process_batch(events)
    sink = engine.close()
    return rows_of(sink), engine


def assert_rows_match(reference, rows, *, exact):
    assert len(reference) == len(rows)
    for ref, got in zip(reference, rows):
        assert ref[:5] == got[:5]
        rv, gv = ref[5], got[5]
        if exact or not isinstance(rv, float):
            assert rv == gv, (ref[:3], rv, gv)
        else:
            bound = REL_TOL * max(abs(rv), abs(gv), 1e-300)
            assert abs(gv - rv) <= bound, (ref[:3], rv, gv)


class TestParity:
    def test_shards_1_is_byte_identical_including_emitted_at(self):
        events = stream()
        queries = queries_for(AggFunction.AVERAGE)
        reference, ref_stats = run_inline(queries, events)
        rows, engine = run_sharded(queries, events, 1)
        assert rows == reference  # values bit-for-bit, emitted_at included
        assert engine.stats.events == ref_stats.events

    @pytest.mark.parametrize(
        "fn", [AggFunction.COUNT, AggFunction.MIN, AggFunction.MAX,
               AggFunction.MEDIAN]
    )
    def test_exact_kinds_are_byte_identical_at_4_shards(self, fn):
        events = stream()
        queries = queries_for(fn)
        reference, _ = run_inline(queries, events)
        rows, _ = run_sharded(queries, events, 4)
        assert_rows_match(reference, rows, exact=True)

    @pytest.mark.parametrize(
        "fn", [AggFunction.AVERAGE, AggFunction.SUM, AggFunction.VARIANCE]
    )
    def test_float_folds_stay_within_1e9_at_4_shards(self, fn):
        events = stream()
        queries = queries_for(fn)
        reference, _ = run_inline(queries, events)
        rows, _ = run_sharded(queries, events, 4)
        assert_rows_match(reference, rows, exact=False)

    def test_quantile_is_exact_across_shards(self):
        events = stream()
        queries = queries_for(AggFunction.QUANTILE, quantile=0.9)
        reference, _ = run_inline(queries, events)
        rows, _ = run_sharded(queries, events, 3)
        assert_rows_match(reference, rows, exact=True)

    def test_same_seed_same_bytes(self):
        queries = queries_for(AggFunction.AVERAGE)
        first, _ = run_sharded(queries, stream(), 4)
        second, _ = run_sharded(queries, stream(), 4)
        assert repr(first) == repr(second)

    def test_per_shard_events_partition_the_stream(self):
        events = stream()
        queries = queries_for(AggFunction.COUNT)
        _, engine = run_sharded(queries, events, 4)
        ss = engine.shard_stats
        assert sum(ss.events) == len(events)
        expected = [0, 0, 0, 0]
        for event in events:
            expected[shard_of(event.key, 4)] += 1
        assert ss.events == expected
        assert engine.stats.events == len(events)


class TestRestrictions:
    def test_session_windows_are_rejected(self):
        queries = [Query.of("s", WindowSpec.session(300), AggFunction.COUNT)]
        with pytest.raises(EngineError, match="fixed"):
            ShardedEngine(queries, config=EngineConfig(shards=2))

    def test_count_measure_windows_are_rejected(self):
        queries = [
            Query.of(
                "c",
                WindowSpec.tumbling(10, measure=WindowMeasure.COUNT),
                AggFunction.COUNT,
            )
        ]
        with pytest.raises(EngineError, match="fixed"):
            ShardedEngine(queries, config=EngineConfig(shards=2))

    def test_out_of_order_events_raise_in_the_parent(self):
        queries = queries_for(AggFunction.COUNT)
        engine = ShardedEngine(queries, config=EngineConfig(shards=2))
        engine.process(Event(100, "k0", 1.0))
        try:
            with pytest.raises(OutOfOrderError):
                engine.process(Event(50, "k1", 1.0))
        finally:
            engine.close()

    def test_trace_recorder_with_shards_is_rejected(self):
        with pytest.raises(EngineError, match="tracing"):
            DesisSession(
                config=EngineConfig(shards=2), recorder=TraceRecorder()
            )

    def test_submit_on_running_sharded_session_is_rejected(self):
        session = DesisSession(shards=2)
        session.submit("SELECT COUNT(value) FROM stream WINDOW TUMBLING 1s")
        session.process(Event(10, "k0", 1.0))
        try:
            with pytest.raises(EngineError):
                session.submit(
                    "SELECT AVG(value) FROM stream WINDOW TUMBLING 2s"
                )
        finally:
            session.close()


class TestSessionSurface:
    def test_session_shard_stats_and_results(self):
        session = DesisSession(shards=3)
        session.submit("SELECT AVG(value) FROM stream WINDOW TUMBLING 500ms")
        session.process_many(stream(2_000))
        results = session.close()
        assert results
        ss = session.shard_stats
        assert ss is not None and ss.shards == 3
        assert sum(ss.events) == 2_000
        assert session.stats.results == len(results)

    def test_session_shards_match_inline_session(self):
        text = "SELECT MAX(value) FROM stream WINDOW SLIDING 1s EVERY 250ms"
        inline = DesisSession()
        inline.submit(text)
        inline.process_many(stream(2_000))
        sharded = DesisSession(shards=2)
        sharded.submit(text)
        sharded.process_many(stream(2_000))
        assert rows_of(inline.close()) == rows_of(sharded.close())


@pytest.mark.parallel
class TestWideSweep:
    """The full function × shard-count sweep (weekly job)."""

    @pytest.mark.parametrize("shards", [2, 3, 4, 6])
    @pytest.mark.parametrize("fn", list(AggFunction))
    def test_every_function_every_width(self, fn, shards):
        quantile = 0.25 if fn is AggFunction.QUANTILE else None
        lo, hi = (0.5, 1.5) if fn in (
            AggFunction.PRODUCT, AggFunction.GEOMETRIC_MEAN
        ) else (0.0, 100.0)
        config = DataGeneratorConfig(
            keys=tuple(f"k{i}" for i in range(9)), rate=20_000.0,
            value_lo=lo, value_hi=hi,
        )
        events = list(DataGenerator(config, seed=11).events(8_000))
        queries = queries_for(fn, quantile=quantile)
        reference, _ = run_inline(queries, events)
        rows, _ = run_sharded(queries, events, shards)
        assert_rows_match(reference, rows, exact=fn not in FLOAT_FOLDS)
