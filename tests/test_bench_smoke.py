"""Tiny-scale run of the hot-path micro-benchmark.

Keeps CI honest about the batched ingestion fast path: the benchmark
itself asserts result/stats parity between the per-event and batched
replays, so breaking either path (or their equivalence) fails here long
before anyone reads ``BENCH_hot_path.json``.
"""

from __future__ import annotations

import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "benchmarks"))

import bench_faults  # noqa: E402
import bench_hot_path  # noqa: E402
import bench_overload  # noqa: E402
import bench_parallel  # noqa: E402
import bench_recovery  # noqa: E402
import bench_sliding_overlap  # noqa: E402


def test_bench_hot_path_tiny_scale():
    report = bench_hot_path.run(2_000, repeats=1)
    assert report["events"] == 2_000
    workloads = report["workloads"]
    assert set(workloads) == {"single_query", "100_queries"}
    for row in workloads.values():
        assert row["per_event_events_per_s"] > 0
        assert row["batched_events_per_s"] > 0
        # No speed assertion at this scale — parity is checked inside
        # ``run`` and is what this smoke test is really for.


def test_bench_hot_path_report_shape():
    row_keys = {
        "queries",
        "per_event_s",
        "batched_s",
        "per_event_events_per_s",
        "batched_events_per_s",
        "speedup",
    }
    report = bench_hot_path.run(1_000, repeats=1)
    for row in report["workloads"].values():
        assert set(row) == row_keys


def test_bench_faults_tiny_scale():
    # Parity against the fault-free run is asserted inside ``run`` for
    # every drop rate; this exercises it plus the report shape.
    report = bench_faults.run(3_000)
    assert set(report["rates"]) == {"0%", "1%", "5%"}
    zero = report["rates"]["0%"]
    assert zero["retransmits"] == 0
    assert zero["drops"] == 0
    for row in report["rates"].values():
        assert row["events_per_s"] > 0
        assert row["results"] == zero["results"]
        assert row["total_bytes"] >= zero["total_bytes"]


def test_bench_sliding_overlap_tiny_scale():
    # Exact-vs-incremental window parity is asserted inside ``run`` for
    # every overlap, as is the tumbling both-modes-identical merge-op
    # guard; the >= 5x reduction bar only applies at full scale.
    report = bench_sliding_overlap.run(2_000, repeats=1)
    assert report["events"] == 2_000
    assert set(report["overlaps"]) == {"1", "8", "64"}
    tumbling = report["overlaps"]["1"]
    assert tumbling["exact"]["merge_ops"] == tumbling["incremental"]["merge_ops"]
    for overlap, row in report["overlaps"].items():
        assert set(row) == {
            "exact", "incremental", "merge_op_reduction",
            "windows_per_s_speedup",
        }
        for mode in ("exact", "incremental"):
            assert row[mode]["windows_per_s"] > 0
            assert row[mode]["windows_closed"] > 0
        if overlap != "1":
            assert row["merge_op_reduction"] >= 1.0


def test_bench_overload_quick_scale():
    # Shed accounting (completeness recomputed from shed_slices), the
    # staging cap, and the no-shed unbounded baseline are all asserted
    # inside ``run``; this pins the report shape on top.
    report = bench_overload.run(bench_overload.QUICK_EVENTS)
    assert report["caps"]["staging_limit"] == bench_overload.STAGING_LIMIT
    assert len(report["scales"]) == 2
    for row in report["scales"].values():
        assert set(row) == {"unbounded", "bounded"}
        unbounded, bounded = row["unbounded"], row["bounded"]
        assert unbounded["slices_shed"] == 0
        assert unbounded["degraded_windows"] == 0
        assert unbounded["min_completeness"] == 1.0
        assert bounded["peak_staging"] <= bench_overload.STAGING_LIMIT
        assert bounded["peak_unacked_bytes"] <= unbounded["peak_unacked_bytes"]
        for mode in ("unbounded", "bounded"):
            assert row[mode]["results"] > 0
            assert row[mode]["wall_s"] > 0


def test_bench_parallel_tiny_scale():
    # Window parity against the in-process reference is asserted inside
    # ``run`` for every shard count (byte-identical at shards=1, 1e-9
    # relative beyond); this pins the report shape on top.  The 2x
    # modeled-speedup bar only applies at full scale.
    report = bench_parallel.run(2_000, n_queries=10, shard_counts=(1, 2))
    assert report["events"] == 2_000
    assert set(report["shards"]) == {"1", "2"}
    row_keys = {
        "wall_s", "wall_events_per_s", "parent_s", "busiest_worker_s",
        "reduce_s", "modeled_events_per_s", "modeled_speedup", "results",
        "events_per_shard", "reduce_merge_ops", "windows_reduced",
    }
    for shards, row in report["shards"].items():
        assert set(row) == row_keys
        assert row["results"] == report["shards"]["1"]["results"]
        assert sum(row["events_per_shard"]) == 2_000
        assert len(row["events_per_shard"]) == int(shards)
        assert row["modeled_events_per_s"] > 0
    assert report["shards"]["1"]["modeled_speedup"] == 1.0
    # every shard contributes a partial per window, so the reduce folds
    # more parts at 2 shards than at 1 (empty shard slices excepted)
    one, two = report["shards"]["1"], report["shards"]["2"]
    assert one["windows_reduced"] == two["windows_reduced"]
    assert two["reduce_merge_ops"] >= one["reduce_merge_ops"]


def test_bench_recovery_tiny_scale():
    # Byte-identical recovery in both modes and the strictly-fewer-bytes
    # claim are asserted inside ``run``; this pins the report shape too.
    report = bench_recovery.run(bench_recovery.QUICK_EVENTS)
    assert set(report["modes"]) == {"scratch", "checkpointed"}
    scratch = report["modes"]["scratch"]
    ckpt = report["modes"]["checkpointed"]
    assert scratch["checkpoints"] == 0
    assert ckpt["checkpoints"] > 0
    assert ckpt["checkpoint_bytes"] > 0
    assert ckpt["data_bytes"] < scratch["data_bytes"]
    assert report["savings"]["reship_bytes_saved"] > 0
