"""Correctness tests for CeBuffer and DeBucket against the oracle."""

from __future__ import annotations

import pytest

from repro.baselines import CeBufferProcessor, DeBucketProcessor
from repro.core.predicates import Selection
from repro.core.query import Query, WindowSpec
from repro.core.types import AggFunction, WindowMeasure

from tests.conftest import make_stream
from tests.oracle import naive_results

SYSTEMS = [CeBufferProcessor, DeBucketProcessor]

FUNCTIONS = [
    (AggFunction.SUM, None),
    (AggFunction.AVERAGE, None),
    (AggFunction.MAX, None),
    (AggFunction.MEDIAN, None),
    (AggFunction.QUANTILE, 0.75),
]


def run(cls, queries, events):
    processor = cls(queries)
    for event in events:
        processor.process(event)
    processor.close()
    return processor


def assert_matches_oracle(cls, queries, events):
    processor = run(cls, queries, events)
    for query in queries:
        expected = naive_results(query, events)
        got = [
            (r.start, r.end, r.value, r.event_count)
            for r in processor.sink.for_query(query.query_id)
        ]
        assert len(got) == len(expected), query.query_id
        for g, e in zip(sorted(got), sorted(expected, key=lambda x: (x[0], x[1]))):
            assert g[0] == e[0] and g[1] == e[1] and g[3] == e[3]
            if e[2] is None:
                assert g[2] is None
            else:
                assert g[2] == pytest.approx(e[2])
    return processor


@pytest.mark.parametrize("cls", SYSTEMS)
class TestAgainstOracle:
    @pytest.mark.parametrize("fn,quantile", FUNCTIONS)
    def test_tumbling(self, cls, fn, quantile):
        events = make_stream(500)
        queries = [Query.of("q", WindowSpec.tumbling(400), fn, quantile=quantile)]
        assert_matches_oracle(cls, queries, events)

    def test_sliding(self, cls):
        events = make_stream(500)
        queries = [Query.of("q", WindowSpec.sliding(600, 150), AggFunction.AVERAGE)]
        assert_matches_oracle(cls, queries, events)

    def test_session(self, cls):
        events = make_stream(500, gap_every=71, gap_dt=2_500)
        queries = [Query.of("q", WindowSpec.session(600), AggFunction.SUM)]
        assert_matches_oracle(cls, queries, events)

    def test_user_defined(self, cls):
        events = make_stream(400, marker_every=60)
        queries = [
            Query.of(
                "q", WindowSpec.user_defined(end_marker="trip_end"), AggFunction.MAX
            )
        ]
        assert_matches_oracle(cls, queries, events)

    def test_count_based(self, cls):
        events = make_stream(400)
        queries = [
            Query.of(
                "q",
                WindowSpec.tumbling(32, measure=WindowMeasure.COUNT),
                AggFunction.AVERAGE,
            )
        ]
        assert_matches_oracle(cls, queries, events)

    def test_selection(self, cls):
        events = make_stream(500, keys=("a", "b", "c"))
        queries = [
            Query.of(
                "q",
                WindowSpec.tumbling(300),
                AggFunction.COUNT,
                selection=Selection(key="b"),
            )
        ]
        assert_matches_oracle(cls, queries, events)

    def test_multiple_concurrent_queries(self, cls):
        events = make_stream(600, gap_every=80, gap_dt=2_500)
        queries = [
            Query.of("t1", WindowSpec.tumbling(300), AggFunction.SUM),
            Query.of("t2", WindowSpec.tumbling(700), AggFunction.AVERAGE),
            Query.of("sl", WindowSpec.sliding(500, 200), AggFunction.MAX),
            Query.of("se", WindowSpec.session(600), AggFunction.MEDIAN),
        ]
        assert_matches_oracle(cls, queries, events)


class TestWorkAccounting:
    def test_no_sharing_multiplies_inserts(self):
        """Two identical avg queries double DeBucket's work, unlike Desis."""
        from repro.baselines import DesisProcessor

        events = make_stream(300)
        queries = [
            Query.of("a", WindowSpec.tumbling(400), AggFunction.AVERAGE),
            Query.of("b", WindowSpec.tumbling(400), AggFunction.AVERAGE),
        ]
        debucket = run(DeBucketProcessor, queries, events)
        desis = run(DesisProcessor, queries, events)
        assert debucket.stats.calculations == 2 * desis.stats.calculations

    def test_cebuffer_counts_buffer_iterations(self):
        events = make_stream(300)
        queries = [Query.of("a", WindowSpec.tumbling(400), AggFunction.SUM)]
        cebuffer = run(CeBufferProcessor, queries, events)
        # Every event is iterated exactly once across the tumbling buffers.
        assert cebuffer.stats.calculations == len(events)

    def test_overlapping_sliding_windows_buffer_repeatedly(self):
        events = make_stream(300, dt_choices=(10,))
        queries = [Query.of("a", WindowSpec.sliding(1_000, 250), AggFunction.SUM)]
        cebuffer = run(CeBufferProcessor, queries, events)
        # Each event lives in ~4 overlapping windows; far more than one
        # calculation per event happens.
        assert cebuffer.stats.calculations > 3 * len(events)

    def test_bucket_slice_accounting(self):
        """Fig 8b: bucketed systems produce one slice per window."""
        events = make_stream(400)
        queries = [Query.of("a", WindowSpec.tumbling(200), AggFunction.SUM)]
        debucket = run(DeBucketProcessor, queries, events)
        assert debucket.stats.slices_closed == debucket.stats.windows_closed
