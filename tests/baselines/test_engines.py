"""Tests for the named engine processors (Desis / Scotty / DeSW)."""

from __future__ import annotations

from repro.baselines import (
    CENTRALIZED_SYSTEMS,
    DeSWProcessor,
    DesisProcessor,
    ScottyProcessor,
)
from repro.baselines.api import StreamProcessor
from repro.core.query import Query, WindowSpec
from repro.core.types import AggFunction, WindowMeasure

from tests.conftest import make_stream


def mixed_queries():
    return [
        Query.of("avg1", WindowSpec.tumbling(500), AggFunction.AVERAGE),
        Query.of("avg2", WindowSpec.tumbling(900), AggFunction.AVERAGE),
        Query.of("sum1", WindowSpec.tumbling(500), AggFunction.SUM),
        Query.of(
            "cnt",
            WindowSpec.tumbling(50, measure=WindowMeasure.COUNT),
            AggFunction.SUM,
        ),
    ]


def run(cls, queries, events):
    processor = cls(queries)
    for event in events:
        processor.process(event)
    processor.close()
    return processor


def test_group_counts_reflect_policies():
    queries = mixed_queries()
    assert DesisProcessor(queries).group_count == 1
    # Scotty: average | sum (time + count measures may share).
    assert ScottyProcessor(queries).group_count == 2
    # DeSW: average | sum-time | sum-count.
    assert DeSWProcessor(queries).group_count == 3


def test_all_systems_satisfy_protocol_and_agree():
    events = make_stream(600)
    queries = mixed_queries()
    reference = None
    for name, cls in CENTRALIZED_SYSTEMS.items():
        processor = run(cls, queries, events)
        assert isinstance(processor, StreamProcessor)
        assert processor.name == name
        output = sorted(
            (r.query_id, r.start, r.end, r.event_count, round(float(r.value), 9))
            for r in processor.sink
        )
        if reference is None:
            reference = output
        else:
            assert output == reference, name


def test_desis_does_least_work():
    events = make_stream(800)
    queries = mixed_queries()
    calcs = {
        name: run(cls, queries, events).stats.calculations
        for name, cls in CENTRALIZED_SYSTEMS.items()
    }
    assert calcs["Desis"] <= calcs["Scotty"] <= calcs["DeSW"]
    assert calcs["DeSW"] < calcs["DeBucket"]
