"""Tests for the command-line interface."""

from __future__ import annotations

import pytest

from repro.__main__ import build_parser, main


class TestRun:
    def test_run_single_query(self, capsys):
        code = main(
            [
                "run",
                "SELECT AVG(value) FROM stream WINDOW TUMBLING 1s",
                "--events",
                "5000",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "window results" in out
        assert "q0[" in out

    def test_run_multiple_queries_share_group(self, capsys):
        code = main(
            [
                "run",
                "SELECT AVG(value) FROM stream WINDOW TUMBLING 1s",
                "SELECT MEDIAN(value) FROM stream WINDOW SESSION GAP 2s",
                "--events",
                "3000",
                "--gap-every",
                "10000",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "1 query-group(s)" in out

    def test_limit_truncates_output(self, capsys):
        main(
            [
                "run",
                "SELECT SUM(value) FROM stream WINDOW TUMBLING 200ms",
                "--events",
                "5000",
                "--limit",
                "2",
            ]
        )
        out = capsys.readouterr().out
        assert "more" in out


class TestCompare:
    def test_compare_prints_all_systems(self, capsys):
        code = main(
            ["compare", "--queries", "5", "--events", "5000", "--rate", "5000"]
        )
        out = capsys.readouterr().out
        assert code == 0
        for name in ("Desis", "Scotty", "DeSW", "DeBucket", "CeBuffer"):
            assert name in out

    def test_compare_quantiles_skips_bucketed_at_scale(self, capsys):
        code = main(
            [
                "compare",
                "--queries",
                "300",
                "--events",
                "2000",
                "--workload",
                "quantiles",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "-" in out  # skipped systems


class TestCluster:
    def test_cluster_demo(self, capsys):
        code = main(
            ["cluster", "--locals", "2", "--events", "3000", "--rate", "3000"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "Desis (decentralized)" in out
        assert "Scotty (centralized)" in out


def test_parser_requires_command():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])
