"""Tests for the command-line interface."""

from __future__ import annotations

import json

import pytest

from repro.__main__ import SHARED_FLAGS, build_parser, main


class TestRun:
    def test_run_single_query(self, capsys):
        code = main(
            [
                "run",
                "SELECT AVG(value) FROM stream WINDOW TUMBLING 1s",
                "--events",
                "5000",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "window results" in out
        assert "q0[" in out

    def test_run_multiple_queries_share_group(self, capsys):
        code = main(
            [
                "run",
                "SELECT AVG(value) FROM stream WINDOW TUMBLING 1s",
                "SELECT MEDIAN(value) FROM stream WINDOW SESSION GAP 2s",
                "--events",
                "3000",
                "--gap-every",
                "10000",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "1 query-group(s)" in out

    def test_limit_truncates_output(self, capsys):
        main(
            [
                "run",
                "SELECT SUM(value) FROM stream WINDOW TUMBLING 200ms",
                "--events",
                "5000",
                "--limit",
                "2",
            ]
        )
        out = capsys.readouterr().out
        assert "more" in out


class TestCompare:
    def test_compare_prints_all_systems(self, capsys):
        code = main(
            ["compare", "--queries", "5", "--events", "5000", "--rate", "5000"]
        )
        out = capsys.readouterr().out
        assert code == 0
        for name in ("Desis", "Scotty", "DeSW", "DeBucket", "CeBuffer"):
            assert name in out

    def test_compare_quantiles_skips_bucketed_at_scale(self, capsys):
        code = main(
            [
                "compare",
                "--queries",
                "300",
                "--events",
                "2000",
                "--workload",
                "quantiles",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "-" in out  # skipped systems


class TestCluster:
    def test_cluster_demo(self, capsys):
        code = main(
            ["cluster", "--locals", "2", "--events", "3000", "--rate", "3000"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "Desis (decentralized)" in out
        assert "Scotty (centralized)" in out


class TestObservabilityFlags:
    def test_run_trace_and_metrics_out(self, capsys, tmp_path):
        trace = tmp_path / "trace.jsonl"
        metrics = tmp_path / "metrics.json"
        code = main(
            [
                "run",
                "SELECT SUM(value) FROM stream WINDOW TUMBLING 1s",
                "--events", "3000",
                "--trace-out", str(trace),
                "--metrics-out", str(metrics),
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "events recorded" in out
        events = [json.loads(line) for line in trace.read_text().splitlines()]
        assert events and {"slice.close", "window.emit"} <= {
            e["kind"] for e in events
        }
        document = json.loads(metrics.read_text())
        names = {m["name"] for m in document["metrics"]}
        assert "engine.calculations" in names

    def test_run_metrics_out_prometheus(self, tmp_path):
        metrics = tmp_path / "metrics.prom"
        code = main(
            [
                "run",
                "SELECT AVG(value) FROM stream WINDOW TUMBLING 1s",
                "--events", "2000",
                "--metrics-out", str(metrics),
            ]
        )
        assert code == 0
        text = metrics.read_text()
        assert "# TYPE engine_calculations counter" in text
        assert "engine_events 2000" in text

    def test_cluster_trace_out(self, capsys, tmp_path):
        trace = tmp_path / "trace.jsonl"
        code = main(
            [
                "cluster", "--locals", "2", "--events", "3000",
                "--rate", "3000", "--trace-out", str(trace),
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "events recorded" in out
        kinds = {
            json.loads(line)["kind"]
            for line in trace.read_text().splitlines()
        }
        assert {"partial.ship", "merge.release", "window.emit"} <= kinds


class TestReport:
    def test_report_prints_registry_and_trace(self, capsys):
        code = main(
            ["report", "--locals", "2", "--events", "3000", "--rate", "3000"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "Desis run report" in out
        assert "engine.calculations" in out
        assert "net.total_bytes" in out
        assert "events recorded" in out

    def test_report_explain_under_faults(self, capsys, tmp_path):
        metrics = tmp_path / "metrics.json"
        code = main(
            [
                "report", "--locals", "2", "--events", "6000",
                "--rate", "3000", "--drop-rate", "0.02", "--seed", "3",
                "--explain", "--metrics-out", str(metrics),
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "last window provenance" in out
        assert "sources: local-0, local-1" in out
        assert "retransmits before emit" in out
        document = json.loads(metrics.read_text())
        assert any(
            m["name"] == "net.retransmits" for m in document["metrics"]
        )

    def test_report_explain_prints_critical_path(self, capsys):
        code = main(
            [
                "report", "--locals", "2", "--events", "4000",
                "--rate", "3000", "--explain",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "critical path:" in out
        assert "ms (ingest" in out  # waterfall header
        from repro.obs import STAGES

        assert any(stage in out for stage in STAGES)


class TestProfile:
    def test_profile_prints_waterfalls_and_stage_totals(self, capsys):
        code = main(
            ["profile", "--locals", "2", "--events", "5000",
             "--rate", "3000", "--top", "2"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "windows emitted" in out
        assert "explainable from the trace ring" in out
        assert "#1 " in out and "#2 " in out and "#3 " not in out
        assert "stage totals across explainable windows:" in out
        assert "slicing" in out
        assert "%" in out

    def test_profile_artifact_outputs(self, capsys, tmp_path):
        chrome = tmp_path / "trace.json"
        spans = tmp_path / "spans.jsonl"
        metrics = tmp_path / "metrics.json"
        code = main(
            [
                "profile", "--locals", "2", "--events", "4000",
                "--rate", "3000", "--drop-rate", "0.02", "--seed", "3",
                "--chrome-out", str(chrome), "--spans-out", str(spans),
                "--metrics-out", str(metrics),
            ]
        )
        assert code == 0
        document = json.loads(chrome.read_text())
        assert document["traceEvents"]
        lines = spans.read_text().splitlines()
        assert lines
        first = json.loads(lines[0])
        assert first["spans"][0]["name"] == "window"
        names = {m["name"] for m in json.loads(metrics.read_text())["metrics"]}
        assert "span.windows" in names
        assert "span.stage_ms" in names


def test_parser_requires_command():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])


class TestHelpAndUnknownCommands:
    ALL_COMMANDS = (
        "run", "compare", "cluster", "report", "profile", "conformance"
    )

    def test_help_lists_every_subcommand_with_a_description(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["--help"])
        assert excinfo.value.code == 0
        out = capsys.readouterr().out
        from repro.__main__ import COMMANDS

        assert set(COMMANDS) == set(self.ALL_COMMANDS)
        flat = " ".join(out.split())  # argparse wraps long help lines
        for name in self.ALL_COMMANDS:
            assert name in flat
            assert COMMANDS[name] in flat

    def test_unknown_command_exits_nonzero_with_hint(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["conformence"])
        assert excinfo.value.code == 2
        err = capsys.readouterr().err
        assert "unknown command 'conformence'" in err
        assert "did you mean 'conformance'?" in err
        assert "Traceback" not in err

    def test_unknown_command_without_close_match_lists_commands(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["bogus"])
        assert excinfo.value.code == 2
        err = capsys.readouterr().err
        assert "unknown command 'bogus'" in err
        for name in self.ALL_COMMANDS:
            assert name in err


class TestSharedFlags:
    """The parent-parser dedup contract: every verb takes the same set."""

    VERB_STUB = {
        "run": ["SELECT AVG(value) FROM stream WINDOW TUMBLING 1s"],
        "compare": [],
        "cluster": [],
        "report": [],
        "profile": [],
        "conformance": [],
    }

    def _subparser(self, parser, verb):
        actions = [
            a for a in parser._actions
            if hasattr(a, "choices") and a.choices and verb in a.choices
        ]
        assert actions, f"no subparser for {verb}"
        return actions[0].choices[verb]

    @pytest.mark.parametrize("verb", sorted(VERB_STUB))
    def test_every_verb_registers_every_shared_flag(self, verb):
        sub = self._subparser(build_parser(), verb)
        options = {
            opt for action in sub._actions for opt in action.option_strings
        }
        missing = set(SHARED_FLAGS) - options
        assert not missing, f"{verb} is missing shared flags: {missing}"

    @pytest.mark.parametrize("verb", sorted(VERB_STUB))
    def test_every_verb_parses_the_shared_flag_set(self, verb, tmp_path):
        argv = [verb, *self.VERB_STUB[verb],
                "--seed", "5", "--shards", "2", "--merge-mode", "exact",
                "--punctuation-mode", "scan",
                "--metrics-out", str(tmp_path / "m.json")]
        args = build_parser().parse_args(argv)
        assert args.seed == 5
        assert args.shards == 2
        assert args.merge_mode == "exact"
        assert args.punctuation_mode == "scan"


class TestShardedRun:
    def test_run_with_shards_prints_shard_summary(self, capsys):
        code = main(
            [
                "run",
                "SELECT AVG(value) FROM stream WINDOW TUMBLING 1s",
                "--events", "3000", "--shards", "2",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "shards: 2 workers" in out
        assert "per-shard events" in out

    def test_run_rejects_trace_with_shards(self, capsys, tmp_path):
        with pytest.raises(SystemExit) as excinfo:
            main(
                [
                    "run",
                    "SELECT AVG(value) FROM stream WINDOW TUMBLING 1s",
                    "--events", "1000", "--shards", "2",
                    "--trace-out", str(tmp_path / "t.jsonl"),
                ]
            )
        assert "--trace" in str(excinfo.value)

    def test_compare_with_shards_adds_sharded_row(self, capsys):
        code = main(
            ["compare", "--queries", "3", "--events", "3000",
             "--rate", "3000", "--shards", "2"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "Desis x2" in out

    def test_run_shards_metrics_out_carries_shard_counters(
        self, capsys, tmp_path
    ):
        metrics = tmp_path / "metrics.json"
        code = main(
            [
                "run",
                "SELECT SUM(value) FROM stream WINDOW TUMBLING 1s",
                "--events", "2000", "--shards", "2",
                "--metrics-out", str(metrics),
            ]
        )
        assert code == 0
        names = {m["name"] for m in json.loads(metrics.read_text())["metrics"]}
        assert "shard.events" in names

    def test_conformance_shards_override_lands_in_report(
        self, capsys, tmp_path
    ):
        out_dir = tmp_path / "conf"
        code = main(
            ["conformance", "--seed", "4", "--runs", "1", "--shards", "2",
             "--out", str(out_dir), "--no-metamorphic"]
        )
        assert code == 0
        report = json.loads((out_dir / "report.json").read_text())
        assert report["ok"] is True
        assert report["overrides"] == {"shards": 2}


class TestConformanceCommand:
    def test_clean_run_prints_summary_and_exits_zero(self, capsys):
        code = main(["conformance", "--seed", "3", "--runs", "2"])
        out = capsys.readouterr().out
        assert code == 0
        assert "conformance: seed=3 runs=2 failed=0" in out
        assert "executors: ok" in out

    def test_out_dir_gets_the_report(self, capsys, tmp_path):
        out_dir = tmp_path / "conf"
        code = main(
            ["conformance", "--seed", "1", "--runs", "1",
             "--out", str(out_dir), "--no-metamorphic"]
        )
        assert code == 0
        report = json.loads((out_dir / "report.json").read_text())
        assert report["ok"] is True
        assert report["seed"] == 1

    def test_metrics_out_carries_conformance_counters(self, capsys, tmp_path):
        metrics = tmp_path / "metrics.json"
        code = main(
            ["conformance", "--seed", "2", "--runs", "1",
             "--metrics-out", str(metrics)]
        )
        assert code == 0
        document = json.loads(metrics.read_text())
        names = {m["name"] for m in document["metrics"]}
        assert "conformance.scenarios" in names
        assert "conformance.failures" in names
