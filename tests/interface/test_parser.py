"""Tests for the textual query language."""

from __future__ import annotations

import pytest

from repro.core.errors import QueryError
from repro.core.types import AggFunction, WindowMeasure, WindowType
from repro.interface import parse_queries, parse_query


def parse(text):
    return parse_query(text, query_id="q")


class TestFunctions:
    @pytest.mark.parametrize(
        "name, fn",
        [
            ("SUM", AggFunction.SUM),
            ("COUNT", AggFunction.COUNT),
            ("AVG", AggFunction.AVERAGE),
            ("AVERAGE", AggFunction.AVERAGE),
            ("MIN", AggFunction.MIN),
            ("MAX", AggFunction.MAX),
            ("MEDIAN", AggFunction.MEDIAN),
            ("PRODUCT", AggFunction.PRODUCT),
            ("GEOMETRIC_MEAN", AggFunction.GEOMETRIC_MEAN),
        ],
    )
    def test_named_functions(self, name, fn):
        query = parse(f"SELECT {name}(value) FROM stream WINDOW TUMBLING 5s")
        assert query.function.fn is fn

    def test_quantile(self):
        query = parse(
            "SELECT QUANTILE(0.95)(value) FROM stream WINDOW TUMBLING 5s"
        )
        assert query.function.fn is AggFunction.QUANTILE
        assert query.function.quantile == 0.95

    def test_quantile_without_parameter_rejected(self):
        with pytest.raises(QueryError):
            parse("SELECT QUANTILE(value) FROM stream WINDOW TUMBLING 5s")

    def test_unknown_function_rejected(self):
        with pytest.raises(QueryError):
            parse("SELECT MODE(value) FROM stream WINDOW TUMBLING 5s")


class TestWindows:
    def test_tumbling_durations(self):
        assert parse("SELECT SUM(value) FROM stream WINDOW TUMBLING 5s").window.length == 5_000
        assert parse("SELECT SUM(value) FROM stream WINDOW TUMBLING 250ms").window.length == 250
        assert parse("SELECT SUM(value) FROM stream WINDOW TUMBLING 2min").window.length == 120_000

    def test_tumbling_count_measure(self):
        query = parse("SELECT SUM(value) FROM stream WINDOW TUMBLING 1000 EVENTS")
        assert query.window.measure is WindowMeasure.COUNT
        assert query.window.length == 1_000

    def test_sliding(self):
        query = parse(
            "SELECT SUM(value) FROM stream WINDOW SLIDING 10s EVERY 2s"
        )
        assert query.window.window_type is WindowType.SLIDING
        assert (query.window.length, query.window.slide) == (10_000, 2_000)

    def test_sliding_measure_mismatch_rejected(self):
        with pytest.raises(QueryError):
            parse("SELECT SUM(value) FROM stream WINDOW SLIDING 10s EVERY 5 EVENTS")

    def test_session(self):
        query = parse("SELECT SUM(value) FROM stream WINDOW SESSION GAP 30s")
        assert query.window.window_type is WindowType.SESSION
        assert query.window.gap == 30_000

    def test_user_defined(self):
        query = parse(
            "SELECT MAX(value) FROM stream WINDOW USER_DEFINED END 'trip_end'"
        )
        assert query.window.end_marker == "trip_end"
        assert query.window.start_marker is None
        with_start = parse(
            "SELECT MAX(value) FROM stream "
            "WINDOW USER_DEFINED END 'stop' START 'go'"
        )
        assert with_start.window.start_marker == "go"

    def test_missing_window_rejected(self):
        with pytest.raises(QueryError):
            parse("SELECT SUM(value) FROM stream")

    def test_unknown_window_rejected(self):
        with pytest.raises(QueryError):
            parse("SELECT SUM(value) FROM stream WINDOW HOPPING 5s")


class TestWhere:
    def test_key_filter(self):
        query = parse(
            "SELECT AVG(value) FROM stream WHERE key = 'speed' "
            "WINDOW TUMBLING 5s"
        )
        assert query.selection.key == "speed"

    def test_paper_example_speed_range(self):
        query = parse(
            "SELECT AVG(value) FROM stream "
            "WHERE key = 'speed' AND value >= 80 WINDOW TUMBLING 5s"
        )
        assert query.selection.key == "speed"
        assert query.selection.lo == 80.0

    def test_full_range(self):
        query = parse(
            "SELECT AVG(value) FROM stream "
            "WHERE value >= 25 AND value < 80 WINDOW TUMBLING 5s"
        )
        assert (query.selection.lo, query.selection.hi) == (25.0, 80.0)

    def test_unsupported_clause_rejected(self):
        with pytest.raises(QueryError):
            parse(
                "SELECT AVG(value) FROM stream WHERE color = 'red' "
                "WINDOW TUMBLING 5s"
            )


class TestExpandByKey:
    def test_per_key_queries_share_a_group(self):
        from repro.core.engine import AggregationEngine
        from repro.interface import expand_by_key

        template = parse_query(
            "SELECT AVG(value) FROM stream WINDOW TUMBLING 1s", query_id="avg"
        )
        queries = expand_by_key(template, ["speed", "temp", "rpm"])
        assert [q.query_id for q in queries] == [
            "avg-speed",
            "avg-temp",
            "avg-rpm",
        ]
        assert AggregationEngine(queries).group_count == 1

    def test_value_bounds_preserved(self):
        from repro.interface import expand_by_key

        template = parse_query(
            "SELECT COUNT(value) FROM stream WHERE value >= 80 "
            "WINDOW TUMBLING 1s",
            query_id="fast",
        )
        (query,) = expand_by_key(template, ["speed"])
        assert query.selection.key == "speed"
        assert query.selection.lo == 80.0

    def test_keyed_template_rejected(self):
        from repro.interface import expand_by_key

        template = parse_query(
            "SELECT AVG(value) FROM stream WHERE key = 'x' WINDOW TUMBLING 1s",
            query_id="q",
        )
        with pytest.raises(QueryError):
            expand_by_key(template, ["a"])


class TestBatch:
    def test_parse_queries_assigns_ids(self):
        queries = parse_queries(
            [
                "SELECT SUM(value) FROM stream WINDOW TUMBLING 1s",
                "SELECT MAX(value) FROM stream WINDOW TUMBLING 2s",
            ]
        )
        assert [q.query_id for q in queries] == ["q0", "q1"]

    def test_case_insensitive(self):
        query = parse(
            "select avg(value) from stream where key = 'x' window tumbling 1s"
        )
        assert query.function.fn is AggFunction.AVERAGE
        assert query.selection.key == "x"
