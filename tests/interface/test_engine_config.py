"""EngineConfig: the unified knob surface and its deprecation shims.

Pins the contract of the api_redesign: one frozen ``EngineConfig`` drives
``DesisSession``, ``AggregationEngine``, and ``ClusterConfig.engine``; the
historical per-knob keyword arguments keep working but warn.
"""

from __future__ import annotations

import warnings

import pytest

from repro.cluster import ClusterConfig
from repro.core.config import EngineConfig
from repro.core.engine import AggregationEngine
from repro.core.errors import EngineError
from repro.core.types import SharingPolicy
from repro.interface.session import DEPRECATED_KWARGS, DesisSession

#: a non-default value per deprecated keyword, to see it land in config
LEGACY_VALUES = {
    "policy": SharingPolicy.NONE,
    "merge_mode": "exact",
    "measure_latency": True,
    "latency_sample_every": 7,
    "latency_expiry_horizon_ms": None,
}


class TestConfigValue:
    def test_frozen(self):
        config = EngineConfig()
        with pytest.raises(Exception):
            config.shards = 4  # type: ignore[misc]

    def test_with_options_returns_revalidated_copy(self):
        config = EngineConfig()
        other = config.with_options(shards=4, merge_mode="exact")
        assert (other.shards, other.merge_mode) == (4, "exact")
        assert config.shards == 1  # original untouched
        with pytest.raises(EngineError):
            config.with_options(shards=0)

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"punctuation_mode": "btree"},
            {"merge_mode": "lazy"},
            {"shards": 0},
            {"shard_batch_size": 0},
            {"latency_sample_every": 0},
        ],
    )
    def test_validation_rejects_bad_knobs(self, kwargs):
        with pytest.raises(EngineError):
            EngineConfig(**kwargs)


class TestSessionShims:
    def test_deprecated_kwargs_mapping_is_exactly_the_shimmed_set(self):
        # the shim loop in DesisSession.__init__ and this mapping must
        # not drift apart
        assert set(DEPRECATED_KWARGS) == {
            "policy",
            "merge_mode",
            "measure_latency",
            "latency_sample_every",
            "latency_expiry_horizon_ms",
        }

    @pytest.mark.parametrize("keyword", sorted(DEPRECATED_KWARGS))
    def test_each_legacy_kwarg_warns_and_lands_in_config(self, keyword):
        value = LEGACY_VALUES[keyword]
        with pytest.warns(DeprecationWarning, match=keyword):
            session = DesisSession(**{keyword: value})
        assert getattr(session.config, DEPRECATED_KWARGS[keyword]) == value
        # read-only legacy view mirrors the config
        assert getattr(session, keyword) == value

    def test_config_path_does_not_warn(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            session = DesisSession(config=EngineConfig(merge_mode="exact"))
        assert session.merge_mode == "exact"

    def test_shards_sugar_does_not_warn(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            session = DesisSession(shards=4)
        assert session.config.shards == 4
        assert session.shards == 4

    def test_legacy_kwarg_overrides_explicit_config(self):
        with pytest.warns(DeprecationWarning):
            session = DesisSession(
                config=EngineConfig(merge_mode="incremental"),
                merge_mode="exact",
            )
        assert session.config.merge_mode == "exact"


class TestEngineConfig:
    def test_engine_accepts_config(self):
        engine = AggregationEngine(
            [], config=EngineConfig(punctuation_mode="scan")
        )
        assert engine.config.punctuation_mode == "scan"

    def test_engine_kwargs_override_config(self):
        engine = AggregationEngine(
            [],
            config=EngineConfig(merge_mode="incremental"),
            merge_mode="exact",
        )
        assert engine.config.merge_mode == "exact"


class TestClusterConfigSync:
    def test_engine_derived_from_legacy_strings(self):
        config = ClusterConfig(punctuation_mode="scan", merge_mode="exact")
        assert config.engine is not None
        assert config.engine.punctuation_mode == "scan"
        assert config.engine.merge_mode == "exact"

    def test_engine_overrides_legacy_strings(self):
        config = ClusterConfig(
            merge_mode="incremental",
            engine=EngineConfig(punctuation_mode="scan", merge_mode="exact"),
        )
        assert config.punctuation_mode == "scan"
        assert config.merge_mode == "exact"

    def test_default_engine_always_populated(self):
        config = ClusterConfig()
        assert config.engine == EngineConfig()
