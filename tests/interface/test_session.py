"""Tests for the DesisSession facade."""

from __future__ import annotations

import pytest

from repro.core.errors import EngineError
from repro.core.event import Event
from repro.core.query import Query, WindowSpec
from repro.core.types import AggFunction
from repro.interface import DesisSession

from tests.conftest import make_stream


def test_text_queries_end_to_end():
    session = DesisSession()
    avg_id = session.submit(
        "SELECT AVG(value) FROM stream WINDOW TUMBLING 500ms"
    )
    med_id = session.submit(
        "SELECT MEDIAN(value) FROM stream WINDOW SESSION GAP 2s"
    )
    assert {avg_id, med_id} == {"q0", "q1"}
    session.process_many(make_stream(500, gap_every=90, gap_dt=3_000))
    sink = session.close()
    assert sink.for_query(avg_id)
    assert sink.for_query(med_id)


def test_query_objects_accepted():
    session = DesisSession()
    qid = session.submit(
        Query.of("mine", WindowSpec.tumbling(200), AggFunction.SUM)
    )
    assert qid == "mine"
    session.process(Event(0, "a", 1.0))
    session.process(Event(500, "a", 2.0))
    assert session.close().for_query("mine")


def test_pending_queries_grouped_together():
    session = DesisSession()
    session.submit("SELECT AVG(value) FROM stream WINDOW TUMBLING 1s")
    session.submit("SELECT SUM(value) FROM stream WINDOW TUMBLING 2s")
    session.process(Event(0, "a", 1.0))
    assert session._engine is not None
    assert session._engine.group_count == 1


def test_runtime_submit_and_remove():
    session = DesisSession()
    session.submit("SELECT SUM(value) FROM stream WINDOW TUMBLING 1s")
    for event in make_stream(200, dt_choices=(10,)):
        session.process(event)
    late = session.submit(
        "SELECT COUNT(value) FROM stream WINDOW TUMBLING 500ms"
    )
    session.remove("q0")
    for event in make_stream(200, dt_choices=(10,), start=3_000):
        session.process(event)
    sink = session.close()
    assert sink.for_query(late)


def test_remove_pending_query():
    session = DesisSession()
    session.submit("SELECT SUM(value) FROM stream WINDOW TUMBLING 1s")
    session.remove("q0")
    assert session.queries == []
    with pytest.raises(EngineError):
        session.remove("nope")


def test_results_property_before_and_after():
    session = DesisSession()
    assert session.results == []
    session.submit("SELECT SUM(value) FROM stream WINDOW TUMBLING 100ms")
    session.process(Event(0, "a", 1.0))
    session.process(Event(500, "a", 1.0))
    assert len(session.results) >= 1
