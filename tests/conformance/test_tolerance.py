"""Per-operator-kind tolerance policies and the promoted oracle."""

from __future__ import annotations

from repro.conformance import (
    EXACT,
    FLOAT_FOLD_FUNCTIONS,
    TolerancePolicy,
    tolerance_for,
    values_match,
)
from repro.core.query import Query, WindowSpec
from repro.core.types import AggFunction


def query_of(fn: AggFunction) -> Query:
    return Query.of(
        "q", WindowSpec.tumbling(1_000), fn,
        quantile=0.5 if fn is AggFunction.QUANTILE else None,
    )


class TestToleranceFor:
    def test_exact_kinds_stay_exact_under_incremental(self):
        for fn in (AggFunction.COUNT, AggFunction.MAX, AggFunction.MIN,
                   AggFunction.MEDIAN, AggFunction.QUANTILE):
            policy = tolerance_for(query_of(fn), merge_mode="incremental",
                                   cross_fold=True)
            assert policy.exact, fn

    def test_float_folds_get_relative_tolerance_when_incremental(self):
        for fn in (AggFunction.SUM, AggFunction.AVERAGE, AggFunction.PRODUCT,
                   AggFunction.GEOMETRIC_MEAN, AggFunction.VARIANCE,
                   AggFunction.STDDEV):
            policy = tolerance_for(query_of(fn), merge_mode="incremental")
            assert not policy.exact, fn
            assert policy.rel_tol == 1e-9

    def test_float_folds_exact_on_exact_same_fold(self):
        policy = tolerance_for(query_of(AggFunction.SUM), merge_mode="exact",
                               cross_fold=False)
        assert policy is EXACT

    def test_cross_fold_relaxes_even_exact_merge(self):
        policy = tolerance_for(query_of(AggFunction.SUM), merge_mode="exact",
                               cross_fold=True)
        assert not policy.exact

    def test_fold_function_set(self):
        assert AggFunction.SUM in FLOAT_FOLD_FUNCTIONS
        assert AggFunction.MEDIAN not in FLOAT_FOLD_FUNCTIONS


class TestValuesMatch:
    def test_exact_policy_bitwise(self):
        assert values_match(1.1, 1.1, EXACT)
        assert not values_match(1.1, 1.1 + 1e-12, EXACT)

    def test_tolerant_policy_absorbs_reassociation_noise(self):
        policy = TolerancePolicy(rel_tol=1e-9, abs_tol=1e-12)
        total = sum([0.1] * 10)
        assert values_match(1.0, total, policy)
        assert not values_match(1.0, 1.0 + 1e-6, policy)

    def test_none_only_matches_none(self):
        policy = TolerancePolicy(rel_tol=1e-9)
        assert values_match(None, None, policy)
        assert not values_match(None, 0.0, policy)
        assert not values_match(0.0, None, policy)


class TestShim:
    def test_tests_oracle_module_reexports(self):
        # six sibling suites import the oracle from its historical home
        from tests import oracle as shim

        for name in ("naive_results", "naive_windows", "naive_value",
                     "OracleWindow", "tolerance_for", "values_match",
                     "TolerancePolicy", "EXACT"):
            assert hasattr(shim, name), name

    def test_shim_is_the_promoted_module(self):
        from tests import oracle as shim

        from repro.conformance import oracle as promoted

        assert shim.naive_results is promoted.naive_results
