"""The campaign runner: determinism, reporting, and obs counters."""

from __future__ import annotations

import json
import os

import pytest

from repro.conformance import (
    ScenarioGenerator,
    render_conformance_summary,
    run_conformance,
    run_scenario,
)
from repro.obs import MetricsRegistry


class TestDeterminism:
    def test_same_seed_two_invocations_identical_report(self):
        first = run_conformance(seed=5, runs=3)
        second = run_conformance(seed=5, runs=3)
        assert json.dumps(first, sort_keys=True) == json.dumps(
            second, sort_keys=True
        )

    def test_report_on_disk_matches_in_memory(self, tmp_path):
        report = run_conformance(seed=2, runs=2, out=str(tmp_path))
        with open(tmp_path / "report.json", encoding="utf-8") as handle:
            on_disk = json.load(handle)
        assert on_disk == report

    def test_every_scenario_runs_at_least_four_executors(self):
        report = run_conformance(seed=5, runs=4)
        for verdict in report["scenarios"]:
            assert len(verdict["executors"]) >= 4, verdict["name"]


class TestVerdicts:
    def test_clean_scenario_verdict_shape(self):
        scenario = ScenarioGenerator(11).generate(0)
        verdict = run_scenario(scenario)
        assert verdict["ok"] is True
        assert verdict["failures"] == []
        assert verdict["digest"] == scenario.digest
        assert verdict["total_events"] == scenario.total_events
        for entry in verdict["executors"].values():
            assert set(entry) == {"rows", "rows_digest"}

    def test_summary_mentions_every_scenario(self):
        report = run_conformance(seed=4, runs=3)
        summary = render_conformance_summary(report)
        for verdict in report["scenarios"]:
            assert verdict["name"] in summary
        assert "failed=0" in summary


class TestCounters:
    def test_counters_published_into_registry(self):
        registry = MetricsRegistry()
        report = run_conformance(seed=3, runs=2, registry=registry)
        values = {s.name: s.value for s in registry.collect()}
        assert values["conformance.scenarios"] == 2
        assert values["conformance.failures"] == 0
        executions = sum(
            len(v["executors"]) for v in report["scenarios"]
        )
        assert values["conformance.executions"] == executions
        assert values["conformance.comparisons"] == executions - 2


@pytest.mark.conformance
class TestNightlySweep:
    """The large randomized campaign the nightly CI job runs."""

    def test_forty_scenario_sweep_is_clean(self, tmp_path):
        report = run_conformance(
            seed=int(os.environ.get("CONFORMANCE_SEED", "0")),
            runs=40,
            out=str(tmp_path),
        )
        assert report["ok"], render_conformance_summary(report)
