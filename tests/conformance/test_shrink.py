"""Mutation detection and delta-debugging minimization.

The acceptance property: an injected off-by-one in the single-node
engine's finalization — applied via monkeypatch, never committed — must be
*detected* by the differential matrix and *shrunk* to a standalone repro
of at most 20 events.
"""

from __future__ import annotations

import os
import subprocess
import sys

import pytest

import repro

from repro.conformance import (
    ScenarioGenerator,
    evaluate_scenario,
    shrink_scenario,
    write_repro_script,
)
from repro.core.types import AggFunction


@pytest.fixture
def off_by_one_sum(monkeypatch):
    """Mutate the engine's SUM finalization by +1 (cluster side untouched)."""
    import repro.core.engine as engine_module

    true_finalize = engine_module.finalize

    def mutated(spec, ops):
        value = true_finalize(spec, ops)
        if spec.fn is AggFunction.SUM and value is not None:
            return value + 1.0
        return value

    monkeypatch.setattr(engine_module, "finalize", mutated)
    return mutated


def sum_scenario():
    """The first generated scenario whose query mix exercises SUM."""
    generator = ScenarioGenerator(0)
    for i in range(40):
        scenario = generator.generate(i)
        if any(q.function == "sum" for q in scenario.queries):
            return scenario
    raise AssertionError("no SUM scenario in 40 draws")  # pragma: no cover


class TestMutationDetection:
    def test_mutation_is_detected(self, off_by_one_sum):
        failures, _ = evaluate_scenario(sum_scenario(), metamorphic=False)
        assert failures

    def test_clean_engine_passes_the_same_scenario(self):
        failures, _ = evaluate_scenario(sum_scenario(), metamorphic=False)
        assert not failures

    def test_mutation_shrinks_to_small_repro(self, off_by_one_sum):
        result = shrink_scenario(sum_scenario())
        assert result.failures
        assert result.events_after <= 20
        assert result.events_after < result.events_before
        assert result.queries_after <= result.queries_before
        assert result.predicate_runs > 0
        # the minimized scenario still reproduces on its own
        failures, _ = evaluate_scenario(result.scenario, metamorphic=False)
        assert failures

    def test_repro_script_is_standalone(self, off_by_one_sum, tmp_path):
        result = shrink_scenario(sum_scenario())
        path = write_repro_script(result, str(tmp_path / "repro_case.py"))
        source = (tmp_path / "repro_case.py").read_text()
        assert result.scenario.digest in source
        assert "evaluate_scenario" in source
        # without the mutation the repro script reports no failures (rc 0)
        env = dict(os.environ)
        env["PYTHONPATH"] = os.path.dirname(os.path.dirname(repro.__file__))
        completed = subprocess.run(
            [sys.executable, path],
            capture_output=True,
            text=True,
            check=False,
            env=env,
        )
        assert completed.returncode == 0, completed.stdout + completed.stderr


class TestShrinkBasics:
    def test_refuses_non_failing_scenario(self):
        with pytest.raises(ValueError):
            shrink_scenario(ScenarioGenerator(7).generate(0))

    def test_custom_predicate_drives_the_shrink(self):
        scenario = ScenarioGenerator(7).generate(0).materialized()

        def has_any_event(candidate):
            return candidate.total_events >= 1

        result = shrink_scenario(scenario, has_any_event)
        assert result.events_after == 1
