"""Scenario model: determinism, serialization, and stream invariants."""

from __future__ import annotations

from repro.conformance import Scenario, ScenarioGenerator
from repro.conformance.scenario import FaultSpec, QuerySpec


def small_scenario(**overrides) -> Scenario:
    defaults = dict(
        name="t",
        seed=42,
        n_nodes=3,
        events_per_node=50,
        queries=(
            QuerySpec("q0", "tumbling", "sum", length=500),
            QuerySpec("q1", "sliding", "max", length=1_000, slide=250),
        ),
    )
    defaults.update(overrides)
    return Scenario(**defaults)


class TestSerialization:
    def test_json_roundtrip_identical(self):
        scenario = small_scenario(
            max_lateness=40,
            batch_ms=500,
            checkpoint_interval=2_000,
            fault=FaultSpec(seed=9, drop_rate=0.05),
        )
        assert Scenario.from_json(scenario.to_json()) == scenario

    def test_digest_stable_across_roundtrip(self):
        scenario = small_scenario()
        assert Scenario.from_json(scenario.to_json()).digest == scenario.digest

    def test_digest_changes_with_content(self):
        assert small_scenario().digest != small_scenario(seed=43).digest

    def test_materialized_replays_same_streams(self):
        scenario = small_scenario()
        explicit = scenario.materialized()
        assert explicit.build_streams() == scenario.build_streams()
        # and survives a serialization trip
        again = Scenario.from_json(explicit.to_json())
        assert again.build_streams() == scenario.build_streams()


class TestStreams:
    def test_streams_deterministic(self):
        assert small_scenario().build_streams() == small_scenario().build_streams()

    def test_timestamps_globally_unique(self):
        streams = small_scenario().build_streams()
        times = [e.time for events in streams.values() for e in events]
        assert len(times) == len(set(times))

    def test_node_keeps_timestamp_residue(self):
        scenario = small_scenario()
        for i, (node, events) in enumerate(
            sorted(scenario.build_streams().items())
        ):
            assert all(e.time % scenario.n_nodes == i for e in events), node

    def test_disordered_streams_same_multiset(self):
        scenario = small_scenario(max_lateness=150)
        in_order = scenario.build_streams()
        disordered = scenario.disordered_streams()
        for node in in_order:
            assert sorted(disordered[node], key=lambda e: e.time) == in_order[node]

    def test_disorder_respects_lateness_bound(self):
        scenario = small_scenario(max_lateness=40)
        for events in scenario.disordered_streams().values():
            high = 0
            for event in events:
                high = max(high, event.time)
                assert high - event.time <= scenario.max_lateness


class TestFlags:
    def test_fixed_time_only(self):
        assert small_scenario().fixed_time_only
        with_session = small_scenario(
            queries=(QuerySpec("q0", "session", "sum", gap=100),),
            gap_every=10,
        )
        assert not with_session.fixed_time_only

    def test_has_user_defined(self):
        scenario = small_scenario(
            queries=(QuerySpec("q0", "user_defined", "min", end_marker="end"),),
            marker_every=7,
        )
        assert scenario.has_user_defined


class TestGenerator:
    def test_same_seed_same_scenarios(self):
        a = [ScenarioGenerator(5).generate(i).digest for i in range(6)]
        b = [ScenarioGenerator(5).generate(i).digest for i in range(6)]
        assert a == b

    def test_different_seeds_differ(self):
        a = [ScenarioGenerator(1).generate(i).digest for i in range(4)]
        b = [ScenarioGenerator(2).generate(i).digest for i in range(4)]
        assert a != b

    def test_generated_scenarios_are_serializable(self):
        generator = ScenarioGenerator(3)
        for i in range(8):
            scenario = generator.generate(i)
            assert Scenario.from_json(scenario.to_json()) == scenario

    def test_product_family_values_clamped(self):
        generator = ScenarioGenerator(0)
        for i in range(60):
            scenario = generator.generate(i)
            if any(
                q.function in ("product", "geometric_mean")
                for q in scenario.queries
            ):
                assert (scenario.value_lo, scenario.value_hi) == (0.5, 1.5)
                break
        else:  # pragma: no cover - seed drift guard
            raise AssertionError("no product-family scenario in 60 draws")
