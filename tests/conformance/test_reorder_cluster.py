"""Disorder composed with cluster ingestion: a reorder front-end with the
stream's true lateness bound must make bounded-disorder streams
*byte-identical* to their sorted equivalents, for every punctuation mode.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.conformance import Scenario, in_order_streams
from repro.conformance.executors import run_desis_cluster, run_engine_reference
from repro.conformance.scenario import QuerySpec

PUNCTUATION_MODES = ("heap", "scan")


def disordered_scenario(seed: int, lateness: int, punctuation: str,
                        merge_mode: str = "exact") -> Scenario:
    return Scenario(
        name=f"reorder-{seed}",
        seed=seed,
        n_nodes=3,
        events_per_node=45,
        n_keys=2,
        max_lateness=lateness,
        queries=(
            QuerySpec("q0", "tumbling", "sum", length=500),
            QuerySpec("q1", "sliding", "count", length=1_000, slide=250),
            QuerySpec("q2", "sliding", "average", length=600, slide=300),
        ),
        topology="three_tier",
        punctuation_mode=punctuation,
        merge_mode=merge_mode,
    )


@pytest.mark.parametrize("punctuation", PUNCTUATION_MODES)
@settings(max_examples=12, deadline=None)
@given(seed=st.integers(min_value=0, max_value=10**6),
       lateness=st.sampled_from((10, 40, 150)))
def test_cluster_ingestion_identical_to_sorted(punctuation, seed, lateness):
    scenario = disordered_scenario(seed, lateness, punctuation)
    sorted_streams = scenario.build_streams()
    reordered = in_order_streams(scenario)  # ReorderBuffer, on_late="raise"
    assert reordered == sorted_streams
    disordered = run_desis_cluster(scenario, reordered)
    clean = run_desis_cluster(scenario, sorted_streams)
    assert disordered.rows == clean.rows


@pytest.mark.parametrize("punctuation", PUNCTUATION_MODES)
@settings(max_examples=8, deadline=None)
@given(seed=st.integers(min_value=0, max_value=10**6))
def test_engine_reference_unaffected_by_reordered_arrival(punctuation, seed):
    scenario = disordered_scenario(seed, lateness=80, punctuation=punctuation)
    via_buffer = run_engine_reference(scenario, in_order_streams(scenario))
    direct = run_engine_reference(scenario, scenario.build_streams())
    assert via_buffer.rows == direct.rows


@settings(max_examples=10, deadline=None)
@given(seed=st.integers(min_value=0, max_value=10**6),
       lateness=st.sampled_from((5, 40, 150)))
def test_scenario_disorder_never_exceeds_its_bound(seed, lateness):
    # the construction invariant in_order_streams relies on: with
    # on_late="raise", any violation would throw instead of dropping
    scenario = disordered_scenario(seed, lateness, "heap")
    for node, events in scenario.disordered_streams().items():
        high = 0
        for event in events:
            high = max(high, event.time)
            assert high - event.time <= lateness, node
