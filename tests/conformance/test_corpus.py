"""Tier-1 replay of the committed conformance seed corpus.

Each ``corpus/*.json`` file is one interesting hand-picked scenario —
maximum query-group pressure, empty windows, a crash opening exactly on a
slice boundary, 64-fold sliding overlap, heavy link faults, and so on.
They replay bit-for-bit from their JSON alone, so any behavioral drift in
the engines shows up here as a differential failure.
"""

from __future__ import annotations

import os

import pytest

from repro.conformance import Scenario, evaluate_scenario, executor_matrix

CORPUS_DIR = os.path.join(os.path.dirname(__file__), "corpus")
CORPUS = sorted(
    name for name in os.listdir(CORPUS_DIR) if name.endswith(".json")
)


def load(name: str) -> Scenario:
    with open(os.path.join(CORPUS_DIR, name), encoding="utf-8") as handle:
        return Scenario.from_json(handle.read())


def test_corpus_is_big_enough():
    assert len(CORPUS) >= 10


def test_corpus_covers_the_interesting_cases():
    names = {name.removesuffix(".json") for name in CORPUS}
    for required in ("max-group-count", "empty-windows",
                     "crash-at-slice-boundary", "overlap-64-sliding"):
        assert required in names, required


@pytest.mark.parametrize("name", CORPUS)
def test_corpus_scenario_conforms(name):
    scenario = load(name)
    assert len(executor_matrix(scenario)) >= 4
    failures, executions = evaluate_scenario(scenario)
    assert not failures, failures
    assert "engine-exact" in executions


def test_overlap_64_actually_overlaps_64():
    scenario = load("overlap-64-sliding.json")
    q = scenario.queries[0]
    assert q.length // q.slide == 64


def test_crash_scenario_recovers_from_checkpoint():
    scenario = load("crash-at-slice-boundary.json")
    assert scenario.fault is not None and scenario.fault.crashes
    assert scenario.fault.crashes[0].start % scenario.tick_interval == 0
    _, executions = evaluate_scenario(scenario, metamorphic=False)
    faulty = executions["cluster-desis-faulty"]
    assert faulty.meta["recoveries"] >= 1
    assert faulty.meta["checkpoints"] >= 1
