"""Smoke tests: every example script runs end to end."""

from __future__ import annotations

import pathlib
import subprocess
import sys

import pytest

EXAMPLES = sorted(
    (pathlib.Path(__file__).parent.parent / "examples").glob("*.py")
)


@pytest.mark.parametrize("script", EXAMPLES, ids=lambda p: p.stem)
def test_example_runs(script):
    completed = subprocess.run(
        [sys.executable, str(script)],
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert completed.returncode == 0, completed.stderr
    assert completed.stdout.strip(), "example produced no output"


def test_examples_exist():
    assert len(EXAMPLES) >= 4
    names = {p.stem for p in EXAMPLES}
    assert "quickstart" in names
