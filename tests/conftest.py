"""Shared fixtures and stream builders for the test suite."""

from __future__ import annotations

import random

import pytest

from repro.core.event import Event


def make_stream(
    n: int,
    *,
    seed: int = 7,
    keys: tuple[str, ...] = ("a", "b"),
    dt_choices: tuple[int, ...] = (5, 10, 25),
    gap_every: int | None = None,
    gap_dt: int = 5_000,
    marker_every: int | None = None,
    marker: str = "trip_end",
    value_mod: int = 101,
    start: int = 0,
) -> list[Event]:
    """A deterministic pseudo-random in-order event stream.

    ``gap_every`` injects a long pause every so many events (for session
    windows); ``marker_every`` attaches a user-defined end marker.
    """
    rng = random.Random(seed)
    events = []
    t = start
    for i in range(n):
        if gap_every is not None and i and i % gap_every == 0:
            t += gap_dt
        else:
            t += rng.choice(dt_choices)
        events.append(
            Event(
                time=t,
                key=rng.choice(keys),
                value=float((i * 17) % value_mod),
                marker=marker if marker_every is not None and i % marker_every == marker_every - 1 else None,
            )
        )
    return events


@pytest.fixture
def small_stream() -> list[Event]:
    return make_stream(500)


@pytest.fixture
def gapped_stream() -> list[Event]:
    return make_stream(800, gap_every=97, gap_dt=4_000)
