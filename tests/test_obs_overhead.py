"""Smoke guard: observability must not tax the batched hot path.

The <5% budget for the no-op recorder holds by construction, and this
file pins that construction deterministically instead of trusting a
wall clock on a shared CI machine:

* with the default shared no-op recorder, the replay makes **zero**
  ``record`` calls — every hook sits behind ``if recorder.enabled:``, so
  the only cost is one attribute read per slice cut / window close
  (never per event);
* with an enabled recorder, ``record`` is called O(slices + windows)
  times, never O(events) — tracing can't creep into the per-event loop
  unnoticed.

A deliberately loose wall-clock check (interleaved, best-of-N, retried)
backs this up against catastrophic regressions only; the tight bound is
the call-count structure above.
"""

from __future__ import annotations

import time as _time

from repro.core.engine import AggregationEngine
from repro.harness import tumbling_queries
from repro.obs import NULL_RECORDER, TraceRecorder
from repro.obs.tracing import _NullRecorder

from tests.conftest import make_stream

N_EVENTS = 40_000
REPEATS = 3
ATTEMPTS = 3
#: catastrophic-regression ceiling for *enabled* tracing (the no-op case
#: is pinned exactly by the call-count assertions)
WALL_CLOCK_CEILING = 1.5


class _CountingNullRecorder(_NullRecorder):
    """Disabled recorder that counts hook invocations that slip through."""

    __slots__ = ("calls",)

    def __init__(self) -> None:
        super().__init__()
        self.calls = 0

    def record(self, kind, at, *, node="", group=-1, **data):
        self.calls += 1


def _replay(events, recorder):
    engine = AggregationEngine(tumbling_queries(1), recorder=recorder)
    started = _time.perf_counter()
    engine.process_batch(events)
    engine.close()
    elapsed = _time.perf_counter() - started
    rows = [
        (r.query_id, r.start, r.end, r.value, r.event_count, r.emitted_at)
        for r in engine.sink.results
    ]
    return elapsed, rows, engine


def test_noop_recorder_never_called_on_the_hot_path():
    events = make_stream(N_EVENTS)
    recorder = _CountingNullRecorder()
    _, _, engine = _replay(events, recorder)
    assert engine.stats.events == N_EVENTS
    assert recorder.calls == 0  # every hook honored the enabled guard


def test_enabled_recorder_cost_is_per_slice_not_per_event():
    events = make_stream(N_EVENTS)
    recorder = TraceRecorder()
    _, _, engine = _replay(events, recorder)
    traced = recorder._seq  # total record calls, eviction included
    budget = engine.stats.slices_closed + engine.stats.results
    assert 0 < traced <= budget
    assert traced < N_EVENTS / 10  # nowhere near O(events)


def test_default_engine_uses_the_shared_noop():
    engine = AggregationEngine(tumbling_queries(1))
    assert engine.recorder is NULL_RECORDER
    assert NULL_RECORDER.enabled is False


def test_wall_clock_smoke():
    """Tracing fully on must stay within the catastrophe ceiling of off."""
    events = make_stream(N_EVENTS)
    _replay(events, None)  # warm up caches outside the timed runs
    ratios = []
    for _ in range(ATTEMPTS):
        best = {"off": float("inf"), "on": float("inf")}
        rows = {}
        for _ in range(REPEATS):
            for mode, recorder in (("off", None), ("on", TraceRecorder())):
                elapsed, result_rows, _ = _replay(events, recorder)
                best[mode] = min(best[mode], elapsed)
                rows[mode] = result_rows
        assert rows["on"] == rows["off"], "tracing changed the results"
        ratio = best["on"] / best["off"]
        ratios.append(round(ratio, 3))
        if ratio <= WALL_CLOCK_CEILING:
            return
    raise AssertionError(
        f"enabled tracing exceeded {WALL_CLOCK_CEILING}x the no-op batched "
        f"path in every attempt: ratios={ratios}"
    )
