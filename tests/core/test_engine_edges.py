"""Engine edge cases: degenerate streams, identical timestamps, extremes."""

from __future__ import annotations

import pytest

from repro.core.engine import AggregationEngine
from repro.core.event import Event
from repro.core.predicates import Selection
from repro.core.query import Query, WindowSpec
from repro.core.types import AggFunction, WindowMeasure

from tests.oracle import naive_results


def run(queries, events):
    engine = AggregationEngine(queries)
    for event in events:
        engine.process(event)
    return engine.close()


class TestDegenerateStreams:
    def test_empty_stream(self):
        queries = [Query.of("q", WindowSpec.tumbling(100), AggFunction.SUM)]
        sink = run(queries, [])
        assert len(sink) == 0

    def test_single_event(self):
        queries = [
            Query.of("t", WindowSpec.tumbling(100), AggFunction.SUM),
            Query.of("s", WindowSpec.session(50), AggFunction.MAX),
        ]
        sink = run(queries, [Event(10, "a", 3.0)])
        assert [(r.query_id, r.value) for r in sorted(sink, key=lambda r: r.query_id)] == [
            ("s", 3.0),
            ("t", 3.0),
        ]

    def test_all_events_same_timestamp(self):
        events = [Event(100, "a", float(i)) for i in range(50)]
        queries = [
            Query.of("t", WindowSpec.tumbling(10), AggFunction.COUNT),
            Query.of(
                "c",
                WindowSpec.tumbling(20, measure=WindowMeasure.COUNT),
                AggFunction.COUNT,
            ),
        ]
        sink = run(queries, events)
        assert sum(r.value for r in sink.for_query("t")) == 50
        counts = [r.value for r in sink.for_query("c")]
        assert counts == [20, 20, 10]

    def test_no_matching_events(self):
        events = [Event(t, "other", 1.0) for t in range(0, 1_000, 10)]
        queries = [
            Query.of(
                "q",
                WindowSpec.tumbling(100),
                AggFunction.SUM,
                selection=Selection(key="wanted"),
            )
        ]
        assert len(run(queries, events)) == 0

    def test_huge_time_jump(self):
        events = [Event(0, "a", 1.0), Event(10_000_000, "a", 2.0)]
        queries = [Query.of("q", WindowSpec.tumbling(1_000), AggFunction.SUM)]
        sink = run(queries, events)
        assert len(sink) == 2  # only the two non-empty windows emitted

    def test_negative_values(self):
        events = [Event(t, "a", -float(t)) for t in range(0, 100, 10)]
        queries = [
            Query.of("min", WindowSpec.tumbling(1_000), AggFunction.MIN),
            Query.of("med", WindowSpec.tumbling(1_000), AggFunction.MEDIAN),
        ]
        sink = run(queries, events)
        assert sink.for_query("min")[0].value == -90.0
        assert sink.for_query("med")[0].value == -45.0


class TestBoundaryEvents:
    def test_event_on_window_boundary_goes_to_next_window(self):
        events = [Event(0, "a", 1.0), Event(100, "a", 2.0), Event(250, "a", 4.0)]
        queries = [Query.of("q", WindowSpec.tumbling(100), AggFunction.SUM)]
        sink = run(queries, events)
        by_start = {r.start: r.value for r in sink}
        assert by_start == {0: 1.0, 100: 2.0, 200: 4.0}

    def test_session_boundary_event_starts_new_session(self):
        gap = 100
        events = [Event(0, "a", 1.0), Event(100, "a", 2.0)]
        queries = [Query.of("q", WindowSpec.session(gap), AggFunction.SUM)]
        sink = run(queries, events)
        assert [r.value for r in sink] == [1.0, 2.0]

    def test_marker_event_included_in_its_window(self):
        events = [
            Event(0, "a", 1.0),
            Event(10, "a", 2.0, "end"),
            Event(20, "a", 4.0),
        ]
        queries = [
            Query.of("q", WindowSpec.user_defined(end_marker="end"), AggFunction.SUM)
        ]
        sink = run(queries, events)
        assert [r.value for r in sink] == [3.0, 4.0]

    def test_start_marker_windows_ignore_outside_events(self):
        events = [
            Event(0, "a", 1.0),          # before any trip: dropped
            Event(10, "a", 2.0, "go"),   # trip opens (inclusive)
            Event(20, "a", 4.0),
            Event(30, "a", 8.0, "end"),  # trip closes (inclusive)
            Event(40, "a", 16.0),        # between trips: dropped
        ]
        queries = [
            Query.of(
                "q",
                WindowSpec.user_defined(end_marker="end", start_marker="go"),
                AggFunction.SUM,
            )
        ]
        sink = run(queries, events)
        assert [r.value for r in sink] == [14.0]


class TestSelectionIsolation:
    def test_disjoint_ranges_share_group_with_exact_results(self):
        events = [Event(t, "k", float(t % 100)) for t in range(0, 3_000, 7)]
        fast = Query.of(
            "fast",
            WindowSpec.tumbling(500),
            AggFunction.COUNT,
            selection=Selection(lo=80.0),
        )
        slow = Query.of(
            "slow",
            WindowSpec.tumbling(500),
            AggFunction.COUNT,
            selection=Selection(hi=25.0),
        )
        engine = AggregationEngine([fast, slow])
        for event in events:
            engine.process(event)
        sink = engine.close()
        assert engine.group_count == 1
        for query in (fast, slow):
            expected = naive_results(query, events)
            got = [
                (r.start, r.end, r.value) for r in sink.for_query(query.query_id)
            ]
            assert got == [(s, e, v) for s, e, v, _ in expected]

    def test_value_range_and_key_combined(self):
        events = [
            Event(0, "speed", 90.0),
            Event(10, "speed", 50.0),
            Event(20, "temp", 95.0),
        ]
        query = Query.of(
            "q",
            WindowSpec.tumbling(1_000),
            AggFunction.COUNT,
            selection=Selection(key="speed", lo=80.0),
        )
        sink = run([query], events)
        assert sink.for_query("q")[0].value == 1
