"""Engine-vs-oracle correctness tests: every window type and function.

Each test runs the full sliced, shared engine and the naive oracle on the
same stream and compares every emitted window (bounds, value, and event
count).  This is the central correctness evidence for the aggregation
engine.
"""

from __future__ import annotations

import pytest

from repro.core.engine import AggregationEngine
from repro.core.predicates import Selection
from repro.core.query import Query, WindowSpec
from repro.core.types import AggFunction, SharingPolicy, WindowMeasure

from tests.conftest import make_stream
from tests.oracle import naive_results


def run_engine(queries, events, *, policy=SharingPolicy.FULL, mode="heap"):
    engine = AggregationEngine(queries, policy=policy, punctuation_mode=mode)
    for event in events:
        engine.process(event)
    return engine.close(), engine


def assert_matches_oracle(queries, events, *, policy=SharingPolicy.FULL, mode="heap"):
    sink, engine = run_engine(queries, events, policy=policy, mode=mode)
    for query in queries:
        expected = naive_results(query, events)
        got = [
            (r.start, r.end, r.value, r.event_count)
            for r in sink.for_query(query.query_id)
        ]
        assert len(got) == len(expected), (
            f"{query.query_id}: {len(got)} results, oracle says {len(expected)}"
        )
        for (gs, ge, gv, gn), (es, ee, ev_, en) in zip(got, expected):
            assert (gs, ge, gn) == (es, ee, en), query.query_id
            if ev_ is None:
                assert gv is None
            else:
                assert gv == pytest.approx(ev_), query.query_id
    return engine


FUNCTIONS = [
    (AggFunction.SUM, None),
    (AggFunction.COUNT, None),
    (AggFunction.AVERAGE, None),
    (AggFunction.MAX, None),
    (AggFunction.MIN, None),
    (AggFunction.MEDIAN, None),
    (AggFunction.QUANTILE, 0.25),
]


class TestTumbling:
    @pytest.mark.parametrize("fn,quantile", FUNCTIONS)
    def test_every_function(self, fn, quantile):
        events = make_stream(600)
        queries = [Query.of("q", WindowSpec.tumbling(500), fn, quantile=quantile)]
        assert_matches_oracle(queries, events)

    def test_multiple_lengths(self):
        events = make_stream(800)
        queries = [
            Query.of(f"q{i}", WindowSpec.tumbling(100 * i), AggFunction.AVERAGE)
            for i in range(1, 8)
        ]
        assert_matches_oracle(queries, events)

    def test_with_selection(self):
        events = make_stream(700, keys=("a", "b", "c"))
        queries = [
            Query.of(
                "qa",
                WindowSpec.tumbling(400),
                AggFunction.SUM,
                selection=Selection(key="a"),
            ),
            Query.of(
                "qb",
                WindowSpec.tumbling(400),
                AggFunction.SUM,
                selection=Selection(key="b"),
            ),
        ]
        engine = assert_matches_oracle(queries, events)
        # Disjoint key selections share one group with two contexts.
        assert engine.group_count == 1

    def test_product_and_geomean(self):
        events = [
            e for e in make_stream(300, value_mod=7)
        ]
        # Shift values into [1, 8) so products stay finite and positive.
        events = [
            type(e)(e.time, e.key, e.value + 1.0, e.marker) for e in events
        ]
        queries = [
            Query.of("p", WindowSpec.tumbling(50), AggFunction.PRODUCT),
            Query.of("g", WindowSpec.tumbling(50), AggFunction.GEOMETRIC_MEAN),
        ]
        assert_matches_oracle(queries, events)


class TestSliding:
    @pytest.mark.parametrize("fn,quantile", FUNCTIONS)
    def test_every_function(self, fn, quantile):
        events = make_stream(600)
        queries = [
            Query.of("q", WindowSpec.sliding(600, 150), fn, quantile=quantile)
        ]
        assert_matches_oracle(queries, events)

    def test_slide_larger_than_length(self):
        """Sampling windows: slide > length leaves gaps between windows."""
        events = make_stream(600)
        queries = [Query.of("q", WindowSpec.sliding(100, 300), AggFunction.SUM)]
        assert_matches_oracle(queries, events)

    def test_many_overlapping_slides(self):
        events = make_stream(500)
        queries = [
            Query.of(f"q{i}", WindowSpec.sliding(1_000, 100 + 50 * i), AggFunction.MAX)
            for i in range(5)
        ]
        assert_matches_oracle(queries, events)


class TestSession:
    @pytest.mark.parametrize("fn,quantile", FUNCTIONS)
    def test_every_function(self, fn, quantile):
        events = make_stream(600, gap_every=83, gap_dt=2_000)
        queries = [Query.of("q", WindowSpec.session(500), fn, quantile=quantile)]
        assert_matches_oracle(queries, events)

    def test_per_key_sessions(self):
        events = make_stream(700, keys=("a", "b"), gap_every=61, gap_dt=3_000)
        queries = [
            Query.of(
                "sa",
                WindowSpec.session(800),
                AggFunction.COUNT,
                selection=Selection(key="a"),
            ),
            Query.of(
                "sb",
                WindowSpec.session(800),
                AggFunction.COUNT,
                selection=Selection(key="b"),
            ),
        ]
        assert_matches_oracle(queries, events)

    def test_session_closed_by_time_passing_not_only_matches(self):
        """A non-matching event advancing time still closes an idle session."""
        from repro.core.event import Event

        events = [
            Event(0, "a", 1.0),
            Event(100, "a", 2.0),
            Event(5_000, "b", 9.0),  # key b: closes a's session by time
            Event(5_100, "a", 3.0),
        ]
        queries = [
            Query.of(
                "s",
                WindowSpec.session(300),
                AggFunction.SUM,
                selection=Selection(key="a"),
            )
        ]
        sink, _ = run_engine(queries, events)
        results = sink.for_query("s")
        assert [(r.start, r.end, r.value) for r in results] == [
            (0, 400, 3.0),
            (5_100, 5_100, 3.0),
        ]


class TestUserDefined:
    @pytest.mark.parametrize("fn,quantile", FUNCTIONS)
    def test_every_function(self, fn, quantile):
        events = make_stream(600, marker_every=75)
        queries = [
            Query.of(
                "q", WindowSpec.user_defined(end_marker="trip_end"), fn,
                quantile=quantile,
            )
        ]
        assert_matches_oracle(queries, events)

    def test_back_to_back_windows(self):
        events = make_stream(400, marker_every=50)
        queries = [
            Query.of(
                "q", WindowSpec.user_defined(end_marker="trip_end"), AggFunction.MAX
            )
        ]
        sink, _ = run_engine(queries, events)
        results = sink.for_query("q")
        # Windows are contiguous in sequence: 8 complete trips of 50 events.
        assert len(results) == 8
        assert all(r.event_count == 50 for r in results)


class TestCountBased:
    @pytest.mark.parametrize("fn,quantile", FUNCTIONS)
    def test_tumbling_count(self, fn, quantile):
        events = make_stream(600)
        queries = [
            Query.of(
                "q",
                WindowSpec.tumbling(64, measure=WindowMeasure.COUNT),
                fn,
                quantile=quantile,
            )
        ]
        assert_matches_oracle(queries, events)

    def test_sliding_count(self):
        events = make_stream(500)
        queries = [
            Query.of(
                "q",
                WindowSpec.sliding(100, 25, measure=WindowMeasure.COUNT),
                AggFunction.AVERAGE,
            )
        ]
        assert_matches_oracle(queries, events)

    def test_count_with_selection_counts_matching_only(self):
        events = make_stream(600, keys=("a", "b"))
        queries = [
            Query.of(
                "q",
                WindowSpec.tumbling(40, measure=WindowMeasure.COUNT),
                AggFunction.SUM,
                selection=Selection(key="a"),
            )
        ]
        assert_matches_oracle(queries, events)


class TestMixedWorkload:
    """The Fig 3 scenario: five window types in one query-group."""

    def queries(self):
        return [
            Query.of("qa", WindowSpec.tumbling(900), AggFunction.MAX),
            Query.of("qb", WindowSpec.sliding(1_200, 300), AggFunction.MEDIAN),
            Query.of("qc", WindowSpec.session(700), AggFunction.SUM),
            Query.of(
                "qd", WindowSpec.user_defined(end_marker="trip_end"), AggFunction.COUNT
            ),
            Query.of(
                "qe",
                WindowSpec.tumbling(50, measure=WindowMeasure.COUNT),
                AggFunction.AVERAGE,
            ),
        ]

    def test_one_group_correct_results(self):
        events = make_stream(900, gap_every=111, gap_dt=2_500, marker_every=80)
        engine = assert_matches_oracle(self.queries(), events)
        assert engine.group_count == 1

    def test_scan_mode_matches_heap_mode(self):
        """The baselines' per-event punctuation scan yields identical output."""
        events = make_stream(600, gap_every=90, gap_dt=2_500, marker_every=70)
        queries = [q for q in self.queries() if q.query_id != "qd"]
        heap_sink, _ = run_engine(queries, events, mode="heap")
        scan_sink, _ = run_engine(queries, events, mode="scan")
        key = lambda r: (r.query_id, r.start, r.end)
        assert sorted(
            [(r.query_id, r.start, r.end, r.value) for r in heap_sink], key=str
        ) == sorted(
            [(r.query_id, r.start, r.end, r.value) for r in scan_sink], key=str
        )

    def test_policies_produce_identical_results(self):
        """Sharing changes work, never answers: all policies agree."""
        events = make_stream(500, gap_every=90, gap_dt=2_500)
        queries = [q for q in self.queries() if q.query_id != "qd"]
        outputs = []
        for policy in SharingPolicy:
            sink, _ = run_engine(queries, events, policy=policy)
            outputs.append(
                sorted((r.query_id, r.start, r.end, r.value) for r in sink)
            )
        assert all(out == outputs[0] for out in outputs[1:])
