"""Tests for the user-defined operator extension: variance and stddev.

Sec 4.2.1: "for complex aggregation functions, users can define new
operators to break down functions".  Variance/stddev decompose into
{sum, count, sum_of_squares}, so they share per-event work with
average/sum/count queries and push down in decentralized mode.
"""

from __future__ import annotations

import statistics

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.engine import AggregationEngine
from repro.core.functions import FunctionSpec, is_decomposable, plan_operators
from repro.core.query import Query, WindowSpec
from repro.core.types import AggFunction, OperatorKind, SharingPolicy

from tests.conftest import make_stream
from tests.oracle import naive_results

K = OperatorKind


class TestDecomposition:
    def test_variance_operators(self):
        plan = plan_operators([FunctionSpec(AggFunction.VARIANCE)])
        assert set(plan) == {K.SUM, K.COUNT, K.SUM_OF_SQUARES}

    def test_shares_with_average(self):
        """avg + variance + stddev need only one extra operator over avg."""
        plan = plan_operators(
            [
                FunctionSpec(AggFunction.AVERAGE),
                FunctionSpec(AggFunction.VARIANCE),
                FunctionSpec(AggFunction.STDDEV),
            ]
        )
        assert set(plan) == {K.SUM, K.COUNT, K.SUM_OF_SQUARES}

    def test_decomposable(self):
        assert is_decomposable(FunctionSpec(AggFunction.VARIANCE))
        assert is_decomposable(FunctionSpec(AggFunction.STDDEV))


class TestCorrectness:
    @pytest.mark.parametrize("fn", [AggFunction.VARIANCE, AggFunction.STDDEV])
    def test_matches_oracle(self, fn):
        events = make_stream(500)
        queries = [Query.of("q", WindowSpec.tumbling(400), fn)]
        engine = AggregationEngine(queries)
        for event in events:
            engine.process(event)
        sink = engine.close()
        expected = naive_results(queries[0], events)
        got = [(r.start, r.end, r.value) for r in sink.for_query("q")]
        assert len(got) == len(expected)
        for (gs, ge, gv), (es, ee, ev, _) in zip(got, expected):
            assert (gs, ge) == (es, ee)
            assert gv == pytest.approx(ev, abs=1e-9)

    @given(
        st.lists(
            st.floats(min_value=-1e3, max_value=1e3, allow_nan=False),
            min_size=2,
            max_size=60,
        )
    )
    def test_variance_matches_statistics(self, values):
        from repro.core.event import Event

        events = [Event(i, "a", v) for i, v in enumerate(values)]
        queries = [
            Query.of("q", WindowSpec.tumbling(len(values) + 1), AggFunction.VARIANCE)
        ]
        engine = AggregationEngine(queries)
        for event in events:
            engine.process(event)
        (result,) = engine.close().for_query("q")
        assert result.value == pytest.approx(
            statistics.pvariance(values), abs=1e-6, rel=1e-6
        )

    def test_shared_calculations_with_average(self):
        events = make_stream(400)
        queries = [
            Query.of("avg", WindowSpec.tumbling(500), AggFunction.AVERAGE),
            Query.of("var", WindowSpec.tumbling(700), AggFunction.VARIANCE),
            Query.of("std", WindowSpec.tumbling(900), AggFunction.STDDEV),
        ]
        engine = AggregationEngine(queries)
        for event in events:
            engine.process(event)
        engine.close()
        # Three operators per event serve all three queries.
        assert engine.stats.calculations == 3 * len(events)


class TestIntegration:
    def test_parser_accepts_stddev(self):
        from repro.interface import parse_query

        query = parse_query(
            "SELECT STDDEV(value) FROM stream WINDOW TUMBLING 5s", query_id="q"
        )
        assert query.function.fn is AggFunction.STDDEV

    def test_decentralized_variance_parity(self):
        from repro.cluster import ClusterConfig, DesisCluster
        from repro.core.event import merge_streams
        from repro.network.topology import three_tier

        from tests.cluster.test_desis_parity import TICK, make_streams

        queries = [Query.of("v", WindowSpec.tumbling(1_000), AggFunction.VARIANCE)]
        streams = make_streams(3, 300)
        result = DesisCluster(
            queries, three_tier(3, 1), config=ClusterConfig(tick_interval=TICK)
        ).run(streams)
        merged = list(merge_streams(*streams.values()))
        engine = AggregationEngine(queries)
        engine.advance(0)
        for event in merged:
            engine.process(event)
        sink = engine.close(((merged[-1].time // TICK) + 1) * TICK)
        got = sorted(
            (r.start, r.end, r.event_count, round(float(r.value), 9))
            for r in result.sink
        )
        expected = sorted(
            (r.start, r.end, r.event_count, round(float(r.value), 9))
            for r in sink
        )
        assert got == expected
