"""Tests for query dict (de)serialization (window-attribute broadcast)."""

from __future__ import annotations

import json

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.errors import QueryError
from repro.core.functions import FunctionSpec
from repro.core.predicates import Selection
from repro.core.query import Query, WindowSpec
from repro.core.serde import query_from_dict, query_to_dict
from repro.core.types import AggFunction, WindowMeasure


@st.composite
def queries(draw):
    kind = draw(st.sampled_from(["tumbling", "sliding", "session", "userdef"]))
    if kind == "tumbling":
        window = WindowSpec.tumbling(
            draw(st.integers(1, 10_000)),
            measure=draw(st.sampled_from(list(WindowMeasure))),
        )
    elif kind == "sliding":
        window = WindowSpec.sliding(
            draw(st.integers(1, 10_000)), draw(st.integers(1, 10_000))
        )
    elif kind == "session":
        window = WindowSpec.session(draw(st.integers(1, 10_000)))
    else:
        window = WindowSpec.user_defined(
            end_marker=draw(st.sampled_from(["end", "stop"])),
            start_marker=draw(st.sampled_from([None, "go"])),
        )
    fn = draw(st.sampled_from(list(AggFunction)))
    quantile = draw(st.floats(0.01, 0.99)) if fn is AggFunction.QUANTILE else None
    selection = Selection(
        key=draw(st.sampled_from([None, "a", "b"])),
        lo=draw(st.sampled_from([None, 0.0, 10.0])),
        hi=draw(st.sampled_from([None, 50.0, 100.0])),
    )
    return Query(
        query_id=draw(st.text(min_size=1, max_size=8)),
        window=window,
        function=FunctionSpec(fn, quantile),
        selection=selection,
    )


@given(query=queries())
def test_roundtrip(query):
    assert query_from_dict(query_to_dict(query)) == query


@given(query=queries())
def test_dict_is_json_compatible(query):
    payload = json.dumps(query_to_dict(query))
    assert query_from_dict(json.loads(payload)) == query


def test_malformed_dict_raises():
    with pytest.raises(QueryError):
        query_from_dict({"query_id": "q"})
    with pytest.raises(QueryError):
        query_from_dict(
            {
                "query_id": "q",
                "window": {"type": "nonsense", "measure": "time"},
                "function": {"fn": "sum"},
            }
        )
