"""Tests for selection predicates and query-group compatibility (Sec 4.2.3)."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.errors import QueryError
from repro.core.event import Event
from repro.core.predicates import (
    Selection,
    SelectionRelation,
    compatible,
    selection_relation,
)

R = SelectionRelation


def ev(key: str = "a", value: float = 1.0) -> Event:
    return Event(time=0, key=key, value=value)


class TestMatches:
    def test_pass_all(self):
        sel = Selection()
        assert sel.is_pass_all
        assert sel.matches(ev("x", -1e9))

    def test_key_filter(self):
        sel = Selection(key="speed")
        assert sel.matches(ev("speed"))
        assert not sel.matches(ev("temp"))

    def test_value_range_is_half_open(self):
        sel = Selection(lo=10.0, hi=20.0)
        assert sel.matches(ev(value=10.0))
        assert sel.matches(ev(value=19.999))
        assert not sel.matches(ev(value=20.0))
        assert not sel.matches(ev(value=9.999))

    def test_open_bounds(self):
        assert Selection(lo=5.0).matches(ev(value=1e9))
        assert Selection(hi=5.0).matches(ev(value=-1e9))

    def test_empty_range_rejected(self):
        with pytest.raises(QueryError):
            Selection(lo=5.0, hi=5.0)

    def test_str_is_sql_ish(self):
        assert str(Selection()) == "TRUE"
        assert "key = 'speed'" in str(Selection(key="speed", lo=80.0))


class TestRelation:
    def test_identical_selections_are_equal(self):
        a = Selection(key="speed", lo=80.0)
        assert selection_relation(a, Selection(key="speed", lo=80.0)) is R.EQUAL

    def test_different_keys_are_disjoint(self):
        assert (
            selection_relation(Selection(key="a"), Selection(key="b")) is R.DISJOINT
        )

    def test_paper_example_disjoint_ranges(self):
        """WHERE speed > 80 and WHERE speed < 25 may share a group."""
        fast = Selection(key="speed", lo=80.0)
        slow = Selection(key="speed", hi=25.0)
        assert selection_relation(fast, slow) is R.DISJOINT
        assert compatible(fast, slow)

    def test_partial_range_overlap(self):
        a = Selection(lo=0.0, hi=50.0)
        b = Selection(lo=25.0, hi=75.0)
        assert selection_relation(a, b) is R.OVERLAPPING
        assert not compatible(a, b)

    def test_touching_ranges_are_disjoint(self):
        a = Selection(lo=0.0, hi=50.0)
        b = Selection(lo=50.0, hi=100.0)
        assert selection_relation(a, b) is R.DISJOINT

    def test_containment_is_overlap(self):
        """A pass-all selection strictly contains any keyed one."""
        assert selection_relation(Selection(), Selection(key="a")) is R.OVERLAPPING
        assert not compatible(Selection(), Selection(key="a"))

    def test_keyed_vs_all_keys_disjoint_ranges_ok(self):
        a = Selection(key="a", lo=0.0, hi=10.0)
        b = Selection(lo=10.0, hi=20.0)
        assert selection_relation(a, b) is R.DISJOINT

    def test_pass_all_with_itself(self):
        assert selection_relation(Selection(), Selection()) is R.EQUAL


selections = st.builds(
    Selection,
    key=st.sampled_from([None, "a", "b"]),
    lo=st.sampled_from([None, 0.0, 10.0, 50.0]),
    hi=st.sampled_from([None, 60.0, 100.0]),
)
event_values = st.floats(min_value=-10.0, max_value=120.0, allow_nan=False)
event_keys = st.sampled_from(["a", "b", "c"])


class TestRelationProperties:
    @given(a=selections, b=selections)
    def test_relation_is_symmetric(self, a, b):
        assert selection_relation(a, b) is selection_relation(b, a)

    @given(a=selections, b=selections, key=event_keys, value=event_values)
    def test_disjoint_means_no_common_event(self, a, b, key, value):
        event = ev(key, value)
        if selection_relation(a, b) is R.DISJOINT:
            assert not (a.matches(event) and b.matches(event))

    @given(a=selections, b=selections, key=event_keys, value=event_values)
    def test_equal_means_same_matching(self, a, b, key, value):
        event = ev(key, value)
        if selection_relation(a, b) is R.EQUAL:
            assert a.matches(event) == b.matches(event)
