"""Tests for slices and the reference-counted slice store."""

from __future__ import annotations

import pytest

from repro.core.errors import EngineError
from repro.core.operators import merge_many_partials
from repro.core.slices import Slice, SliceStore
from repro.core.types import OperatorKind

K = OperatorKind
KINDS = (K.SUM, K.COUNT)


def closed_slice(index: int, values_by_ctx: dict[int, list[float]], span=(0, 10)):
    s = Slice(index=index, start=span[0])
    for ctx, values in values_by_ctx.items():
        for v in values:
            s.insert(ctx, v, KINDS)
    s.close(span[1])
    return s


class TestSlice:
    def test_lazy_context_creation(self):
        s = Slice(0, 0)
        assert not s.contexts
        s.insert(3, 1.0, KINDS)
        assert set(s.contexts) == {3}

    def test_close_freezes_partials(self):
        s = closed_slice(0, {0: [1.0, 2.0], 1: [5.0]})
        assert s.partials[0][K.SUM] == 3.0
        assert s.partials[0][K.COUNT] == 2
        assert s.partials[1][K.SUM] == 5.0
        assert s.insert_counts == {0: 2, 1: 1}
        assert s.total_inserts == 3
        assert not s.contexts  # open state is discarded

    def test_double_close_raises(self):
        s = closed_slice(0, {})
        with pytest.raises(EngineError):
            s.close(20)

    def test_repr_mentions_state(self):
        s = Slice(7, 0)
        assert "open" in repr(s)
        s.close(5)
        assert "closed" in repr(s)


class TestSliceStore:
    def test_rejects_open_slice(self):
        store = SliceStore()
        with pytest.raises(EngineError):
            store.add(Slice(0, 0), refcount=1)

    def test_zero_refcount_drops_immediately(self):
        store = SliceStore()
        store.add(closed_slice(0, {0: [1.0]}), refcount=0)
        assert len(store) == 0
        assert store.freed == 1

    def test_release_gc_frees_front(self):
        store = SliceStore()
        for i in range(3):
            store.add(closed_slice(i, {0: [float(i)]}), refcount=1)
        assert len(store) == 3
        store.release(0, 1)
        assert len(store) == 1
        assert store.get(2) is not None
        store.release(2, 2)
        assert len(store) == 0

    def test_gc_stops_at_live_slice(self):
        store = SliceStore()
        store.add(closed_slice(0, {0: [1.0]}), refcount=2)
        store.add(closed_slice(1, {0: [1.0]}), refcount=1)
        store.release(0, 1)  # slice 0 still held by one window
        assert len(store) == 2
        store.release(0, 0)
        assert len(store) == 0

    def test_merge_context_partials(self):
        store = SliceStore()
        store.add(closed_slice(0, {0: [1.0, 2.0]}), refcount=1)
        store.add(closed_slice(1, {1: [9.0]}), refcount=1)  # other context
        store.add(closed_slice(2, {0: [3.0]}), refcount=1)
        merged, events, merge_ops = store.merge_context_partials(
            0, 2, ctx=0, kinds=KINDS, merge=merge_many_partials
        )
        assert merged[K.SUM] == 6.0
        assert merged[K.COUNT] == 3
        assert events == 3
        # two contributing slices, one partial each per kind
        assert merge_ops == 2 * len(KINDS)

    def test_merge_skips_missing_slices(self):
        store = SliceStore()
        store.add(closed_slice(5, {0: [4.0]}), refcount=1)
        merged, events, merge_ops = store.merge_context_partials(
            0, 9, ctx=0, kinds=(K.SUM,), merge=merge_many_partials
        )
        assert merged[K.SUM] == 4.0
        assert events == 1
        assert merge_ops == 1

    def test_merge_empty_context_returns_nothing(self):
        store = SliceStore()
        store.add(closed_slice(0, {1: [4.0]}), refcount=1)
        merged, events, merge_ops = store.merge_context_partials(
            0, 0, ctx=0, kinds=KINDS, merge=merge_many_partials
        )
        assert merged == {}
        assert events == 0
        assert merge_ops == 0
