"""Tests for window deduplication: identical windows share one instance."""

from __future__ import annotations

import pytest

from repro.core.engine import AggregationEngine
from repro.core.event import Event
from repro.core.predicates import Selection
from repro.core.query import Query, WindowSpec
from repro.core.types import AggFunction

from tests.conftest import make_stream


def run(queries, events):
    engine = AggregationEngine(queries)
    for event in events:
        engine.process(event)
    return engine, engine.close()


class TestDeduplication:
    def test_identical_windows_share_an_instance(self):
        queries = [
            Query.of(f"q{i}", WindowSpec.tumbling(500), AggFunction.AVERAGE)
            for i in range(100)
        ]
        events = make_stream(300, dt_choices=(10,))
        engine, sink = run(queries, events)
        # One tracker, one window instance per 500ms — but 100 results.
        runtime = engine.groups[0]
        assert len(runtime.fixed) == 1
        assert engine.stats.windows_closed * 100 == engine.stats.results
        first_window_results = [r for r in sink if r.start == events[0].time]
        assert len(first_window_results) == 100
        assert len({r.value for r in first_window_results}) == 1

    def test_different_functions_share_window_not_result(self):
        spec = WindowSpec.tumbling(1_000)
        queries = [
            Query.of("avg", spec, AggFunction.AVERAGE),
            Query.of("sum", spec, AggFunction.SUM),
            Query.of("max", spec, AggFunction.MAX),
        ]
        events = [Event(0, "a", 2.0), Event(100, "a", 4.0), Event(1_500, "a", 0.0)]
        engine, sink = run(queries, events)
        assert len(engine.groups[0].fixed) == 1
        assert sink.for_query("avg")[0].value == 3.0
        assert sink.for_query("sum")[0].value == 6.0
        assert sink.for_query("max")[0].value == 4.0

    def test_different_selections_do_not_share(self):
        spec = WindowSpec.tumbling(1_000)
        queries = [
            Query.of("a", spec, AggFunction.SUM, selection=Selection(key="a")),
            Query.of("b", spec, AggFunction.SUM, selection=Selection(key="b")),
        ]
        engine, _ = run(queries, [Event(0, "a", 1.0), Event(1_500, "b", 1.0)])
        assert len(engine.groups[0].fixed) == 2

    def test_different_lengths_do_not_share(self):
        queries = [
            Query.of("a", WindowSpec.tumbling(1_000), AggFunction.SUM),
            Query.of("b", WindowSpec.tumbling(2_000), AggFunction.SUM),
        ]
        engine, _ = run(queries, [Event(0, "a", 1.0), Event(2_500, "a", 1.0)])
        assert len(engine.groups[0].fixed) == 2

    def test_session_subscribers_share_gap_tracking(self):
        queries = [
            Query.of(f"s{i}", WindowSpec.session(300), AggFunction.COUNT)
            for i in range(5)
        ]
        events = [Event(0, "a", 1.0), Event(100, "a", 1.0), Event(1_000, "a", 1.0)]
        engine, sink = run(queries, events)
        assert len(engine.groups[0].sessions) == 1
        for i in range(5):
            counts = [r.value for r in sink.for_query(f"s{i}")]
            assert counts == [2, 1]


class TestRuntimeInteraction:
    def test_removed_subscriber_stops_receiving(self):
        spec = WindowSpec.tumbling(500)
        queries = [
            Query.of("keep", spec, AggFunction.SUM),
            Query.of("drop", spec, AggFunction.SUM),
        ]
        engine = AggregationEngine(queries)
        engine.process(Event(0, "a", 1.0))
        engine.remove_query("drop")
        engine.process(Event(600, "a", 2.0))
        sink = engine.close()
        assert len(sink.for_query("keep")) == 2
        assert len(sink.for_query("drop")) == 0  # window was still open

    def test_drain_removal_finishes_open_windows(self):
        """Sec 3.2: removal may 'wait for the last window to end'."""
        spec = WindowSpec.tumbling(500)
        engine = AggregationEngine([Query.of("q", spec, AggFunction.SUM)])
        engine.process(Event(0, "a", 1.0))
        engine.remove_query("q", drain=True)
        engine.process(Event(100, "a", 2.0))   # still in the open window
        engine.process(Event(700, "a", 4.0))   # a new window q never joins
        sink = engine.close()
        results = sink.for_query("q")
        assert [r.value for r in results] == [3.0]  # open window completed

    def test_drain_removal_with_shared_tracker(self):
        spec = WindowSpec.tumbling(500)
        engine = AggregationEngine(
            [
                Query.of("keep", spec, AggFunction.SUM),
                Query.of("drop", spec, AggFunction.SUM),
            ]
        )
        engine.process(Event(0, "a", 1.0))
        engine.remove_query("drop", drain=True)
        engine.process(Event(700, "a", 2.0))
        sink = engine.close()
        assert len(sink.for_query("drop")) == 1  # the draining window only
        assert len(sink.for_query("keep")) == 2

    def test_late_subscriber_joins_next_window(self):
        spec = WindowSpec.tumbling(500)
        engine = AggregationEngine([Query.of("early", spec, AggFunction.SUM)])
        engine.process(Event(0, "a", 1.0))
        engine.add_query(Query.of("late", spec, AggFunction.SUM))
        engine.process(Event(100, "a", 2.0))   # still window [0, 500)
        engine.process(Event(600, "a", 4.0))   # window [500, 1000)
        sink = engine.close()
        assert [r.value for r in sink.for_query("early")] == [3.0, 4.0]
        assert [r.value for r in sink.for_query("late")] == [4.0]

    def test_scaling_many_identical_queries_is_cheap(self):
        """10k identical queries: one shared tracker, per-query work only
        at result materialization (the paper's 'millions of queries')."""
        queries = [
            Query.of(f"q{i}", WindowSpec.tumbling(1_000), AggFunction.AVERAGE)
            for i in range(10_000)
        ]
        events = [Event(t, "a", 1.0) for t in range(0, 2_000, 50)]
        engine, sink = run(queries, events)
        assert engine.stats.calculations == 2 * len(events)  # sum + count
        assert engine.stats.windows_closed == 2
        assert engine.stats.results == 20_000
