"""Tests for the deduplication non-aggregate operator (Sec 4.2.3)."""

from __future__ import annotations

import pytest

from repro.core.engine import AggregationEngine
from repro.core.event import Event
from repro.core.predicates import Selection
from repro.core.query import Query, WindowSpec
from repro.core.types import AggFunction


def run(queries, events):
    engine = AggregationEngine(queries)
    for event in events:
        engine.process(event)
    return engine, engine.close()


DUPLICATED = [
    Event(0, "a", 1.0),
    Event(0, "a", 1.0),      # exact duplicate
    Event(10, "a", 2.0),
    Event(10, "a", 2.0),     # exact duplicate
    Event(10, "a", 3.0),     # same time, different value: kept
]


class TestDeduplication:
    def test_duplicates_dropped_for_dedup_query(self):
        queries = [
            Query.of(
                "d",
                WindowSpec.tumbling(1_000),
                AggFunction.SUM,
                selection=Selection(deduplicate=True),
            )
        ]
        engine, sink = run(queries, DUPLICATED)
        (result,) = sink.for_query("d")
        assert result.value == 6.0  # 1 + 2 + 3
        assert result.event_count == 3
        assert engine.stats.duplicates_dropped == 2

    def test_plain_query_keeps_duplicates(self):
        queries = [
            Query.of("p", WindowSpec.tumbling(1_000), AggFunction.SUM)
        ]
        _, sink = run(queries, DUPLICATED)
        assert sink.for_query("p")[0].value == 9.0

    def test_dedup_and_plain_share_group_with_separate_contexts(self):
        """The aggregation engine binds non-aggregate operators per
        selection context, so dedup and plain queries coexist in one
        query-group with individual results."""
        queries = [
            Query.of(
                "d",
                WindowSpec.tumbling(1_000),
                AggFunction.SUM,
                selection=Selection(deduplicate=True),
            ),
            Query.of("p", WindowSpec.tumbling(1_000), AggFunction.SUM),
        ]
        engine, sink = run(queries, DUPLICATED)
        assert engine.group_count == 1
        assert sink.for_query("d")[0].value == 6.0
        assert sink.for_query("p")[0].value == 9.0

    def test_dedup_scope_is_per_slice(self):
        """Duplicates in different slices are both aggregated: the
        deduplication state is slice-local (partial results must stay
        mergeable)."""
        queries = [
            Query.of(
                "d",
                WindowSpec.tumbling(100),
                AggFunction.COUNT,
                selection=Selection(deduplicate=True),
            )
        ]
        events = [Event(0, "a", 1.0), Event(150, "a", 1.0)]
        _, sink = run(queries, events)
        assert sum(r.value for r in sink.for_query("d")) == 2

    def test_parser_distinct_keyword(self):
        from repro.interface import parse_query

        query = parse_query(
            "SELECT AVG(DISTINCT value) FROM stream WINDOW TUMBLING 1s",
            query_id="q",
        )
        assert query.selection.deduplicate

    def test_serde_roundtrip_preserves_flag(self):
        from repro.core.serde import query_from_dict, query_to_dict

        query = Query.of(
            "q",
            WindowSpec.tumbling(10),
            AggFunction.SUM,
            selection=Selection(key="a", deduplicate=True),
        )
        assert query_from_dict(query_to_dict(query)) == query


class TestMemoryPeaks:
    def test_peak_counters_track_highs(self):
        queries = [
            Query.of("long", WindowSpec.sliding(2_000, 100), AggFunction.SUM)
        ]
        engine, _ = run(
            queries, [Event(t, "a", 1.0) for t in range(0, 3_000, 25)]
        )
        # A 2s window over 100ms slices keeps ~20 slices and windows live.
        assert 15 <= engine.stats.peak_live_slices <= 30
        assert 15 <= engine.stats.peak_open_windows <= 30

    def test_tumbling_keeps_single_slice(self):
        queries = [Query.of("t", WindowSpec.tumbling(100), AggFunction.SUM)]
        engine, _ = run(
            queries, [Event(t, "a", 1.0) for t in range(0, 2_000, 10)]
        )
        assert engine.stats.peak_live_slices == 1
        assert engine.stats.peak_open_windows == 1
