"""Parity tests for the incremental slice-merge layer (repro.core.incmerge).

Three layers of evidence for the ``merge_mode`` contract (DESIGN.md §9):

* :class:`FifoAggregator` against a brute-force fold over the live items,
  under randomized push/evict/query schedules;
* seeded randomized query mixes (length, slide, function, key selection)
  driven through ``merge_mode="exact"`` and ``merge_mode="incremental"``
  and compared with the naive oracle — identical bounds/counts/ids,
  exact equality for COUNT/extrema/sorted results, 1e-9 relative for
  float accumulators;
* a seed-replica test: ``merge_mode="exact"`` must stay *byte-identical*
  to the pre-layer merge path (an independent fold of the closed slices'
  partials with ``merge_many_partials``, exactly what the seed engine's
  ``_close_window`` did).
"""

from __future__ import annotations

import dataclasses
import math
import random

import pytest

from repro.core.engine import AggregationEngine, EngineStats, GroupRuntime
from repro.core.analyzer import analyze
from repro.core.functions import finalize
from repro.core.incmerge import (
    DECOMPOSABLE_MERGE_KINDS,
    FifoAggregator,
    IncrementalMergeLayer,
)
from repro.core.operators import merge_many_partials, merge_partials
from repro.core.predicates import Selection
from repro.core.query import Query, WindowSpec
from repro.core.results import ResultSink
from repro.core.types import AggFunction, OperatorKind, SharingPolicy

from tests.conftest import make_stream
from tests.oracle import naive_results

# -- helpers ------------------------------------------------------------------------

#: functions whose finalized result rides only comparison/integer operators
#: and must therefore be *exactly* equal in both merge modes
EXACT_FUNCTIONS = (AggFunction.COUNT, AggFunction.MAX, AggFunction.MIN,
                   AggFunction.MEDIAN)
#: float-accumulator functions: 1e-9 relative between merge modes
FLOAT_FUNCTIONS = (AggFunction.SUM, AggFunction.AVERAGE, AggFunction.VARIANCE,
                   AggFunction.STDDEV)


def run_engine(queries, events, *, merge_mode, close_at=None):
    engine = AggregationEngine(list(queries), merge_mode=merge_mode)
    engine.process_batch(list(events))
    engine.close(close_at)
    return engine


def rows(engine, query_id):
    return [
        (r.start, r.end, r.value, r.event_count)
        for r in engine.sink.for_query(query_id)
    ]


def assert_mode_parity(queries, events, *, close_at=None):
    """Exact vs incremental: same windows, values within the contract.

    Returns the two engines for extra assertions.
    """
    exact = run_engine(queries, events, merge_mode="exact", close_at=close_at)
    inc = run_engine(queries, events, merge_mode="incremental",
                     close_at=close_at)
    for query in queries:
        left = rows(exact, query.query_id)
        right = rows(inc, query.query_id)
        assert len(left) == len(right), query.query_id
        strict = query.function.fn in EXACT_FUNCTIONS or (
            query.function.fn is AggFunction.QUANTILE
        )
        for (ls, le, lv, ln), (rs, re_, rv, rn) in zip(left, right):
            assert (ls, le, ln) == (rs, re_, rn), query.query_id
            if strict or lv is None:
                assert lv == rv, query.query_id
            else:
                assert math.isclose(lv, rv, rel_tol=1e-9, abs_tol=1e-9), (
                    f"{query.query_id}: {lv!r} vs {rv!r} in [{ls}..{le})"
                )
    return exact, inc


def assert_matches_oracle(engine, queries, events):
    for query in queries:
        expected = naive_results(query, events)
        got = rows(engine, query.query_id)
        assert len(got) == len(expected), query.query_id
        for (gs, ge, gv, gn), (es, ee, ev_, en) in zip(got, expected):
            assert (gs, ge, gn) == (es, ee, en), query.query_id
            if ev_ is None:
                assert gv is None, query.query_id
            else:
                assert gv == pytest.approx(ev_), query.query_id


# -- FifoAggregator vs brute force --------------------------------------------------


def brute_force(items, kinds):
    """Oldest-to-newest fold of ``(pos, ops, count)`` items, the spec the
    Two-Stacks structure must match."""
    merged: dict[OperatorKind, object] = {}
    count = 0
    for _, ops, item_count in items:
        count += item_count
        for kind in kinds:
            part = ops.get(kind)
            if part is None and kind is not OperatorKind.DECOMPOSABLE_SORT:
                continue
            if kind in merged:
                merged[kind] = merge_partials(kind, merged[kind], part)
            else:
                merged[kind] = part
    return merged, count


def random_item(rng, pos, kinds):
    ops = {}
    for kind in kinds:
        if kind is OperatorKind.SUM:
            ops[kind] = float(rng.randrange(-50, 50))
        elif kind is OperatorKind.COUNT:
            ops[kind] = rng.randrange(0, 9)
        elif kind is OperatorKind.MULTIPLICATION:
            ops[kind] = 1.0 + rng.randrange(0, 4) / 16.0
        elif kind is OperatorKind.SUM_OF_SQUARES:
            ops[kind] = float(rng.randrange(0, 100))
        elif kind is OperatorKind.DECOMPOSABLE_SORT:
            if rng.random() < 0.2:
                ops[kind] = None
            else:
                lo = float(rng.randrange(-30, 30))
                ops[kind] = (lo, lo + rng.randrange(0, 10))
    return pos, ops, rng.randrange(0, 5)


class TestFifoAggregator:
    KINDS = (
        OperatorKind.SUM,
        OperatorKind.COUNT,
        OperatorKind.MULTIPLICATION,
        OperatorKind.SUM_OF_SQUARES,
        OperatorKind.DECOMPOSABLE_SORT,
    )

    @pytest.mark.parametrize("seed", range(8))
    def test_randomized_schedule_matches_brute_force(self, seed):
        """Integer-valued partials make the fold exact, so any divergence
        from the brute force is a structural bug, not float noise."""
        rng = random.Random(seed)
        agg = FifoAggregator(self.KINDS)
        live: list[tuple] = []
        pos = 0
        for _ in range(400):
            action = rng.random()
            if action < 0.55 or not live:
                pos += rng.randrange(1, 4)
                item = random_item(rng, pos, self.KINDS)
                live.append(item)
                agg.push(*item)
            elif action < 0.8:
                cut = rng.randrange(0, len(live))
                bound = live[cut][0] + rng.choice((0, 1))
                agg.evict_below(bound)
                live = [item for item in live if item[0] >= bound]
            else:
                got_ops, got_count = agg.query()
                want_ops, want_count = brute_force(live, self.KINDS)
                assert got_count == want_count
                assert got_ops == want_ops
            assert len(agg) == len(live)
        got_ops, got_count = agg.query()
        want_ops, want_count = brute_force(live, self.KINDS)
        assert (got_ops, got_count) == (want_ops, want_count)

    def test_query_is_amortized_constant(self):
        """Total merge work over N pushes + N queries + N evictions stays
        O(N): the whole point of the structure."""
        kinds = (OperatorKind.SUM,)
        agg = FifoAggregator(kinds)
        n, window = 2_000, 64
        for pos in range(n):
            agg.evict_below(pos - window + 1)
            agg.push(pos, {OperatorKind.SUM: 1.0}, 1)
            merged, count = agg.query()
            assert count == min(pos + 1, window)
            assert merged[OperatorKind.SUM] == float(count)
        # push ≤1, flip ≤1 (amortized), query ≤1 merge per item
        assert agg.merge_ops <= 3 * n

    def test_evict_everything_then_query_empty(self):
        agg = FifoAggregator((OperatorKind.SUM, OperatorKind.COUNT))
        for pos in range(5):
            agg.push(pos, {OperatorKind.SUM: 2.0, OperatorKind.COUNT: 1}, 1)
        agg.evict_below(10)
        merged, count = agg.query()
        assert merged == {} and count == 0
        assert agg.floor == 10

    def test_non_decomposable_kinds_are_ignored(self):
        agg = FifoAggregator(
            (OperatorKind.SUM, OperatorKind.NON_DECOMPOSABLE_SORT)
        )
        assert agg.kinds == (OperatorKind.SUM,)

    def test_merge_window_refuses_behind_floor(self):
        """A window starting before the eviction floor must return None
        (plain-scan fallback), never a silently wrong aggregate."""

        class FakeSlice:
            def __init__(self, index):
                self.partials = {0: {OperatorKind.SUM: 1.0}}
                self.insert_counts = {0: 1}

        class FakeStore:
            def get(self, index):
                return FakeSlice(index)

        layer = IncrementalMergeLayer()
        kinds = (OperatorKind.SUM,)
        got = layer.merge_window(FakeStore(), 4, 7, 0, kinds, 40)
        assert got is not None and got[0][OperatorKind.SUM] == 4.0
        assert layer.merge_window(FakeStore(), 2, 8, 0, kinds, 40) is None


# -- randomized engine parity -------------------------------------------------------

RANDOM_FUNCTIONS = EXACT_FUNCTIONS + FLOAT_FUNCTIONS


def random_queries(rng, keys):
    queries = []
    for index in range(rng.randrange(3, 7)):
        slide = rng.choice((25, 50, 100, 200))
        overlap = rng.choice((1, 2, 4, 8, 16))
        if overlap == 1:
            spec = WindowSpec.tumbling(slide)
        else:
            spec = WindowSpec.sliding(slide * overlap, slide)
        selection = Selection()
        if rng.random() < 0.5:
            selection = Selection(key=rng.choice(keys))
        queries.append(
            Query.of(
                f"q{index}",
                spec,
                rng.choice(RANDOM_FUNCTIONS),
                selection=selection,
            )
        )
    return queries


class TestRandomizedParity:
    @pytest.mark.parametrize("seed", range(6))
    def test_random_query_mixes(self, seed):
        rng = random.Random(1000 + seed)
        keys = ("a", "b", "c")
        events = make_stream(
            rng.randrange(600, 1200), seed=seed, keys=keys,
            value_mod=rng.choice((89, 101)),
        )
        queries = random_queries(rng, keys)
        exact, inc = assert_mode_parity(queries, events)
        assert_matches_oracle(inc, queries, events)
        assert_matches_oracle(exact, queries, events)

    def test_high_overlap_many_functions(self):
        events = make_stream(1500, keys=("a", "b"), dt_choices=(2, 5))
        queries = [
            Query.of(f"q_{fn.name.lower()}", WindowSpec.sliding(640, 10), fn)
            for fn in (AggFunction.SUM, AggFunction.AVERAGE, AggFunction.COUNT,
                       AggFunction.MAX, AggFunction.MIN, AggFunction.VARIANCE)
        ]
        exact, inc = assert_mode_parity(queries, events)
        assert_matches_oracle(inc, queries, events)
        # 64x overlap, all-decomposable operators: the layer must cut the
        # merge work by a wide margin.
        assert inc.stats.merge_ops * 5 <= exact.stats.merge_ops

    def test_hybrid_median_keeps_kway_merge(self):
        """MEDIAN forces NON_DECOMPOSABLE_SORT onto the plain k-way scan
        while the decomposable kinds ride the layer; the combination must
        still match the oracle and still save work overall."""
        events = make_stream(1000, dt_choices=(2, 5))
        queries = [
            Query.of("med", WindowSpec.sliding(400, 25), AggFunction.MEDIAN),
            Query.of("avg", WindowSpec.sliding(400, 25), AggFunction.AVERAGE),
        ]
        exact, inc = assert_mode_parity(queries, events)
        assert_matches_oracle(inc, queries, events)
        assert inc.stats.merge_ops < exact.stats.merge_ops

    def test_multiplication_and_geomean(self):
        base = make_stream(900, dt_choices=(3, 7))
        # Values in [1, 2): products stay finite, relative error visible.
        events = [
            dataclasses.replace(e, value=1.0 + (e.value % 16.0) / 16.0)
            for e in base
        ]
        queries = [
            Query.of("prod", WindowSpec.sliding(400, 25), AggFunction.PRODUCT),
            Query.of("geo", WindowSpec.sliding(400, 50),
                     AggFunction.GEOMETRIC_MEAN),
        ]
        _, inc = assert_mode_parity(queries, events)
        assert_matches_oracle(inc, queries, events)

    def test_tumbling_takes_identical_plain_path(self):
        """Zero-regression guard: tumbling merge work is the same in both
        modes, and the incremental layer never engages."""
        events = make_stream(800)
        queries = [
            Query.of("q", WindowSpec.tumbling(250), AggFunction.AVERAGE)
        ]
        exact, inc = assert_mode_parity(queries, events)
        assert exact.stats.merge_ops == inc.stats.merge_ops
        for runtime in inc.groups:
            assert runtime.incmerge is not None
            assert runtime.incmerge.windows == 0

    def test_sliding_with_runtime_add_and_remove(self):
        """Queries attached at stream time and removed mid-stream exercise
        the layer's late-start floor and drop_context paths."""
        events = make_stream(1200, keys=("a", "b"))
        first = Query.of("early", WindowSpec.sliding(300, 25),
                         AggFunction.SUM)
        late = Query.of("late", WindowSpec.sliding(200, 25),
                        AggFunction.AVERAGE, selection=Selection(key="a"))
        results = {}
        for mode in ("exact", "incremental"):
            engine = AggregationEngine([first], merge_mode=mode)
            cut = len(events) // 3
            engine.process_batch(events[:cut])
            engine.add_query(late)
            engine.process_batch(events[cut : 2 * cut])
            engine.remove_query("early")
            engine.process_batch(events[2 * cut :])
            engine.close()
            results[mode] = {
                q: rows(engine, q) for q in ("early", "late")
            }
        for qid in ("early", "late"):
            left, right = results["exact"][qid], results["incremental"][qid]
            assert len(left) == len(right), qid
            for (ls, le, lv, ln), (rs, re_, rv, rn) in zip(left, right):
                assert (ls, le, ln) == (rs, re_, rn), qid
                assert math.isclose(lv, rv, rel_tol=1e-9, abs_tol=1e-9), qid

    def test_merge_reuse_trace_recorded(self):
        from repro.obs.tracing import TraceRecorder

        recorder = TraceRecorder()
        events = make_stream(600)
        engine = AggregationEngine(
            [Query.of("q", WindowSpec.sliding(200, 25), AggFunction.SUM)],
            recorder=recorder,
            merge_mode="incremental",
        )
        engine.process_batch(events)
        engine.close()
        reuses = list(recorder.events("merge.reuse"))
        assert reuses, "overlapping closes must record merge.reuse"
        event = reuses[-1]
        for field in ("ctx", "first_slice", "last_slice", "pushed",
                      "reused", "merge_ops"):
            assert field in event.data
        assert event.data["reused"] >= 0


# -- seed replica: exact mode is byte-identical to the pre-layer path ---------------


def seed_reference(queries, events, close_at=None):
    """Replicate the seed engine's merge path independently.

    A slicing-only :class:`GroupRuntime` (``assemble=False``) yields the
    closed slices and window punctuations; each window is then folded with
    ``merge_many_partials`` over its covered slice range — operator
    buckets in slice order, exactly the pre-layer ``_close_window`` — and
    finalized per subscribed query.  Returns rows in emit order.
    """
    plan = analyze(queries, policy=SharingPolicy.FULL)
    out: dict[str, list[tuple]] = {q.query_id: [] for q in queries}
    for group in plan.groups:
        slices: dict[int, object] = {}
        closes: list[tuple] = []

        def slice_sink(closing, eps, spans, slices=slices, closes=closes):
            slices[closing.index] = closing
            for window, end_time in eps:
                closes.append((window, end_time, closing.index))

        runtime = GroupRuntime(
            group,
            ResultSink(),
            EngineStats(),
            assemble=False,
            slice_sink=slice_sink,
        )
        for event in events:
            runtime.process(event)
        runtime.close(close_at)
        for window, end, last in closes:
            if len(window.queries) == 1:
                kinds = runtime.needed[window.queries[0].query_id]
            else:
                union = set()
                for query in window.queries:
                    union.update(runtime.needed[query.query_id])
                kinds = tuple(k for k in runtime.operators if k in union)
            buckets = {kind: [] for kind in kinds}
            total = 0
            for index in range(window.first_slice, last + 1):
                slice_ = slices.get(index)
                if slice_ is None:
                    continue
                parts = slice_.partials.get(window.ctx)
                if parts is None:
                    continue
                total += slice_.insert_counts.get(window.ctx, 0)
                for kind in kinds:
                    if kind in parts:
                        buckets[kind].append(parts[kind])
            merged = {
                kind: merge_many_partials(kind, bucket)
                for kind, bucket in buckets.items()
                if bucket
            }
            if total == 0:
                continue
            for query in window.queries:
                out[query.query_id].append(
                    (window.start, end, repr(finalize(query.function, merged)),
                     total)
                )
    return out


class TestExactModeIsSeed:
    """``merge_mode="exact"`` must reproduce the seed merge bit-for-bit
    (``repr`` equality on float values, not just tolerance)."""

    @pytest.mark.parametrize("seed", range(4))
    def test_byte_identical_results(self, seed):
        rng = random.Random(7000 + seed)
        keys = ("a", "b", "c")
        events = make_stream(900, seed=seed, keys=keys)
        queries = random_queries(rng, keys)
        expected = seed_reference(queries, events)
        engine = run_engine(queries, events, merge_mode="exact")
        for query in queries:
            got = [
                (r.start, r.end, repr(r.value), r.event_count)
                for r in engine.sink.for_query(query.query_id)
            ]
            assert got == expected[query.query_id], query.query_id

    def test_decomposable_kinds_cover_the_operator_set(self):
        """Every operator kind is either decomposable (rides the layer) or
        explicitly excluded; a new kind must make a choice."""
        assert DECOMPOSABLE_MERGE_KINDS | {
            OperatorKind.NON_DECOMPOSABLE_SORT
        } == set(OperatorKind)
