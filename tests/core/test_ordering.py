"""Tests for bounded out-of-order handling."""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines import DesisProcessor
from repro.core.errors import OutOfOrderError, ReproError
from repro.core.event import Event
from repro.core.ordering import ReorderBuffer, ReorderingProcessor
from repro.core.query import Query, WindowSpec
from repro.core.types import AggFunction

from tests.conftest import make_stream


def shuffle_within(events, radius, seed=3):
    """Disorder a stream by swapping events within a bounded radius."""
    rng = random.Random(seed)
    out = list(events)
    for i in range(len(out) - 1):
        j = min(i + rng.randrange(radius + 1), len(out) - 1)
        out[i], out[j] = out[j], out[i]
    return out


class TestReorderBuffer:
    def test_in_order_stream_passes_through(self):
        buffer = ReorderBuffer(max_lateness=0)
        released = []
        for t in (1, 2, 3):
            released += buffer.push(Event(t, "a", 1.0))
        assert [e.time for e in released] == [1, 2, 3]

    def test_reorders_within_bound(self):
        buffer = ReorderBuffer(max_lateness=10)
        out = []
        for t in (5, 3, 8, 6, 20):
            out += buffer.push(Event(t, "a", float(t)))
        out += buffer.flush()
        assert [e.time for e in out] == [3, 5, 6, 8, 20]

    def test_too_late_event_dropped(self):
        buffer = ReorderBuffer(max_lateness=5)
        buffer.push(Event(0, "a", 1.0))
        buffer.push(Event(100, "a", 1.0))  # releases everything <= 95
        assert buffer.push(Event(10, "a", 1.0)) == []
        assert buffer.late_dropped == 1

    def test_too_late_event_raises_when_configured(self):
        buffer = ReorderBuffer(max_lateness=5, on_late="raise")
        buffer.push(Event(0, "a", 1.0))
        buffer.push(Event(100, "a", 1.0))
        with pytest.raises(OutOfOrderError):
            buffer.push(Event(10, "a", 1.0))

    def test_invalid_config(self):
        with pytest.raises(ReproError):
            ReorderBuffer(max_lateness=-1)
        with pytest.raises(ReproError):
            ReorderBuffer(max_lateness=1, on_late="shrug")

    @given(
        times=st.lists(st.integers(0, 1_000), min_size=1, max_size=200),
    )
    @settings(max_examples=100, deadline=None)
    def test_output_is_always_ordered(self, times):
        buffer = ReorderBuffer(max_lateness=100)
        out = []
        for t in times:
            out += buffer.push(Event(t, "a", 1.0))
        out += buffer.flush()
        assert [e.time for e in out] == sorted(e.time for e in out)
        assert len(out) + buffer.late_dropped == len(times)


class TestReorderingProcessor:
    def queries(self):
        return [
            Query.of("avg", WindowSpec.tumbling(500), AggFunction.AVERAGE),
            Query.of("med", WindowSpec.tumbling(700), AggFunction.MEDIAN),
        ]

    def test_disordered_equals_ordered(self):
        events = make_stream(600)
        disordered = shuffle_within(events, radius=8)
        assert disordered != events

        plain = DesisProcessor(self.queries())
        for event in events:
            plain.process(event)
        plain.close()

        # The exact lateness this disordered stream needs: how far behind
        # the running high-water mark any event arrives.
        high = disordered[0].time
        max_skew = 0
        for event in disordered:
            high = max(high, event.time)
            max_skew = max(max_skew, high - event.time)
        wrapped = ReorderingProcessor(
            DesisProcessor(self.queries()), max_lateness=max_skew
        )
        for event in disordered:
            wrapped.process(event)
        wrapped.close()

        assert wrapped.late_dropped == 0
        key = lambda r: (r.query_id, r.start, r.end)
        assert sorted(
            (r.query_id, r.start, r.end, r.value) for r in wrapped.sink
        ) == sorted((r.query_id, r.start, r.end, r.value) for r in plain.sink)

    def test_late_events_are_counted_not_fatal(self):
        wrapped = ReorderingProcessor(
            DesisProcessor(self.queries()), max_lateness=10
        )
        wrapped.process(Event(0, "a", 1.0))
        wrapped.process(Event(1_000, "a", 2.0))
        wrapped.process(Event(5, "a", 99.0))  # far too late
        wrapped.close()
        assert wrapped.late_dropped == 1
        total = sum(r.event_count for r in wrapped.sink.for_query("avg"))
        assert total == 2

    def test_watermark_releases_buffer(self):
        wrapped = ReorderingProcessor(
            DesisProcessor(self.queries()), max_lateness=1_000
        )
        wrapped.process(Event(100, "a", 1.0))
        assert len(wrapped.buffer) == 1
        wrapped.advance(600)
        assert len(wrapped.buffer) == 0
        wrapped.close()

    def test_name_and_stats_delegate(self):
        wrapped = ReorderingProcessor(DesisProcessor(self.queries()), 10)
        assert wrapped.name == "Desis+reorder"
        assert wrapped.stats.events == 0
