"""Tests for event records and stream helpers."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.errors import OutOfOrderError
from repro.core.event import Event, Watermark, ensure_ordered, merge_streams


class TestEvent:
    def test_fields(self):
        event = Event(5, "speed", 88.0, "trip_end")
        assert (event.time, event.key, event.value, event.marker) == (
            5,
            "speed",
            88.0,
            "trip_end",
        )

    def test_immutable(self):
        event = Event(1, "a", 1.0)
        with pytest.raises(AttributeError):
            event.time = 2  # type: ignore[misc]

    def test_marker_defaults_none(self):
        assert Event(1, "a", 1.0).marker is None


class TestEnsureOrdered:
    def test_passes_ordered(self):
        events = [Event(t, "a", 0.0) for t in (1, 1, 2, 5)]
        assert list(ensure_ordered(events)) == events

    def test_raises_on_regress(self):
        events = [Event(2, "a", 0.0), Event(1, "a", 0.0)]
        with pytest.raises(OutOfOrderError):
            list(ensure_ordered(events))


class TestMergeStreams:
    def test_merges_by_time(self):
        a = [Event(1, "a", 0.0), Event(4, "a", 0.0)]
        b = [Event(2, "b", 0.0), Event(3, "b", 0.0)]
        merged = list(merge_streams(a, b))
        assert [e.time for e in merged] == [1, 2, 3, 4]

    @given(
        st.lists(st.lists(st.integers(0, 1_000), max_size=30), max_size=4)
    )
    def test_merge_is_ordered_and_complete(self, time_lists):
        streams = [
            [Event(t, f"s{i}", 0.0) for t in sorted(times)]
            for i, times in enumerate(time_lists)
        ]
        merged = list(merge_streams(*streams))
        assert [e.time for e in merged] == sorted(
            t for times in time_lists for t in times
        )

    def test_ties_are_stable_by_stream(self):
        a = [Event(5, "a", 0.0)]
        b = [Event(5, "b", 0.0)]
        assert [e.key for e in merge_streams(a, b)] == ["a", "b"]


def test_watermark_record():
    assert Watermark(42).time == 42
