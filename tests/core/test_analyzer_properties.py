"""Property-based tests for query-group formation invariants."""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.analyzer import analyze
from repro.core.functions import FunctionSpec, operators_for
from repro.core.predicates import Selection, compatible
from repro.core.query import Query, WindowSpec
from repro.core.types import (
    AggFunction,
    OperatorKind,
    SharingPolicy,
    WindowMeasure,
)


@st.composite
def random_queries(draw, max_queries=12):
    n = draw(st.integers(1, max_queries))
    queries = []
    for i in range(n):
        kind = draw(st.sampled_from(["tumbling", "sliding", "session", "count"]))
        if kind == "tumbling":
            window = WindowSpec.tumbling(draw(st.integers(1, 1_000)))
        elif kind == "sliding":
            window = WindowSpec.sliding(
                draw(st.integers(2, 1_000)), draw(st.integers(1, 1_000))
            )
        elif kind == "session":
            window = WindowSpec.session(draw(st.integers(1, 1_000)))
        else:
            window = WindowSpec.tumbling(
                draw(st.integers(1, 100)), measure=WindowMeasure.COUNT
            )
        fn = draw(st.sampled_from(list(AggFunction)))
        quantile = draw(st.floats(0.01, 0.99)) if fn is AggFunction.QUANTILE else None
        selection = draw(
            st.sampled_from(
                [
                    Selection(),
                    Selection(key="a"),
                    Selection(key="b"),
                    Selection(key="a", lo=0.0, hi=50.0),
                    Selection(key="a", lo=50.0),
                    Selection(lo=0.0, hi=50.0),
                    Selection(lo=25.0, hi=75.0),
                ]
            )
        )
        queries.append(
            Query(
                query_id=f"q{i}",
                window=window,
                function=FunctionSpec(fn, quantile),
                selection=selection,
            )
        )
    return queries


policies = st.sampled_from(list(SharingPolicy))


@settings(max_examples=200, deadline=None)
@given(queries=random_queries(), policy=policies)
def test_partition_invariants(queries, policy):
    """Every query lands in exactly one group; group members are pairwise
    selection-compatible; the group plan covers every member's operators."""
    plan = analyze(queries, policy=policy)
    seen = []
    for group in plan.groups:
        for query in group.queries:
            seen.append(query.query_id)
        for left in group.queries:
            for right in group.queries:
                assert compatible(left.selection, right.selection)
        planned = set(group.operators)
        for query in group.queries:
            wanted = set(operators_for(query.function))
            if OperatorKind.NON_DECOMPOSABLE_SORT in planned:
                wanted.discard(OperatorKind.DECOMPOSABLE_SORT)
                if OperatorKind.DECOMPOSABLE_SORT in operators_for(query.function):
                    wanted.add(OperatorKind.NON_DECOMPOSABLE_SORT)
            assert wanted <= planned
    assert sorted(seen) == sorted(q.query_id for q in queries)


@settings(max_examples=100, deadline=None)
@given(queries=random_queries())
def test_decentralized_placement_is_homogeneous(queries):
    """Root-evaluated groups contain only root-evaluated queries and vice
    versa (Sec 5.2)."""
    plan = analyze(queries, decentralized=True)
    for group in plan.groups:
        placements = {
            (not q.is_decomposable) or q.is_count_based for q in group.queries
        }
        assert len(placements) == 1
        assert group.root_evaluated == placements.pop()


@settings(max_examples=100, deadline=None)
@given(queries=random_queries())
def test_full_policy_never_more_groups_than_restricted(queries):
    full = len(analyze(queries, policy=SharingPolicy.FULL).groups)
    same_fn = len(analyze(queries, policy=SharingPolicy.SAME_FUNCTION).groups)
    none = len(analyze(queries, policy=SharingPolicy.NONE).groups)
    assert full <= same_fn <= none
    assert none == len(queries)
