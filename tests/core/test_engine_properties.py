"""Property-based tests: random streams and queries vs the oracle."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.engine import AggregationEngine
from repro.core.errors import OutOfOrderError
from repro.core.event import Event
from repro.core.functions import FunctionSpec
from repro.core.predicates import Selection
from repro.core.query import Query, WindowSpec
from repro.core.types import AggFunction, SharingPolicy, WindowMeasure

from tests.oracle import naive_results


@st.composite
def streams(draw, min_events=5, max_events=120):
    n = draw(st.integers(min_events, max_events))
    deltas = draw(
        st.lists(
            st.integers(0, 400), min_size=n, max_size=n
        )
    )
    keys = draw(
        st.lists(st.sampled_from(["a", "b"]), min_size=n, max_size=n)
    )
    values = draw(
        st.lists(
            st.integers(-50, 50).map(float), min_size=n, max_size=n
        )
    )
    markers = draw(
        st.lists(
            st.sampled_from([None, None, None, "end"]), min_size=n, max_size=n
        )
    )
    events = []
    t = 0
    for dt, key, value, marker in zip(deltas, keys, values, markers):
        t += dt
        events.append(Event(t, key, value, marker))
    return events


@st.composite
def window_specs(draw):
    kind = draw(st.sampled_from(["tumbling", "sliding", "session", "userdef", "count"]))
    if kind == "tumbling":
        return WindowSpec.tumbling(draw(st.integers(50, 1_000)))
    if kind == "sliding":
        length = draw(st.integers(100, 1_000))
        slide = draw(st.integers(25, 800))
        return WindowSpec.sliding(length, slide)
    if kind == "session":
        return WindowSpec.session(draw(st.integers(50, 600)))
    if kind == "userdef":
        return WindowSpec.user_defined(end_marker="end")
    return WindowSpec.tumbling(
        draw(st.integers(3, 40)), measure=WindowMeasure.COUNT
    )


@st.composite
def query_lists(draw, max_queries=4):
    n = draw(st.integers(1, max_queries))
    queries = []
    for i in range(n):
        spec = draw(window_specs())
        fn = draw(
            st.sampled_from(
                [
                    AggFunction.SUM,
                    AggFunction.COUNT,
                    AggFunction.AVERAGE,
                    AggFunction.MIN,
                    AggFunction.MAX,
                    AggFunction.MEDIAN,
                ]
            )
        )
        selection = draw(
            st.sampled_from([Selection(), Selection(key="a"), Selection(key="b")])
        )
        queries.append(
            Query(
                query_id=f"q{i}",
                window=spec,
                function=FunctionSpec(fn),
                selection=selection,
            )
        )
    return queries


def _run(queries, events, policy=SharingPolicy.FULL):
    engine = AggregationEngine(queries, policy=policy)
    for event in events:
        engine.process(event)
    return engine.close()


@settings(max_examples=120, deadline=None)
@given(events=streams(), queries=query_lists())
def test_engine_matches_oracle_on_random_workloads(events, queries):
    sink = _run(queries, events)
    for query in queries:
        expected = naive_results(query, events)
        got = [
            (r.start, r.end, r.value, r.event_count)
            for r in sink.for_query(query.query_id)
        ]
        assert len(got) == len(expected), query.query_id
        for g, e in zip(got, expected):
            assert g[0] == e[0] and g[1] == e[1] and g[3] == e[3]
            if e[2] is None:
                assert g[2] is None
            else:
                assert g[2] == pytest.approx(e[2])


@settings(max_examples=60, deadline=None)
@given(events=streams(), queries=query_lists(max_queries=3))
def test_policies_agree_on_random_workloads(events, queries):
    """Sharing policy affects cost only, never results."""
    baseline = sorted(
        (r.query_id, r.start, r.end, r.event_count, r.value)
        for r in _run(queries, events, SharingPolicy.FULL)
    )
    for policy in (SharingPolicy.SAME_FUNCTION, SharingPolicy.NONE):
        other = sorted(
            (r.query_id, r.start, r.end, r.event_count, r.value)
            for r in _run(queries, events, policy)
        )
        assert other == baseline


@settings(max_examples=60, deadline=None)
@given(events=streams(min_events=10), queries=query_lists(max_queries=3))
def test_watermarks_are_transparent(events, queries):
    """Interleaving advance() calls never changes the emitted results."""
    plain = sorted(
        (r.query_id, r.start, r.end, r.value) for r in _run(queries, events)
    )
    engine = AggregationEngine(queries)
    for index, event in enumerate(events):
        engine.process(event)
        if index % 7 == 0:
            engine.advance(event.time)
    ticked = sorted(
        (r.query_id, r.start, r.end, r.value) for r in engine.close()
    )
    assert ticked == plain


@settings(max_examples=40, deadline=None)
@given(events=streams(min_events=20))
def test_slice_store_is_bounded(events):
    """Slice GC keeps the store bounded by open-window coverage."""
    queries = [
        Query.of("t", WindowSpec.tumbling(200), AggFunction.SUM),
        Query.of("s", WindowSpec.sliding(400, 100), AggFunction.AVERAGE),
    ]
    engine = AggregationEngine(queries)
    for event in events:
        engine.process(event)
        for group in engine.groups:
            # 400ms sliding window over >=100ms slices: never more than a
            # handful of live slices plus bookkeeping slack.
            assert len(group.store) <= 64
    engine.close()


def test_out_of_order_event_raises():
    queries = [Query.of("t", WindowSpec.tumbling(100), AggFunction.SUM)]
    engine = AggregationEngine(queries)
    engine.process(Event(1_000, "a", 1.0))
    with pytest.raises(OutOfOrderError):
        engine.process(Event(999, "a", 1.0))


def test_out_of_order_watermark_raises():
    queries = [Query.of("t", WindowSpec.tumbling(100), AggFunction.SUM)]
    engine = AggregationEngine(queries)
    engine.process(Event(1_000, "a", 1.0))
    with pytest.raises(OutOfOrderError):
        engine.advance(500)
