"""Tests for result records and sinks."""

from __future__ import annotations

from repro.core.results import ResultSink, WindowResult


def result(qid="q", start=0, end=100, value=1.0, count=1):
    return WindowResult(
        query_id=qid, start=start, end=end, value=value, event_count=count
    )


class TestResultSink:
    def test_keeps_results_by_default(self):
        sink = ResultSink()
        sink.emit(result())
        sink.emit(result(qid="p"))
        assert len(sink) == 2
        assert [r.query_id for r in sink] == ["q", "p"]

    def test_keep_false_counts_only(self):
        sink = ResultSink(keep=False)
        for _ in range(5):
            sink.emit(result())
        assert len(sink) == 5
        assert list(sink) == []

    def test_for_query_filters(self):
        sink = ResultSink()
        sink.emit(result(qid="a"))
        sink.emit(result(qid="b"))
        sink.emit(result(qid="a", start=100))
        assert [r.start for r in sink.for_query("a")] == [0, 100]
        assert sink.for_query("nope") == []

    def test_str_shows_bounds_and_value(self):
        text = str(result(qid="avg", start=5, end=10, value=2.5, count=3))
        assert "avg" in text and "[5..10)" in text and "2.5" in text and "n=3" in text


class TestWindowTrackers:
    """Direct unit tests for the tracker state machines."""

    def test_fixed_tracker_schedule(self):
        from repro.core.query import Query, WindowSpec
        from repro.core.types import AggFunction
        from repro.core.windows import FixedWindowTracker

        query = Query.of("q", WindowSpec.sliding(1_000, 250), AggFunction.SUM)
        tracker = FixedWindowTracker(query, ctx=0)
        assert tracker.bootstrap(100) == 100
        assert tracker.advance() == 350
        assert tracker.advance() == 600

    def test_session_tracker_generations(self):
        from repro.core.query import Query, WindowSpec
        from repro.core.types import AggFunction
        from repro.core.windows import SessionWindowTracker

        query = Query.of("s", WindowSpec.session(300), AggFunction.SUM)
        tracker = SessionWindowTracker(query, ctx=0)
        tracker.touch(100)
        first_generation = tracker.generation
        assert tracker.tentative_end == 400
        tracker.touch(250)
        assert tracker.generation == first_generation + 1
        assert tracker.tentative_end == 550

    def test_subscription_lifecycle(self):
        from repro.core.query import Query, WindowSpec
        from repro.core.types import AggFunction
        from repro.core.windows import FixedWindowTracker

        spec = WindowSpec.tumbling(100)
        q1 = Query.of("q1", spec, AggFunction.SUM)
        q2 = Query.of("q2", spec, AggFunction.AVERAGE)
        tracker = FixedWindowTracker(q1, ctx=0)
        tracker.subscribe(q2)
        assert tracker.serves("q1") and tracker.serves("q2")
        assert len(tracker.snapshot()) == 2
        assert not tracker.unsubscribe("q1")
        assert tracker.unsubscribe("q2")  # now empty

    def test_count_tracker_sliding(self):
        from repro.core.query import Query, WindowSpec
        from repro.core.types import AggFunction, WindowMeasure
        from repro.core.windows import CountWindowTracker, WindowInstance

        query = Query.of(
            "c",
            WindowSpec.sliding(4, 2, measure=WindowMeasure.COUNT),
            AggFunction.SUM,
        )
        tracker = CountWindowTracker(query, ctx=0)
        full_log = []
        for i in range(8):
            if tracker.opens_now():
                window = WindowInstance(
                    uid=i,
                    queries=tracker.snapshot(),
                    ctx=0,
                    start=i,
                    end=None,
                    first_slice=0,
                    start_count=tracker.seen,
                )
                tracker.open_windows.append(window)
            full_log += [w.start_count for w in tracker.record()]
        # Windows of 4 events starting every 2: close after events 4, 6, 8.
        assert full_log == [0, 2, 4]
