"""Batched ingestion parity: ``process_batch`` == per-event ``process``.

The slice-run fast path must be *observationally invisible*: identical
results (same values, same order, same ``emitted_at`` stamps) and an
identical :class:`~repro.core.engine.EngineStats` — batched work is billed
as if it had been applied per event, because those counters are what
Figures 8–10 measure.  These tests sweep every window type, both
punctuation modes, every sharing policy, ragged batch boundaries, and
runtime query management mid-batch.
"""

from __future__ import annotations

import pytest

from repro.core.engine import AggregationEngine
from repro.core.errors import OutOfOrderError
from repro.core.event import Event
from repro.core.predicates import Selection
from repro.core.query import Query, WindowSpec
from repro.core.types import AggFunction, SharingPolicy, WindowMeasure

from tests.conftest import make_stream

MODES = ("heap", "scan")
POLICIES = tuple(SharingPolicy)


def result_key(r):
    return (r.query_id, r.start, r.end, r.value, r.event_count, r.emitted_at)


def replay(queries, events, *, mode, policy=SharingPolicy.FULL, batch=None,
           actions=()):
    """Replay ``events``; return ``(results, stats)``.

    ``batch=None`` uses the per-event reference path; otherwise events go
    through ``process_batch`` in chunks of ``batch``.  ``actions`` is a
    list of ``(event_index, callback)`` pairs applied when the replay
    reaches that index (on the reference path, exactly between events; on
    the batched path, at the nearest preceding chunk boundary — callers
    align indices to chunk boundaries for strict parity).
    """
    engine = AggregationEngine(queries, policy=policy, punctuation_mode=mode)
    pending = sorted(actions, key=lambda pair: pair[0])
    i = 0
    while i < len(events):
        while pending and pending[0][0] <= i:
            pending.pop(0)[1](engine)
        if batch is None:
            engine.process(events[i])
            i += 1
        else:
            stop = min(i + batch, len(events))
            if pending:
                stop = min(stop, pending[0][0])
            engine.process_batch(events[i:stop])
            i = stop
    for _, action in pending:
        action(engine)
    engine.close()
    return [result_key(r) for r in engine.sink.results], engine.stats


def assert_parity(queries, events, *, policy=SharingPolicy.FULL, batches=(1, 7, 64, 100_000), actions=()):
    for mode in MODES:
        expected = replay(
            queries, events, mode=mode, policy=policy, actions=actions
        )
        for batch in batches:
            got = replay(
                queries, events, mode=mode, policy=policy, batch=batch,
                actions=actions,
            )
            assert got[0] == expected[0], (mode, batch, "results diverged")
            assert got[1] == expected[1], (mode, batch, "stats diverged")


FIXED_QUERIES = [
    Query.of("tum-avg", WindowSpec.tumbling(500), AggFunction.AVERAGE),
    Query.of("tum-sum", WindowSpec.tumbling(700), AggFunction.SUM),
    Query.of(
        "sli-max",
        WindowSpec.sliding(1_000, 250),
        AggFunction.MAX,
        selection=Selection(key="a"),
    ),
    Query.of(
        "sli-med",
        WindowSpec.sliding(600, 300),
        AggFunction.MEDIAN,
        selection=Selection(lo=10.0, hi=90.0),
    ),
]


class TestFixedWindows:
    def test_tumbling_and_sliding_all_policies(self):
        events = make_stream(800)
        for policy in POLICIES:
            assert_parity(FIXED_QUERIES, events, policy=policy)

    def test_keyed_and_range_selections_with_dedup(self):
        events = make_stream(600, dt_choices=(0, 5, 10))  # duplicate times
        queries = FIXED_QUERIES + [
            Query.of(
                "dedup",
                WindowSpec.tumbling(400),
                AggFunction.SUM,
                selection=Selection(key="b", deduplicate=True),
            ),
        ]
        assert_parity(queries, events)

    def test_single_group_workload(self):
        # One query-group: the batched path skips synchronized chunking.
        events = make_stream(500)
        queries = [
            Query.of("t1", WindowSpec.tumbling(300), AggFunction.AVERAGE),
            Query.of("t2", WindowSpec.tumbling(600), AggFunction.AVERAGE),
        ]
        assert_parity(queries, events)


class TestDataDrivenWindows:
    """Sessions, markers, and counts can cut mid-run: the fast path must
    fall back per event and still agree exactly."""

    def test_session_windows(self):
        events = make_stream(500, gap_every=40, gap_dt=5_000)
        queries = FIXED_QUERIES + [
            Query.of("ses", WindowSpec.session(1_000), AggFunction.SUM),
            Query.of(
                "ses-a",
                WindowSpec.session(2_000),
                AggFunction.AVERAGE,
                selection=Selection(key="a"),
            ),
        ]
        assert_parity(queries, events)

    def test_user_defined_windows(self):
        events = make_stream(500, marker_every=35)
        queries = FIXED_QUERIES + [
            Query.of(
                "trip",
                WindowSpec.user_defined("trip_end"),
                AggFunction.AVERAGE,
            ),
        ]
        assert_parity(queries, events)

    def test_count_windows(self):
        events = make_stream(500)
        queries = FIXED_QUERIES + [
            Query.of(
                "cnt",
                WindowSpec.tumbling(100, measure=WindowMeasure.COUNT),
                AggFunction.SUM,
            ),
            Query.of(
                "cnt-slide",
                WindowSpec.sliding(100, 40, measure=WindowMeasure.COUNT),
                AggFunction.MAX,
            ),
        ]
        assert_parity(queries, events)

    def test_everything_at_once(self):
        events = make_stream(600, gap_every=50, gap_dt=4_000, marker_every=45)
        queries = FIXED_QUERIES + [
            Query.of("ses", WindowSpec.session(1_500), AggFunction.SUM),
            Query.of(
                "trip", WindowSpec.user_defined("trip_end"), AggFunction.SUM
            ),
            Query.of(
                "cnt",
                WindowSpec.tumbling(80, measure=WindowMeasure.COUNT),
                AggFunction.AVERAGE,
            ),
        ]
        for policy in POLICIES:
            assert_parity(queries, events, policy=policy, batches=(13, 100_000))


class TestRecorderParity:
    """Tracing must be observationally invisible: same results and stats
    whether the recorder is the shared no-op (default) or fully enabled."""

    def _replay(self, events, *, batch, recorder):
        from repro.obs import TraceRecorder

        engine = AggregationEngine(
            FIXED_QUERIES,
            recorder=TraceRecorder() if recorder else None,
        )
        if batch is None:
            for event in events:
                engine.process(event)
        else:
            for i in range(0, len(events), batch):
                engine.process_batch(events[i:i + batch])
        engine.close()
        rows = [result_key(r) for r in engine.sink.results]
        return rows, engine.stats, engine.recorder

    def test_enabled_recorder_changes_nothing(self):
        events = make_stream(700)
        for batch in (None, 7, 100_000):
            base_rows, base_stats, _ = self._replay(
                events, batch=batch, recorder=False
            )
            rows, stats, recorder = self._replay(
                events, batch=batch, recorder=True
            )
            assert rows == base_rows, batch
            assert stats == base_stats, batch
            assert len(recorder) > 0  # and the trace actually recorded

    def test_default_recorder_is_the_shared_noop(self):
        from repro.obs import NULL_RECORDER

        engine = AggregationEngine(FIXED_QUERIES)
        assert engine.recorder is NULL_RECORDER
        for runtime in engine.groups:
            assert runtime.recorder is NULL_RECORDER


class TestRuntimeManagement:
    def test_add_query_mid_batch(self):
        events = make_stream(600)
        late = Query.of("late", WindowSpec.tumbling(400), AggFunction.SUM)
        actions = [(300, lambda engine: engine.add_query(late))]
        assert_parity(
            FIXED_QUERIES, events, batches=(10, 25, 100), actions=actions
        )

    def test_add_query_new_group_mid_batch(self):
        # MAX under SAME_FUNCTION sharing lands in a brand-new group,
        # exercising the fresh-GroupRuntime bootstrap path.
        events = make_stream(600)
        late = Query.of("late-max", WindowSpec.tumbling(400), AggFunction.MAX)
        actions = [(300, lambda engine: engine.add_query(late))]
        assert_parity(
            FIXED_QUERIES[:2],
            events,
            policy=SharingPolicy.SAME_FUNCTION,
            batches=(10, 50),
            actions=actions,
        )

    def test_remove_query_mid_batch(self):
        events = make_stream(600)
        for drain in (False, True):
            actions = [
                (
                    250,
                    lambda engine, drain=drain: engine.remove_query(
                        "tum-sum", drain=drain
                    ),
                )
            ]
            assert_parity(
                FIXED_QUERIES, events, batches=(10, 50, 125), actions=actions
            )

    def test_add_then_remove_mid_batch(self):
        events = make_stream(600)
        late = Query.of("late", WindowSpec.tumbling(300), AggFunction.AVERAGE)
        actions = [
            (200, lambda engine: engine.add_query(late)),
            (400, lambda engine: engine.remove_query("late")),
        ]
        assert_parity(
            FIXED_QUERIES, events, batches=(8, 40, 200), actions=actions
        )


class TestAddQueryBootstrap:
    """Regression: a runtime-added query opening a *new* group must join
    at the current stream time, not at the first post-add event."""

    def test_new_group_joins_at_stream_time(self):
        queries = [Query.of("sum", WindowSpec.tumbling(100), AggFunction.SUM)]
        engine = AggregationEngine(queries, policy=SharingPolicy.SAME_FUNCTION)
        engine.process(Event(time=950, key="a", value=1.0))
        late = Query.of("max", WindowSpec.tumbling(100), AggFunction.MAX)
        engine.add_query(late)
        target = next(
            g for g in engine.groups if "max" in {q.query_id for q in g.group.queries}
        )
        # The fresh runtime is anchored at the established stream time ...
        assert target.stream_time == 950
        # ... so feeding an *older* event is rejected like everywhere else.
        with pytest.raises(OutOfOrderError):
            engine.process(Event(time=900, key="a", value=1.0))

    def test_new_group_windows_align_with_stream(self):
        queries = [Query.of("sum", WindowSpec.tumbling(100), AggFunction.SUM)]
        engine = AggregationEngine(queries, policy=SharingPolicy.SAME_FUNCTION)
        engine.process(Event(time=955, key="a", value=1.0))
        engine.add_query(
            Query.of("max", WindowSpec.tumbling(100), AggFunction.MAX)
        )
        engine.process(Event(time=990, key="a", value=5.0))
        engine.process(Event(time=1_070, key="a", value=9.0))
        engine.close()
        max_results = [r for r in engine.sink.results if r.query_id == "max"]
        # Bootstrapping at the add-time stream time (955) anchors the new
        # group's window schedule there — [955, 1055), [1055, 1155), ... —
        # instead of at whatever event happens to arrive next (which would
        # have opened [990, 1090) and shifted every later window).
        assert [(r.start, r.end, r.value) for r in max_results] == [
            (955, 1_055, 5.0),
            (1_055, 1_155, 9.0),
        ]
