"""Tests for the engine's *work* under sharing: calculations, slices, stats.

These encode the mechanisms behind Figures 8 and 9: sharing changes how
much work is done per event, which the stats counters expose.
"""

from __future__ import annotations

import pytest

from repro.core.engine import AggregationEngine, required_kinds
from repro.core.errors import EngineError, QueryError
from repro.core.event import Event
from repro.core.functions import FunctionSpec
from repro.core.query import Query, WindowSpec
from repro.core.types import AggFunction, OperatorKind, SharingPolicy

from tests.conftest import make_stream

K = OperatorKind


def run(queries, events, policy=SharingPolicy.FULL):
    engine = AggregationEngine(queries, policy=policy)
    for event in events:
        engine.process(event)
    engine.close()
    return engine


class TestCalculationSharing:
    def test_avg_plus_sum_two_ops_vs_three(self):
        """Fig 9b: Desis runs 2 operators per event, DeSW-style runs 3."""
        events = make_stream(400)
        queries = [
            Query.of("avg", WindowSpec.tumbling(500), AggFunction.AVERAGE),
            Query.of("sum", WindowSpec.tumbling(700), AggFunction.SUM),
        ]
        shared = run(queries, events, SharingPolicy.FULL)
        split = run(queries, events, SharingPolicy.SAME_FUNCTION)
        n = len(events)
        assert shared.stats.calculations == 2 * n  # sum + count once
        assert split.stats.calculations == 3 * n  # (sum+count) + sum

    def test_many_quantiles_one_sort(self):
        """Fig 9d: 50 quantile queries -> 1 operator per event under Desis."""
        events = make_stream(300)
        queries = [
            Query.of(
                f"q{i}",
                WindowSpec.tumbling(500),
                AggFunction.QUANTILE,
                quantile=(i + 1) / 51,
            )
            for i in range(50)
        ]
        shared = run(queries, events, SharingPolicy.FULL)
        split = run(queries, events, SharingPolicy.SAME_FUNCTION)
        n = len(events)
        assert shared.stats.calculations == n
        assert split.stats.calculations == 50 * n
        assert shared.group_count == 1
        assert split.group_count == 50

    def test_quantile_plus_max_share_sort(self):
        """Fig 9g: quantile and max share the non-decomposable sort."""
        events = make_stream(300)
        queries = [
            Query.of("q", WindowSpec.tumbling(500), AggFunction.QUANTILE, quantile=0.9),
            Query.of("m", WindowSpec.tumbling(500), AggFunction.MAX),
        ]
        shared = run(queries, events, SharingPolicy.FULL)
        assert shared.stats.calculations == len(events)  # one ndsort insert


class TestSliceCounts:
    def test_concurrent_tumbling_windows_share_slices(self):
        """Fig 8b: slice count is bounded by distinct punctuations, not by
        the number of concurrent windows."""
        events = make_stream(2_000, dt_choices=(10,))
        lengths = [1_000 * i for i in range(1, 11)]
        queries = [
            Query.of(f"q{i}", WindowSpec.tumbling(length), AggFunction.AVERAGE)
            for i, length in enumerate(lengths)
        ]
        one = run([queries[0]], events)
        many = run(queries, events)
        # Punctuations of lengths 2..10s are a subset of the 1s schedule,
        # so the shared slice count stays exactly the single-query count.
        assert many.stats.slices_closed == one.stats.slices_closed
        assert many.stats.results > one.stats.results

    def test_unshared_buckets_multiply_slices(self):
        events = make_stream(1_000, dt_choices=(10,))
        queries = [
            Query.of(f"q{i}", WindowSpec.tumbling(1_000 * (i + 1)), AggFunction.SUM)
            for i in range(5)
        ]
        shared = run(queries, events, SharingPolicy.FULL)
        isolated = run(queries, events, SharingPolicy.NONE)
        assert isolated.stats.slices_closed > shared.stats.slices_closed


class TestRequiredKinds:
    def test_subset_selection(self):
        q = Query.of("a", WindowSpec.tumbling(10), AggFunction.AVERAGE)
        planned = (K.SUM, K.COUNT, K.NON_DECOMPOSABLE_SORT)
        assert required_kinds(q, planned) == (K.SUM, K.COUNT)

    def test_dsort_substitution(self):
        q = Query.of("a", WindowSpec.tumbling(10), AggFunction.MIN)
        assert required_kinds(q, (K.NON_DECOMPOSABLE_SORT,)) == (
            K.NON_DECOMPOSABLE_SORT,
        )

    def test_missing_operator_raises(self):
        q = Query.of("a", WindowSpec.tumbling(10), AggFunction.AVERAGE)
        with pytest.raises(EngineError):
            required_kinds(q, (K.SUM,))


class TestRuntimeQueries:
    def test_add_query_mid_stream(self):
        events = make_stream(600, dt_choices=(10,))
        engine = AggregationEngine(
            [Query.of("q0", WindowSpec.tumbling(500), AggFunction.SUM)]
        )
        half = len(events) // 2
        for event in events[:half]:
            engine.process(event)
        engine.add_query(
            Query.of("q1", WindowSpec.tumbling(300), AggFunction.MEDIAN)
        )
        for event in events[half:]:
            engine.process(event)
        sink = engine.close()
        assert sink.for_query("q0")  # original query unaffected
        late = sink.for_query("q1")
        assert late
        # The late query only sees events from its arrival on.
        assert min(r.start for r in late) >= events[half - 1].time

    def test_add_duplicate_id_rejected(self):
        engine = AggregationEngine(
            [Query.of("q0", WindowSpec.tumbling(500), AggFunction.SUM)]
        )
        with pytest.raises(QueryError):
            engine.add_query(
                Query.of("q0", WindowSpec.tumbling(100), AggFunction.SUM)
            )

    def test_remove_query_mid_stream(self):
        events = make_stream(600, dt_choices=(10,))
        engine = AggregationEngine(
            [
                Query.of("keep", WindowSpec.tumbling(500), AggFunction.SUM),
                Query.of("drop", WindowSpec.tumbling(500), AggFunction.SUM),
            ]
        )
        half = len(events) // 2
        for event in events[:half]:
            engine.process(event)
        engine.remove_query("drop")
        for event in events[half:]:
            engine.process(event)
        sink = engine.close()
        kept = sink.for_query("keep")
        dropped = sink.for_query("drop")
        assert max(r.end for r in kept) > events[half].time
        assert all(r.end <= events[half].time for r in dropped)

    def test_close_twice_raises(self):
        engine = AggregationEngine(
            [Query.of("q", WindowSpec.tumbling(10), AggFunction.SUM)]
        )
        engine.process(Event(0, "a", 1.0))
        engine.close()
        with pytest.raises(EngineError):
            engine.close()

    def test_added_query_new_group_when_incompatible(self):
        engine = AggregationEngine(
            [Query.of("q0", WindowSpec.tumbling(100), AggFunction.SUM)],
            policy=SharingPolicy.SAME_FUNCTION,
        )
        engine.process(Event(0, "a", 1.0))
        engine.add_query(
            Query.of("q1", WindowSpec.tumbling(100), AggFunction.AVERAGE)
        )
        assert engine.group_count == 2
        engine.process(Event(50, "a", 2.0))
        engine.process(Event(250, "a", 3.0))
        sink = engine.close()
        assert sink.for_query("q1")


class TestEmitEmpty:
    def test_empty_windows_suppressed_by_default(self):
        events = [Event(0, "a", 1.0), Event(5_000, "a", 2.0)]
        queries = [Query.of("q", WindowSpec.tumbling(1_000), AggFunction.SUM)]
        engine = AggregationEngine(queries)
        for event in events:
            engine.process(event)
        sink = engine.close()
        assert len(sink.for_query("q")) == 2  # only the two non-empty windows

    def test_emit_empty_true_emits_all(self):
        events = [Event(0, "a", 1.0), Event(5_000, "a", 2.0)]
        queries = [Query.of("q", WindowSpec.tumbling(1_000), AggFunction.SUM)]
        engine = AggregationEngine(queries, emit_empty=True)
        for event in events:
            engine.process(event)
        sink = engine.close()
        results = sink.for_query("q")
        assert len(results) == 6  # windows 0..5s inclusive of the open one
        assert sum(1 for r in results if r.event_count == 0) == 4
