"""Tests for query and window specifications."""

from __future__ import annotations

import pytest

from repro.core.errors import QueryError
from repro.core.functions import FunctionSpec
from repro.core.query import Query, WindowSpec
from repro.core.types import AggFunction, WindowMeasure, WindowType


class TestWindowSpec:
    def test_tumbling(self):
        spec = WindowSpec.tumbling(1_000)
        assert spec.window_type is WindowType.TUMBLING
        assert spec.is_fixed_size
        assert spec.effective_slide == 1_000

    def test_tumbling_count(self):
        spec = WindowSpec.tumbling(100, measure=WindowMeasure.COUNT)
        assert spec.measure is WindowMeasure.COUNT

    def test_sliding(self):
        spec = WindowSpec.sliding(2_000, 500)
        assert spec.effective_slide == 500
        assert spec.is_fixed_size

    def test_session(self):
        spec = WindowSpec.session(gap=250)
        assert not spec.is_fixed_size
        with pytest.raises(QueryError):
            spec.effective_slide

    def test_user_defined(self):
        spec = WindowSpec.user_defined(end_marker="trip_end")
        assert spec.start_marker is None
        assert not spec.is_fixed_size

    @pytest.mark.parametrize(
        "bad",
        [
            lambda: WindowSpec.tumbling(0),
            lambda: WindowSpec.tumbling(-5),
            lambda: WindowSpec.sliding(1_000, 0),
            lambda: WindowSpec(WindowType.SLIDING, length=1_000),
            lambda: WindowSpec(WindowType.TUMBLING, length=10, slide=5),
            lambda: WindowSpec(WindowType.SESSION, gap=0),
            lambda: WindowSpec(WindowType.SESSION, gap=10, length=5),
            lambda: WindowSpec(
                WindowType.SESSION, gap=10, measure=WindowMeasure.COUNT
            ),
            lambda: WindowSpec(WindowType.USER_DEFINED),
            lambda: WindowSpec(
                WindowType.USER_DEFINED, end_marker="e", length=5
            ),
            lambda: WindowSpec(WindowType.TUMBLING, length=10, gap=4),
        ],
    )
    def test_invalid_specs_rejected(self, bad):
        with pytest.raises(QueryError):
            bad()

    def test_str_forms(self):
        assert "tumbling" in str(WindowSpec.tumbling(5))
        assert "sliding" in str(WindowSpec.sliding(10, 5))
        assert "session" in str(WindowSpec.session(3))
        assert "user_defined" in str(WindowSpec.user_defined(end_marker="x"))


class TestQuery:
    def test_of_shorthand(self):
        query = Query.of("q", WindowSpec.tumbling(10), AggFunction.AVERAGE)
        assert query.function == FunctionSpec(AggFunction.AVERAGE)
        assert query.selection.is_pass_all
        assert query.is_decomposable
        assert not query.is_count_based

    def test_of_quantile(self):
        query = Query.of(
            "q", WindowSpec.tumbling(10), AggFunction.QUANTILE, quantile=0.95
        )
        assert not query.is_decomposable
        assert query.function.quantile == 0.95

    def test_count_based_flag(self):
        query = Query.of(
            "q",
            WindowSpec.tumbling(100, measure=WindowMeasure.COUNT),
            AggFunction.SUM,
        )
        assert query.is_count_based

    def test_str(self):
        query = Query.of("q9", WindowSpec.session(5), AggFunction.MEDIAN)
        text = str(query)
        assert "q9" in text and "median" in text and "session" in text
