"""Unit and property tests for the shared aggregate operators."""

from __future__ import annotations

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.operators import (
    CountState,
    DecomposableSortState,
    MultiplicationState,
    NonDecomposableSortState,
    OperatorSetState,
    SumState,
    empty_partial,
    make_state,
    merge_many_partials,
    merge_partials,
)
from repro.core.types import OperatorKind

ALL_KINDS = list(OperatorKind)

values_lists = st.lists(
    st.floats(min_value=-1e6, max_value=1e6, allow_nan=False), max_size=60
)


class TestStates:
    def test_sum(self):
        state = SumState()
        for v in (1.0, 2.5, -0.5):
            state.insert(v)
        assert state.partial() == pytest.approx(3.0)

    def test_count(self):
        state = CountState()
        for v in (9.0, 9.0, 9.0, 1.0):
            state.insert(v)
        assert state.partial() == 4

    def test_multiplication(self):
        state = MultiplicationState()
        for v in (2.0, 3.0, 0.5):
            state.insert(v)
        assert state.partial() == pytest.approx(3.0)

    def test_decomposable_sort_tracks_extrema(self):
        state = DecomposableSortState()
        for v in (5.0, -1.0, 3.0, 7.0):
            state.insert(v)
        assert state.partial() == (-1.0, 7.0)

    def test_decomposable_sort_empty_is_none(self):
        assert DecomposableSortState().partial() is None

    def test_non_decomposable_sort_sorts_lazily(self):
        state = NonDecomposableSortState()
        for v in (3.0, 1.0, 2.0):
            state.insert(v)
        assert state.values == [3.0, 1.0, 2.0]
        assert state.partial() == [1.0, 2.0, 3.0]

    def test_make_state_returns_matching_kind(self):
        for kind in ALL_KINDS:
            assert make_state(kind).kind is kind


class TestMerge:
    @pytest.mark.parametrize("kind", ALL_KINDS)
    @given(left=values_lists, right=values_lists)
    def test_merge_equals_combined_insert(self, kind, left, right):
        """Merging two partials equals inserting both value lists into one state."""
        a, b, combined = make_state(kind), make_state(kind), make_state(kind)
        for v in left:
            a.insert(v)
            combined.insert(v)
        for v in right:
            b.insert(v)
            combined.insert(v)
        merged = merge_partials(kind, a.partial(), b.partial())
        expected = combined.partial()
        if kind is OperatorKind.MULTIPLICATION:
            assert merged == pytest.approx(expected, rel=1e-9)
        else:
            assert merged == pytest.approx(expected)

    @pytest.mark.parametrize("kind", ALL_KINDS)
    @given(values=values_lists)
    def test_empty_partial_is_identity(self, kind, values):
        state = make_state(kind)
        for v in values:
            state.insert(v)
        part = state.partial()
        assert merge_partials(kind, empty_partial(kind), part) == part
        assert merge_partials(kind, part, empty_partial(kind)) == part

    @pytest.mark.parametrize("kind", ALL_KINDS)
    def test_merge_many_matches_pairwise(self, kind):
        chunks = [[1.0, 4.0], [2.0], [], [3.0, 0.0]]
        partials = []
        for chunk in chunks:
            state = make_state(kind)
            for v in chunk:
                state.insert(v)
            partials.append(state.partial())
        pairwise = empty_partial(kind)
        for part in partials:
            pairwise = merge_partials(kind, pairwise, part)
        assert merge_many_partials(kind, partials) == pairwise

    def test_ndsort_merge_keeps_sorted(self):
        merged = merge_partials(
            OperatorKind.NON_DECOMPOSABLE_SORT, [1.0, 3.0], [0.0, 2.0, 4.0]
        )
        assert merged == [0.0, 1.0, 2.0, 3.0, 4.0]


class TestOperatorSetState:
    def test_insert_touches_every_operator_once(self):
        kinds = (OperatorKind.SUM, OperatorKind.COUNT)
        state = OperatorSetState(kinds)
        state.insert(2.0)
        state.insert(4.0)
        parts = state.partials()
        assert parts[OperatorKind.SUM] == 6.0
        assert parts[OperatorKind.COUNT] == 2
        assert state.calculations == 4  # 2 inserts x 2 operators

    def test_empty_set(self):
        state = OperatorSetState(())
        state.insert(1.0)
        assert state.partials() == {}
        assert state.calculations == 0
