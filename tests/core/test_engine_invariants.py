"""Cross-cutting engine invariants on random workloads."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.engine import AggregationEngine
from repro.core.event import Event
from repro.core.query import Query, WindowSpec
from repro.core.types import AggFunction


@st.composite
def streams(draw):
    n = draw(st.integers(5, 150))
    deltas = draw(st.lists(st.integers(0, 300), min_size=n, max_size=n))
    events = []
    t = 0
    for index, dt in enumerate(deltas):
        t += dt
        events.append(Event(t, "k", float(index % 13)))
    return events


@settings(max_examples=80, deadline=None)
@given(events=streams(), length=st.integers(50, 2_000))
def test_tumbling_conservation(events, length):
    """Every event lands in exactly one tumbling window: counts conserve."""
    engine = AggregationEngine(
        [Query.of("q", WindowSpec.tumbling(length), AggFunction.COUNT)]
    )
    for event in events:
        engine.process(event)
    sink = engine.close()
    assert sum(r.value for r in sink.for_query("q")) == len(events)


@settings(max_examples=80, deadline=None)
@given(events=streams(), gap=st.integers(10, 1_000))
def test_session_conservation_and_separation(events, gap):
    """Sessions partition the events; consecutive sessions are separated
    by at least the gap."""
    engine = AggregationEngine(
        [Query.of("s", WindowSpec.session(gap), AggFunction.COUNT)]
    )
    for event in events:
        engine.process(event)
    sink = engine.close()
    results = sorted(sink.for_query("s"), key=lambda r: r.start)
    assert sum(r.value for r in results) == len(events)
    for left, right in zip(results, results[1:]):
        assert right.start - (left.end - gap) >= gap


@settings(max_examples=60, deadline=None)
@given(events=streams(), length=st.integers(100, 1_000), k=st.integers(2, 4))
def test_sliding_window_count_multiplicity(events, length, k):
    """With slide = length/k every event is counted by at most k windows
    (fewer at the stream edges)."""
    slide = max(length // k, 1)
    engine = AggregationEngine(
        [Query.of("q", WindowSpec.sliding(length, slide), AggFunction.COUNT)]
    )
    for event in events:
        engine.process(event)
    sink = engine.close()
    total = sum(r.value for r in sink.for_query("q"))
    windows_per_event = -(-length // slide)  # ceil
    assert len(events) <= total <= windows_per_event * len(events)


@settings(max_examples=60, deadline=None)
@given(events=streams())
def test_slice_insert_counts_match_matched_events(events):
    """Per-slice insert counts sum to the engine's insert counter."""
    engine = AggregationEngine(
        [Query.of("q", WindowSpec.tumbling(500), AggFunction.SUM)]
    )
    slice_inserts = 0
    runtime = engine.groups[0]
    original = runtime._cut

    def counting_cut(time, eps, sps):
        nonlocal slice_inserts
        slice_inserts += sum(
            state.inserts for state in runtime.current.contexts.values()
        )
        original(time, eps, sps)

    runtime._cut = counting_cut
    for event in events:
        engine.process(event)
    engine.close()
    assert slice_inserts == engine.stats.inserts
