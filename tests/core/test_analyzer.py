"""Tests for query-group formation (Sec 4.2.3 and 5.2)."""

from __future__ import annotations

import pytest

from repro.core.analyzer import analyze
from repro.core.errors import QueryError
from repro.core.predicates import Selection
from repro.core.query import Query, WindowSpec
from repro.core.types import AggFunction, OperatorKind, SharingPolicy, WindowMeasure

K = OperatorKind


def q(qid, window, fn, *, quantile=None, selection=None):
    return Query.of(qid, window, fn, quantile=quantile, selection=selection)


def mixed_queries():
    return [
        q("a", WindowSpec.tumbling(1_000), AggFunction.MAX),
        q("b", WindowSpec.sliding(2_000, 500), AggFunction.QUANTILE, quantile=0.9),
        q("c", WindowSpec.session(300), AggFunction.MEDIAN),
        q("d", WindowSpec.user_defined(end_marker="end"), AggFunction.SUM),
        q("e", WindowSpec.tumbling(100, measure=WindowMeasure.COUNT), AggFunction.AVERAGE),
    ]


class TestFullSharing:
    def test_all_window_types_share_one_group(self):
        """Fig 3 / Fig 4: all five queries land in one query-group."""
        plan = analyze(mixed_queries())
        assert len(plan.groups) == 1
        group = plan.groups[0]
        assert len(group) == 5
        # max/quantile/median share the ndsort; avg/sum add sum+count.
        assert set(group.operators) == {K.SUM, K.COUNT, K.NON_DECOMPOSABLE_SORT}

    def test_identical_selections_share_a_context(self):
        sel = Selection(key="speed", lo=80.0)
        plan = analyze(
            [
                q("a", WindowSpec.tumbling(10), AggFunction.SUM, selection=sel),
                q("b", WindowSpec.tumbling(20), AggFunction.AVERAGE, selection=sel),
            ]
        )
        group = plan.groups[0]
        assert len(group.selections) == 1
        assert group.context_of["a"] == group.context_of["b"]

    def test_disjoint_selections_share_group_not_context(self):
        fast = Selection(key="speed", lo=80.0)
        slow = Selection(key="speed", hi=25.0)
        plan = analyze(
            [
                q("a", WindowSpec.tumbling(10), AggFunction.SUM, selection=fast),
                q("b", WindowSpec.tumbling(10), AggFunction.SUM, selection=slow),
            ]
        )
        assert len(plan.groups) == 1
        group = plan.groups[0]
        assert len(group.selections) == 2
        assert group.context_of["a"] != group.context_of["b"]

    def test_partially_overlapping_selections_split_groups(self):
        plan = analyze(
            [
                q("a", WindowSpec.tumbling(10), AggFunction.SUM,
                  selection=Selection(lo=0.0, hi=50.0)),
                q("b", WindowSpec.tumbling(10), AggFunction.SUM,
                  selection=Selection(lo=25.0, hi=75.0)),
            ]
        )
        assert len(plan.groups) == 2

    def test_duplicate_query_id_rejected(self):
        queries = [
            q("dup", WindowSpec.tumbling(10), AggFunction.SUM),
            q("dup", WindowSpec.tumbling(20), AggFunction.SUM),
        ]
        with pytest.raises(QueryError):
            analyze(queries)

    def test_group_of_lookup(self):
        plan = analyze(mixed_queries())
        assert plan.group_of("c") is plan.groups[0]
        with pytest.raises(QueryError):
            plan.group_of("nope")


class TestBaselinePolicies:
    def test_same_function_policy_splits_by_function(self):
        """Scotty shares only between identical aggregation functions."""
        plan = analyze(
            [
                q("a", WindowSpec.tumbling(10), AggFunction.SUM),
                q("b", WindowSpec.tumbling(20), AggFunction.SUM),
                q("c", WindowSpec.tumbling(10), AggFunction.AVERAGE),
            ],
            policy=SharingPolicy.SAME_FUNCTION,
        )
        assert len(plan.groups) == 2

    def test_distinct_quantiles_explode_same_function_groups(self):
        """Fig 9c: 100 distinct quantiles -> 100 groups for Scotty/DeSW."""
        queries = [
            q(f"q{i}", WindowSpec.tumbling(10), AggFunction.QUANTILE,
              quantile=(i + 1) / 200)
            for i in range(100)
        ]
        assert len(analyze(queries, policy=SharingPolicy.SAME_FUNCTION).groups) == 100
        assert len(analyze(queries, policy=SharingPolicy.FULL).groups) == 1

    def test_same_function_and_measure_splits_measures(self):
        """Fig 9h: DeSW separates count-based from time-based windows."""
        queries = [
            q("a", WindowSpec.tumbling(1_000), AggFunction.SUM),
            q("b", WindowSpec.tumbling(100, measure=WindowMeasure.COUNT),
              AggFunction.SUM),
        ]
        assert (
            len(analyze(queries, policy=SharingPolicy.SAME_FUNCTION).groups) == 1
        )
        assert (
            len(
                analyze(
                    queries, policy=SharingPolicy.SAME_FUNCTION_AND_MEASURE
                ).groups
            )
            == 2
        )

    def test_none_policy_isolates_every_query(self):
        queries = [
            q(f"q{i}", WindowSpec.tumbling(10), AggFunction.SUM) for i in range(7)
        ]
        assert len(analyze(queries, policy=SharingPolicy.NONE).groups) == 7


class TestDecentralizedPlacement:
    def test_count_windows_split_from_decomposable(self):
        """Sec 5.2: count-based windows form a root-evaluated group."""
        queries = [
            q("t", WindowSpec.tumbling(1_000), AggFunction.SUM),
            q("c", WindowSpec.tumbling(100, measure=WindowMeasure.COUNT),
              AggFunction.SUM),
        ]
        plan = analyze(queries, decentralized=True)
        assert len(plan.groups) == 2
        by_id = {g.queries[0].query_id: g for g in plan.groups}
        assert not by_id["t"].root_evaluated
        assert by_id["c"].root_evaluated
        assert by_id["c"].needs_timestamps

    def test_count_windows_join_non_decomposable_group(self):
        """Sec 5.2: count windows may share with non-decomposable queries."""
        queries = [
            q("m", WindowSpec.tumbling(1_000), AggFunction.MEDIAN),
            q("c", WindowSpec.tumbling(100, measure=WindowMeasure.COUNT),
              AggFunction.SUM),
        ]
        plan = analyze(queries, decentralized=True)
        assert len(plan.groups) == 1
        assert plan.groups[0].root_evaluated

    def test_centralized_ignores_placement(self):
        queries = [
            q("t", WindowSpec.tumbling(1_000), AggFunction.SUM),
            q("c", WindowSpec.tumbling(100, measure=WindowMeasure.COUNT),
              AggFunction.SUM),
        ]
        assert len(analyze(queries, decentralized=False).groups) == 1


class TestRuntimeRemoval:
    def test_remove_query_replans_operators(self):
        plan = analyze(
            [
                q("a", WindowSpec.tumbling(10), AggFunction.AVERAGE),
                q("b", WindowSpec.tumbling(10), AggFunction.MEDIAN),
            ]
        )
        group = plan.groups[0]
        assert set(group.operators) == {K.SUM, K.COUNT, K.NON_DECOMPOSABLE_SORT}
        group.remove_query("b")
        assert set(group.operators) == {K.SUM, K.COUNT}
        with pytest.raises(QueryError):
            group.remove_query("b")
