"""Tests for Table 1: the function -> operator decomposition and finalizers."""

from __future__ import annotations

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.errors import QueryError
from repro.core.functions import (
    FunctionSpec,
    finalize,
    is_decomposable,
    operators_for,
    plan_operators,
)
from repro.core.operators import OperatorSetState
from repro.core.types import AggFunction, OperatorKind

K = OperatorKind
F = AggFunction


class TestTable1:
    """Verifies the paper's Table 1 mapping exactly."""

    @pytest.mark.parametrize(
        "fn, expected",
        [
            (F.SUM, {K.SUM}),
            (F.COUNT, {K.COUNT}),
            (F.AVERAGE, {K.SUM, K.COUNT}),
            (F.PRODUCT, {K.MULTIPLICATION}),
            (F.GEOMETRIC_MEAN, {K.MULTIPLICATION, K.COUNT}),
            (F.MAX, {K.DECOMPOSABLE_SORT}),
            (F.MIN, {K.DECOMPOSABLE_SORT}),
            (F.MEDIAN, {K.NON_DECOMPOSABLE_SORT}),
            (F.QUANTILE, {K.NON_DECOMPOSABLE_SORT}),
        ],
    )
    def test_mapping(self, fn, expected):
        quantile = 0.9 if fn is F.QUANTILE else None
        assert set(operators_for(FunctionSpec(fn, quantile))) == expected

    def test_decomposability(self):
        assert is_decomposable(FunctionSpec(F.SUM))
        assert is_decomposable(FunctionSpec(F.AVERAGE))
        assert is_decomposable(FunctionSpec(F.MAX))
        assert not is_decomposable(FunctionSpec(F.MEDIAN))
        assert not is_decomposable(FunctionSpec(F.QUANTILE, 0.25))


class TestFunctionSpec:
    def test_quantile_requires_parameter(self):
        with pytest.raises(QueryError):
            FunctionSpec(F.QUANTILE)
        with pytest.raises(QueryError):
            FunctionSpec(F.QUANTILE, 1.5)

    def test_non_quantile_rejects_parameter(self):
        with pytest.raises(QueryError):
            FunctionSpec(F.SUM, 0.5)

    def test_distinct_quantiles_are_distinct_specs(self):
        assert FunctionSpec(F.QUANTILE, 0.5) != FunctionSpec(F.QUANTILE, 0.9)
        assert FunctionSpec(F.QUANTILE, 0.5) == FunctionSpec(F.QUANTILE, 0.5)


class TestPlanOperators:
    def test_avg_and_sum_share_two_operators(self):
        """Fig 9a/9b: average + sum execute only sum and count per event."""
        plan = plan_operators([FunctionSpec(F.AVERAGE), FunctionSpec(F.SUM)])
        assert set(plan) == {K.SUM, K.COUNT}

    def test_ndsort_subsumes_dsort(self):
        """Fig 9g: quantile + max share one non-decomposable sort."""
        plan = plan_operators(
            [FunctionSpec(F.QUANTILE, 0.9), FunctionSpec(F.MAX)]
        )
        assert plan == (K.NON_DECOMPOSABLE_SORT,)

    def test_min_max_share_one_dsort(self):
        plan = plan_operators([FunctionSpec(F.MIN), FunctionSpec(F.MAX)])
        assert plan == (K.DECOMPOSABLE_SORT,)

    def test_thousand_quantiles_one_operator(self):
        """Fig 9c/9d: 1000 distinct quantiles still need one operator."""
        specs = [FunctionSpec(F.QUANTILE, q / 1001) for q in range(1, 1001)]
        assert plan_operators(specs) == (K.NON_DECOMPOSABLE_SORT,)

    def test_plan_is_deterministic_order(self):
        plan = plan_operators(
            [FunctionSpec(F.GEOMETRIC_MEAN), FunctionSpec(F.AVERAGE)]
        )
        assert plan == (K.SUM, K.COUNT, K.MULTIPLICATION)


def _run(spec: FunctionSpec, values: list[float]):
    """Execute spec via its planned operators and finalize, as a slice would."""
    plan = plan_operators([spec])
    state = OperatorSetState(plan)
    for v in values:
        state.insert(v)
    return finalize(spec, state.partials())


class TestFinalize:
    def test_average(self):
        assert _run(FunctionSpec(F.AVERAGE), [1.0, 2.0, 3.0]) == pytest.approx(2.0)

    def test_average_empty_is_none(self):
        assert _run(FunctionSpec(F.AVERAGE), []) is None

    def test_geometric_mean(self):
        assert _run(FunctionSpec(F.GEOMETRIC_MEAN), [1.0, 4.0]) == pytest.approx(2.0)

    def test_geometric_mean_negative_product_rejected(self):
        with pytest.raises(QueryError):
            _run(FunctionSpec(F.GEOMETRIC_MEAN), [-1.0, 2.0])

    def test_min_max_from_dsort(self):
        assert _run(FunctionSpec(F.MAX), [3.0, 9.0, 1.0]) == 9.0
        assert _run(FunctionSpec(F.MIN), [3.0, 9.0, 1.0]) == 1.0

    def test_min_max_fall_back_to_ndsort(self):
        """When the group plans only the ndsort, min/max read the sorted run."""
        spec_max = FunctionSpec(F.MAX)
        plan = plan_operators([spec_max, FunctionSpec(F.MEDIAN)])
        assert plan == (K.NON_DECOMPOSABLE_SORT,)
        state = OperatorSetState(plan)
        for v in [5.0, -2.0, 3.0]:
            state.insert(v)
        parts = state.partials()
        assert finalize(spec_max, parts) == 5.0
        assert finalize(FunctionSpec(F.MIN), parts) == -2.0

    def test_median_odd_even(self):
        assert _run(FunctionSpec(F.MEDIAN), [5.0, 1.0, 3.0]) == 3.0
        assert _run(FunctionSpec(F.MEDIAN), [4.0, 1.0, 3.0, 2.0]) == pytest.approx(2.5)

    def test_quantile_interpolation(self):
        values = [float(v) for v in range(11)]
        assert _run(FunctionSpec(F.QUANTILE, 0.5), values) == pytest.approx(5.0)
        assert _run(FunctionSpec(F.QUANTILE, 0.25), values) == pytest.approx(2.5)

    def test_empty_partials_defaults(self):
        assert finalize(FunctionSpec(F.SUM), {}) == 0.0
        assert finalize(FunctionSpec(F.COUNT), {}) == 0
        assert finalize(FunctionSpec(F.MAX), {}) is None
        assert finalize(FunctionSpec(F.MEDIAN), {}) is None

    @given(
        st.lists(
            st.floats(min_value=-1e6, max_value=1e6, allow_nan=False), min_size=1
        )
    )
    def test_median_matches_statistics(self, values):
        import statistics

        assert _run(FunctionSpec(F.MEDIAN), values) == pytest.approx(
            statistics.median(values)
        )

    @given(
        st.lists(
            st.floats(min_value=0.1, max_value=100.0, allow_nan=False),
            min_size=1,
            max_size=20,
        )
    )
    def test_geometric_mean_matches_log_form(self, values):
        expected = math.exp(sum(math.log(v) for v in values) / len(values))
        assert _run(FunctionSpec(F.GEOMETRIC_MEAN), values) == pytest.approx(
            expected, rel=1e-6
        )
