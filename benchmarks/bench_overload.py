"""Overload-control benchmark: bounded buffering vs unbounded backlog.

Replays identical per-node streams through a three-tier ``DesisCluster``
over slow, lossy links (20 ms latency, 0.2 bytes/ms — far below the
offered load) twice per scale:

* **unbounded** — no credit windows, no staging caps: the reliable
  channel keeps accepting frames and its unacked send/retransmit queue
  grows with the backlog (``peak_unacked_bytes`` scales with events).
* **bounded** — credit-based flow control plus a staging cap
  (DESIGN.md §12): senders stall at the credit window, staging absorbs
  the deferral up to its cap, the oldest whole slices are shed beyond
  it, and affected windows emit degraded with ``completeness < 1.0``.

The report shows the tentpole property: bounded peak occupancy stays
flat as the scale doubles while the unbounded baseline keeps growing.
``run`` also audits every degraded window — its ``completeness`` must
exactly equal ``1 - union(shed coverage ∩ window) / window span`` as
recomputed from its own ``shed_slices`` — and asserts the unbounded run
never sheds or degrades.

Run standalone to (re)generate ``BENCH_overload.json`` at the repo
root::

    PYTHONPATH=src python benchmarks/bench_overload.py

``tests/test_bench_smoke.py`` runs the same harness at ``QUICK_EVENTS``
scale so tier-1 CI catches accounting drift in the overload path.
"""

from __future__ import annotations

import json
import random
import sys
import time as _time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
if str(REPO_ROOT / "src") not in sys.path:  # standalone execution
    sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.cluster import ClusterConfig, DesisCluster  # noqa: E402
from repro.core.event import Event  # noqa: E402
from repro.core.query import Query, WindowSpec  # noqa: E402
from repro.core.types import AggFunction  # noqa: E402
from repro.network.simnet import FaultPlan  # noqa: E402
from repro.network.topology import three_tier  # noqa: E402

DEFAULT_EVENTS = 1_500  # per local node, at the largest scale
QUICK_EVENTS = 600
OUTPUT_NAME = "BENCH_overload.json"

N_LOCALS = 2
TICK = 500
LATENCY_MS = 20.0
BANDWIDTH_BYTES_PER_MS = 0.2
CREDIT_BYTES = 1_500
CREDIT_FRAMES = 6
STAGING_LIMIT = 8


def _streams(per_node: int, *, seed: int = 11) -> dict[str, list]:
    """Deterministic per-node streams with globally unique timestamps."""
    rng = random.Random(seed)
    streams = {}
    for i in range(N_LOCALS):
        t = i
        events = []
        for _ in range(per_node):
            t += rng.choice([N_LOCALS, 2 * N_LOCALS, 5 * N_LOCALS])
            events.append(Event(time=t, key="k", value=float(rng.randint(0, 99))))
        streams[f"local-{i}"] = events
    return streams


def _run_once(streams: dict[str, list], *, bounded: bool):
    config = ClusterConfig(
        tick_interval=TICK,
        latency_ms=LATENCY_MS,
        bandwidth_bytes_per_ms=BANDWIDTH_BYTES_PER_MS,
        fault_plan=FaultPlan(seed=7),
        node_timeout=10**9,
        channel_credit_bytes=CREDIT_BYTES if bounded else None,
        channel_credit_frames=CREDIT_FRAMES if bounded else None,
        staging_limit=STAGING_LIMIT if bounded else None,
    )
    queries = [Query.of("q", WindowSpec.tumbling(1_000), AggFunction.SUM)]
    cluster = DesisCluster(queries, three_tier(N_LOCALS, 2), config=config)
    started = _time.perf_counter()
    result = cluster.run({k: list(v) for k, v in streams.items()})
    elapsed = _time.perf_counter() - started
    return result, elapsed


def _audit_degraded(result) -> float:
    """Check every degraded window's shed accounting; return min completeness.

    ``completeness`` must equal ``1 - union(shed ∩ window) / span`` as
    recomputed from the result's own ``shed_slices``, and a pristine
    result must carry no shed metadata.
    """
    min_completeness = 1.0
    for row in result.sink:
        shed = getattr(row, "shed_slices", ())
        completeness = getattr(row, "completeness", 1.0)
        if not shed:
            assert completeness == 1.0, (
                f"{row.query_id}[{row.start}..{row.end}): completeness "
                f"{completeness} without shed_slices"
            )
            continue
        clipped = sorted(
            (max(s, row.start), min(e, row.end)) for _, s, e in shed
        )
        union = 0
        cursor = row.start
        for s, e in clipped:
            s = max(s, cursor)
            if e > s:
                union += e - s
                cursor = e
        expected = max(1.0 - union / max(row.end - row.start, 1), 0.0)
        assert abs(completeness - expected) < 1e-12, (
            f"{row.query_id}[{row.start}..{row.end}): completeness "
            f"{completeness} != {expected} recomputed from {shed}"
        )
        min_completeness = min(min_completeness, completeness)
    return min_completeness


def run(n_events: int = DEFAULT_EVENTS) -> dict:
    """Run both modes at half and full scale; return the report dict."""
    report: dict = {
        "benchmark": "overload_control",
        "locals": N_LOCALS,
        "caps": {
            "channel_credit_bytes": CREDIT_BYTES,
            "channel_credit_frames": CREDIT_FRAMES,
            "staging_limit": STAGING_LIMIT,
        },
        "scales": {},
    }
    for per_node in (n_events // 2, n_events):
        streams = _streams(per_node)
        row: dict = {}
        for mode, bounded in (("unbounded", False), ("bounded", True)):
            result, elapsed = _run_once(streams, bounded=bounded)
            net = result.network
            entry = {
                "wall_s": round(elapsed, 4),
                "results": len(result.sink),
                "peak_unacked_bytes": net.peak_unacked_bytes,
                "peak_unacked_frames": net.peak_unacked_frames,
                "peak_staging": result.peak_staging,
                "credit_stalls": net.credit_stalls,
                "slices_shed": result.slices_shed,
                "records_shed": net.records_shed,
                "bytes_shed": net.bytes_shed,
                "degraded_windows": result.degraded_windows,
                "min_completeness": round(_audit_degraded(result), 6),
            }
            if bounded:
                assert result.peak_staging <= STAGING_LIMIT, (
                    f"staging occupancy {result.peak_staging} exceeded "
                    f"the cap {STAGING_LIMIT}"
                )
            else:
                assert result.slices_shed == 0 and not result.degraded_windows, (
                    "the unbounded baseline must not shed or degrade"
                )
            row[mode] = entry
        assert (
            row["bounded"]["peak_unacked_bytes"]
            <= row["unbounded"]["peak_unacked_bytes"]
        ), "flow control failed to bound channel occupancy"
        report["scales"][str(per_node)] = row
    return report


def main(argv: list[str] | None = None) -> None:
    import argparse

    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("events", nargs="?", type=int, default=DEFAULT_EVENTS)
    parser.add_argument("--quick", action="store_true",
                        help=f"smoke scale ({QUICK_EVENTS} events/node)")
    parser.add_argument("--metrics-out", default=None, dest="metrics_out",
                        metavar="PATH",
                        help="also write the scales as registry metrics "
                             "(.json, or .prom/.txt for Prometheus text)")
    args = parser.parse_args(argv)
    report = run(QUICK_EVENTS if args.quick else args.events)
    out = REPO_ROOT / OUTPUT_NAME
    out.write_text(json.dumps(report, indent=2) + "\n")
    for scale, row in report["scales"].items():
        for mode in ("unbounded", "bounded"):
            entry = row[mode]
            print(
                f"{scale:>5} ev/node {mode:>9}: "
                f"peak unacked {entry['peak_unacked_bytes']:>7,} B"
                f"  staging {entry['peak_staging']:>3}"
                f"  shed {entry['slices_shed']:>3}"
                f"  degraded {entry['degraded_windows']:>2}"
                f"  completeness>={entry['min_completeness']:.3f}"
            )
    print(f"wrote {out}")
    if args.metrics_out:
        from repro.obs import MetricsRegistry, write_metrics

        registry = MetricsRegistry()
        for scale, row in report["scales"].items():
            for mode, entry in row.items():
                for key in (
                    "peak_unacked_bytes", "peak_unacked_frames",
                    "peak_staging", "min_completeness",
                ):
                    registry.gauge(f"bench.overload.{key}", scale=scale,
                                   mode=mode).set(entry[key])
                for key in (
                    "credit_stalls", "slices_shed", "records_shed",
                    "bytes_shed", "degraded_windows",
                ):
                    registry.counter(f"bench.overload.{key}", scale=scale,
                                     mode=mode).inc(entry[key])
        write_metrics(registry, args.metrics_out,
                      benchmark=report["benchmark"])
        print(f"metrics -> {args.metrics_out}")


if __name__ == "__main__":
    main()
