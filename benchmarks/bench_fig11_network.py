"""Figure 11: network overhead by node class (Sec 6.4.1).

Setup: the minimal decentralized topology (local -> intermediate -> root),
exact serialized bytes counted per link.

* Fig 11a — one average query: Desis/Disco ship per-slice partials and
  save ~99% of the bytes centralized systems spend shipping raw events.
* Fig 11b — one median query: everyone ships every value; Disco pays
  extra for its string messages.
* Fig 11c — bytes grow linearly with distinct keys (per-key partials).
* Fig 11d — bytes vs concurrent windows: Desis ships slices (flat);
  Disco ships windows (grows).
"""

from __future__ import annotations

import pytest

from repro.baselines import CeBufferProcessor, ScottyProcessor
from repro.core.predicates import Selection
from repro.core.query import Query, WindowSpec
from repro.core.types import AggFunction, NodeRole
from repro.cluster import CentralizedCluster, ClusterConfig, DesisCluster, DiscoCluster
from repro.harness import print_table
from repro.metrics import breakdown, fmt_bytes
from repro.network.topology import three_tier

from conftest import cluster_streams

TICK = 1_000
N = 40_000


def topo():
    return three_tier(1, 1)


def config():
    return ClusterConfig(tick_interval=TICK)


def avg_query():
    return [Query.of("avg", WindowSpec.tumbling(1_000), AggFunction.AVERAGE)]


def median_query():
    return [Query.of("med", WindowSpec.tumbling(1_000), AggFunction.MEDIAN)]


def run_all(queries, streams):
    runs = {
        "Desis": DesisCluster(queries, topo(), config=config()).run(dict(streams)),
        "Disco": DiscoCluster(queries, topo(), config=config()).run(dict(streams)),
        "Scotty": CentralizedCluster(
            queries, topo(), ScottyProcessor, config=config()
        ).run(dict(streams)),
        "CeBuffer": CentralizedCluster(
            queries, topo(), CeBufferProcessor, config=config()
        ).run(dict(streams)),
    }
    return runs


def _table(figure, runs):
    rows = []
    for name, run in runs.items():
        rolled = breakdown(run.network)
        rows.append(
            [
                name,
                fmt_bytes(rolled.local_bytes),
                fmt_bytes(rolled.intermediate_bytes),
                fmt_bytes(rolled.data_bytes),
            ]
        )
    print_table(figure, ["system", "local", "intermediate", "total data"], rows)


def test_fig11a_decomposable_savings(benchmark):
    streams = cluster_streams(1, N)
    runs = run_all(avg_query(), streams)
    _table("Fig 11a: network bytes, 1 average query", runs)
    desis = breakdown(runs["Desis"].network).data_bytes
    scotty = breakdown(runs["Scotty"].network).data_bytes
    # The paper's "saves 99% of network overhead".
    assert desis < scotty / 50
    disco = breakdown(runs["Disco"].network).data_bytes
    assert disco < scotty / 10
    benchmark.pedantic(
        lambda: DesisCluster(avg_query(), topo(), config=config()).run(
            cluster_streams(1, 5_000)
        ),
        rounds=1, iterations=1,
    )


def test_fig11b_non_decomposable_ships_all(benchmark):
    streams = cluster_streams(1, N)
    runs = run_all(median_query(), streams)
    _table("Fig 11b: network bytes, 1 median query", runs)
    rolled = {name: breakdown(run.network).data_bytes for name, run in runs.items()}
    # Everyone ships every value: same order of magnitude (paper: all
    # around 3 GB for 100M events)...
    assert rolled["Desis"] > rolled["Scotty"] / 4
    # ...and Disco's JSON strings cost far more than Desis' binary
    # sorted-batch partials for the same values.
    assert rolled["Disco"] > 2 * rolled["Desis"]
    benchmark.pedantic(
        lambda: DesisCluster(median_query(), topo(), config=config()).run(
            cluster_streams(1, 5_000)
        ),
        rounds=1, iterations=1,
    )


def test_fig11c_bytes_vs_keys(benchmark):
    rows = []
    desis_bytes = {}
    for n_keys in (1, 4, 16):
        keys = tuple(f"k{i}" for i in range(n_keys))
        queries = [
            Query.of(
                f"q-{key}",
                WindowSpec.tumbling(1_000),
                AggFunction.AVERAGE,
                selection=Selection(key=key),
            )
            for key in keys
        ]
        streams = cluster_streams(1, N, keys=n_keys)
        run = DesisCluster(queries, topo(), config=config()).run(streams)
        desis_bytes[n_keys] = breakdown(run.network).data_bytes
        rows.append([n_keys, fmt_bytes(desis_bytes[n_keys])])
    print_table(
        "Fig 11c: Desis network bytes vs distinct keys",
        ["keys", "data bytes"],
        rows,
    )
    # Per-key partial results ship individually: ~linear growth (a fixed
    # per-record framing overhead dampens the small-key end).
    assert desis_bytes[16] > 4 * desis_bytes[1]
    assert desis_bytes[4] > 1.5 * desis_bytes[1]
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)


def test_fig11d_bytes_vs_windows(benchmark):
    rows = []
    collected = {}
    for n_windows in (1, 8, 32):
        queries = [
            Query.of(f"q{i}", WindowSpec.tumbling(1_000), AggFunction.AVERAGE)
            for i in range(n_windows)
        ]
        streams = cluster_streams(1, N, keys=1)
        desis = DesisCluster(queries, topo(), config=config()).run(dict(streams))
        disco = DiscoCluster(queries, topo(), config=config()).run(dict(streams))
        collected[("Desis", n_windows)] = breakdown(desis.network).data_bytes
        collected[("Disco", n_windows)] = breakdown(disco.network).data_bytes
        rows.append(
            [
                n_windows,
                fmt_bytes(collected[("Desis", n_windows)]),
                fmt_bytes(collected[("Disco", n_windows)]),
            ]
        )
    print_table(
        "Fig 11d: network bytes vs concurrent windows (single key)",
        ["windows", "Desis (per-slice)", "Disco (per-window)"],
        rows,
    )
    # Desis computes slices, not queries, on local nodes: flat traffic.
    assert collected[("Desis", 32)] < 1.3 * collected[("Desis", 1)]
    # Disco ships each window's partials separately: traffic grows.
    assert collected[("Disco", 32)] > 5 * collected[("Disco", 1)]
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
