"""Figure 7: decentralized scalability (Sec 6.2.2).

* Fig 7a/7b — cluster throughput vs number of local nodes, for a
  decomposable (average) and a non-decomposable (median) function.
* Fig 7c/7d — per-node-class work while the number of children grows.
* Fig 7e — per-node-class work vs number of distinct keys (selection
  operators are scanned per event on locals).
* Fig 7f — per-node-class work vs concurrent windows on one key.

Paper shape: with averages, Desis and Disco scale ~linearly with local
nodes while centralized systems stay flat; with medians the root bounds
the system.  Locals slow down with more keys; roots/intermediates do not.
"""

from __future__ import annotations

import pytest

from repro.baselines import ScottyProcessor
from repro.core.predicates import Selection
from repro.core.query import Query, WindowSpec
from repro.core.types import AggFunction, NodeRole
from repro.cluster import CentralizedCluster, ClusterConfig, DesisCluster, DiscoCluster
from repro.harness import fmt_rate, print_table, tumbling_queries

from conftest import cluster_streams

NODE_COUNTS = (1, 2, 4, 8)


def avg_queries():
    return [Query.of("avg", WindowSpec.tumbling(1_000), AggFunction.AVERAGE)]


def median_queries():
    return [Query.of("med", WindowSpec.tumbling(1_000), AggFunction.MEDIAN)]


def topology(n_locals):
    from repro.network.topology import three_tier

    return three_tier(n_locals, 1)


def run_desis(queries, n_locals, *, keys=10, events=None):
    streams = cluster_streams(n_locals, keys=keys) if events is None else events
    cluster = DesisCluster(
        queries, topology(n_locals), config=ClusterConfig(tick_interval=1_000)
    )
    return cluster.run(streams)


def test_fig7a_scaling_average(benchmark):
    """Fig 7a: throughput vs local nodes, average function."""
    rows = []
    desis_rates = {}
    for n in NODE_COUNTS:
        streams = cluster_streams(n)
        desis = run_desis(avg_queries(), n, events=dict(streams))
        disco = DiscoCluster(
            avg_queries(), topology(n), config=ClusterConfig(tick_interval=1_000)
        ).run(dict(streams))
        central = CentralizedCluster(
            avg_queries(),
            topology(n),
            ScottyProcessor,
            config=ClusterConfig(tick_interval=1_000),
        ).run(dict(streams))
        desis_rates[n] = desis.modeled_parallel_throughput
        rows.append(
            [
                n,
                fmt_rate(desis.modeled_parallel_throughput),
                fmt_rate(disco.modeled_parallel_throughput),
                fmt_rate(central.modeled_parallel_throughput),
            ]
        )
    print_table(
        "Fig 7a: modeled cluster throughput vs local nodes (average)",
        ["locals", "Desis", "Disco", "Scotty (centralized)"],
        rows,
    )
    # Pushed-down aggregation parallelizes over locals: the busiest node's
    # share shrinks as locals are added (paper: linear scaling).
    assert desis_rates[8] > 3 * desis_rates[1]
    benchmark.pedantic(
        lambda: run_desis(avg_queries(), 2), rounds=1, iterations=1
    )


def test_fig7b_scaling_median(benchmark):
    """Fig 7b: throughput vs local nodes, median function (root-bound)."""
    rows = []
    rates = {}
    for n in NODE_COUNTS:
        desis = run_desis(median_queries(), n)
        rates[n] = desis.modeled_parallel_throughput
        rows.append(
            [n, fmt_rate(desis.modeled_parallel_throughput), desis.bottleneck_node[0]]
        )
    print_table(
        "Fig 7b: modeled Desis throughput vs local nodes (median)",
        ["locals", "Desis", "bottleneck"],
        rows,
    )
    # The root collects every value: adding locals cannot scale the system
    # the way the decomposable workload does (Fig 7a vs 7b).
    assert rates[8] < 4 * rates[1]
    benchmark.pedantic(
        lambda: run_desis(median_queries(), 2), rounds=1, iterations=1
    )


def test_fig7cd_per_node_work(benchmark):
    """Fig 7c/7d: per-node-class CPU time as children scale."""
    rows = []
    for n in (2, 4, 8):
        for queries, label in ((avg_queries(), "avg"), (median_queries(), "median")):
            result = run_desis(queries, n)
            cpu = result.cpu_by_role
            rows.append(
                [
                    label,
                    n,
                    f"{cpu.get(NodeRole.LOCAL, 0.0):.3f}s",
                    f"{cpu.get(NodeRole.INTERMEDIATE, 0.0):.3f}s",
                    f"{cpu.get(NodeRole.ROOT, 0.0):.3f}s",
                ]
            )
    print_table(
        "Fig 7c/7d: per-node-class CPU time vs children",
        ["function", "locals", "local cpu", "intermediate cpu", "root cpu"],
        rows,
    )
    # Median centralizes the work: the upstream (root + intermediate)
    # share of total CPU is far larger than for the pushed-down average.
    avg8 = run_desis(avg_queries(), 8).cpu_by_role
    med8 = run_desis(median_queries(), 8).cpu_by_role

    def upstream_share(cpu):
        upstream = cpu.get(NodeRole.ROOT, 0.0) + cpu.get(NodeRole.INTERMEDIATE, 0.0)
        return upstream / sum(cpu.values())

    assert upstream_share(med8) > 2 * upstream_share(avg8)
    benchmark.pedantic(
        lambda: run_desis(avg_queries(), 4), rounds=1, iterations=1
    )


def test_fig7e_keys_slow_down_locals(benchmark):
    """Fig 7e: distinct keys add selection operators scanned per event on
    the local nodes; root and intermediate merge work is per-partial."""
    rows = []
    cpu_shares = {}
    checks = {}
    for n_keys in (1, 8, 32):
        keys = tuple(f"k{i}" for i in range(n_keys))
        queries = [
            Query.of(
                f"q-{key}",
                WindowSpec.tumbling(1_000),
                AggFunction.AVERAGE,
                selection=Selection(key=key),
            )
            for key in keys
        ]
        streams = cluster_streams(2, keys=n_keys)
        result = DesisCluster(
            queries, topology(2), config=ClusterConfig(tick_interval=1_000)
        ).run(streams)
        cpu = result.cpu_by_role
        cpu_shares[n_keys] = cpu[NodeRole.LOCAL]
        checks[n_keys] = sum(
            stats.selection_checks for stats in result.local_stats.values()
        )
        rows.append(
            [
                n_keys,
                f"{checks[n_keys]:,}",
                f"{cpu[NodeRole.LOCAL]:.3f}s",
                f"{cpu[NodeRole.INTERMEDIATE]:.3f}s",
                f"{cpu[NodeRole.ROOT]:.3f}s",
            ]
        )
    print_table(
        "Fig 7e: local selection-operator work vs distinct keys (1 query per key)",
        ["keys", "selection checks", "local cpu", "intermediate cpu", "root cpu"],
        rows,
    )
    # Every event passes through one selection operator per key on the
    # local nodes — the deterministic cause of Fig 7e's slowdown.
    assert checks[32] == 32 * checks[1]
    # The wall-clock trend follows (asserted with generous noise slack).
    assert cpu_shares[32] > 1.2 * cpu_shares[1]
    benchmark.pedantic(
        lambda: run_desis(avg_queries(), 2, keys=4), rounds=1, iterations=1
    )


def test_fig7f_windows_do_not_slow_locals(benchmark):
    """Fig 7f: 100 concurrent windows on one key leave all node classes
    at (nearly) single-window cost."""
    rows = []
    locals_cpu = {}
    for n_windows in (1, 100):
        queries = tumbling_queries(n_windows)
        streams = cluster_streams(2, keys=1)
        result = DesisCluster(
            queries, topology(2), config=ClusterConfig(tick_interval=1_000)
        ).run(streams)
        cpu = result.cpu_by_role
        locals_cpu[n_windows] = cpu[NodeRole.LOCAL]
        rows.append(
            [
                n_windows,
                f"{cpu[NodeRole.LOCAL]:.3f}s",
                f"{cpu[NodeRole.ROOT]:.3f}s",
            ]
        )
    print_table(
        "Fig 7f: per-node-class CPU time vs concurrent windows (same key)",
        ["windows", "local cpu", "root cpu"],
        rows,
    )
    assert locals_cpu[100] < 3 * locals_cpu[1]
    benchmark.pedantic(
        lambda: run_desis(tumbling_queries(10), 2, keys=1), rounds=1, iterations=1
    )
