"""Shared fixtures for the figure-by-figure benchmark suite.

Every module regenerates one figure of the paper's evaluation (Sec 6) at
laptop scale: the absolute numbers are Python-on-one-machine numbers, but
the *shape* — who wins, by what factor, where the crossovers are — mirrors
the paper.  Tables print with ``pytest benchmarks/ --benchmark-only -s``.

Deterministic work counters (operator calculations, slices, bytes) are
asserted hard; wall-clock comparisons are asserted only where the expected
gap is an order of magnitude, and otherwise just reported.
"""

from __future__ import annotations

import pytest

from repro.datagen import DataGenerator, DataGeneratorConfig

#: events per centralized replay (large enough for stable rates, small
#: enough that the whole suite finishes in a few minutes)
N_EVENTS = 100_000
#: events per local node in cluster benchmarks
N_CLUSTER_EVENTS = 30_000


def stream(n=N_EVENTS, *, keys=10, rate=50_000.0, seed=1, marker=None,
           marker_every_ms=1_000):
    """The evaluation's default stream: ``keys`` distinct keys (Sec 6.2.1)."""
    config = DataGeneratorConfig(
        keys=tuple(f"k{i}" for i in range(keys)),
        rate=rate,
        marker=marker,
        marker_every_ms=marker_every_ms,
    )
    return list(DataGenerator(config, seed=seed).events(n))


@pytest.fixture(scope="module")
def default_stream():
    return stream()


def cluster_streams(n_nodes, n=N_CLUSTER_EVENTS, *, keys=10, rate=20_000.0,
                    seed=1):
    config = DataGeneratorConfig(
        keys=tuple(f"k{i}" for i in range(keys)), rate=rate
    )
    return DataGenerator(config, seed=seed).streams(n_nodes, n)
