"""Shared fixtures for the figure-by-figure benchmark suite.

Every module regenerates one figure of the paper's evaluation (Sec 6) at
laptop scale: the absolute numbers are Python-on-one-machine numbers, but
the *shape* — who wins, by what factor, where the crossovers are — mirrors
the paper.  Tables print with ``pytest benchmarks/ --benchmark-only -s``.

Deterministic work counters (operator calculations, slices, bytes) are
asserted hard; wall-clock comparisons are asserted only where the expected
gap is an order of magnitude, and otherwise just reported.
"""

from __future__ import annotations

import json

import pytest

from repro.datagen import DataGenerator, DataGeneratorConfig
from repro.harness.reporting import add_table_collector, remove_table_collector

def pytest_addoption(parser):
    parser.addoption(
        "--metrics-out",
        default=None,
        dest="metrics_out",
        metavar="PATH",
        help="capture every benchmark table and write them as JSON here",
    )


def pytest_configure(config):
    path = config.getoption("metrics_out", default=None)
    if not path:
        return
    tables: list[dict] = []

    def collect(title, headers, rows):
        tables.append({"title": title, "headers": headers, "rows": rows})

    add_table_collector(collect)
    config._metrics_collector = (path, tables, collect)


def pytest_unconfigure(config):
    captured = getattr(config, "_metrics_collector", None)
    if captured is None:
        return
    path, tables, collect = captured
    remove_table_collector(collect)
    with open(path, "w") as fh:
        json.dump({"tables": tables}, fh, indent=2)
        fh.write("\n")


#: events per centralized replay (large enough for stable rates, small
#: enough that the whole suite finishes in a few minutes)
N_EVENTS = 100_000
#: events per local node in cluster benchmarks
N_CLUSTER_EVENTS = 30_000


def stream(n=N_EVENTS, *, keys=10, rate=50_000.0, seed=1, marker=None,
           marker_every_ms=1_000):
    """The evaluation's default stream: ``keys`` distinct keys (Sec 6.2.1)."""
    config = DataGeneratorConfig(
        keys=tuple(f"k{i}" for i in range(keys)),
        rate=rate,
        marker=marker,
        marker_every_ms=marker_every_ms,
    )
    return list(DataGenerator(config, seed=seed).events(n))


@pytest.fixture(scope="module")
def default_stream():
    return stream()


def cluster_streams(n_nodes, n=N_CLUSTER_EVENTS, *, keys=10, rate=20_000.0,
                    seed=1):
    config = DataGeneratorConfig(
        keys=tuple(f"k{i}" for i in range(keys)), rate=rate
    )
    return DataGenerator(config, seed=seed).streams(n_nodes, n)
