"""Figure 13: real-world data and the Raspberry Pi cluster (Sec 6.5).

* Fig 13a — synthetic-DEBS stream, randomly generated decomposable
  queries, query count swept to thousands.  Paper shape: Desis stays well
  ahead of DeSW (~4x), bucketed systems collapse immediately, and even
  Desis/DeSW decline at very high query counts because materializing each
  query's results dominates.
* Fig 13b — the Pi cluster: 1G Ethernet caps centralized shipping at the
  link rate while Desis' partial results never approach it.  Modeled as
  sustainable throughput = min(compute bottleneck, bandwidth /
  bytes-per-event); the simulated links enforce the same cap.
* Fig 13c/13d — network rate and per-node-class work on the Pi topology.
"""

from __future__ import annotations

import pytest

from repro.baselines import (
    CeBufferProcessor,
    DeBucketProcessor,
    DeSWProcessor,
    DesisProcessor,
    ScottyProcessor,
)
from repro.core.types import WindowType
from repro.cluster import CentralizedCluster, ClusterConfig, DesisCluster
from repro.datagen import DebsConfig, DebsGenerator, QueryGenerator, QueryGeneratorConfig
from repro.harness import fmt_rate, print_table, run_processor
from repro.metrics import breakdown, fmt_bytes, modeled_sustainable_throughput
from repro.network.topology import three_tier

N = 50_000
#: ~1 Gbit/s in bytes per simulated millisecond
GIGABIT = 125_000.0


@pytest.fixture(scope="module")
def debs_events():
    return list(DebsGenerator(DebsConfig(players=8, rate=20_000.0), seed=2).events(N))


def random_queries(n, keys):
    config = QueryGeneratorConfig(
        keys=tuple(keys),
        window_types=(WindowType.TUMBLING, WindowType.SLIDING),
        decomposable_only=True,
    )
    return QueryGenerator(config, seed=7).queries(n)


def test_fig13a_real_world_query_scaling(debs_events, benchmark):
    generator = DebsGenerator(DebsConfig(players=8))
    keys = generator.keys[:8]
    systems = {
        "Desis": DesisProcessor,
        "DeSW": DeSWProcessor,
        "DeBucket": DeBucketProcessor,
        "CeBuffer": CeBufferProcessor,
    }
    counts = (10, 100, 1_000)
    table = {}
    for name, factory in systems.items():
        cells = []
        for n in counts:
            if name in ("DeBucket", "CeBuffer") and n > 100:
                cells.append(None)
                continue
            cells.append(run_processor(factory, random_queries(n, keys), debs_events))
        table[name] = cells
    print_table(
        "Fig 13a: throughput on synthetic DEBS data vs query count",
        ["system", *[f"{n} queries" for n in counts]],
        [
            [
                name,
                *[
                    fmt_rate(s.events_per_second) if s is not None else "-"
                    for s in cells
                ],
            ]
            for name, cells in table.items()
        ],
    )
    desis = table["Desis"]
    desw = table["DeSW"]
    # Paper: "Desis has about 4 times better performance" than DeSW —
    # the random function mix forces DeSW into many query-groups.
    assert desis[1].events_per_second > 2 * desw[1].events_per_second
    # Paper: beyond a high query count both decline because materializing
    # every query's results dominates (here already visible at 1000).
    assert desis[2].events_per_second < desis[1].events_per_second
    assert desis[2].results > desis[0].results
    benchmark.pedantic(
        lambda: run_processor(DesisProcessor, random_queries(100, keys), debs_events),
        rounds=1, iterations=1,
    )


def _pi_config():
    # Scale the Pi's 1G link down to keep simulated transfers in range
    # while preserving the ratio of event rate to bandwidth.
    return ClusterConfig(tick_interval=1_000, bandwidth_bytes_per_ms=GIGABIT / 1_000)


def test_fig13b_pi_cluster_scaling(benchmark):
    """Fig 13b: modeled sustainable throughput on the Pi cluster."""
    from repro.datagen import DataGenerator, DataGeneratorConfig
    from repro.harness import tumbling_queries

    rows = []
    rates = {}
    for n_pis in (1, 2, 4):
        streams = DataGenerator(
            DataGeneratorConfig(keys=tuple(f"k{i}" for i in range(10)),
                                rate=20_000.0),
            seed=3,
        ).streams(n_pis, 20_000)
        events = sum(len(s) for s in streams.values())
        desis = DesisCluster(
            tumbling_queries(1), three_tier(n_pis, 1), config=_pi_config()
        ).run(dict(streams))
        central = CentralizedCluster(
            tumbling_queries(1),
            three_tier(n_pis, 1),
            ScottyProcessor,
            config=_pi_config(),
        ).run(dict(streams))
        # Bandwidth-capped sustainable throughput for the centralized
        # system: bytes/event on the shared uplink vs the 1G budget.
        central_bytes_per_event = (
            breakdown(central.network).data_bytes / 2 / events
        )
        central_rate = modeled_sustainable_throughput(
            node_rates=[central.modeled_parallel_throughput],
            bytes_per_event=central_bytes_per_event,
            link_bandwidth_bytes_per_s=GIGABIT * 1_000,
        )
        desis_bytes_per_event = breakdown(desis.network).data_bytes / 2 / events
        desis_rate = modeled_sustainable_throughput(
            node_rates=[desis.modeled_parallel_throughput],
            bytes_per_event=desis_bytes_per_event,
            link_bandwidth_bytes_per_s=GIGABIT * 1_000,
        )
        rates[("Desis", n_pis)] = desis_rate
        rates[("Scotty", n_pis)] = central_rate
        rows.append([n_pis, fmt_rate(desis_rate), fmt_rate(central_rate)])
    print_table(
        "Fig 13b: modeled sustainable throughput on the Pi cluster (1G)",
        ["Pis", "Desis", "Scotty"],
        rows,
    )
    # Desis scales with Pis; Scotty's ceiling is the wire, so it cannot
    # gain a full node's worth per added Pi.
    assert rates[("Desis", 4)] > 2.5 * rates[("Desis", 1)]
    assert rates[("Scotty", 4)] < 2.5 * rates[("Scotty", 1)]
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)


def test_fig13cd_pi_network_and_latency(benchmark):
    from repro.datagen import DataGenerator, DataGeneratorConfig
    from repro.harness import tumbling_queries
    from repro.metrics import event_time_latencies
    import statistics

    streams = DataGenerator(
        DataGeneratorConfig(keys=("k",), rate=20_000.0), seed=3
    ).streams(2, 20_000)
    span_s = (
        max(s[-1].time for s in streams.values())
        - min(s[0].time for s in streams.values())
    ) / 1_000
    rows = []
    runs = {
        "Desis": DesisCluster(
            tumbling_queries(1), three_tier(2, 1), config=_pi_config()
        ).run(dict(streams)),
        "Scotty": CentralizedCluster(
            tumbling_queries(1),
            three_tier(2, 1),
            ScottyProcessor,
            config=_pi_config(),
        ).run(dict(streams)),
    }
    for name, run in runs.items():
        lags = event_time_latencies(run.sink)
        rows.append(
            [
                name,
                fmt_bytes(breakdown(run.network).data_bytes / span_s) + "/s",
                f"{statistics.fmean(lags):.0f} ms" if lags else "-",
            ]
        )
    print_table(
        "Fig 13c/13d: network rate and mean latency on the Pi topology",
        ["system", "network rate", "mean event-time latency"],
        rows,
    )
    desis_rate = breakdown(runs["Desis"].network).data_bytes / span_s
    scotty_rate = breakdown(runs["Scotty"].network).data_bytes / span_s
    assert desis_rate < scotty_rate / 50
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
