"""Hot-path micro-benchmark: per-event vs batched slice-run ingestion.

Replays the evaluation's default stream through ``DesisProcessor`` twice —
once through the per-event ``process`` loop, once through the batched
``process_batch`` slice-run path — for a single tumbling/avg query and for
the 100-query tumbling/avg mix of Sec 6.2.1.  Results and
:class:`~repro.core.engine.EngineStats` are asserted identical between the
two paths (the batched path bills work as if applied per event), so the
only difference is wall-clock.

Run standalone to (re)generate ``BENCH_hot_path.json`` at the repo root::

    PYTHONPATH=src python benchmarks/bench_hot_path.py

``tests/test_bench_smoke.py`` runs the same harness at tiny scale so CI
catches fast-path breakage or parity drift.
"""

from __future__ import annotations

import json
import sys
import time as _time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
if str(REPO_ROOT / "src") not in sys.path:  # standalone execution
    sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.baselines.engines import DesisProcessor  # noqa: E402
from repro.datagen import DataGenerator, DataGeneratorConfig  # noqa: E402
from repro.harness import tumbling_queries  # noqa: E402

DEFAULT_EVENTS = 200_000
DEFAULT_REPEATS = 3
OUTPUT_NAME = "BENCH_hot_path.json"

#: (label, query count) — the 100-query mix is the Sec 6.2.1 workload the
#: issue's >= 2x acceptance bar is measured on.
WORKLOADS = (("single_query", 1), ("100_queries", 100))


def _stream(n: int, *, keys: int = 10, rate: float = 50_000.0, seed: int = 1):
    config = DataGeneratorConfig(
        keys=tuple(f"k{i}" for i in range(keys)), rate=rate
    )
    return list(DataGenerator(config, seed=seed).events(n))


def _replay(queries, events, *, batched: bool):
    """Replay ``events`` through a fresh Desis engine; return (stats, sink,
    elapsed seconds)."""
    processor = DesisProcessor(queries)
    started = _time.perf_counter()
    if batched:
        processor.process_batch(events)
    else:
        process = processor.process
        for event in events:
            process(event)
    processor.close()
    elapsed = _time.perf_counter() - started
    return processor.stats, processor.sink, elapsed


def run(n_events: int = DEFAULT_EVENTS, *, repeats: int = DEFAULT_REPEATS) -> dict:
    """Run all workloads; return the report dict written to JSON."""
    events = _stream(n_events)
    report: dict = {
        "benchmark": "hot_path_ingestion",
        "events": n_events,
        "repeats": repeats,
        "workloads": {},
    }
    for label, n_queries in WORKLOADS:
        queries = tumbling_queries(n_queries)
        best = {"per_event": float("inf"), "batched": float("inf")}
        baseline = None
        for _ in range(repeats):
            for mode, batched in (("per_event", False), ("batched", True)):
                stats, sink, elapsed = _replay(queries, events, batched=batched)
                best[mode] = min(best[mode], elapsed)
                outcome = (stats, [
                    (r.query_id, r.start, r.end, r.value, r.event_count,
                     r.emitted_at)
                    for r in sink.results
                ])
                if baseline is None:
                    baseline = outcome
                elif outcome != baseline:
                    raise AssertionError(
                        f"{label}/{mode}: results or stats diverged from "
                        "the per-event path"
                    )
        per_event_rate = n_events / best["per_event"]
        batched_rate = n_events / best["batched"]
        report["workloads"][label] = {
            "queries": n_queries,
            "per_event_s": round(best["per_event"], 4),
            "batched_s": round(best["batched"], 4),
            "per_event_events_per_s": round(per_event_rate),
            "batched_events_per_s": round(batched_rate),
            "speedup": round(batched_rate / per_event_rate, 2),
        }
    return report


def main(argv: list[str] | None = None) -> None:
    import argparse

    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("events", nargs="?", type=int, default=DEFAULT_EVENTS)
    parser.add_argument("--metrics-out", default=None, dest="metrics_out",
                        metavar="PATH",
                        help="also write the rates as registry metrics "
                             "(.json, or .prom/.txt for Prometheus text)")
    args = parser.parse_args(argv)
    report = run(args.events)
    out = REPO_ROOT / OUTPUT_NAME
    out.write_text(json.dumps(report, indent=2) + "\n")
    for label, row in report["workloads"].items():
        print(
            f"{label:>12}: per-event {row['per_event_events_per_s']:>9,} ev/s"
            f"  batched {row['batched_events_per_s']:>9,} ev/s"
            f"  ({row['speedup']}x)"
        )
    print(f"wrote {out}")
    if args.metrics_out:
        from repro.obs import MetricsRegistry, write_metrics

        registry = MetricsRegistry()
        for label, row in report["workloads"].items():
            registry.gauge("bench.hot_path.per_event_events_per_s",
                           workload=label).set(row["per_event_events_per_s"])
            registry.gauge("bench.hot_path.batched_events_per_s",
                           workload=label).set(row["batched_events_per_s"])
            registry.gauge("bench.hot_path.speedup",
                           workload=label).set(row["speedup"])
        write_metrics(registry, args.metrics_out, benchmark=report["benchmark"],
                      events=report["events"])
        print(f"metrics -> {args.metrics_out}")


if __name__ == "__main__":
    main()
