"""Figure 12: latency by node class (Sec 6.4.2).

Same minimal topology as Fig 11, one 1-second tumbling window.  Latency
has two reproducible components here:

* per-node aggregation work — wall-clock CPU seconds spent in each node
  class's handlers (the paper records "the time for systems performing
  window aggregations" per node);
* end-to-end event-time latency of results in simulated time, which
  accumulates one tick plus per-hop link latency per intermediate layer.

Paper shape: for averages, all Desis node classes contribute a little and
deeper topologies add latency linearly; for medians, the local nodes are
far cheaper than the intermediate/root nodes, which merge the batches.
"""

from __future__ import annotations

import statistics

import pytest

from repro.baselines import CeBufferProcessor, ScottyProcessor
from repro.core.query import Query, WindowSpec
from repro.core.types import AggFunction, NodeRole
from repro.cluster import CentralizedCluster, ClusterConfig, DesisCluster
from repro.harness import print_table
from repro.metrics import event_time_latencies
from repro.network.topology import chain, three_tier

from conftest import cluster_streams

TICK = 1_000
N = 40_000


def config():
    return ClusterConfig(tick_interval=TICK)


def avg_query():
    return [Query.of("avg", WindowSpec.tumbling(1_000), AggFunction.AVERAGE)]


def median_query():
    return [Query.of("med", WindowSpec.tumbling(1_000), AggFunction.MEDIAN)]


def test_fig12a_average_by_node_class(benchmark):
    streams = cluster_streams(2, N)
    desis = DesisCluster(avg_query(), three_tier(2, 1), config=config()).run(
        dict(streams)
    )
    scotty = CentralizedCluster(
        avg_query(), three_tier(2, 1), ScottyProcessor, config=config()
    ).run(dict(streams))
    cebuffer = CentralizedCluster(
        avg_query(), three_tier(2, 1), CeBufferProcessor, config=config()
    ).run(dict(streams))
    rows = []
    for name, run in (("Desis", desis), ("Scotty", scotty), ("CeBuffer", cebuffer)):
        cpu = run.cpu_by_role
        rows.append(
            [
                name,
                f"{cpu.get(NodeRole.LOCAL, 0.0) * 1e3:.1f} ms",
                f"{cpu.get(NodeRole.INTERMEDIATE, 0.0) * 1e3:.1f} ms",
                f"{cpu.get(NodeRole.ROOT, 0.0) * 1e3:.1f} ms",
            ]
        )
    print_table(
        "Fig 12a: aggregation CPU time by node class (average)",
        ["system", "local", "intermediate", "root"],
        rows,
    )
    # Centralized systems aggregate only at the root.
    assert scotty.cpu_by_role[NodeRole.ROOT] > scotty.cpu_by_role.get(
        NodeRole.LOCAL, 0.0
    )
    # Desis pushes the aggregation down: locals do (almost all of) it.
    assert desis.cpu_by_role[NodeRole.LOCAL] > desis.cpu_by_role[NodeRole.ROOT]
    benchmark.pedantic(
        lambda: DesisCluster(avg_query(), three_tier(2, 1), config=config()).run(
            cluster_streams(2, 5_000)
        ),
        rounds=1, iterations=1,
    )


def test_fig12b_median_upstream_cost(benchmark):
    streams = cluster_streams(2, N)
    desis_med = DesisCluster(
        median_query(), three_tier(2, 1), config=config()
    ).run(dict(streams))
    desis_avg = DesisCluster(
        avg_query(), three_tier(2, 1), config=config()
    ).run(dict(streams))
    rows = []
    for name, run in (("median", desis_med), ("average", desis_avg)):
        cpu = run.cpu_by_role
        rows.append(
            [
                name,
                f"{cpu[NodeRole.LOCAL] * 1e3:.1f} ms",
                f"{cpu[NodeRole.INTERMEDIATE] * 1e3:.1f} ms",
                f"{cpu[NodeRole.ROOT] * 1e3:.1f} ms",
            ]
        )
    print_table(
        "Fig 12b: Desis aggregation CPU time by node class",
        ["function", "local", "intermediate", "root"],
        rows,
    )
    # Merging and processing the shipped batches upstream is far more
    # expensive than merging decomposable partials (the paper's Fig 12b
    # explanation for intermediate/root latency under medians).
    def upstream(run):
        cpu = run.cpu_by_role
        return cpu[NodeRole.INTERMEDIATE] + cpu[NodeRole.ROOT]

    assert upstream(desis_med) > 5 * upstream(desis_avg)
    benchmark.pedantic(
        lambda: DesisCluster(
            median_query(), three_tier(2, 1), config=config()
        ).run(cluster_streams(2, 5_000)),
        rounds=1, iterations=1,
    )


def test_fig12_topology_depth_adds_latency(benchmark):
    """Sec 6.4.2: event-time latency grows linearly with intermediate
    layers (each hop adds link latency; the tick cadence dominates)."""
    rows = []
    by_hops = {}
    for hops in (0, 2, 4):
        streams = cluster_streams(2, 10_000)
        run = DesisCluster(
            avg_query(),
            chain(2, hops=hops),
            config=ClusterConfig(tick_interval=TICK, latency_ms=20.0),
        ).run(streams)
        lags = event_time_latencies(run.sink)
        by_hops[hops] = statistics.fmean(lags)
        rows.append([hops, f"{by_hops[hops]:.0f} ms"])
    print_table(
        "Fig 12: mean event-time latency vs intermediate layers (20ms links)",
        ["intermediate layers", "mean latency"],
        rows,
    )
    assert by_hops[2] > by_hops[0] + 30
    assert by_hops[4] > by_hops[2] + 30
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
