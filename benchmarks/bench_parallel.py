"""Sharded-backend benchmark: modeled multi-core scaling plus parity.

Replays the evaluation's default stream (Sec 6.2.1's 100-query
tumbling/avg mix) through :class:`~repro.parallel.ShardedEngine` at 1, 2,
and 4 shards, and through the in-process ``DesisProcessor`` as the parity
reference.  Every sharded run must reproduce the reference windows —
byte-identical ``(query_id, start, end, event_count, emitted_at)`` and
values within 1e-9 relative (the average is a float fold recombined in
shard order) — with ``shards=1`` additionally byte-identical in value.

**Throughput is modeled, not wall-clock.**  The harness follows the same
convention as ``ClusterRunResult.modeled_parallel_throughput``
(``src/repro/cluster/desis.py``): events divided by the busiest pipeline
stage's busy time, i.e. what the run would sustain if every stage had its
own core.  Worker busy time is measured with ``time.process_time_ns`` in
each worker process, so the model holds on a single-core container where
real wall-clock cannot show the scaling.  Real wall-clock is reported but
never gated.

Run standalone to (re)generate ``BENCH_parallel.json`` at the repo root::

    PYTHONPATH=src python benchmarks/bench_parallel.py

``--quick`` runs a small parity-checked sweep without touching the
committed report (the tier-1 CI smoke); ``tests/test_bench_smoke.py``
drives the same harness at tiny scale.
"""

from __future__ import annotations

import json
import sys
import time as _time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
if str(REPO_ROOT / "src") not in sys.path:  # standalone execution
    sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.baselines.engines import DesisProcessor  # noqa: E402
from repro.core.config import EngineConfig  # noqa: E402
from repro.datagen import DataGenerator, DataGeneratorConfig  # noqa: E402
from repro.harness import tumbling_queries  # noqa: E402
from repro.parallel import ShardedEngine  # noqa: E402

DEFAULT_EVENTS = 200_000
DEFAULT_QUERIES = 100
SHARD_COUNTS = (1, 2, 4)
OUTPUT_NAME = "BENCH_parallel.json"
REL_TOL = 1e-9


def _stream(n: int, *, keys: int = 10, rate: float = 50_000.0, seed: int = 1):
    config = DataGeneratorConfig(
        keys=tuple(f"k{i}" for i in range(keys)), rate=rate
    )
    return list(DataGenerator(config, seed=seed).events(n))


def _rows(sink) -> list[tuple]:
    rows = [
        (r.query_id, r.start, r.end, r.event_count, r.emitted_at, r.value)
        for r in sink.results
    ]
    rows.sort(key=lambda row: row[:5])
    return rows


def _assert_parity(label: str, reference: list[tuple], rows: list[tuple],
                   *, exact: bool) -> None:
    if len(reference) != len(rows):
        raise AssertionError(
            f"{label}: {len(rows)} windows, reference has {len(reference)}"
        )
    for ref, got in zip(reference, rows):
        if ref[:5] != got[:5]:
            raise AssertionError(f"{label}: window {got[:5]} != {ref[:5]}")
        rv, gv = ref[5], got[5]
        if exact or not isinstance(rv, float):
            if rv != gv:
                raise AssertionError(
                    f"{label}: value {gv!r} != reference {rv!r} for {ref[:3]}"
                )
        elif abs(gv - rv) > REL_TOL * max(abs(rv), abs(gv), 1e-300):
            raise AssertionError(
                f"{label}: value {gv!r} deviates from {rv!r} beyond "
                f"{REL_TOL} relative for {ref[:3]}"
            )


def _run_sharded(queries, events, shards: int):
    engine = ShardedEngine(queries, config=EngineConfig(shards=shards))
    started = _time.perf_counter()
    engine.process_batch(events)
    sink = engine.close()
    wall_s = _time.perf_counter() - started
    return engine, sink, wall_s


def run(
    n_events: int = DEFAULT_EVENTS,
    *,
    n_queries: int = DEFAULT_QUERIES,
    shard_counts: tuple[int, ...] = SHARD_COUNTS,
) -> dict:
    """Run the sweep; return the report dict written to JSON."""
    events = _stream(n_events)
    queries = tumbling_queries(n_queries)

    reference_engine = DesisProcessor(queries)
    reference_engine.process_batch(events)
    reference = _rows(reference_engine.close())

    report: dict = {
        "benchmark": "parallel_sharded",
        "events": n_events,
        "queries": n_queries,
        "workload": "tumbling_avg",
        "windows": len(reference),
        "shards": {},
    }
    modeled_base = None
    for shards in shard_counts:
        engine, sink, wall_s = _run_sharded(queries, events, shards)
        _assert_parity(f"shards={shards}", reference, _rows(sink),
                       exact=(shards == 1))
        ss = engine.shard_stats
        parent_s = ss.parent_ns / 1e9
        reduce_s = ss.reduce_ns / 1e9
        busiest_worker_s = max(ss.busy_ns) / 1e9
        bottleneck_s = max(parent_s, busiest_worker_s, reduce_s)
        modeled = n_events / bottleneck_s if bottleneck_s else 0.0
        if modeled_base is None:
            modeled_base = modeled
        report["shards"][str(shards)] = {
            "wall_s": round(wall_s, 4),
            "wall_events_per_s": round(n_events / wall_s),
            "parent_s": round(parent_s, 4),
            "busiest_worker_s": round(busiest_worker_s, 4),
            "reduce_s": round(reduce_s, 4),
            "modeled_events_per_s": round(modeled),
            "modeled_speedup": round(modeled / modeled_base, 2),
            # deterministic counters: same events, same crc32 routing,
            # same window schedule on every machine
            "results": engine.stats.results,
            "events_per_shard": list(ss.events),
            "reduce_merge_ops": ss.reduce_merge_ops,
            "windows_reduced": ss.windows_reduced,
        }
    return report


def main(argv: list[str] | None = None) -> None:
    import argparse

    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("events", nargs="?", type=int, default=DEFAULT_EVENTS)
    parser.add_argument("--quick", action="store_true",
                        help="small parity-checked sweep (CI smoke); does "
                             "not rewrite the committed report")
    parser.add_argument("--metrics-out", default=None, dest="metrics_out",
                        metavar="PATH",
                        help="also write shard.* registry metrics for the "
                             "widest sweep point (.json, or .prom/.txt for "
                             "Prometheus text)")
    args = parser.parse_args(argv)
    if args.quick:
        report = run(min(args.events, 20_000), shard_counts=(1, 2))
    else:
        report = run(args.events)
    for shards, row in report["shards"].items():
        print(
            f"shards={shards}: modeled {row['modeled_events_per_s']:>9,} ev/s"
            f" ({row['modeled_speedup']}x)"
            f"  wall {row['wall_events_per_s']:>9,} ev/s"
            f"  bottleneck max(parent {row['parent_s']}s, worker "
            f"{row['busiest_worker_s']}s, reduce {row['reduce_s']}s)"
        )
    if args.quick:
        print("quick mode: parity checked, report not written")
    else:
        out = REPO_ROOT / OUTPUT_NAME
        out.write_text(json.dumps(report, indent=2) + "\n")
        print(f"wrote {out}")
    if args.metrics_out:
        from repro.obs import MetricsRegistry, publish_shard_stats, write_metrics

        widest = max(int(s) for s in report["shards"])
        queries = tumbling_queries(report["queries"])
        engine, _, _ = _run_sharded(
            queries, _stream(report["events"]), widest
        )
        registry = MetricsRegistry()
        publish_shard_stats(registry, engine.shard_stats)
        for shards, row in report["shards"].items():
            registry.gauge("bench.parallel.modeled_events_per_s",
                           shards=shards).set(row["modeled_events_per_s"])
            registry.gauge("bench.parallel.modeled_speedup",
                           shards=shards).set(row["modeled_speedup"])
        write_metrics(registry, args.metrics_out,
                      benchmark=report["benchmark"], events=report["events"])
        print(f"metrics -> {args.metrics_out}")


if __name__ == "__main__":
    main()
