"""Figure 10: throughput and latency vs slice count and slice size
(Sec 6.3.3).

The workload is a count-based sliding window: slide = slice size, length =
slices x size, so each window is assembled from a configurable number of
slices of configurable size.

* Fig 10a/10b — vary the number of slices per window at fixed slice size:
  Desis/DeSW pay the window-end merge over all slices (throughput drops,
  latency rises); DeBucket's incremental buckets are insensitive;
  CeBuffer degrades because the window (buffer) itself grows.
* Fig 10c/10d — vary the slice size at a fixed slice count: tiny slices
  drown Desis/DeSW in slice bookkeeping.

The paper's takeaway — slicing does not pay off for windows made of very
many or very small slices — appears as those two trends.
"""

from __future__ import annotations

import pytest

from repro.baselines import (
    CeBufferProcessor,
    DeBucketProcessor,
    DeSWProcessor,
    DesisProcessor,
)
from repro.core.query import Query, WindowSpec
from repro.core.types import AggFunction, WindowMeasure
from repro.harness import fmt_ms, fmt_rate, print_table, run_processor

from conftest import stream

SYSTEMS = {
    "Desis": DesisProcessor,
    "DeSW": DeSWProcessor,
    "DeBucket": DeBucketProcessor,
    "CeBuffer": CeBufferProcessor,
}

N = 60_000


@pytest.fixture(scope="module")
def events():
    return stream(N, keys=1)


def window_query(slice_size: int, slices_per_window: int,
                 sliced: bool = True) -> list[Query]:
    """The workload per system class.

    Slicing systems see a sliding count window (slide = slice size) whose
    windows are unions of ``slices_per_window`` slices.  The bucketed
    systems do not slice — their equivalent is the same total window
    extent as one tumbling count window whose buffer/bucket simply grows
    (the paper: "their window size will increase if we increase the slice
    size and the slice number").
    """
    total = slice_size * slices_per_window
    if sliced:
        spec = WindowSpec.sliding(total, slice_size, measure=WindowMeasure.COUNT)
    else:
        spec = WindowSpec.tumbling(total, measure=WindowMeasure.COUNT)
    return [Query.of("w", spec, AggFunction.AVERAGE)]


def sweep(events, configurations):
    table = {}
    for name, factory in SYSTEMS.items():
        sliced = name in ("Desis", "DeSW")
        cells = []
        for slice_size, n_slices in configurations:
            stats = run_processor(
                factory,
                window_query(slice_size, n_slices, sliced=sliced),
                events,
                measure_latency=True,
                latency_sample_every=997,
            )
            cells.append(stats)
        table[name] = cells
    return table


def test_fig10ab_slices_per_window(events, benchmark):
    configurations = [(1_000, n) for n in (1, 10, 50)]
    table = sweep(events, configurations)
    print_table(
        "Fig 10a: throughput vs slices per window (slice = 1k events)",
        ["system", *[f"{n} slices" for _, n in configurations]],
        [
            [name, *[fmt_rate(s.events_per_second) for s in cells]]
            for name, cells in table.items()
        ],
    )
    print_table(
        "Fig 10b: p95 latency vs slices per window",
        ["system", *[f"{n} slices" for _, n in configurations]],
        [
            [name, *[fmt_ms(s.latency.p95) for s in cells]]
            for name, cells in table.items()
        ],
    )
    # Desis merges every covering slice at each window end: the merge work
    # per event grows with the slice count (deterministic via results).
    desis = table["Desis"]
    assert desis[2].events_per_second < desis[0].events_per_second
    # CeBuffer iterates the whole (growing) buffer at window end: its
    # latency explodes with the window size even when amortized throughput
    # hides it at this replay scale.
    cebuffer = table["CeBuffer"]
    assert cebuffer[2].latency.p95 > 20 * cebuffer[0].latency.p95
    benchmark.pedantic(
        lambda: run_processor(DesisProcessor, window_query(1_000, 10), events),
        rounds=1, iterations=1,
    )


def test_fig10cd_slice_size(events, benchmark):
    configurations = [(size, 50) for size in (10, 100, 1_000)]
    table = sweep(events, configurations)
    print_table(
        "Fig 10c: throughput vs slice size (50 slices per window)",
        ["system", *[f"{size}-event slices" for size, _ in configurations]],
        [
            [name, *[fmt_rate(s.events_per_second) for s in cells]]
            for name, cells in table.items()
        ],
    )
    print_table(
        "Fig 10d: p95 latency vs slice size",
        ["system", *[f"{size}-event slices" for size, _ in configurations]],
        [
            [name, *[fmt_ms(s.latency.p95) for s in cells]]
            for name, cells in table.items()
        ],
    )
    # Tiny slices mean constant slice churn for the slicing systems.
    desis = table["Desis"]
    assert desis[0].events_per_second < desis[2].events_per_second
    benchmark.pedantic(
        lambda: run_processor(DesisProcessor, window_query(100, 50), events),
        rounds=1, iterations=1,
    )
