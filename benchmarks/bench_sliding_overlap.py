"""Sliding-overlap micro-benchmark: exact vs incremental window merging.

Replays one high-rate stream through a single sliding AVERAGE query at
overlap factors {1, 8, 64} (window length = overlap x slide), once with
``merge_mode="exact"`` (the plain full-range merge at every window close)
and once with ``merge_mode="incremental"`` (the Two-Stacks layer of
``repro.core.incmerge``).  For every overlap the two runs are asserted to
produce the same windows — identical bounds, counts, and query ids, float
values within 1e-9 relative — so the report only measures cost:

* ``merge_ops``: merge operator executions at window close
  (:class:`~repro.core.engine.EngineStats.merge_ops`), the O(windows x
  overlap) -> O(slices) drop the layer exists for;
* ``windows_per_s``: closed windows per wall-clock second.

Overlap 1 is tumbling: both modes take the identical plain scan there
(the zero-regression guard).  At overlap 64 the full-scale run asserts
the >= 5x merge-op reduction the layer promises.

Run standalone to (re)generate ``BENCH_sliding.json`` at the repo root::

    PYTHONPATH=src python benchmarks/bench_sliding_overlap.py

``tests/test_bench_smoke.py`` runs the same harness at tiny scale so CI
catches parity drift between the merge modes.
"""

from __future__ import annotations

import json
import math
import sys
import time as _time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
if str(REPO_ROOT / "src") not in sys.path:  # standalone execution
    sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.core.engine import AggregationEngine  # noqa: E402
from repro.core.query import Query, WindowSpec  # noqa: E402
from repro.core.types import AggFunction  # noqa: E402
from repro.datagen import DataGenerator, DataGeneratorConfig  # noqa: E402

DEFAULT_EVENTS = 200_000
DEFAULT_REPEATS = 3
OUTPUT_NAME = "BENCH_sliding.json"

#: window slide (ms); the stream rate gives ~100 events per slice, so
#: window-close merging is a visible share of the work at high overlap
SLIDE_MS = 2
OVERLAPS = (1, 8, 64)
#: acceptance bar: merge-op reduction at the highest overlap, full scale
MIN_REDUCTION = 5.0
#: below this event count (the CI smoke), skip the full-scale bars
FULL_SCALE = 50_000


def _stream(n: int, *, seed: int = 1):
    config = DataGeneratorConfig(
        keys=tuple(f"k{i}" for i in range(4)), rate=50_000.0
    )
    return list(DataGenerator(config, seed=seed).events(n))


def _replay(events, overlap: int, merge_mode: str):
    """Replay ``events`` through a fresh engine; return (stats, results,
    elapsed seconds)."""
    if overlap == 1:
        spec = WindowSpec.tumbling(SLIDE_MS)
    else:
        spec = WindowSpec.sliding(SLIDE_MS * overlap, SLIDE_MS)
    engine = AggregationEngine(
        [Query.of("q", spec, AggFunction.AVERAGE)], merge_mode=merge_mode
    )
    started = _time.perf_counter()
    engine.process_batch(events)
    engine.close()
    elapsed = _time.perf_counter() - started
    results = [
        (r.query_id, r.start, r.end, r.value, r.event_count, r.emitted_at)
        for r in engine.sink.results
    ]
    return engine.stats, results, elapsed


def _assert_parity(overlap: int, exact, incremental) -> None:
    if len(exact) != len(incremental):
        raise AssertionError(
            f"overlap {overlap}: {len(exact)} exact vs "
            f"{len(incremental)} incremental results"
        )
    for left, right in zip(exact, incremental):
        if left[:3] != right[:3] or left[4:] != right[4:]:
            raise AssertionError(
                f"overlap {overlap}: window mismatch {left} vs {right}"
            )
        if not math.isclose(left[3], right[3], rel_tol=1e-9, abs_tol=1e-9):
            raise AssertionError(
                f"overlap {overlap}: value drift beyond 1e-9 relative: "
                f"{left[3]!r} vs {right[3]!r} in window {left[:3]}"
            )


def run(n_events: int = DEFAULT_EVENTS, *, repeats: int = DEFAULT_REPEATS) -> dict:
    """Run all overlap factors; return the report dict written to JSON."""
    events = _stream(n_events)
    full_scale = n_events >= FULL_SCALE
    report: dict = {
        "benchmark": "sliding_overlap_merge",
        "events": n_events,
        "repeats": repeats,
        "slide_ms": SLIDE_MS,
        "overlaps": {},
    }
    for overlap in OVERLAPS:
        rows: dict = {}
        for mode in ("exact", "incremental"):
            best = float("inf")
            stats = results = None
            for _ in range(repeats):
                stats, results, elapsed = _replay(events, overlap, mode)
                best = min(best, elapsed)
            rows[mode] = {
                "elapsed_s": round(best, 4),
                "events_per_s": round(n_events / best),
                "windows_closed": stats.windows_closed,
                "windows_per_s": round(stats.windows_closed / best),
                "merge_ops": stats.merge_ops,
                "results": results,
            }
        _assert_parity(overlap, rows["exact"]["results"],
                       rows["incremental"]["results"])
        for row in rows.values():
            del row["results"]
        if overlap == 1 and rows["exact"]["merge_ops"] != rows["incremental"]["merge_ops"]:
            raise AssertionError(
                "tumbling windows must take the identical plain scan in "
                f"both modes, got {rows['exact']['merge_ops']} vs "
                f"{rows['incremental']['merge_ops']} merge ops"
            )
        reduction = (
            rows["exact"]["merge_ops"] / rows["incremental"]["merge_ops"]
            if rows["incremental"]["merge_ops"]
            else 1.0
        )
        speedup = (
            rows["incremental"]["windows_per_s"] / rows["exact"]["windows_per_s"]
            if rows["exact"]["windows_per_s"]
            else 1.0
        )
        if overlap > 1 and reduction < 1.0:
            raise AssertionError(
                f"overlap {overlap}: incremental did MORE merge work "
                f"({rows['incremental']['merge_ops']} vs "
                f"{rows['exact']['merge_ops']})"
            )
        if full_scale and overlap == max(OVERLAPS):
            if reduction < MIN_REDUCTION:
                raise AssertionError(
                    f"overlap {overlap}: merge-op reduction {reduction:.1f}x "
                    f"is below the {MIN_REDUCTION}x bar"
                )
            if repeats >= 2 and speedup <= 1.0:
                raise AssertionError(
                    f"overlap {overlap}: windows/sec did not improve "
                    f"({speedup:.2f}x)"
                )
        report["overlaps"][str(overlap)] = {
            "exact": rows["exact"],
            "incremental": rows["incremental"],
            "merge_op_reduction": round(reduction, 2),
            "windows_per_s_speedup": round(speedup, 2),
        }
    return report


def main(argv: list[str] | None = None) -> None:
    import argparse

    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("events", nargs="?", type=int, default=DEFAULT_EVENTS)
    parser.add_argument("--metrics-out", default=None, dest="metrics_out",
                        metavar="PATH",
                        help="also write the rates as registry metrics "
                             "(.json, or .prom/.txt for Prometheus text)")
    args = parser.parse_args(argv)
    report = run(args.events)
    out = REPO_ROOT / OUTPUT_NAME
    out.write_text(json.dumps(report, indent=2) + "\n")
    for overlap, row in report["overlaps"].items():
        print(
            f"overlap {overlap:>3}: merge ops "
            f"{row['exact']['merge_ops']:>9,} -> "
            f"{row['incremental']['merge_ops']:>8,} "
            f"({row['merge_op_reduction']}x)  windows/s "
            f"{row['exact']['windows_per_s']:>8,} -> "
            f"{row['incremental']['windows_per_s']:>8,} "
            f"({row['windows_per_s_speedup']}x)"
        )
    print(f"wrote {out}")
    if args.metrics_out:
        from repro.obs import MetricsRegistry, write_metrics

        registry = MetricsRegistry()
        for overlap, row in report["overlaps"].items():
            for mode in ("exact", "incremental"):
                registry.gauge("bench.sliding.merge_ops", overlap=overlap,
                               mode=mode).set(row[mode]["merge_ops"])
                registry.gauge("bench.sliding.windows_per_s", overlap=overlap,
                               mode=mode).set(row[mode]["windows_per_s"])
            registry.gauge("bench.sliding.merge_op_reduction",
                           overlap=overlap).set(row["merge_op_reduction"])
        write_metrics(registry, args.metrics_out, benchmark=report["benchmark"],
                      events=report["events"])
        print(f"metrics -> {args.metrics_out}")


if __name__ == "__main__":
    main()
