"""Recovery benchmark: checkpointed vs checkpoint-less restart cost.

Crashes the intermediate of a three-tier ``DesisCluster`` mid-run with a
state-losing restart and measures what recovery costs in both modes:

* **scratch** — no checkpoints; the restarted node's children re-ship
  their entire retained history and the mergers replay it all;
* **checkpointed** — the node restores mergers, floors, and retained
  batches from its latest snapshot, so children fast-forward and re-ship
  only the suffix past the checkpointed cursors.

Both modes are asserted byte-identical to the fault-free baseline —
recovery is only allowed to cost wire bytes and (simulated) time, never
results.  Links get a finite bandwidth so re-shipped bytes translate
into simulated recovery latency: the gap between the node's
``node.recover`` trace event and the next window emission at the root.

Run standalone to (re)generate ``BENCH_recovery.json`` at the repo root::

    PYTHONPATH=src python benchmarks/bench_recovery.py

``tests/test_bench_smoke.py`` runs the same harness at tiny scale so CI
catches recovery parity or accounting drift early; the weekly chaos job
uploads the full-scale JSON as an artifact.
"""

from __future__ import annotations

import json
import sys
import time as _time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
if str(REPO_ROOT / "src") not in sys.path:  # standalone execution
    sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.cluster import ClusterConfig, DesisCluster  # noqa: E402
from repro.core.query import Query, WindowSpec  # noqa: E402
from repro.core.types import AggFunction  # noqa: E402
from repro.datagen import DataGenerator, DataGeneratorConfig  # noqa: E402
from repro.network.simnet import CrashWindow, FaultPlan  # noqa: E402
from repro.network.topology import three_tier  # noqa: E402

DEFAULT_EVENTS = 30_000
QUICK_EVENTS = 3_000
OUTPUT_NAME = "BENCH_recovery.json"

N_LOCALS = 3
TICK = 500
#: finite links (~1G Ethernet of the paper's Pi cluster) so re-shipped
#: recovery traffic costs simulated time, not just bytes
BANDWIDTH = 131.0


def _queries():
    return [
        Query.of("tumbling", WindowSpec.tumbling(1_000), AggFunction.SUM),
        Query.of("session", WindowSpec.session(gap=400), AggFunction.MAX),
    ]


def _streams(n_events: int) -> dict[str, list]:
    per_node = n_events // N_LOCALS
    # Low rate: recovery cost scales with the retained slice history the
    # crash forces back onto the wire, i.e. with the simulated span.
    config = DataGeneratorConfig(keys=("k0", "k1", "k2"), rate=200.0)
    return {
        f"local-{i}": list(DataGenerator(config, seed=10 + i).events(per_node))
        for i in range(N_LOCALS)
    }


def _span(streams: dict[str, list]) -> int:
    return max(event.time for stream in streams.values() for event in stream)


def _run_once(streams, crash=None, checkpoint_interval=None):
    plan = None
    if crash is not None:
        plan = FaultPlan(
            seed=7,
            crashes=(CrashWindow("mid-0", crash[0], crash[1], lose_state=True),),
        )
    config = ClusterConfig(
        tick_interval=TICK,
        fault_plan=plan,
        node_timeout=10**9,
        bandwidth_bytes_per_ms=BANDWIDTH,
        checkpoint_interval=checkpoint_interval,
        trace=True,
    )
    cluster = DesisCluster(_queries(), three_tier(N_LOCALS, 1), config=config)
    started = _time.perf_counter()
    result = cluster.run({k: list(v) for k, v in streams.items()})
    elapsed = _time.perf_counter() - started
    return cluster, result, elapsed


def _rows(result):
    return [
        (r.query_id, r.start, r.end, r.event_count, r.value)
        for r in result.sink
    ]


def _recovery_latency(result) -> int | None:
    """Sim-ms from the node's restore to the next root emission."""
    recover = next(result.recorder.events("node.recover"), None)
    if recover is None:
        return None
    for event in result.recorder.events("window.emit"):
        if event.at >= recover.at:
            return event.at - recover.at
    return None


def run(n_events: int = DEFAULT_EVENTS) -> dict:
    streams = _streams(n_events)
    events = sum(len(s) for s in streams.values())
    span = _span(streams)
    # Crash through the middle 20% of the run: late enough that real
    # history accumulated, early enough that recovery has work left.
    crash = (int(span * 0.4), int(span * 0.6))
    checkpoint_interval = max(TICK, int(span * 0.1))

    _, baseline, base_wall = _run_once(streams)
    base_rows = _rows(baseline)

    report: dict = {
        "benchmark": "checkpointed_recovery",
        "events": events,
        "locals": N_LOCALS,
        "crash_ms": list(crash),
        "checkpoint_interval_ms": checkpoint_interval,
        "baseline": {
            "wall_s": round(base_wall, 4),
            "results": len(base_rows),
            "data_bytes": baseline.network.data_bytes,
        },
        "modes": {},
    }
    for label, interval in (("scratch", None), ("checkpointed", checkpoint_interval)):
        cluster, result, elapsed = _run_once(
            streams, crash=crash, checkpoint_interval=interval
        )
        if _rows(result) != base_rows:
            raise AssertionError(
                f"{label}: results diverged from the fault-free run — "
                "recovery failed to reproduce the baseline emissions"
            )
        if result.recoveries != 1:
            raise AssertionError(f"{label}: expected 1 recovery, got {result.recoveries}")
        store = cluster.checkpoint_store
        report["modes"][label] = {
            "wall_s": round(elapsed, 4),
            "data_bytes": result.network.data_bytes,
            "reshipped_data_bytes": result.network.data_bytes
            - baseline.network.data_bytes,
            "recovery_latency_ms": _recovery_latency(result),
            "checkpoints": result.checkpoints,
            "checkpoint_bytes": store.bytes_written if store is not None else 0,
            "duplicates_suppressed": result.duplicates_suppressed,
        }
    scratch = report["modes"]["scratch"]
    ckpt = report["modes"]["checkpointed"]
    if ckpt["data_bytes"] >= scratch["data_bytes"]:
        raise AssertionError(
            "checkpointed recovery must re-ship strictly fewer bytes than "
            f"scratch replay ({ckpt['data_bytes']} >= {scratch['data_bytes']})"
        )
    saved = scratch["reshipped_data_bytes"] - ckpt["reshipped_data_bytes"]
    report["savings"] = {
        "reship_bytes_saved": saved,
        "reship_saved_pct": round(
            100.0 * saved / scratch["reshipped_data_bytes"], 1
        )
        if scratch["reshipped_data_bytes"]
        else 0.0,
        "latency_delta_ms": (
            scratch["recovery_latency_ms"] - ckpt["recovery_latency_ms"]
            if scratch["recovery_latency_ms"] is not None
            and ckpt["recovery_latency_ms"] is not None
            else None
        ),
    }
    return report


def main(argv: list[str] | None = None) -> None:
    import argparse

    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("events", nargs="?", type=int, default=DEFAULT_EVENTS)
    parser.add_argument("--quick", action="store_true",
                        help=f"tiny run ({QUICK_EVENTS} events), no JSON "
                             "output — CI smoke mode")
    args = parser.parse_args(argv)
    report = run(QUICK_EVENTS if args.quick else args.events)
    for label, row in report["modes"].items():
        latency = row["recovery_latency_ms"]
        print(
            f"{label:>12}: reshipped {row['reshipped_data_bytes']:>9,} B"
            f"  recovery latency {latency if latency is not None else '-':>6} ms"
            f"  checkpoints {row['checkpoints']}"
        )
    savings = report["savings"]
    print(
        f"checkpointing saved {savings['reship_bytes_saved']:,} B "
        f"({savings['reship_saved_pct']}% of the scratch re-ship)"
    )
    if args.quick:
        print("quick mode: skipped JSON output")
        return
    out = REPO_ROOT / OUTPUT_NAME
    out.write_text(json.dumps(report, indent=2) + "\n")
    print(f"wrote {out}")


if __name__ == "__main__":
    main()
