"""Ablations of the design choices DESIGN.md calls out.

Not figures from the paper — these isolate the mechanisms behind them:

* scheduled-vs-scanned punctuations (the Fig 6 'calculate window ends in
  advance' claim) on a punctuation-heavy workload;
* operator sharing on/off with everything else equal (the Table 1
  decomposition, isolated from grouping effects);
* binary vs string codec bytes on identical messages (the Fig 11b gap);
* slice sharing vs per-window buckets at equal window semantics.
"""

from __future__ import annotations

import pytest

from repro.baselines import DeBucketProcessor, DesisProcessor
from repro.core.engine import AggregationEngine
from repro.core.query import Query, WindowSpec
from repro.core.types import AggFunction, SharingPolicy
from repro.harness import fmt_rate, print_table, run_processor, tumbling_queries
from repro.metrics import fmt_bytes
from repro.network.codec import BinaryCodec, StringCodec
from repro.network.messages import EventBatchMessage

from conftest import stream

N = 80_000


@pytest.fixture(scope="module")
def events():
    return stream(N)


def test_ablation_punctuation_heap_vs_scan(events, benchmark):
    """Sliding windows with tiny slides produce dense punctuations; the
    heap pays O(log n) only when one is due, the scan re-derives the next
    due time after every cut."""
    queries = [
        Query.of(f"s{i}", WindowSpec.sliding(5_000, 100 + 20 * i), AggFunction.SUM)
        for i in range(64)
    ]

    def run(mode):
        engine = AggregationEngine(queries, punctuation_mode=mode)
        import time as _time

        started = _time.perf_counter()
        for event in events:
            engine.process(event)
        engine.close()
        return N / (_time.perf_counter() - started)

    heap_rate = run("heap")
    scan_rate = run("scan")
    print_table(
        "Ablation: punctuation strategy (64 dense sliding windows)",
        ["strategy", "throughput"],
        [["heap (Desis)", fmt_rate(heap_rate)], ["scan", fmt_rate(scan_rate)]],
    )
    # With the lazy next-due cache both are within a small constant; the
    # scan's O(trackers) rediscovery after every cut is the residual cost.
    # Reported, not asserted: the margin is a few percent and timing-noisy.
    assert heap_rate > 0 and scan_rate > 0
    benchmark.pedantic(lambda: run("heap"), rounds=1, iterations=1)


def test_ablation_operator_sharing(events, benchmark):
    """Same grouping, same engine — only the function mix changes whether
    the planned operator set collapses."""
    shared = [
        Query.of("avg", WindowSpec.tumbling(1_000), AggFunction.AVERAGE),
        Query.of("sum", WindowSpec.tumbling(1_000), AggFunction.SUM),
        Query.of("cnt", WindowSpec.tumbling(1_000), AggFunction.COUNT),
    ]
    full = run_processor(DesisProcessor, shared, events)
    unshared = run_processor(
        lambda qs, sink=None: AggregationEngine(
            qs, policy=SharingPolicy.NONE, sink=sink
        ),
        shared,
        events,
    )
    print_table(
        "Ablation: operator sharing (avg+sum+count)",
        ["plan", "calculations", "throughput"],
        [
            ["shared {sum,count}", f"{full.calculations:,}",
             fmt_rate(full.events_per_second)],
            ["per-query groups", f"{unshared.calculations:,}",
             fmt_rate(unshared.events_per_second)],
        ],
    )
    assert full.calculations == 2 * N
    assert unshared.calculations == 4 * N  # (sum+count) + sum + count
    benchmark.pedantic(
        lambda: run_processor(DesisProcessor, shared, events),
        rounds=1, iterations=1,
    )


def test_ablation_codecs(benchmark):
    """The Fig 11b string penalty, isolated on one identical message."""
    import random

    rng = random.Random(1)
    from repro.core.event import Event

    message = EventBatchMessage(
        sender="local-0",
        covered_to=10_000,
        events=[
            Event(t, f"k{t % 10}", rng.uniform(0, 120)) for t in range(2_000)
        ],
    )
    binary = len(BinaryCodec().encode(message))
    text = len(StringCodec().encode(message))
    print_table(
        "Ablation: codec size on one 2000-event batch",
        ["codec", "bytes", "per event"],
        [
            ["binary", fmt_bytes(binary), f"{binary / 2_000:.1f} B"],
            ["string (Disco)", fmt_bytes(text), f"{text / 2_000:.1f} B"],
        ],
    )
    assert text > 1.2 * binary
    benchmark.pedantic(
        lambda: BinaryCodec().decode(BinaryCodec().encode(message)),
        rounds=3, iterations=1,
    )


def test_ablation_slicing_vs_buckets(events, benchmark):
    """Slice sharing vs per-window buckets on heavily overlapping windows."""
    queries = tumbling_queries(50)
    desis = run_processor(DesisProcessor, queries, events)
    debucket = run_processor(DeBucketProcessor, queries, events)
    print_table(
        "Ablation: slicing vs per-window buckets (50 tumbling windows)",
        ["engine", "inserts+merges (calculations)", "throughput"],
        [
            ["sliced (Desis)", f"{desis.calculations:,}",
             fmt_rate(desis.events_per_second)],
            ["bucketed (DeBucket)", f"{debucket.calculations:,}",
             fmt_rate(debucket.events_per_second)],
        ],
    )
    assert debucket.calculations == 50 * 2 * N
    assert desis.calculations == 2 * N
    benchmark.pedantic(
        lambda: run_processor(DesisProcessor, queries, events),
        rounds=1, iterations=1,
    )
