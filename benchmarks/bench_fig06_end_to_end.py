"""Figure 6: end-to-end throughput and latency (Sec 6.2.1).

* Fig 6a — latency of a single tumbling-average query with 10 keys,
  per system.
* Fig 6b — throughput while scaling concurrent tumbling windows
  (lengths equally distributed over 1–10 s) from 1 to several hundred.

Paper shape: CeBuffer has the worst latency and collapses as windows are
added; Scotty and Disco-style engines are flat; Desis is flat and highest
(~5x Scotty) because punctuations are scheduled, not checked per event.
"""

from __future__ import annotations

import pytest

from repro.baselines import (
    CENTRALIZED_SYSTEMS,
    CeBufferProcessor,
    DeSWProcessor,
    DesisProcessor,
    ScottyProcessor,
)
from repro.core.types import AggFunction
from repro.harness import fmt_ms, fmt_rate, print_table, run_processor, tumbling_queries

from conftest import N_EVENTS, stream

SYSTEMS = {
    "Desis": DesisProcessor,
    "Scotty": ScottyProcessor,
    "DeSW": DeSWProcessor,
    "CeBuffer": CeBufferProcessor,
}

WINDOW_COUNTS = (1, 10, 100, 400)


@pytest.fixture(scope="module")
def events():
    return stream(N_EVENTS)


def test_fig6a_single_window_latency(events, benchmark):
    """Fig 6a: per-system event-to-result latency, one query, 10 keys."""
    rows = []
    for name, factory in SYSTEMS.items():
        stats = run_processor(
            factory,
            tumbling_queries(1),
            events,
            measure_latency=True,
            latency_sample_every=500,
        )
        rows.append(
            [
                name,
                fmt_ms(stats.latency.p50),
                fmt_ms(stats.latency.p95),
                fmt_ms(stats.latency.max),
            ]
        )
    print_table(
        "Fig 6a: latency of a single tumbling avg window",
        ["system", "p50", "p95", "max"],
        rows,
    )
    benchmark.pedantic(
        lambda: run_processor(DesisProcessor, tumbling_queries(1), events),
        rounds=1,
        iterations=1,
    )


def test_fig6b_throughput_vs_concurrent_windows(events, benchmark):
    """Fig 6b: throughput while scaling the number of concurrent windows."""
    rows = []
    final = {}
    for name, factory in SYSTEMS.items():
        rates = []
        for n in WINDOW_COUNTS:
            if name == "CeBuffer" and n > 100:
                rates.append("-")
                continue
            stats = run_processor(factory, tumbling_queries(n), events)
            rates.append(fmt_rate(stats.events_per_second))
            final[(name, n)] = stats
        rows.append([name, *rates])
    print_table(
        "Fig 6b: throughput vs concurrent windows",
        ["system", *[f"{n} win" for n in WINDOW_COUNTS]],
        rows,
    )
    # Shape: sharing keeps Desis' per-event work flat; CeBuffer repeats
    # every event across overlapping buffers (deterministic counters).
    desis = final[("Desis", 400)]
    cebuffer = final[("CeBuffer", 100)]
    assert desis.calculations <= 2 * N_EVENTS  # sum+count shared once
    assert cebuffer.calculations > 50 * N_EVENTS  # ~100 windows x buffers
    # Wall clock: the gap is large enough to assert with slack.
    assert (
        desis.events_per_second
        > 3 * final[("CeBuffer", 100)].events_per_second
    )
    benchmark.pedantic(
        lambda: run_processor(DesisProcessor, tumbling_queries(100), events),
        rounds=1,
        iterations=1,
    )
