"""Query-count scaling: the abstract's "scale to millions of queries".

Desis' costs split into three tiers:

* **per event** — shared operator executions, independent of query count;
* **per window** — slice merging, shared by all queries of a deduplicated
  window;
* **per query** — only result materialization (the effect dominating
  Fig 13a beyond ~10K queries).

This benchmark grows the query count to one million (queries drawn from a
ten-length tumbling mix, so all land in one query-group with ten shared
window trackers) and shows per-event work stays flat while the analyzer
and the result volume scale linearly.
"""

from __future__ import annotations

import time as _time

import pytest

from repro.baselines import DesisProcessor
from repro.core.analyzer import analyze
from repro.harness import fmt_rate, print_table, run_processor, tumbling_queries

from conftest import stream

QUERY_COUNTS = (1_000, 100_000, 1_000_000)


def test_analyzer_scales_to_a_million_queries(benchmark):
    rows = []
    for n in QUERY_COUNTS:
        queries = tumbling_queries(n)
        started = _time.perf_counter()
        plan = analyze(queries)
        elapsed = _time.perf_counter() - started
        rows.append([f"{n:,}", len(plan.groups), f"{elapsed:.2f} s"])
    print_table(
        "Query analyzer scaling (full sharing)",
        ["queries", "query-groups", "analyze time"],
        rows,
    )
    assert len(analyze(tumbling_queries(1_000)).groups) == 1
    benchmark.pedantic(
        lambda: analyze(tumbling_queries(100_000)), rounds=1, iterations=1
    )


def test_engine_throughput_flat_to_a_million_queries(benchmark):
    """Per-event cost is per-group, not per-query; only materialized
    results grow."""
    events = stream(20_000)
    rows = []
    collected = {}
    for n in QUERY_COUNTS:
        stats = run_processor(DesisProcessor, tumbling_queries(n), events)
        collected[n] = stats
        rows.append(
            [
                f"{n:,}",
                fmt_rate(stats.events_per_second),
                f"{stats.calculations:,}",
                f"{stats.results:,}",
            ]
        )
    print_table(
        "Desis throughput vs query count (20k events)",
        ["queries", "throughput", "calculations", "results"],
        rows,
    )
    # Shared operators: identical per-event work at any query count.
    assert collected[1_000_000].calculations == collected[1_000].calculations
    # Result materialization is the only per-query cost.
    assert collected[1_000_000].results == 1_000 * collected[1_000].results
    benchmark.pedantic(
        lambda: run_processor(DesisProcessor, tumbling_queries(1_000), events),
        rounds=1,
        iterations=1,
    )
