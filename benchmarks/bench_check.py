"""Benchmark regression gate CLI (see repro.obs.regress).

Compares the repo's current ``BENCH_*.json`` reports against the
committed baseline manifest and exits non-zero when any gated metric
regressed past its tolerance band or disappeared.  CI runs this before
anything overwrites the committed reports (the tier-1 bench smokes
rewrite ``BENCH_sliding.json``/``BENCH_recovery.json`` at reduced
scale) and again in the weekly job after the full-scale benches.

    python benchmarks/bench_check.py                 # gate, exit 1 on fail
    python benchmarks/bench_check.py --json out.json # also dump verdicts
    python benchmarks/bench_check.py --update        # re-pin the baseline
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
if str(REPO_ROOT / "src") not in sys.path:
    sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.obs.regress import (  # noqa: E402
    BaselineManifest,
    check_benchmarks,
    render_regression_report,
)

DEFAULT_BASELINE = REPO_ROOT / "benchmarks" / "baseline.json"


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="bench_check", description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    parser.add_argument(
        "--baseline",
        default=str(DEFAULT_BASELINE),
        help="baseline manifest path (default: benchmarks/baseline.json)",
    )
    parser.add_argument(
        "--bench-dir",
        default=str(REPO_ROOT),
        help="directory holding the BENCH_*.json reports (default: repo root)",
    )
    parser.add_argument(
        "--json",
        default=None,
        metavar="PATH",
        help="also write the full verdict document as JSON",
    )
    parser.add_argument(
        "--update",
        action="store_true",
        help="re-pin the baseline from the current reports and exit",
    )
    args = parser.parse_args(argv)

    if args.update:
        manifest = BaselineManifest.from_reports(args.bench_dir)
        manifest.save(args.baseline)
        pinned = sum(len(m) for m in manifest.benchmarks.values())
        print(
            f"pinned {pinned} metric(s) from "
            f"{len(manifest.benchmarks)} report(s) -> {args.baseline}"
        )
        return 0

    try:
        manifest = BaselineManifest.load(args.baseline)
    except FileNotFoundError:
        print(
            f"no baseline manifest at {args.baseline}; "
            "run with --update to create one",
            file=sys.stderr,
        )
        return 2
    report = check_benchmarks(manifest, args.bench_dir)
    print(render_regression_report(report))
    if args.json:
        with open(args.json, "w", encoding="utf-8") as fh:
            json.dump(report.to_dict(), fh, indent=2)
            fh.write("\n")
    return 0 if report.ok else 1


if __name__ == "__main__":
    raise SystemExit(main())
