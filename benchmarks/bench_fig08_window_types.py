"""Figure 8: concurrent windows with different window types (Sec 6.3.1).

* Fig 8a/8b — concurrent tumbling windows (lengths 1–10 s): throughput and
  the number of slices each system produces.
* Fig 8c/8d — half of the windows replaced by user-defined windows
  (1 marker per second): more, data-driven slices.

Paper shape: Desis and DeSW keep throughput flat and produce a constant,
small number of slices (full coverage by non-overlapping slices — "61
slices per minute") while DeBucket/CeBuffer produce one slice per window
and collapse as windows are added.
"""

from __future__ import annotations

import pytest

from repro.baselines import (
    CeBufferProcessor,
    DeBucketProcessor,
    DeSWProcessor,
    DesisProcessor,
)
from repro.core.query import Query, WindowSpec
from repro.core.types import AggFunction
from repro.harness import fmt_rate, print_table, run_processor, tumbling_queries

from conftest import N_EVENTS, stream

SYSTEMS = {
    "Desis": DesisProcessor,
    "DeSW": DeSWProcessor,
    "DeBucket": DeBucketProcessor,
    "CeBuffer": CeBufferProcessor,
}

WINDOW_COUNTS = (1, 10, 100)


@pytest.fixture(scope="module")
def plain_events():
    return stream(N_EVENTS)


@pytest.fixture(scope="module")
def marked_events():
    return stream(N_EVENTS, marker="trip_end", marker_every_ms=1_000)


def mixed_queries(n):
    """Half tumbling (1-10 s), half user-defined windows (Fig 8c)."""
    tumbling = tumbling_queries(max(n // 2, 1))
    userdef = [
        Query.of(
            f"u{i}",
            WindowSpec.user_defined(end_marker="trip_end"),
            AggFunction.AVERAGE,
        )
        for i in range(n - len(tumbling))
    ]
    return tumbling + userdef


def _series(events, query_builder):
    per_system = {}
    for name, factory in SYSTEMS.items():
        cells = []
        for n in WINDOW_COUNTS:
            stats = run_processor(factory, query_builder(n), events)
            cells.append(stats)
        per_system[name] = cells
    return per_system


def _span_minutes(events):
    return (events[-1].time - events[0].time) / 60_000


def test_fig8ab_tumbling_windows(plain_events, benchmark):
    series = _series(plain_events, tumbling_queries)
    minutes = _span_minutes(plain_events)
    print_table(
        "Fig 8a: throughput, concurrent tumbling windows",
        ["system", *[f"{n} win" for n in WINDOW_COUNTS]],
        [
            [name, *[fmt_rate(s.events_per_second) for s in cells]]
            for name, cells in series.items()
        ],
    )
    print_table(
        "Fig 8b: slices per minute",
        ["system", *[f"{n} win" for n in WINDOW_COUNTS]],
        [
            [name, *[f"{s.slices / minutes:.0f}" for s in cells]]
            for name, cells in series.items()
        ],
    )
    # Slice coverage: the 1-10s tumbling punctuations are all multiples of
    # the 1s schedule, so sharing keeps the slice count at the single-query
    # level no matter how many windows run (Fig 8b).
    desis = series["Desis"]
    assert desis[2].slices == desis[0].slices
    # Bucketed systems produce one slice per window: linear growth.
    debucket = series["DeBucket"]
    assert debucket[2].slices > 50 * debucket[0].slices
    benchmark.pedantic(
        lambda: run_processor(DesisProcessor, tumbling_queries(100), plain_events),
        rounds=1,
        iterations=1,
    )


def test_fig8cd_user_defined_mix(marked_events, benchmark):
    series = _series(marked_events, mixed_queries)
    minutes = _span_minutes(marked_events)
    print_table(
        "Fig 8c: throughput, half user-defined windows",
        ["system", *[f"{n} win" for n in WINDOW_COUNTS]],
        [
            [name, *[fmt_rate(s.events_per_second) for s in cells]]
            for name, cells in series.items()
        ],
    )
    print_table(
        "Fig 8d: slices per minute, half user-defined windows",
        ["system", *[f"{n} win" for n in WINDOW_COUNTS]],
        [
            [name, *[f"{s.slices / minutes:.0f}" for s in cells]]
            for name, cells in series.items()
        ],
    )
    # Data-driven marker cuts add slices relative to Fig 8b, but sharing
    # still bounds them: identical user-defined queries share every cut.
    plain = _series(stream(10_000), tumbling_queries)["Desis"][2]
    desis = series["Desis"]
    assert desis[2].slices <= 4 * desis[0].slices
    # DeBucket cannot share the user-defined windows either.
    debucket = series["DeBucket"]
    assert debucket[2].slices > 10 * desis[2].slices
    benchmark.pedantic(
        lambda: run_processor(DesisProcessor, mixed_queries(100), marked_events),
        rounds=1,
        iterations=1,
    )
