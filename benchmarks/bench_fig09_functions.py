"""Figure 9: different aggregation functions and window measures (Sec 6.3.2).

The workload: 1-second tumbling windows (count-based ones 1M events in the
paper, scaled here), with function mixes that stress operator sharing:

* Fig 9a/9b — average + sum: throughput and executed calculations.
  Desis breaks both into {sum, count} and runs 2 operators per event;
  DeSW runs 3 (sum+count for avg, sum again for sum).
* Fig 9c/9d — hundreds of *distinct* quantiles: every baseline creates a
  query-group per query; Desis runs one shared non-decomposable sort.
* Fig 9e/9f — two functions per window (avg+max, sum+quantile).
* Fig 9g — quantile + max share one sort operator.
* Fig 9h — mixed time- and count-based measures: DeSW splits groups,
  Desis shares.

Calculation counts are deterministic and asserted exactly; throughput is
reported (the paper's >100x gap appears as the group-count explosion).
"""

from __future__ import annotations

import pytest

from repro.baselines import (
    CeBufferProcessor,
    DeBucketProcessor,
    DeSWProcessor,
    DesisProcessor,
)
from repro.core.query import Query, WindowSpec
from repro.core.types import AggFunction, WindowMeasure
from repro.harness import fmt_rate, print_table, quantile_queries, run_processor

from conftest import stream

SYSTEMS = {
    "Desis": DesisProcessor,
    "DeSW": DeSWProcessor,
    "DeBucket": DeBucketProcessor,
    "CeBuffer": CeBufferProcessor,
}

N = 50_000


@pytest.fixture(scope="module")
def events():
    return stream(N)


def run_all(queries, events, *, skip=()):
    rows = {}
    for name, factory in SYSTEMS.items():
        if name in skip:
            continue
        rows[name] = run_processor(factory, queries, events)
    return rows


def _print(figure, rows, *, calculations=False):
    print_table(
        figure,
        ["system", "throughput", "calculations", "groups" if calculations else ""],
        [
            [name, fmt_rate(s.events_per_second), f"{s.calculations:,}", ""]
            for name, s in rows.items()
        ],
    )


def test_fig9ab_average_plus_sum(events, benchmark):
    queries = [
        Query.of(f"avg{i}", WindowSpec.tumbling(1_000 * (i % 10 + 1)),
                 AggFunction.AVERAGE)
        for i in range(25)
    ] + [
        Query.of(f"sum{i}", WindowSpec.tumbling(1_000 * (i % 10 + 1)),
                 AggFunction.SUM)
        for i in range(25)
    ]
    rows = run_all(queries, events)
    _print("Fig 9a/9b: average + sum (50 queries)", rows, calculations=True)
    # Fig 9b: 2 operators/event for Desis vs 3 for DeSW, exactly.
    assert rows["Desis"].calculations == 2 * N
    assert rows["DeSW"].calculations == 3 * N
    assert rows["DeBucket"].calculations > 50 * N
    benchmark.pedantic(
        lambda: run_processor(DesisProcessor, queries, events),
        rounds=1, iterations=1,
    )


def test_fig9cd_distinct_quantiles(events, benchmark):
    queries = quantile_queries(200)
    rows = run_all(queries, events, skip=("CeBuffer",))
    _print("Fig 9c/9d: 200 distinct quantile queries", rows, calculations=True)
    # Fig 9d: one shared sort insert per event for Desis; every baseline
    # repeats the work once per query-group (= per distinct quantile).
    assert rows["Desis"].calculations == N
    assert rows["DeSW"].calculations == 200 * N
    # Fig 9c: with a 200x work gap the throughput gap is safely large.
    assert (
        rows["Desis"].events_per_second
        > 20 * rows["DeSW"].events_per_second
    )
    benchmark.pedantic(
        lambda: run_processor(DesisProcessor, queries, events),
        rounds=1, iterations=1,
    )


def test_fig9ef_two_functions_per_window(events, benchmark):
    """Each 'window' computes two functions, expressed as query pairs."""
    avg_max = []
    for i in range(20):
        spec = WindowSpec.tumbling(1_000 * (i % 10 + 1))
        avg_max.append(Query.of(f"a{i}", spec, AggFunction.AVERAGE))
        avg_max.append(Query.of(f"m{i}", spec, AggFunction.MAX))
    rows = run_all(avg_max, events)
    _print("Fig 9e: average + max per window", rows, calculations=True)
    # sum + count + decomposable sort, shared across all 40 queries.
    assert rows["Desis"].calculations == 3 * N

    sum_quantile = []
    for i in range(20):
        spec = WindowSpec.tumbling(1_000 * (i % 10 + 1))
        sum_quantile.append(Query.of(f"s{i}", spec, AggFunction.SUM))
        sum_quantile.append(
            Query.of(f"q{i}", spec, AggFunction.QUANTILE,
                     quantile=(i + 1) / 21)
        )
    rows_sq = run_all(sum_quantile, events, skip=("CeBuffer",))
    _print("Fig 9f: sum + quantile per window", rows_sq, calculations=True)
    assert rows_sq["Desis"].calculations == 2 * N  # sum + shared sort
    benchmark.pedantic(
        lambda: run_processor(DesisProcessor, avg_max, events),
        rounds=1, iterations=1,
    )


def test_fig9g_quantile_plus_max_share_the_sort(events, benchmark):
    queries = []
    for i in range(20):
        spec = WindowSpec.tumbling(1_000 * (i % 10 + 1))
        queries.append(
            Query.of(f"q{i}", spec, AggFunction.QUANTILE, quantile=(i + 1) / 21)
        )
        queries.append(Query.of(f"m{i}", spec, AggFunction.MAX))
    rows = run_all(queries, events, skip=("CeBuffer",))
    _print("Fig 9g: quantile + max", rows, calculations=True)
    # One non-decomposable sort serves both: identical to Fig 9c/9d cost.
    assert rows["Desis"].calculations == N
    # DeSW executes sort per quantile group and dsort per max group.
    assert rows["DeSW"].calculations >= 21 * N
    benchmark.pedantic(
        lambda: run_processor(DesisProcessor, queries, events),
        rounds=1, iterations=1,
    )


def test_fig9h_mixed_measures(events, benchmark):
    queries = []
    for i in range(10):
        queries.append(
            Query.of(f"t{i}", WindowSpec.tumbling(1_000), AggFunction.AVERAGE)
        )
        queries.append(
            Query.of(
                f"c{i}",
                WindowSpec.tumbling(5_000, measure=WindowMeasure.COUNT),
                AggFunction.AVERAGE,
            )
        )
    rows = run_all(queries, events)
    _print("Fig 9h: mixed time- and count-based measures", rows,
           calculations=True)
    # Desis shares sum+count across measures; DeSW keeps two groups and
    # pays per-event work twice.
    assert rows["Desis"].calculations == 2 * N
    assert rows["DeSW"].calculations == 4 * N
    benchmark.pedantic(
        lambda: run_processor(DesisProcessor, queries, events),
        rounds=1, iterations=1,
    )
