"""Fault-injection overhead benchmark: throughput under lossy links.

Replays the same per-node streams through a three-tier ``DesisCluster``
under increasing link drop rates (0%, 1%, 5%) and reports cluster
throughput plus the reliable-channel repair traffic (retransmissions,
acks) each rate costs.  Results are asserted byte-identical to the
fault-free run at every rate — the channel recovers everything, the only
thing the faults are allowed to buy is wall-clock and wire bytes.

Run standalone to (re)generate ``BENCH_faults.json`` at the repo root::

    PYTHONPATH=src python benchmarks/bench_faults.py

``tests/test_bench_smoke.py`` runs the same harness at tiny scale so CI
catches parity or accounting drift under faults.
"""

from __future__ import annotations

import json
import sys
import time as _time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
if str(REPO_ROOT / "src") not in sys.path:  # standalone execution
    sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.cluster import ClusterConfig, DesisCluster  # noqa: E402
from repro.core.query import Query, WindowSpec  # noqa: E402
from repro.core.types import AggFunction  # noqa: E402
from repro.datagen import DataGenerator, DataGeneratorConfig  # noqa: E402
from repro.network.simnet import FaultPlan  # noqa: E402
from repro.network.topology import three_tier  # noqa: E402

DEFAULT_EVENTS = 30_000
OUTPUT_NAME = "BENCH_faults.json"

DROP_RATES = (0.0, 0.01, 0.05)
N_LOCALS = 3
TICK = 500


def _queries():
    return [
        Query.of("tumbling", WindowSpec.tumbling(1_000), AggFunction.SUM),
        Query.of("session", WindowSpec.session(gap=400), AggFunction.MAX),
    ]


def _streams(n_events: int) -> dict[str, list]:
    """``n_events`` total, spread over the locals with per-node seeds."""
    per_node = n_events // N_LOCALS
    # Low rate on purpose: the span (and with it the number of per-tick
    # slice shipments, the frames the fault plan can hit) scales with
    # events/rate, and frames are what this benchmark is about.
    config = DataGeneratorConfig(keys=("k0", "k1", "k2"), rate=200.0)
    return {
        f"local-{i}": list(DataGenerator(config, seed=10 + i).events(per_node))
        for i in range(N_LOCALS)
    }


def _run_once(streams: dict[str, list], drop_rate: float):
    plan = (
        None
        if drop_rate == 0.0
        else FaultPlan(seed=42, drop_rate=drop_rate, jitter_ms=2.0)
    )
    config = ClusterConfig(
        tick_interval=TICK, fault_plan=plan, node_timeout=10**9
    )
    cluster = DesisCluster(_queries(), three_tier(N_LOCALS, 1), config=config)
    started = _time.perf_counter()
    result = cluster.run({k: list(v) for k, v in streams.items()})
    elapsed = _time.perf_counter() - started
    return result, elapsed


def run(n_events: int = DEFAULT_EVENTS) -> dict:
    """Run every drop rate; return the report dict written to JSON."""
    streams = _streams(n_events)
    events = sum(len(s) for s in streams.values())
    report: dict = {
        "benchmark": "fault_injection_overhead",
        "events": events,
        "locals": N_LOCALS,
        "rates": {},
    }
    baseline_rows = None
    for drop_rate in DROP_RATES:
        result, elapsed = _run_once(streams, drop_rate)
        rows = [
            (r.query_id, r.start, r.end, r.event_count, r.value)
            for r in result.sink
        ]
        if baseline_rows is None:
            baseline_rows = rows
        elif rows != baseline_rows:
            raise AssertionError(
                f"drop_rate={drop_rate}: results diverged from the "
                "fault-free run — the reliable channel failed to recover"
            )
        net = result.network
        label = f"{drop_rate:.0%}"
        report["rates"][label] = {
            "drop_rate": drop_rate,
            "wall_s": round(elapsed, 4),
            "events_per_s": round(events / elapsed),
            "results": len(rows),
            "drops": net.drops,
            "retransmits": net.retransmits,
            "retransmit_bytes": net.retransmit_bytes,
            "acks": net.acks,
            "total_bytes": net.total_bytes,
            "goodput_data_bytes": net.goodput_data_bytes,
        }
    return report


def main(argv: list[str] | None = None) -> None:
    import argparse

    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("events", nargs="?", type=int, default=DEFAULT_EVENTS)
    parser.add_argument("--metrics-out", default=None, dest="metrics_out",
                        metavar="PATH",
                        help="also write the rates as registry metrics "
                             "(.json, or .prom/.txt for Prometheus text)")
    args = parser.parse_args(argv)
    report = run(args.events)
    out = REPO_ROOT / OUTPUT_NAME
    out.write_text(json.dumps(report, indent=2) + "\n")
    for label, row in report["rates"].items():
        print(
            f"drop {label:>3}: {row['events_per_s']:>9,} ev/s"
            f"  retx {row['retransmits']:>5}"
            f"  wire {row['total_bytes']:>9,} B"
        )
    print(f"wrote {out}")
    if args.metrics_out:
        from repro.obs import MetricsRegistry, write_metrics

        registry = MetricsRegistry()
        for label, row in report["rates"].items():
            registry.gauge("bench.faults.events_per_s",
                           rate=label).set(row["events_per_s"])
            for key in ("drops", "retransmits", "retransmit_bytes", "acks",
                        "total_bytes", "goodput_data_bytes"):
                registry.counter(f"bench.faults.{key}",
                                 rate=label).inc(row[key])
        write_metrics(registry, args.metrics_out, benchmark=report["benchmark"],
                      events=report["events"])
        print(f"metrics -> {args.metrics_out}")


if __name__ == "__main__":
    main()
