"""Message codecs: compact binary and Disco-style strings.

Network overhead in the evaluation is the number of bytes that actually
cross each link, so messages are really encoded (and decoded on delivery)
rather than size-estimated:

* :class:`BinaryCodec` — a compact ``struct``-based wire format.  Desis,
  Scotty, and CeBuffer "send bytes directly" (Sec 6.4.1).
* :class:`StringCodec` — JSON text.  Disco "uses strings to send events
  and messages between nodes", which is why its traffic is higher for the
  same payload (Fig 11b).
"""

from __future__ import annotations

import json
import struct
from typing import Any

from repro.core.errors import CodecError
from repro.core.event import Event
from repro.core.types import OperatorKind
from repro.network.messages import (
    AckMessage,
    CheckpointMessage,
    ContextPartial,
    ControlMessage,
    EventBatchMessage,
    Message,
    PartialBatchMessage,
    ResyncMessage,
    SequencedMessage,
    ShardBatchMessage,
    ShardResultMessage,
    ShardWindowRecord,
    SliceRecord,
    SnapshotChunk,
    WindowPartialMessage,
)

__all__ = ["Codec", "BinaryCodec", "StringCodec", "FRAME_HEADER_BYTES"]

_TAG_PARTIAL = 1
_TAG_EVENTS = 2
_TAG_WINDOW = 3
_TAG_CONTROL = 4
_TAG_SEQUENCED = 5
_TAG_ACK = 6
_TAG_RESYNC = 7
_TAG_CHECKPOINT = 8
_TAG_SNAPSHOT = 9
_TAG_SHARD_BATCH = 10
_TAG_SHARD_RESULT = 11

#: wire overhead a :class:`SequencedMessage` envelope adds to its inner
#: message in the binary codec: tag (u8) + epoch (u32) + seq (i64).
FRAME_HEADER_BYTES = 13

_OP_CODES = {kind: code for code, kind in enumerate(OperatorKind)}
_OP_KINDS = {code: kind for kind, code in _OP_CODES.items()}

_U8 = struct.Struct(">B")
_U16 = struct.Struct(">H")
_U32 = struct.Struct(">I")
_I64 = struct.Struct(">q")
_F64 = struct.Struct(">d")

#: bound on the float-array Struct memo: partial batches reuse a handful
#: of run lengths, but raw value arrays can take any length — beyond the
#: bound, odd sizes fall back to one-shot pack/unpack instead of growing
#: the table forever.
_FLOAT_STRUCT_CACHE_MAX = 256
_float_structs: dict[int, struct.Struct] = {}


def _float_struct(n: int) -> struct.Struct:
    """A cached big-endian ``n``-float Struct (compiled format strings)."""
    cached = _float_structs.get(n)
    if cached is None:
        cached = struct.Struct(f">{n}d")
        if len(_float_structs) < _FLOAT_STRUCT_CACHE_MAX:
            _float_structs[n] = cached
    return cached


_i64_structs: dict[int, struct.Struct] = {}
_u16_structs: dict[int, struct.Struct] = {}


def _i64_struct(n: int) -> struct.Struct:
    """A cached big-endian ``n``-int64 Struct (shard batch time columns)."""
    cached = _i64_structs.get(n)
    if cached is None:
        cached = struct.Struct(f">{n}q")
        if len(_i64_structs) < _FLOAT_STRUCT_CACHE_MAX:
            _i64_structs[n] = cached
    return cached


def _u16_struct(n: int) -> struct.Struct:
    """A cached big-endian ``n``-uint16 Struct (shard batch key indexes)."""
    cached = _u16_structs.get(n)
    if cached is None:
        cached = struct.Struct(f">{n}H")
        if len(_u16_structs) < _FLOAT_STRUCT_CACHE_MAX:
            _u16_structs[n] = cached
    return cached


class _Writer:
    __slots__ = ("parts",)

    def __init__(self) -> None:
        self.parts: list[bytes] = []

    def u8(self, v: int) -> None:
        self.parts.append(_U8.pack(v))

    def u16(self, v: int) -> None:
        self.parts.append(_U16.pack(v))

    def u32(self, v: int) -> None:
        self.parts.append(_U32.pack(v))

    def i64(self, v: int) -> None:
        self.parts.append(_I64.pack(v))

    def f64(self, v: float) -> None:
        self.parts.append(_F64.pack(v))

    def text(self, s: str) -> None:
        raw = s.encode("utf-8")
        if len(raw) > 0xFFFF:
            raise CodecError(f"string too long to encode: {len(raw)} bytes")
        self.u16(len(raw))
        self.parts.append(raw)

    def floats(self, values) -> None:
        self.u32(len(values))
        self.parts.append(_float_struct(len(values)).pack(*values))

    def i64s(self, values) -> None:
        self.u32(len(values))
        self.parts.append(_i64_struct(len(values)).pack(*values))

    def u16s(self, values) -> None:
        self.u32(len(values))
        self.parts.append(_u16_struct(len(values)).pack(*values))

    def bytes(self) -> bytes:
        return b"".join(self.parts)


class _Reader:
    __slots__ = ("data", "pos")

    def __init__(self, data: bytes) -> None:
        self.data = data
        self.pos = 0

    def _take(self, fmt: struct.Struct):
        value = fmt.unpack_from(self.data, self.pos)[0]
        self.pos += fmt.size
        return value

    def u8(self) -> int:
        return self._take(_U8)

    def u16(self) -> int:
        return self._take(_U16)

    def u32(self) -> int:
        return self._take(_U32)

    def i64(self) -> int:
        return self._take(_I64)

    def f64(self) -> float:
        return self._take(_F64)

    def text(self) -> str:
        n = self.u16()
        raw = self.data[self.pos : self.pos + n]
        self.pos += n
        return raw.decode("utf-8")

    def floats(self) -> list[float]:
        n = self.u32()
        values = list(_float_struct(n).unpack_from(self.data, self.pos))
        self.pos += 8 * n
        return values

    def i64s(self) -> list[int]:
        n = self.u32()
        values = list(_i64_struct(n).unpack_from(self.data, self.pos))
        self.pos += 8 * n
        return values

    def u16s(self) -> list[int]:
        n = self.u32()
        values = list(_u16_struct(n).unpack_from(self.data, self.pos))
        self.pos += 2 * n
        return values


class Codec:
    """Codec interface: ``encode`` to bytes, ``decode`` back to a message."""

    name = "abstract"

    def encode(self, message: Message) -> bytes:
        raise NotImplementedError

    def decode(self, data: bytes) -> Message:
        raise NotImplementedError


class BinaryCodec(Codec):
    """Compact struct-based wire format (Desis / Scotty / CeBuffer)."""

    name = "binary"

    # -- encoding ---------------------------------------------------------------

    def encode(self, message: Message) -> bytes:
        w = _Writer()
        if isinstance(message, SequencedMessage):
            self._encode_sequenced(w, message)
        else:
            self._encode_any(w, message)
        return w.bytes()

    def _encode_ops(self, w: _Writer, ops: dict[OperatorKind, Any]) -> None:
        w.u8(len(ops))
        for kind, partial in ops.items():
            w.u8(_OP_CODES[kind])
            if kind in (
                OperatorKind.SUM,
                OperatorKind.MULTIPLICATION,
                OperatorKind.SUM_OF_SQUARES,
            ):
                w.f64(float(partial))
            elif kind is OperatorKind.COUNT:
                w.i64(int(partial))
            elif kind is OperatorKind.DECOMPOSABLE_SORT:
                if partial is None:
                    w.u8(0)
                else:
                    w.u8(1)
                    w.f64(partial[0])
                    w.f64(partial[1])
            elif kind is OperatorKind.NON_DECOMPOSABLE_SORT:
                w.floats(partial)
            else:  # pragma: no cover - enum exhaustive
                raise CodecError(f"cannot encode operator {kind!r}")

    def _decode_ops(self, r: _Reader) -> dict[OperatorKind, Any]:
        ops: dict[OperatorKind, Any] = {}
        for _ in range(r.u8()):
            kind = _OP_KINDS[r.u8()]
            if kind in (
                OperatorKind.SUM,
                OperatorKind.MULTIPLICATION,
                OperatorKind.SUM_OF_SQUARES,
            ):
                ops[kind] = r.f64()
            elif kind is OperatorKind.COUNT:
                ops[kind] = r.i64()
            elif kind is OperatorKind.DECOMPOSABLE_SORT:
                ops[kind] = (r.f64(), r.f64()) if r.u8() else None
            else:
                ops[kind] = r.floats()
        return ops

    def _encode_records(self, w: _Writer, records: list[SliceRecord]) -> None:
        w.u32(len(records))
        for record in records:
            w.i64(record.start)
            w.i64(record.end)
            w.u16(len(record.contexts))
            for ctx, part in record.contexts.items():
                w.u16(ctx)
                w.u32(part.count)
                flags = (1 if part.span is not None else 0) | (
                    2 if part.timed is not None else 0
                )
                w.u8(flags)
                if part.span is not None:
                    w.i64(part.span[0])
                    w.i64(part.span[1])
                self._encode_ops(w, part.ops)
                if part.timed is not None:
                    w.u32(len(part.timed))
                    for time, value in part.timed:
                        w.i64(time)
                        w.f64(value)
            w.u16(len(record.userdef_eps))
            for query_id, end in record.userdef_eps:
                w.text(query_id)
                w.i64(end)

    def _decode_records(self, r: _Reader) -> list[SliceRecord]:
        records = []
        for _ in range(r.u32()):
            start = r.i64()
            end = r.i64()
            contexts: dict[int, ContextPartial] = {}
            for _ in range(r.u16()):
                ctx = r.u16()
                count = r.u32()
                flags = r.u8()
                span = (r.i64(), r.i64()) if flags & 1 else None
                ops = self._decode_ops(r)
                timed = None
                if flags & 2:
                    timed = [(r.i64(), r.f64()) for _ in range(r.u32())]
                contexts[ctx] = ContextPartial(
                    count=count, ops=ops, span=span, timed=timed
                )
            eps = [(r.text(), r.i64()) for _ in range(r.u16())]
            records.append(
                SliceRecord(start=start, end=end, contexts=contexts, userdef_eps=eps)
            )
        return records

    def _encode_partial(self, w: _Writer, msg: PartialBatchMessage) -> None:
        w.u8(_TAG_PARTIAL)
        w.text(msg.sender)
        w.u16(msg.group_id)
        w.i64(msg.first_slice_seq)
        w.i64(msg.covered_to)
        self._encode_records(w, msg.records)
        # Shed-coverage report is a trailing optional block: absent when
        # nothing was shed, so overload-free traffic stays byte-identical.
        # Partial batches are always tail-positioned (a sequenced frame
        # encodes its inner message last), which makes presence detectable
        # from the remaining buffer length.
        if msg.shed:
            w.u32(len(msg.shed))
            for node_id, start, end in msg.shed:
                w.text(node_id)
                w.i64(start)
                w.i64(end)

    def _decode_partial(self, r: _Reader) -> PartialBatchMessage:
        sender = r.text()
        group_id = r.u16()
        first_seq = r.i64()
        covered = r.i64()
        records = self._decode_records(r)
        shed: list[tuple[str, int, int]] = []
        if r.pos < len(r.data):
            shed = [
                (r.text(), r.i64(), r.i64()) for _ in range(r.u32())
            ]
        return PartialBatchMessage(
            sender=sender,
            group_id=group_id,
            first_slice_seq=first_seq,
            covered_to=covered,
            records=records,
            shed=shed,
        )

    def _encode_events(self, w: _Writer, msg: EventBatchMessage) -> None:
        w.u8(_TAG_EVENTS)
        w.text(msg.sender)
        w.i64(msg.covered_to)
        w.u32(len(msg.events))
        for event in msg.events:
            w.i64(event.time)
            w.text(event.key)
            w.f64(event.value)
            if event.marker is None:
                w.u8(0)
            else:
                w.u8(1)
                w.text(event.marker)

    def _decode_events(self, r: _Reader) -> EventBatchMessage:
        sender = r.text()
        covered = r.i64()
        events = []
        for _ in range(r.u32()):
            time = r.i64()
            key = r.text()
            value = r.f64()
            marker = r.text() if r.u8() else None
            events.append(Event(time, key, value, marker))
        return EventBatchMessage(sender=sender, covered_to=covered, events=events)

    def _encode_window(self, w: _Writer, msg: WindowPartialMessage) -> None:
        w.u8(_TAG_WINDOW)
        w.text(msg.sender)
        w.text(msg.query_id)
        w.i64(msg.start)
        w.i64(msg.end)
        w.u32(msg.count)
        w.i64(msg.covered_to)
        self._encode_ops(w, msg.ops)
        if msg.values is None:
            w.u8(0)
        else:
            w.u8(1)
            w.floats(msg.values)

    def _decode_window(self, r: _Reader) -> WindowPartialMessage:
        sender = r.text()
        query_id = r.text()
        start = r.i64()
        end = r.i64()
        count = r.u32()
        covered = r.i64()
        ops = self._decode_ops(r)
        values = r.floats() if r.u8() else None
        return WindowPartialMessage(
            sender=sender,
            query_id=query_id,
            start=start,
            end=end,
            count=count,
            covered_to=covered,
            ops=ops,
            values=values,
        )

    def _encode_control(self, w: _Writer, msg: ControlMessage) -> None:
        w.u8(_TAG_CONTROL)
        w.text(msg.sender)
        w.text(msg.kind)
        try:
            payload = json.dumps(msg.payload)
        except TypeError as exc:
            raise CodecError(f"control payload not JSON-serializable: {exc}") from exc
        raw = payload.encode("utf-8")
        w.u32(len(raw))
        w.parts.append(raw)

    def _decode_control(self, r: _Reader) -> ControlMessage:
        sender = r.text()
        kind = r.text()
        n = r.u32()
        raw = r.data[r.pos : r.pos + n]
        r.pos += n
        return ControlMessage(
            sender=sender, kind=kind, payload=json.loads(raw.decode("utf-8"))
        )

    def _encode_sequenced(self, w: _Writer, msg: SequencedMessage) -> None:
        if isinstance(msg.inner, SequencedMessage):
            raise CodecError("sequenced frames do not nest")
        w.u8(_TAG_SEQUENCED)
        w.u32(msg.epoch)
        w.i64(msg.seq)
        self._encode_any(w, msg.inner)

    def _decode_sequenced(self, r: _Reader) -> SequencedMessage:
        epoch = r.u32()
        seq = r.i64()
        inner = self._decode_any(r)
        if isinstance(inner, SequencedMessage):
            raise CodecError("sequenced frames do not nest")
        return SequencedMessage(epoch=epoch, seq=seq, inner=inner)

    def _encode_ack(self, w: _Writer, msg: AckMessage) -> None:
        w.u8(_TAG_ACK)
        w.text(msg.sender)
        w.u32(msg.epoch)
        w.i64(msg.cumulative)
        w.u16(len(msg.selective))
        for seq in msg.selective:
            w.i64(seq)

    def _decode_ack(self, r: _Reader) -> AckMessage:
        sender = r.text()
        epoch = r.u32()
        cumulative = r.i64()
        selective = [r.i64() for _ in range(r.u16())]
        return AckMessage(
            sender=sender, epoch=epoch, cumulative=cumulative, selective=selective
        )

    def _encode_resync(self, w: _Writer, msg: ResyncMessage) -> None:
        w.u8(_TAG_RESYNC)
        w.text(msg.sender)
        w.u32(msg.epoch)
        w.u16(len(msg.entries))
        for group_id, (next_seq, covered_to) in msg.entries.items():
            w.u16(group_id)
            w.i64(next_seq)
            w.i64(covered_to)
        flags = (1 if msg.recover else 0) | (2 if msg.new_parent else 0)
        w.u8(flags)
        if msg.new_parent:
            w.text(msg.new_parent)

    def _decode_resync(self, r: _Reader) -> ResyncMessage:
        sender = r.text()
        epoch = r.u32()
        entries = {}
        for _ in range(r.u16()):
            group_id = r.u16()
            entries[group_id] = (r.i64(), r.i64())
        flags = r.u8()
        new_parent = r.text() if flags & 2 else ""
        return ResyncMessage(
            sender=sender,
            epoch=epoch,
            entries=entries,
            recover=bool(flags & 1),
            new_parent=new_parent,
        )

    def _encode_checkpoint(self, w: _Writer, msg: CheckpointMessage) -> None:
        w.u8(_TAG_CHECKPOINT)
        w.text(msg.sender)
        w.i64(msg.checkpoint_id)
        w.i64(msg.at)
        w.i64(msg.emit_seq)
        w.u16(len(msg.groups))
        for group_id, (ship_seq, floor, forwarded) in msg.groups.items():
            w.u16(group_id)
            w.i64(ship_seq)
            w.i64(floor)
            w.i64(forwarded)
        w.u32(len(msg.cursors))
        for group_id, child, next_seq, covered in msg.cursors:
            w.u16(group_id)
            w.text(child)
            w.i64(next_seq)
            w.i64(covered)
        w.u16(len(msg.safe_to))
        for group_id, safe in msg.safe_to.items():
            w.u16(group_id)
            w.i64(safe)

    def _decode_checkpoint(self, r: _Reader) -> CheckpointMessage:
        sender = r.text()
        checkpoint_id = r.i64()
        at = r.i64()
        emit_seq = r.i64()
        groups = {}
        for _ in range(r.u16()):
            group_id = r.u16()
            groups[group_id] = (r.i64(), r.i64(), r.i64())
        cursors = []
        for _ in range(r.u32()):
            group_id = r.u16()
            child = r.text()
            cursors.append((group_id, child, r.i64(), r.i64()))
        safe_to = {}
        for _ in range(r.u16()):
            group_id = r.u16()
            safe_to[group_id] = r.i64()
        return CheckpointMessage(
            sender=sender,
            checkpoint_id=checkpoint_id,
            at=at,
            emit_seq=emit_seq,
            groups=groups,
            cursors=cursors,
            safe_to=safe_to,
        )

    def _encode_snapshot(self, w: _Writer, msg: SnapshotChunk) -> None:
        w.u8(_TAG_SNAPSHOT)
        w.text(msg.sender)
        w.i64(msg.checkpoint_id)
        w.u16(msg.group_id)
        w.text(msg.kind)
        w.text(msg.child)
        w.i64(msg.seq)
        w.i64(msg.covered)
        self._encode_records(w, msg.records)
        if msg.state is None:
            w.u8(0)
        else:
            w.u8(1)
            try:
                raw = json.dumps(msg.state, sort_keys=True).encode("utf-8")
            except TypeError as exc:
                raise CodecError(
                    f"snapshot state not JSON-serializable: {exc}"
                ) from exc
            w.u32(len(raw))
            w.parts.append(raw)

    def _decode_snapshot(self, r: _Reader) -> SnapshotChunk:
        sender = r.text()
        checkpoint_id = r.i64()
        group_id = r.u16()
        kind = r.text()
        child = r.text()
        seq = r.i64()
        covered = r.i64()
        records = self._decode_records(r)
        state = None
        if r.u8():
            n = r.u32()
            raw = r.data[r.pos : r.pos + n]
            r.pos += n
            state = json.loads(raw.decode("utf-8"))
        return SnapshotChunk(
            sender=sender,
            checkpoint_id=checkpoint_id,
            group_id=group_id,
            kind=kind,
            child=child,
            seq=seq,
            covered=covered,
            records=records,
            state=state,
        )

    def _encode_shard_batch(self, w: _Writer, msg: ShardBatchMessage) -> None:
        if len(msg.key_table) > 0xFFFF:
            raise CodecError(
                f"shard batch key table too large: {len(msg.key_table)}"
            )
        w.u8(_TAG_SHARD_BATCH)
        w.i64(msg.seq)
        flags = (
            (1 if msg.advance_before is not None else 0)
            | (2 if msg.advance_after is not None else 0)
            | (4 if msg.close else 0)
            | (8 if msg.final_time is not None else 0)
        )
        w.u8(flags)
        if msg.advance_before is not None:
            w.i64(msg.advance_before)
        if msg.advance_after is not None:
            w.i64(msg.advance_after)
        if msg.final_time is not None:
            w.i64(msg.final_time)
        w.u16(len(msg.key_table))
        for key in msg.key_table:
            w.text(key)
        w.i64s(msg.times)
        w.u16s(msg.key_index)
        w.floats(msg.values)
        w.u32(len(msg.markers))
        for row, marker in msg.markers:
            w.u32(row)
            w.text(marker)

    def _decode_shard_batch(self, r: _Reader) -> ShardBatchMessage:
        seq = r.i64()
        flags = r.u8()
        advance_before = r.i64() if flags & 1 else None
        advance_after = r.i64() if flags & 2 else None
        final_time = r.i64() if flags & 8 else None
        key_table = [r.text() for _ in range(r.u16())]
        times = r.i64s()
        key_index = r.u16s()
        values = r.floats()
        markers = [(r.u32(), r.text()) for _ in range(r.u32())]
        return ShardBatchMessage(
            seq=seq,
            advance_before=advance_before,
            advance_after=advance_after,
            close=bool(flags & 4),
            final_time=final_time,
            times=times,
            values=values,
            key_table=key_table,
            key_index=key_index,
            markers=markers,
        )

    def _encode_shard_result(self, w: _Writer, msg: ShardResultMessage) -> None:
        w.u8(_TAG_SHARD_RESULT)
        w.u16(msg.shard)
        w.i64(msg.seq)
        flags = (1 if msg.done else 0) | (2 if msg.error else 0)
        w.u8(flags)
        w.i64(msg.busy_ns)
        if msg.error:
            w.text(msg.error)
        w.u16(len(msg.stats))
        for name, value in msg.stats.items():
            w.text(name)
            w.i64(value)
        w.u32(len(msg.windows))
        for rec in msg.windows:
            w.u16(rec.group_id)
            w.u16(rec.ctx)
            w.i64(rec.start)
            w.i64(rec.end)
            w.u32(rec.event_count)
            w.i64(rec.emitted_at)
            w.u16(len(rec.query_ids))
            for query_id in rec.query_ids:
                w.text(query_id)
            self._encode_ops(w, rec.ops)

    def _decode_shard_result(self, r: _Reader) -> ShardResultMessage:
        shard = r.u16()
        seq = r.i64()
        flags = r.u8()
        busy_ns = r.i64()
        error = r.text() if flags & 2 else ""
        stats = {r.text(): r.i64() for _ in range(r.u16())}
        windows = []
        for _ in range(r.u32()):
            group_id = r.u16()
            ctx = r.u16()
            start = r.i64()
            end = r.i64()
            event_count = r.u32()
            emitted_at = r.i64()
            query_ids = tuple(r.text() for _ in range(r.u16()))
            ops = self._decode_ops(r)
            windows.append(
                ShardWindowRecord(
                    group_id=group_id,
                    ctx=ctx,
                    start=start,
                    end=end,
                    event_count=event_count,
                    emitted_at=emitted_at,
                    query_ids=query_ids,
                    ops=ops,
                )
            )
        return ShardResultMessage(
            shard=shard,
            seq=seq,
            windows=windows,
            done=bool(flags & 1),
            busy_ns=busy_ns,
            stats=stats,
            error=error,
        )

    # -- decoding ----------------------------------------------------------------

    def _encode_any(self, w: _Writer, message: Message) -> None:
        if isinstance(message, PartialBatchMessage):
            self._encode_partial(w, message)
        elif isinstance(message, EventBatchMessage):
            self._encode_events(w, message)
        elif isinstance(message, WindowPartialMessage):
            self._encode_window(w, message)
        elif isinstance(message, ControlMessage):
            self._encode_control(w, message)
        elif isinstance(message, AckMessage):
            self._encode_ack(w, message)
        elif isinstance(message, ResyncMessage):
            self._encode_resync(w, message)
        elif isinstance(message, CheckpointMessage):
            self._encode_checkpoint(w, message)
        elif isinstance(message, SnapshotChunk):
            self._encode_snapshot(w, message)
        elif isinstance(message, ShardBatchMessage):
            self._encode_shard_batch(w, message)
        elif isinstance(message, ShardResultMessage):
            self._encode_shard_result(w, message)
        else:
            raise CodecError(f"cannot encode message type {type(message).__name__}")

    def _decode_any(self, r: _Reader) -> Message:
        tag = r.u8()
        if tag == _TAG_PARTIAL:
            return self._decode_partial(r)
        if tag == _TAG_EVENTS:
            return self._decode_events(r)
        if tag == _TAG_WINDOW:
            return self._decode_window(r)
        if tag == _TAG_CONTROL:
            return self._decode_control(r)
        if tag == _TAG_SEQUENCED:
            return self._decode_sequenced(r)
        if tag == _TAG_ACK:
            return self._decode_ack(r)
        if tag == _TAG_RESYNC:
            return self._decode_resync(r)
        if tag == _TAG_CHECKPOINT:
            return self._decode_checkpoint(r)
        if tag == _TAG_SNAPSHOT:
            return self._decode_snapshot(r)
        if tag == _TAG_SHARD_BATCH:
            return self._decode_shard_batch(r)
        if tag == _TAG_SHARD_RESULT:
            return self._decode_shard_result(r)
        raise CodecError(f"unknown message tag: {tag}")

    def decode(self, data: bytes) -> Message:
        r = _Reader(data)
        try:
            return self._decode_any(r)
        except (struct.error, IndexError, UnicodeDecodeError) as exc:
            raise CodecError(f"truncated or corrupt message: {exc}") from exc


class StringCodec(Codec):
    """Disco-style JSON-text encoding (verbose on purpose)."""

    name = "string"

    def encode(self, message: Message) -> bytes:
        payload = _to_jsonable(message)
        return json.dumps(payload).encode("utf-8")

    def decode(self, data: bytes) -> Message:
        try:
            payload = json.loads(data.decode("utf-8"))
        except (ValueError, UnicodeDecodeError) as exc:
            raise CodecError(f"corrupt string message: {exc}") from exc
        return _from_jsonable(payload)


def _ops_to_jsonable(ops: dict[OperatorKind, Any]) -> dict[str, Any]:
    return {kind.value: partial for kind, partial in ops.items()}


def _ops_from_jsonable(data: dict[str, Any]) -> dict[OperatorKind, Any]:
    out: dict[OperatorKind, Any] = {}
    for key, partial in data.items():
        kind = OperatorKind(key)
        if kind is OperatorKind.DECOMPOSABLE_SORT and partial is not None:
            partial = tuple(partial)
        out[kind] = partial
    return out


def _records_to_jsonable(records: list[SliceRecord]) -> list[dict[str, Any]]:
    return [
        {
            "start": record.start,
            "end": record.end,
            "contexts": {
                str(ctx): {
                    "count": part.count,
                    "ops": _ops_to_jsonable(part.ops),
                    "span": part.span,
                    "timed": part.timed,
                }
                for ctx, part in record.contexts.items()
            },
            "userdef_eps": record.userdef_eps,
        }
        for record in records
    ]


def _records_from_jsonable(data: list[dict[str, Any]]) -> list[SliceRecord]:
    return [
        SliceRecord(
            start=record["start"],
            end=record["end"],
            contexts={
                int(ctx): ContextPartial(
                    count=part["count"],
                    ops=_ops_from_jsonable(part["ops"]),
                    span=tuple(part["span"]) if part["span"] else None,
                    timed=[tuple(tv) for tv in part["timed"]]
                    if part["timed"] is not None
                    else None,
                )
                for ctx, part in record["contexts"].items()
            },
            userdef_eps=[tuple(ep) for ep in record["userdef_eps"]],
        )
        for record in data
    ]


def _to_jsonable(message: Message) -> dict[str, Any]:
    if isinstance(message, PartialBatchMessage):
        out = {
            "type": "partial",
            "sender": message.sender,
            "group_id": message.group_id,
            "first_slice_seq": message.first_slice_seq,
            "covered_to": message.covered_to,
            "records": _records_to_jsonable(message.records),
        }
        if message.shed:  # optional, mirroring the binary trailing block
            out["shed"] = [list(entry) for entry in message.shed]
        return out
    if isinstance(message, EventBatchMessage):
        return {
            "type": "events",
            "sender": message.sender,
            "covered_to": message.covered_to,
            "events": [
                [e.time, e.key, e.value, e.marker] for e in message.events
            ],
        }
    if isinstance(message, WindowPartialMessage):
        return {
            "type": "window",
            "sender": message.sender,
            "query_id": message.query_id,
            "start": message.start,
            "end": message.end,
            "count": message.count,
            "covered_to": message.covered_to,
            "ops": _ops_to_jsonable(message.ops),
            "values": message.values,
        }
    if isinstance(message, ControlMessage):
        return {
            "type": "control",
            "sender": message.sender,
            "kind": message.kind,
            "payload": message.payload,
        }
    if isinstance(message, SequencedMessage):
        if isinstance(message.inner, SequencedMessage):
            raise CodecError("sequenced frames do not nest")
        return {
            "type": "sequenced",
            "epoch": message.epoch,
            "seq": message.seq,
            "inner": _to_jsonable(message.inner),
        }
    if isinstance(message, AckMessage):
        return {
            "type": "ack",
            "sender": message.sender,
            "epoch": message.epoch,
            "cumulative": message.cumulative,
            "selective": message.selective,
        }
    if isinstance(message, ResyncMessage):
        return {
            "type": "resync",
            "sender": message.sender,
            "epoch": message.epoch,
            "entries": {
                str(group_id): list(entry)
                for group_id, entry in message.entries.items()
            },
            "recover": message.recover,
            "new_parent": message.new_parent,
        }
    if isinstance(message, CheckpointMessage):
        return {
            "type": "checkpoint",
            "sender": message.sender,
            "checkpoint_id": message.checkpoint_id,
            "at": message.at,
            "emit_seq": message.emit_seq,
            "groups": {
                str(group_id): list(entry)
                for group_id, entry in message.groups.items()
            },
            "cursors": [list(cursor) for cursor in message.cursors],
            "safe_to": {
                str(group_id): safe
                for group_id, safe in message.safe_to.items()
            },
        }
    if isinstance(message, SnapshotChunk):
        try:
            state = json.loads(json.dumps(message.state, sort_keys=True))
        except TypeError as exc:
            raise CodecError(
                f"snapshot state not JSON-serializable: {exc}"
            ) from exc
        return {
            "type": "snapshot",
            "sender": message.sender,
            "checkpoint_id": message.checkpoint_id,
            "group_id": message.group_id,
            "kind": message.kind,
            "child": message.child,
            "seq": message.seq,
            "covered": message.covered,
            "records": _records_to_jsonable(message.records),
            "state": state,
        }
    if isinstance(message, ShardBatchMessage):
        return {
            "type": "shard_batch",
            "seq": message.seq,
            "advance_before": message.advance_before,
            "advance_after": message.advance_after,
            "close": message.close,
            "final_time": message.final_time,
            "times": message.times,
            "values": message.values,
            "key_table": message.key_table,
            "key_index": message.key_index,
            "markers": [list(entry) for entry in message.markers],
        }
    if isinstance(message, ShardResultMessage):
        return {
            "type": "shard_result",
            "shard": message.shard,
            "seq": message.seq,
            "done": message.done,
            "busy_ns": message.busy_ns,
            "stats": message.stats,
            "error": message.error,
            "windows": [
                {
                    "group_id": rec.group_id,
                    "ctx": rec.ctx,
                    "start": rec.start,
                    "end": rec.end,
                    "event_count": rec.event_count,
                    "emitted_at": rec.emitted_at,
                    "query_ids": list(rec.query_ids),
                    "ops": _ops_to_jsonable(rec.ops),
                }
                for rec in message.windows
            ],
        }
    raise CodecError(f"cannot encode message type {type(message).__name__}")


def _from_jsonable(data: dict[str, Any]) -> Message:
    kind = data.get("type")
    if kind == "partial":
        return PartialBatchMessage(
            sender=data["sender"],
            group_id=data["group_id"],
            first_slice_seq=data["first_slice_seq"],
            covered_to=data["covered_to"],
            records=_records_from_jsonable(data["records"]),
            shed=[
                (node_id, start, end)
                for node_id, start, end in data.get("shed", [])
            ],
        )
    if kind == "events":
        return EventBatchMessage(
            sender=data["sender"],
            covered_to=data["covered_to"],
            events=[Event(t, k, v, m) for t, k, v, m in data["events"]],
        )
    if kind == "window":
        return WindowPartialMessage(
            sender=data["sender"],
            query_id=data["query_id"],
            start=data["start"],
            end=data["end"],
            count=data["count"],
            covered_to=data["covered_to"],
            ops=_ops_from_jsonable(data["ops"]),
            values=data["values"],
        )
    if kind == "control":
        return ControlMessage(
            sender=data["sender"], kind=data["kind"], payload=data["payload"]
        )
    if kind == "sequenced":
        inner = _from_jsonable(data["inner"])
        if isinstance(inner, SequencedMessage):
            raise CodecError("sequenced frames do not nest")
        return SequencedMessage(epoch=data["epoch"], seq=data["seq"], inner=inner)
    if kind == "ack":
        return AckMessage(
            sender=data["sender"],
            epoch=data["epoch"],
            cumulative=data["cumulative"],
            selective=list(data["selective"]),
        )
    if kind == "resync":
        return ResyncMessage(
            sender=data["sender"],
            epoch=data["epoch"],
            entries={
                int(group_id): tuple(entry)
                for group_id, entry in data["entries"].items()
            },
            recover=bool(data.get("recover", False)),
            new_parent=data.get("new_parent", ""),
        )
    if kind == "checkpoint":
        return CheckpointMessage(
            sender=data["sender"],
            checkpoint_id=data["checkpoint_id"],
            at=data["at"],
            emit_seq=data["emit_seq"],
            groups={
                int(group_id): tuple(entry)
                for group_id, entry in data["groups"].items()
            },
            cursors=[
                (group_id, child, next_seq, covered)
                for group_id, child, next_seq, covered in data["cursors"]
            ],
            safe_to={
                int(group_id): safe
                for group_id, safe in data["safe_to"].items()
            },
        )
    if kind == "snapshot":
        return SnapshotChunk(
            sender=data["sender"],
            checkpoint_id=data["checkpoint_id"],
            group_id=data["group_id"],
            kind=data["kind"],
            child=data["child"],
            seq=data["seq"],
            covered=data["covered"],
            records=_records_from_jsonable(data["records"]),
            state=data["state"],
        )
    if kind == "shard_batch":
        return ShardBatchMessage(
            seq=data["seq"],
            advance_before=data["advance_before"],
            advance_after=data["advance_after"],
            close=bool(data["close"]),
            final_time=data["final_time"],
            times=list(data["times"]),
            values=list(data["values"]),
            key_table=list(data["key_table"]),
            key_index=list(data["key_index"]),
            markers=[(row, marker) for row, marker in data["markers"]],
        )
    if kind == "shard_result":
        return ShardResultMessage(
            shard=data["shard"],
            seq=data["seq"],
            windows=[
                ShardWindowRecord(
                    group_id=rec["group_id"],
                    ctx=rec["ctx"],
                    start=rec["start"],
                    end=rec["end"],
                    event_count=rec["event_count"],
                    emitted_at=rec["emitted_at"],
                    query_ids=tuple(rec["query_ids"]),
                    ops=_ops_from_jsonable(rec["ops"]),
                )
                for rec in data["windows"]
            ],
            done=bool(data["done"]),
            busy_ns=data["busy_ns"],
            stats=dict(data["stats"]),
            error=data["error"],
        )
    raise CodecError(f"unknown string message type: {kind!r}")
