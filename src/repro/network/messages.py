"""Message types exchanged between nodes (the message manager's vocabulary).

Four payload families cover every deployment in the evaluation:

* :class:`EventBatchMessage` — raw events, shipped upward by centralized
  deployments (CeBuffer/Scotty in Sec 6.4) and, with timestamps, by
  root-evaluated Desis groups that contain count-based windows.
* :class:`PartialBatchMessage` — Desis' per-*slice* partial results
  (Sec 5.1): slice records carrying per-selection-context operator
  partials, activity spans for session assembly, and user-defined end
  punctuations.
* :class:`WindowPartialMessage` — Disco's per-*window* partial results;
  one message per window per node, which is why Disco's traffic grows with
  the number of concurrent windows (Fig 11d) while Desis' does not.
* :class:`ControlMessage` — query distribution, topology updates, and
  heartbeats (Sec 3.2).

When a :class:`~repro.network.simnet.FaultPlan` is active, three transport
types join them (the paper assumes lossless links, Sec 5; we do not):

* :class:`SequencedMessage` — the reliable-channel frame wrapping a data
  message with a per-link ``(epoch, seq)`` so the receiver can dedup and
  re-order deliveries.
* :class:`AckMessage` — receiver feedback: cumulative + selective acks
  that release the sender's retransmit buffer.
* :class:`ResyncMessage` — parent-to-child state resync after a
  soft-evicted node rejoins via the heartbeat path: per query-group the
  slice sequence to resume at and the coverage already assembled without
  the child.

Checkpointed recovery adds two more (see DESIGN.md §8):

* :class:`CheckpointMessage` — the header of a node's incremental state
  snapshot (sequence numbers, forward floors, per-child merge cursors,
  the root's emit ledger).  The same type doubles as the parent-to-child
  retention-trim broadcast: after persisting a checkpoint the parent
  tells its children the coverage floor below which shipped batches can
  never be asked for again.
* :class:`SnapshotChunk` — one piece of checkpointed state: a child's
  buffered (pending) slice records, one retained upward batch, or a root
  assembler's window-state blob.

Sharded (multi-core) execution adds two single-host frames (DESIGN.md
§13), carried over OS pipes with the same :class:`BinaryCodec`:

* :class:`ShardBatchMessage` — a columnar event frame the parent
  broadcasts to every worker; workers filter their own key shard out of
  it before building events.
* :class:`ShardResultMessage` — a worker's closed-window partials
  (:class:`ShardWindowRecord` entries) flowing back to the parent's
  deterministic reducer.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.core.event import Event
from repro.core.types import OperatorKind

__all__ = [
    "ContextPartial",
    "SliceRecord",
    "PartialBatchMessage",
    "EventBatchMessage",
    "WindowPartialMessage",
    "ControlMessage",
    "SequencedMessage",
    "AckMessage",
    "ResyncMessage",
    "CheckpointMessage",
    "SnapshotChunk",
    "ShardBatchMessage",
    "ShardResultMessage",
    "ShardWindowRecord",
    "Message",
]


@dataclass(slots=True)
class ContextPartial:
    """One selection context's contribution to one slice record.

    Attributes:
        count: matching events inserted in the slice.
        ops: operator kind -> partial result (Sec 4.2.1 representations).
        span: ``(first_event_time, last_event_time)`` of the context's
            activity within the slice; present when the group contains
            session windows, enabling exact gap covering at the root
            (Sec 5.1.2).
        timed: ``(time, value)`` pairs, present only for root-evaluated
            groups containing count-based windows, whose ends only the
            root can determine (Sec 5.2).
    """

    count: int = 0
    ops: dict[OperatorKind, Any] = field(default_factory=dict)
    span: tuple[int, int] | None = None
    timed: list[tuple[int, float]] | None = None


@dataclass(slots=True)
class SliceRecord:
    """Partial results of one local/intermediate slice (Sec 5.1)."""

    start: int
    end: int
    contexts: dict[int, ContextPartial] = field(default_factory=dict)
    #: user-defined window end punctuations observed in the slice:
    #: (query_id, marker event time)
    userdef_eps: list[tuple[str, int]] = field(default_factory=list)

    @property
    def is_empty(self) -> bool:
        return not self.contexts and not self.userdef_eps


@dataclass(slots=True)
class PartialBatchMessage:
    """A node's per-slice partial results for one query-group.

    ``first_slice_seq`` is the auto-incrementing id of the first record
    (Sec 5.1.1); parents use the ids to detect duplicated or missing
    slices.  ``covered_to`` is the sender's progress watermark: it has
    emitted everything ending at or before this time.

    ``shed`` reports coverage that overload control deliberately dropped
    below this point of the tree: ``(node_id, start, end)`` intervals of
    whole slices shed from a bounded staging buffer (DESIGN.md §12).
    Shedding happens *before* sequence assignment, so the slice-seq
    protocol stays gapless; the intervals ride up with the next batch so
    the root can stamp affected windows with ``completeness < 1.0``.
    Empty (the default) costs zero wire bytes.
    """

    sender: str
    group_id: int
    first_slice_seq: int
    covered_to: int
    records: list[SliceRecord] = field(default_factory=list)
    #: coverage intervals shed below this hop: (node_id, start, end)
    shed: list[tuple[str, int, int]] = field(default_factory=list)


@dataclass(slots=True)
class EventBatchMessage:
    """Raw events forwarded toward the root (centralized aggregation)."""

    sender: str
    covered_to: int
    events: list[Event] = field(default_factory=list)


@dataclass(slots=True)
class WindowPartialMessage:
    """Disco-style per-window partial result (one window, one sender)."""

    sender: str
    query_id: str
    start: int
    end: int
    count: int
    covered_to: int
    ops: dict[OperatorKind, Any] = field(default_factory=dict)
    values: list[float] | None = None  # shipped events for holistic functions


@dataclass(slots=True)
class ControlMessage:
    """Cluster management traffic (Sec 3.2): queries, topology, heartbeats."""

    sender: str
    kind: str  # "queries" | "topology" | "heartbeat" | "query_add" | "query_remove"
    payload: Any = None


@dataclass(slots=True)
class AckMessage:
    """Receive-side acknowledgement for one reliable channel.

    ``sender`` is the acking (receiving) node; ``cumulative`` means every
    frame with ``seq < cumulative`` of ``epoch`` was delivered in order,
    and ``selective`` lists out-of-order frames buffered beyond it, so the
    sender retransmits only the real gaps.
    """

    sender: str
    epoch: int
    cumulative: int
    selective: list[int] = field(default_factory=list)


@dataclass(slots=True)
class ResyncMessage:
    """Parent-to-child state resync after a heartbeat-path rejoin.

    ``epoch`` is the new reliable-channel epoch the parent chose when it
    re-admitted the child (see
    :meth:`~repro.network.simnet.SimNetwork.expect_resync`); the child
    restarts its send channel at it, so frames it was still retrying from
    before the outage are rejected as stale.  ``entries`` maps
    ``group_id`` to ``(next_slice_seq, covered_to)``: the slice sequence
    the parent's merger expects next from this child, and the coverage
    boundary the parent has already assembled without it (the child prunes
    pending slice records at or before it — those windows closed degraded
    during the outage and must not be re-shipped).

    Checkpointed recovery reuses the same flow with two extra fields:
    ``recover=True`` means the parent restarted from a checkpoint and the
    entries are its restored merge cursors — the child fast-forwards and
    re-ships only the retained suffix past them (original sequence
    numbers, nothing pruned).  ``new_parent`` (failover) names the node
    that adopted the child after its old parent died permanently: the
    child reparents, renumbers its retained suffix past the adoption
    floors from slice seq 0, and re-ships to the adopter.
    """

    sender: str
    epoch: int = 0
    entries: dict[int, tuple[int, int]] = field(default_factory=dict)
    recover: bool = False
    new_parent: str = ""


@dataclass(slots=True)
class CheckpointMessage:
    """Checkpoint header — and, on the wire, the retention-trim broadcast.

    As the first chunk of a persisted snapshot it carries every scalar a
    node needs to resume: per-group ``(ship_seq, forward_floor,
    forwarded_to)``, the per-child reliable merge cursors, and (root only)
    the emit-sequence ledger for exactly-once emission.

    Sent parent-to-child after a checkpoint is saved, only ``safe_to``
    matters: per group, the coverage floor the parent has durably
    assembled past — children may drop retained upward batches whose
    ``covered_to`` is at or below it, because no recovery (restart *or*
    failover) can ever ask for them again.
    """

    sender: str
    checkpoint_id: int
    at: int
    emit_seq: int = 0
    #: group_id -> (ship_seq, forward_floor, forwarded_to)
    groups: dict[int, tuple[int, int, int]] = field(default_factory=dict)
    #: reliable merge cursors: (group_id, child, next_slice_seq, covered_to)
    cursors: list[tuple[int, str, int, int]] = field(default_factory=list)
    #: retention-trim floors: group_id -> safe coverage boundary
    safe_to: dict[int, int] = field(default_factory=dict)


@dataclass(slots=True)
class SnapshotChunk:
    """One piece of checkpointed node state.

    ``kind`` selects the payload shape:

    * ``"pending"`` — one merge child's buffered-but-unreleased slice
      records (``child`` names it; the matching cursor lives in the
      header).
    * ``"retained"`` — one retained upward batch (``seq`` is its original
      ``first_slice_seq``, ``covered`` its ``covered_to``) so a restarted
      intermediate can still serve a later parent recovery.
    * ``"assembler"`` — one root group's window-assembly state:
      ``records`` is the merged slice buffer, ``state`` a deterministic
      JSON-able blob of per-query progress (fixed schedules, open
      sessions, user-defined pointers, open count windows).
    """

    sender: str
    checkpoint_id: int
    group_id: int
    kind: str  # "pending" | "retained" | "assembler"
    child: str = ""
    seq: int = 0
    covered: int = 0
    records: list[SliceRecord] = field(default_factory=list)
    state: Any = None


@dataclass(slots=True)
class ShardBatchMessage:
    """One columnar event frame, broadcast by the sharded-execution parent.

    The parent encodes each batch **once** and sends the same bytes to
    every worker; each worker filters the rows whose key hashes to its
    shard (DESIGN.md §13).  Events are stored as parallel columns —
    ``times``/``values`` plus a per-frame key dictionary (``key_table``)
    and per-row indexes into it — so the parent never pays a per-event
    Python object cost on the send path.

    ``advance_before`` (set on the first frame only) is the global
    bootstrap origin: every worker anchors its fixed-window schedules at
    it before touching events, so all shards agree on slice cuts.
    ``advance_after`` is the batch's progress watermark (the last event
    time, or an explicit :meth:`advance` time); draining to it after the
    batch keeps every shard's stream clock synchronized at frame
    boundaries, which is what makes the per-frame close sets — and hence
    the reduce — deterministic.  The final frame carries ``close=True``
    and ``final_time``.
    """

    seq: int
    advance_before: int | None = None
    advance_after: int | None = None
    close: bool = False
    final_time: int | None = None
    times: list[int] = field(default_factory=list)
    values: list[float] = field(default_factory=list)
    #: per-frame key dictionary; ``key_index[i]`` names row ``i``'s key
    key_table: list[str] = field(default_factory=list)
    key_index: list[int] = field(default_factory=list)
    #: sparse ``(row, marker)`` pairs for user-defined window markers
    markers: list[tuple[int, str]] = field(default_factory=list)


@dataclass(slots=True)
class ShardWindowRecord:
    """One closed window's raw operator partials from one shard.

    Identity across shards is ``(group_id, ctx, start, end, query_ids)``
    — never a close ordinal, because two windows closing within the same
    frame may close in different orders on different shards.  ``ops`` are
    the shard's merged operator partials for the window (the same
    representations :func:`~repro.core.operators.merge_many_partials`
    folds); ``emitted_at`` is the shard's stream time at close — the
    global emission time is the minimum across shards.
    """

    group_id: int
    ctx: int
    start: int
    end: int
    event_count: int
    emitted_at: int
    query_ids: tuple[str, ...] = ()
    ops: dict[OperatorKind, Any] = field(default_factory=dict)


@dataclass(slots=True)
class ShardResultMessage:
    """A worker's reply frame: closed windows, and on close, its totals.

    ``seq`` echoes the input frame that produced these windows (the
    parent uses it to bound in-flight frames per shard).  The final reply
    sets ``done=True`` and carries the worker's cumulative CPU busy time
    and its engine's stat counters; ``error`` reports a worker-side
    exception instead of killing the pipe silently.
    """

    shard: int
    seq: int
    windows: list[ShardWindowRecord] = field(default_factory=list)
    done: bool = False
    busy_ns: int = 0
    stats: dict[str, int] = field(default_factory=dict)
    error: str = ""


@dataclass(slots=True)
class SequencedMessage:
    """A reliable-channel frame: one data message with per-link ordering.

    ``epoch`` guards channel resets (a resync bumps it; stale-epoch frames
    and acks are discarded), ``seq`` is the per-``(link, epoch)``
    auto-incrementing frame number the receiver dedups and re-orders on.
    """

    epoch: int
    seq: int
    inner: "Message"


Message = (
    PartialBatchMessage
    | EventBatchMessage
    | WindowPartialMessage
    | ControlMessage
    | SequencedMessage
    | AckMessage
    | ResyncMessage
    | CheckpointMessage
    | SnapshotChunk
    | ShardBatchMessage
    | ShardResultMessage
)
