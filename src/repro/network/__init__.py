"""Simulated decentralized network: codecs, messages, links, topologies."""

from repro.network.codec import BinaryCodec, Codec, StringCodec
from repro.network.messages import (
    AckMessage,
    ContextPartial,
    ControlMessage,
    EventBatchMessage,
    Message,
    PartialBatchMessage,
    ResyncMessage,
    SequencedMessage,
    ShardBatchMessage,
    ShardResultMessage,
    ShardWindowRecord,
    SliceRecord,
    WindowPartialMessage,
)
from repro.network.simnet import (
    CrashWindow,
    FaultPlan,
    Link,
    LinkFaults,
    NetworkStats,
    SimNetwork,
    SimNode,
)
from repro.network.topology import Topology, chain, star, three_tier

__all__ = [
    "AckMessage",
    "BinaryCodec",
    "Codec",
    "ContextPartial",
    "ControlMessage",
    "CrashWindow",
    "EventBatchMessage",
    "FaultPlan",
    "Link",
    "LinkFaults",
    "Message",
    "NetworkStats",
    "PartialBatchMessage",
    "ResyncMessage",
    "SequencedMessage",
    "ShardBatchMessage",
    "ShardResultMessage",
    "ShardWindowRecord",
    "SimNetwork",
    "SimNode",
    "SliceRecord",
    "StringCodec",
    "Topology",
    "WindowPartialMessage",
    "chain",
    "star",
    "three_tier",
]
