"""Simulated decentralized network: codecs, messages, links, topologies."""

from repro.network.codec import BinaryCodec, Codec, StringCodec
from repro.network.messages import (
    ContextPartial,
    ControlMessage,
    EventBatchMessage,
    Message,
    PartialBatchMessage,
    SliceRecord,
    WindowPartialMessage,
)
from repro.network.simnet import Link, NetworkStats, SimNetwork, SimNode
from repro.network.topology import Topology, chain, star, three_tier

__all__ = [
    "BinaryCodec",
    "Codec",
    "ContextPartial",
    "ControlMessage",
    "EventBatchMessage",
    "Link",
    "Message",
    "NetworkStats",
    "PartialBatchMessage",
    "SimNetwork",
    "SimNode",
    "SliceRecord",
    "StringCodec",
    "Topology",
    "WindowPartialMessage",
    "chain",
    "star",
    "three_tier",
]
