"""A discrete-event simulated network (the message manager's substrate).

The paper runs on a 10-node 25G cluster and a Raspberry Pi 1G cluster;
here every node is a Python object and the network is simulated:

* messages are *really* serialized by a :class:`~repro.network.codec.Codec`
  and decoded on delivery, so byte counts are exact and serialization cost
  is paid;
* links have latency and an optional bandwidth cap; a saturated link
  queues messages (``busy_until``), which is how the Pi experiment's
  bandwidth ceiling appears (Fig 13);
* simulated time is milliseconds of event time, so event-time result
  latency falls out of ``emitted_at - window_end``;
* per-node wall-clock processing time is sampled around every handler
  call, giving the per-node-class latency/throughput breakdowns of
  Figures 7 and 12.
"""

from __future__ import annotations

import heapq
import time as _time
from collections import defaultdict
from dataclasses import dataclass, field
from typing import Iterable

from repro.core.errors import TopologyError
from repro.core.event import Event
from repro.core.types import NodeRole
from repro.network.codec import BinaryCodec, Codec
from repro.network.messages import ControlMessage, Message

__all__ = ["SimNode", "Link", "SimNetwork", "NetworkStats"]

_EVENT = 0
_TICK = 1
_MESSAGE = 2
_FINISH = 3
_EVENT_BATCH = 4


class SimNode:
    """Base class for simulated nodes.

    Subclasses override the ``on_*`` handlers; each handler may call
    :meth:`SimNetwork.send` to emit messages.  ``cpu_time`` accumulates the
    wall-clock seconds spent inside this node's handlers.
    """

    def __init__(self, node_id: str, role: NodeRole) -> None:
        self.node_id = node_id
        self.role = role
        self.cpu_time = 0.0
        self.events_handled = 0
        self.messages_handled = 0

    def on_event(self, event: Event, now: int, net: "SimNetwork") -> None:
        """A stream event arrived at this (local) node."""

    def on_events(self, events: list[Event], now: int, net: "SimNetwork") -> None:
        """A batch of in-order stream events arrived (see
        :meth:`SimNetwork.inject_stream` with ``batch_ms``).  The default
        keeps per-event semantics; nodes with a batched ingestion path
        override this."""
        for event in events:
            self.on_event(event, now, net)

    def on_message(self, message: Message, now: int, net: "SimNetwork") -> None:
        """A message from another node was delivered."""

    def on_tick(self, now: int, net: "SimNetwork") -> None:
        """A scheduled watermark tick fired."""

    def on_finish(self, now: int, net: "SimNetwork") -> None:
        """The stream ended; flush all remaining state."""


@dataclass(slots=True)
class Link:
    """A directed link with latency, optional bandwidth, and counters."""

    src: str
    dst: str
    latency_ms: float = 1.0
    #: bytes per simulated millisecond; ``None`` means unlimited.
    bandwidth_bytes_per_ms: float | None = None
    codec: Codec = field(default_factory=BinaryCodec)
    bytes_sent: int = 0
    control_bytes: int = 0
    messages_sent: int = 0
    busy_until: float = 0.0

    def transfer(self, size: int, now: float, *, control: bool = False) -> float:
        """Account for ``size`` bytes leaving at ``now``; return arrival time."""
        self.bytes_sent += size
        if control:
            self.control_bytes += size
        self.messages_sent += 1
        start = max(now, self.busy_until)
        duration = (
            size / self.bandwidth_bytes_per_ms
            if self.bandwidth_bytes_per_ms
            else 0.0
        )
        self.busy_until = start + duration
        return self.busy_until + self.latency_ms


@dataclass(slots=True)
class NetworkStats:
    """Rolled-up traffic statistics."""

    bytes_by_link: dict[tuple[str, str], int] = field(default_factory=dict)
    messages_by_link: dict[tuple[str, str], int] = field(default_factory=dict)
    bytes_from_role: dict[NodeRole, int] = field(default_factory=dict)
    #: like ``bytes_from_role`` but excluding control traffic
    data_bytes_from_role: dict[NodeRole, int] = field(default_factory=dict)
    control_bytes: int = 0

    @property
    def total_bytes(self) -> int:
        """All bytes on all links, control traffic included."""
        return sum(self.bytes_by_link.values())

    @property
    def data_bytes(self) -> int:
        """Bytes excluding control messages (queries, topology, heartbeats,
        progress) — the steady-state traffic Figure 11 reports."""
        return self.total_bytes - self.control_bytes

    @property
    def total_messages(self) -> int:
        return sum(self.messages_by_link.values())


class SimNetwork:
    """The discrete-event simulator driving nodes, links, and streams."""

    def __init__(self, *, default_codec: Codec | None = None,
                 default_latency_ms: float = 1.0,
                 default_bandwidth_bytes_per_ms: float | None = None) -> None:
        self.nodes: dict[str, SimNode] = {}
        self.links: dict[tuple[str, str], Link] = {}
        self.default_codec = default_codec if default_codec is not None else BinaryCodec()
        self.default_latency_ms = default_latency_ms
        self.default_bandwidth = default_bandwidth_bytes_per_ms
        self._queue: list[tuple[float, int, int, object]] = []
        self._seq = 0
        self.now: float = 0.0
        self.delivered = 0

    # -- construction ------------------------------------------------------------

    def add_node(self, node: SimNode) -> None:
        if node.node_id in self.nodes:
            raise TopologyError(f"duplicate node id: {node.node_id!r}")
        self.nodes[node.node_id] = node

    def connect(
        self,
        src: str,
        dst: str,
        *,
        latency_ms: float | None = None,
        bandwidth_bytes_per_ms: float | None = None,
        codec: Codec | None = None,
        bidirectional: bool = True,
    ) -> None:
        """Create a link (both directions by default) between two nodes."""
        for a, b in ((src, dst), (dst, src)) if bidirectional else ((src, dst),):
            if a not in self.nodes or b not in self.nodes:
                raise TopologyError(f"cannot link unknown nodes {a!r} -> {b!r}")
            self.links[(a, b)] = Link(
                src=a,
                dst=b,
                latency_ms=(
                    latency_ms if latency_ms is not None else self.default_latency_ms
                ),
                bandwidth_bytes_per_ms=(
                    bandwidth_bytes_per_ms
                    if bandwidth_bytes_per_ms is not None
                    else self.default_bandwidth
                ),
                codec=codec if codec is not None else self.default_codec,
            )

    # -- scheduling ----------------------------------------------------------------

    def _push(self, at: float, kind: int, payload: object) -> None:
        self._seq += 1
        heapq.heappush(self._queue, (at, self._seq, kind, payload))

    def inject_stream(
        self, node_id: str, events: Iterable[Event], *, batch_ms: int | None = None
    ) -> int:
        """Schedule a local node's events at their own timestamps.

        With ``batch_ms`` set, consecutive events are grouped into
        per-tick batches delivered through :meth:`SimNode.on_events` in a
        single handler call: a batch starts at some event time ``t`` and
        extends through events up to the next ``batch_ms`` grid point
        ``>= t`` — the cadence watermark ticks fire on — so no tick (or
        later-scheduled message) can fall between a batch's first and last
        event.  The batch is scheduled at its first event's time, exactly
        where per-event scheduling would deliver that event.

        Returns the last event time (or 0 for an empty stream).
        """
        if node_id not in self.nodes:
            raise TopologyError(f"unknown node: {node_id!r}")
        last = 0
        if batch_ms is None:
            for event in events:
                self._push(float(event.time), _EVENT, (node_id, event))
                last = event.time
            return last
        if batch_ms <= 0:
            raise TopologyError(f"batch_ms must be positive, got {batch_ms}")
        batch: list[Event] = []
        boundary = 0
        for event in events:
            if batch and event.time > boundary:
                self._push(float(batch[0].time), _EVENT_BATCH, (node_id, batch))
                batch = []
            if not batch:
                # Smallest grid point >= the batch's first event: events at
                # exactly a tick time still precede that tick (they were
                # scheduled first), matching per-event pop order.
                boundary = ((event.time + batch_ms - 1) // batch_ms) * batch_ms
            batch.append(event)
            last = event.time
        if batch:
            self._push(float(batch[0].time), _EVENT_BATCH, (node_id, batch))
        return last

    def schedule_ticks(self, node_id: str, start: int, end: int, interval: int) -> None:
        """Schedule watermark ticks for a node at ``start + k*interval <= end``."""
        t = start + interval
        while t <= end:
            self._push(float(t), _TICK, (node_id, t))
            t += interval

    def schedule_finish(self, node_id: str, at: float) -> None:
        self._push(at, _FINISH, node_id)

    def send(self, src: str, dst: str, message: Message) -> None:
        """Serialize, account, and schedule delivery of ``message``."""
        link = self.links.get((src, dst))
        if link is None:
            raise TopologyError(f"no link {src!r} -> {dst!r}")
        data = link.codec.encode(message)
        arrival = link.transfer(
            len(data), self.now, control=isinstance(message, ControlMessage)
        )
        self._push(arrival, _MESSAGE, (dst, link.codec, data))

    # -- running ---------------------------------------------------------------------

    def run(self, until: float | None = None) -> None:
        """Process queued activity in time order (optionally up to ``until``)."""
        queue = self._queue
        while queue:
            if until is not None and queue[0][0] > until:
                return
            at, _, kind, payload = heapq.heappop(queue)
            self.now = max(self.now, at)
            if kind == _EVENT:
                node_id, event = payload
                node = self.nodes[node_id]
                started = _time.perf_counter()
                node.on_event(event, int(self.now), self)
                node.cpu_time += _time.perf_counter() - started
                node.events_handled += 1
            elif kind == _EVENT_BATCH:
                node_id, events = payload
                node = self.nodes[node_id]
                started = _time.perf_counter()
                node.on_events(events, int(self.now), self)
                node.cpu_time += _time.perf_counter() - started
                node.events_handled += len(events)
            elif kind == _MESSAGE:
                node_id, codec, data = payload
                node = self.nodes[node_id]
                started = _time.perf_counter()
                message = codec.decode(data)
                node.on_message(message, int(self.now), self)
                node.cpu_time += _time.perf_counter() - started
                node.messages_handled += 1
                self.delivered += 1
            elif kind == _TICK:
                node_id, tick_time = payload
                node = self.nodes[node_id]
                started = _time.perf_counter()
                node.on_tick(tick_time, self)
                node.cpu_time += _time.perf_counter() - started
            elif kind == _FINISH:
                node = self.nodes[payload]
                started = _time.perf_counter()
                node.on_finish(int(self.now), self)
                node.cpu_time += _time.perf_counter() - started

    # -- statistics --------------------------------------------------------------------

    def stats(self) -> NetworkStats:
        stats = NetworkStats()
        for (src, dst), link in self.links.items():
            if link.messages_sent == 0:
                continue
            stats.bytes_by_link[(src, dst)] = link.bytes_sent
            stats.messages_by_link[(src, dst)] = link.messages_sent
            stats.control_bytes += link.control_bytes
            role = self.nodes[src].role
            stats.bytes_from_role[role] = (
                stats.bytes_from_role.get(role, 0) + link.bytes_sent
            )
            stats.data_bytes_from_role[role] = (
                stats.data_bytes_from_role.get(role, 0)
                + link.bytes_sent
                - link.control_bytes
            )
        return stats

    def cpu_time_by_role(self) -> dict[NodeRole, float]:
        """Total handler wall-clock seconds per node role."""
        rollup: dict[NodeRole, float] = defaultdict(float)
        for node in self.nodes.values():
            rollup[node.role] += node.cpu_time
        return dict(rollup)
