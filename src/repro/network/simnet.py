"""A discrete-event simulated network (the message manager's substrate).

The paper runs on a 10-node 25G cluster and a Raspberry Pi 1G cluster;
here every node is a Python object and the network is simulated:

* messages are *really* serialized by a :class:`~repro.network.codec.Codec`
  and decoded on delivery, so byte counts are exact and serialization cost
  is paid;
* links have latency and an optional bandwidth cap; a saturated link
  queues messages (``busy_until``), which is how the Pi experiment's
  bandwidth ceiling appears (Fig 13);
* simulated time is milliseconds of event time, so event-time result
  latency falls out of ``emitted_at - window_end``;
* per-node wall-clock processing time is sampled around every handler
  call, giving the per-node-class latency/throughput breakdowns of
  Figures 7 and 12.

The paper assumes lossless links (Sec 5): partials arrive exactly once and
in order.  A seeded :class:`FaultPlan` drops that assumption — per-link
drop/duplicate/reorder probability, latency jitter, and node
crash/restart windows — and activates a reliable-delivery layer on every
link: data messages travel in :class:`~repro.network.messages.SequencedMessage`
frames with per-link ``(epoch, seq)`` numbers, receivers dedup and deliver
in order, and senders buffer unacked frames and retransmit on timeout with
exponential backoff.  Because per-link delivery order is then exactly the
lossless order, a cluster under any recoverable fault plan produces
byte-identical results (only ``emitted_at`` moves).  With no fault plan,
the wire format and accounting are unchanged — zero overhead.
"""

from __future__ import annotations

import heapq
import random
import time as _time
from collections import defaultdict
from dataclasses import dataclass, field
from typing import Iterable

from repro.core.errors import TopologyError
from repro.core.event import Event
from repro.core.types import NodeRole
from repro.network.codec import BinaryCodec, Codec
from repro.network.messages import (
    AckMessage,
    CheckpointMessage,
    ControlMessage,
    Message,
    PartialBatchMessage,
    ResyncMessage,
    SequencedMessage,
)
from repro.obs.tracing import NULL_RECORDER

__all__ = [
    "SimNode",
    "Link",
    "SimNetwork",
    "NetworkStats",
    "FaultPlan",
    "LinkFaults",
    "CrashWindow",
]

_EVENT = 0
_TICK = 1
_MESSAGE = 2
_FINISH = 3
_EVENT_BATCH = 4
_RETRY = 5
_RESTART = 6


@dataclass(frozen=True, slots=True)
class LinkFaults:
    """Fault probabilities for one directed link.

    Attributes:
        drop_rate: probability an in-flight copy is lost.
        duplicate_rate: probability the network injects a second copy.
        reorder_rate: probability a copy is held back by an extra delay of
            up to ``reorder_delay_ms`` (the explicit reordering knob;
            ``jitter_ms`` alone also reorders once it exceeds the
            inter-send spacing).
        reorder_delay_ms: maximum hold-back applied to reordered copies.
        jitter_ms: uniform extra latency applied to every delivered copy.
    """

    drop_rate: float = 0.0
    duplicate_rate: float = 0.0
    reorder_rate: float = 0.0
    reorder_delay_ms: float = 20.0
    jitter_ms: float = 0.0

    def __post_init__(self) -> None:
        for name in ("drop_rate", "duplicate_rate", "reorder_rate"):
            rate = getattr(self, name)
            if not 0.0 <= rate <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {rate}")


@dataclass(frozen=True, slots=True)
class CrashWindow:
    """Node ``node`` is down during ``[start, end)`` (simulated ms).

    Crash semantics are a network partition of an edge device that keeps
    buffering locally: the node's handlers still run (its sensor data is
    not invented away), but nothing it sends leaves the machine and
    everything addressed to it is dropped at the dead interface.  Reliable
    frames it sent stay buffered and are re-shipped after restart, so a
    crash shorter than the heartbeat eviction threshold is fully
    recoverable; a longer one triggers soft eviction and the heartbeat
    rejoin/resync path.

    ``end=None`` means the node never comes back — a permanent death; so
    does a finite ``end`` at or past the plan's sealed horizon (the
    end-of-stream boundary), since such a node can never rejoin before
    the run finishes.  Permanently dead senders stop burning retransmit
    timers (frames are abandoned as ``retransmit_exhausted``) and, for
    intermediates, trigger failover instead of waiting on a rejoin.

    ``lose_state=True`` escalates a restart from a partition to real
    process death: when the window closes the node's *state* is wiped and
    it recovers from its latest checkpoint (or from scratch) via
    :meth:`SimNode.on_restart`.
    """

    node: str
    start: int
    end: int | None = None
    lose_state: bool = False

    def __post_init__(self) -> None:
        if self.end is not None and self.end <= self.start:
            raise ValueError(
                f"crash window must have end > start, got [{self.start}, {self.end})"
            )


@dataclass(slots=True)
class FaultPlan:
    """A deterministic, seeded description of everything that goes wrong.

    Fault rolls use one :class:`random.Random` per directed link, seeded
    from ``(seed, src, dst)``, so a plan replays identically and links do
    not perturb each other's streams.  Setting a plan on a network (even
    an all-zero one) switches data traffic to the reliable channel;
    ``None`` keeps the lossless wire format byte-for-byte.
    """

    seed: int = 0
    drop_rate: float = 0.0
    duplicate_rate: float = 0.0
    reorder_rate: float = 0.0
    reorder_delay_ms: float = 20.0
    jitter_ms: float = 0.0
    crashes: tuple[CrashWindow, ...] = ()
    #: per-link overrides; unlisted links use the plan-wide rates
    link_overrides: dict[tuple[str, str], LinkFaults] = field(default_factory=dict)
    #: end-of-stream boundary set by the deployment (see :meth:`seal`);
    #: crash windows reaching it are treated as permanent deaths
    horizon: int | None = None

    def __post_init__(self) -> None:
        self.crashes = tuple(self.crashes)
        # Validate the plan-wide rates by building the default LinkFaults.
        self._default()

    def _default(self) -> LinkFaults:
        return LinkFaults(
            drop_rate=self.drop_rate,
            duplicate_rate=self.duplicate_rate,
            reorder_rate=self.reorder_rate,
            reorder_delay_ms=self.reorder_delay_ms,
            jitter_ms=self.jitter_ms,
        )

    def for_link(self, src: str, dst: str) -> LinkFaults:
        override = self.link_overrides.get((src, dst))
        return override if override is not None else self._default()

    def rng_for_link(self, src: str, dst: str) -> random.Random:
        return random.Random(f"{self.seed}|{src}->{dst}")

    def seal(self, horizon: int) -> None:
        """Fix the end-of-stream boundary the deployment will run to.

        A crash window whose ``end`` is ``None`` or reaches the horizon can
        never restart within the run: :meth:`permanent` reports it, retry
        timers give up on its frames instead of rescheduling past the end
        of the simulation, and parents fail its children over rather than
        waiting for a rejoin that cannot happen.
        """
        self.horizon = int(horizon)

    def crashed(self, node: str, at: float) -> bool:
        return any(
            w.node == node and w.start <= at and (w.end is None or at < w.end)
            for w in self.crashes
        )

    def crash_end(self, node: str, at: float) -> float:
        """End of the crash window covering ``at`` (``at`` if none does)."""
        for w in self.crashes:
            if w.node == node and w.start <= at and (w.end is None or at < w.end):
                return float("inf") if w.end is None else float(w.end)
        return at

    def permanent(self, node: str, at: float) -> bool:
        """Is ``node`` dead at ``at`` with no restart before the horizon?"""
        for w in self.crashes:
            if w.node == node and w.start <= at and (w.end is None or at < w.end):
                return w.end is None or (
                    self.horizon is not None and w.end >= self.horizon
                )
        return False


class _SendChannel:
    """Sender half of one directed reliable channel."""

    __slots__ = ("epoch", "next_seq", "unacked", "retries", "unacked_bytes",
                 "stalled_since")

    def __init__(self) -> None:
        self.epoch = 0
        self.next_seq = 0
        #: seq -> (encoded frame, billed-as-control)
        self.unacked: dict[int, tuple[bytes, bool]] = {}
        self.retries: dict[int, int] = {}
        #: occupancy of the unacked buffer — the credit accounting
        self.unacked_bytes = 0
        #: sim time the channel ran out of credit (``None`` = has credit)
        self.stalled_since: float | None = None

    def reset(self, epoch: int) -> None:
        self.epoch = epoch
        self.next_seq = 0
        self.unacked.clear()
        self.retries.clear()
        self.unacked_bytes = 0
        self.stalled_since = None

    def drop_frame(self, seq: int) -> None:
        """Forget one unacked frame, keeping occupancy accounting exact."""
        entry = self.unacked.pop(seq, None)
        if entry is not None:
            self.unacked_bytes -= len(entry[0])
        self.retries.pop(seq, None)


class _RecvChannel:
    """Receiver half: in-order delivery with dedup."""

    __slots__ = ("epoch", "next_deliver", "buffer")

    def __init__(self) -> None:
        self.epoch = 0
        self.next_deliver = 0
        self.buffer: dict[int, Message] = {}

    def reset(self, epoch: int) -> None:
        self.epoch = epoch
        self.next_deliver = 0
        self.buffer.clear()


class SimNode:
    """Base class for simulated nodes.

    Subclasses override the ``on_*`` handlers; each handler may call
    :meth:`SimNetwork.send` to emit messages.  ``cpu_time`` accumulates the
    wall-clock seconds spent inside this node's handlers.
    """

    def __init__(self, node_id: str, role: NodeRole) -> None:
        self.node_id = node_id
        self.role = role
        self.cpu_time = 0.0
        self.events_handled = 0
        self.messages_handled = 0

    def on_event(self, event: Event, now: int, net: "SimNetwork") -> None:
        """A stream event arrived at this (local) node."""

    def on_events(self, events: list[Event], now: int, net: "SimNetwork") -> None:
        """A batch of in-order stream events arrived (see
        :meth:`SimNetwork.inject_stream` with ``batch_ms``).  The default
        keeps per-event semantics; nodes with a batched ingestion path
        override this."""
        for event in events:
            self.on_event(event, now, net)

    def on_message(self, message: Message, now: int, net: "SimNetwork") -> None:
        """A message from another node was delivered."""

    def on_tick(self, now: int, net: "SimNetwork") -> None:
        """A scheduled watermark tick fired."""

    def on_finish(self, now: int, net: "SimNetwork") -> None:
        """The stream ended; flush all remaining state."""

    def on_restart(self, now: int, net: "SimNetwork") -> None:
        """The node's process died and restarted with empty state (a
        ``lose_state`` crash window closed); reload from the latest
        checkpoint, or rebuild from scratch when there is none."""


@dataclass(slots=True)
class Link:
    """A directed link with latency, optional bandwidth, and counters."""

    src: str
    dst: str
    latency_ms: float = 1.0
    #: bytes per simulated millisecond; ``None`` means unlimited.
    bandwidth_bytes_per_ms: float | None = None
    codec: Codec = field(default_factory=BinaryCodec)
    bytes_sent: int = 0
    control_bytes: int = 0
    messages_sent: int = 0
    busy_until: float = 0.0
    # -- fault-injection / reliability counters (all zero without a plan) --
    #: in-flight copies lost (fault drop, or a crashed endpoint)
    drops: int = 0
    #: extra copies injected by the network
    duplicates: int = 0
    #: bytes of duplicated *data* copies (control duplicates bill control)
    duplicate_data_bytes: int = 0
    #: timeout-triggered re-sends of unacked frames
    retransmits: int = 0
    retransmit_bytes: int = 0
    #: frames abandoned after ``max_retries`` (the link gave up)
    retransmit_exhausted: int = 0
    acks: int = 0
    ack_bytes: int = 0
    #: frames discarded by receive-side dedup (duplicate or stale epoch)
    dedup_dropped: int = 0
    #: times the send channel ran out of flow-control credit (DESIGN.md §12)
    credit_stalls: int = 0

    def transfer(self, size: int, now: float, *, control: bool = False) -> float:
        """Account for ``size`` bytes leaving at ``now``; return arrival time."""
        self.bytes_sent += size
        if control:
            self.control_bytes += size
        self.messages_sent += 1
        start = max(now, self.busy_until)
        duration = (
            size / self.bandwidth_bytes_per_ms
            if self.bandwidth_bytes_per_ms
            else 0.0
        )
        self.busy_until = start + duration
        return self.busy_until + self.latency_ms


@dataclass(slots=True)
class NetworkStats:
    """Rolled-up traffic statistics."""

    bytes_by_link: dict[tuple[str, str], int] = field(default_factory=dict)
    messages_by_link: dict[tuple[str, str], int] = field(default_factory=dict)
    bytes_from_role: dict[NodeRole, int] = field(default_factory=dict)
    #: like ``bytes_from_role`` but excluding control traffic
    data_bytes_from_role: dict[NodeRole, int] = field(default_factory=dict)
    control_bytes: int = 0
    # -- reliability counters, rolled up over all links (zero without a
    #    fault plan: the default deployment pays nothing) --
    drops: int = 0
    duplicates: int = 0
    duplicate_data_bytes: int = 0
    retransmits: int = 0
    retransmit_bytes: int = 0
    retransmit_exhausted: int = 0
    acks: int = 0
    ack_bytes: int = 0
    dedup_dropped: int = 0
    # -- overload-control counters (zero unless credits/caps are on) --
    credit_stalls: int = 0
    #: serialized size of slice records shed from bounded staging buffers
    bytes_shed: int = 0
    records_shed: int = 0
    #: high-water occupancy of any single reliable send channel — with
    #: credits on this stays under the credit window; without, a slow
    #: link lets it grow with the backlog (the overload bench plots both)
    peak_unacked_bytes: int = 0
    peak_unacked_frames: int = 0

    @property
    def total_bytes(self) -> int:
        """All bytes on all links, control traffic included."""
        return sum(self.bytes_by_link.values())

    @property
    def data_bytes(self) -> int:
        """Bytes excluding control messages (queries, topology, heartbeats,
        progress, acks, resyncs) — the steady-state traffic Figure 11
        reports.  Under faults this still includes retransmitted and
        duplicated data copies: they crossed the wire; see
        :attr:`goodput_data_bytes` for the once-only payload."""
        return self.total_bytes - self.control_bytes

    @property
    def goodput_data_bytes(self) -> int:
        """Data bytes minus retransmitted and network-duplicated copies —
        what a lossless network would have carried."""
        return self.data_bytes - self.retransmit_bytes - self.duplicate_data_bytes

    @property
    def total_messages(self) -> int:
        return sum(self.messages_by_link.values())


class SimNetwork:
    """The discrete-event simulator driving nodes, links, and streams."""

    def __init__(self, *, default_codec: Codec | None = None,
                 default_latency_ms: float = 1.0,
                 default_bandwidth_bytes_per_ms: float | None = None,
                 fault_plan: FaultPlan | None = None,
                 retransmit_timeout_ms: float = 100.0,
                 max_retries: int = 8,
                 channel_credit_bytes: int | None = None,
                 channel_credit_frames: int | None = None,
                 credit_resume_fraction: float = 0.8,
                 recorder=None) -> None:
        self.recorder = recorder if recorder is not None else NULL_RECORDER
        self.nodes: dict[str, SimNode] = {}
        self.links: dict[tuple[str, str], Link] = {}
        self.default_codec = default_codec if default_codec is not None else BinaryCodec()
        self.default_latency_ms = default_latency_ms
        self.default_bandwidth = default_bandwidth_bytes_per_ms
        self.fault_plan = fault_plan
        self.retransmit_timeout = retransmit_timeout_ms
        self.max_retries = max_retries
        # -- credit-based flow control (DESIGN.md §12); ``None`` = off --
        self.channel_credit_bytes = channel_credit_bytes
        self.channel_credit_frames = channel_credit_frames
        self.credit_resume_fraction = credit_resume_fraction
        #: high-water marks over every send channel's unacked buffer
        self.peak_unacked_bytes = 0
        self.peak_unacked_frames = 0
        #: deterministic shedding totals reported by nodes (note_shed)
        self.bytes_shed = 0
        self.records_shed = 0
        self._send_channels: dict[tuple[str, str], _SendChannel] = {}
        self._recv_channels: dict[tuple[str, str], _RecvChannel] = {}
        self._rngs: dict[tuple[str, str], random.Random] = {}
        #: hard-removed nodes whose in-flight traffic must not lazily
        #: re-create channel state when it lands after the removal
        self._forgotten: set[str] = set()
        self._queue: list[tuple[float, int, int, object]] = []
        self._seq = 0
        self.now: float = 0.0
        self.delivered = 0

    # -- construction ------------------------------------------------------------

    def add_node(self, node: SimNode) -> None:
        if node.node_id in self.nodes:
            raise TopologyError(f"duplicate node id: {node.node_id!r}")
        self.nodes[node.node_id] = node
        self._forgotten.discard(node.node_id)

    def connect(
        self,
        src: str,
        dst: str,
        *,
        latency_ms: float | None = None,
        bandwidth_bytes_per_ms: float | None = None,
        codec: Codec | None = None,
        bidirectional: bool = True,
    ) -> None:
        """Create a link (both directions by default) between two nodes."""
        for a, b in ((src, dst), (dst, src)) if bidirectional else ((src, dst),):
            if a not in self.nodes or b not in self.nodes:
                raise TopologyError(f"cannot link unknown nodes {a!r} -> {b!r}")
            self.links[(a, b)] = Link(
                src=a,
                dst=b,
                latency_ms=(
                    latency_ms if latency_ms is not None else self.default_latency_ms
                ),
                bandwidth_bytes_per_ms=(
                    bandwidth_bytes_per_ms
                    if bandwidth_bytes_per_ms is not None
                    else self.default_bandwidth
                ),
                codec=codec if codec is not None else self.default_codec,
            )

    # -- scheduling ----------------------------------------------------------------

    def _push(self, at: float, kind: int, payload: object) -> None:
        self._seq += 1
        heapq.heappush(self._queue, (at, self._seq, kind, payload))

    def inject_stream(
        self, node_id: str, events: Iterable[Event], *, batch_ms: int | None = None
    ) -> int:
        """Schedule a local node's events at their own timestamps.

        With ``batch_ms`` set, consecutive events are grouped into
        per-tick batches delivered through :meth:`SimNode.on_events` in a
        single handler call: a batch starts at some event time ``t`` and
        extends through events up to the next ``batch_ms`` grid point
        ``>= t`` — the cadence watermark ticks fire on — so no tick (or
        later-scheduled message) can fall between a batch's first and last
        event.  The batch is scheduled at its first event's time, exactly
        where per-event scheduling would deliver that event.

        Returns the last event time (or 0 for an empty stream).
        """
        if node_id not in self.nodes:
            raise TopologyError(f"unknown node: {node_id!r}")
        last = 0
        if batch_ms is None:
            for event in events:
                self._push(float(event.time), _EVENT, (node_id, event))
                last = event.time
            return last
        if batch_ms <= 0:
            raise TopologyError(f"batch_ms must be positive, got {batch_ms}")
        batch: list[Event] = []
        boundary = 0
        for event in events:
            if batch and event.time > boundary:
                self._push(float(batch[0].time), _EVENT_BATCH, (node_id, batch))
                batch = []
            if not batch:
                # Smallest grid point >= the batch's first event: events at
                # exactly a tick time still precede that tick (they were
                # scheduled first), matching per-event pop order.
                boundary = ((event.time + batch_ms - 1) // batch_ms) * batch_ms
            batch.append(event)
            last = event.time
        if batch:
            self._push(float(batch[0].time), _EVENT_BATCH, (node_id, batch))
        return last

    def schedule_ticks(self, node_id: str, start: int, end: int, interval: int) -> None:
        """Schedule watermark ticks for a node at ``start + k*interval <= end``."""
        t = start + interval
        while t <= end:
            self._push(float(t), _TICK, (node_id, t))
            t += interval

    def schedule_finish(self, node_id: str, at: float) -> None:
        self._push(at, _FINISH, node_id)

    def schedule_restart(self, node_id: str, at: float) -> None:
        """Schedule a state-loss restart: :meth:`SimNode.on_restart` fires
        at ``at`` (the close of a ``lose_state`` crash window).  Scheduled
        up front by the deployment, so at equal timestamps the restart
        precedes message deliveries and retry timers pushed during the
        run."""
        self._push(at, _RESTART, node_id)

    def send(self, src: str, dst: str, message: Message) -> None:
        """Serialize, account, and schedule delivery of ``message``.

        Without a fault plan this is the lossless wire, byte-for-byte as
        before.  With one, unsequenced traffic (control, acks) is encoded
        and transmitted through the fault rolls fire-and-forget, while
        everything else rides the reliable channel: wrapped in a
        :class:`SequencedMessage`, buffered until acked, and retransmitted
        on timeout.  Resync messages count as control bytes but are
        sequenced — a lost resync must still arrive.
        """
        link = self.links.get((src, dst))
        if link is None:
            raise TopologyError(f"no link {src!r} -> {dst!r}")
        plan = self.fault_plan
        if plan is None:
            data = link.codec.encode(message)
            arrival = link.transfer(
                len(data), self.now, control=isinstance(message, ControlMessage)
            )
            self._push(arrival, _MESSAGE, (dst, link.codec, data, link))
            return
        control = isinstance(
            message, (ControlMessage, AckMessage, ResyncMessage, CheckpointMessage)
        )
        if isinstance(message, (ControlMessage, AckMessage)):
            if plan.crashed(src, self.now):
                link.drops += 1
                return
            self._transmit(link, link.codec.encode(message), control=control)
            return
        channel = self._send_channel(src, dst)
        seq = channel.next_seq
        channel.next_seq += 1
        data = link.codec.encode(
            SequencedMessage(epoch=channel.epoch, seq=seq, inner=message)
        )
        channel.unacked[seq] = (data, control)
        channel.unacked_bytes += len(data)
        if channel.unacked_bytes > self.peak_unacked_bytes:
            self.peak_unacked_bytes = channel.unacked_bytes
        if len(channel.unacked) > self.peak_unacked_frames:
            self.peak_unacked_frames = len(channel.unacked)
        self._update_stall(src, dst, channel)
        if (
            self.recorder.enabled
            and isinstance(message, PartialBatchMessage)
            and message.records
        ):
            self.recorder.record(
                "net.send",
                self.now,
                group=message.group_id,
                link=f"{src}->{dst}",
                seq=seq,
                epoch=channel.epoch,
                first_seq=message.first_slice_seq,
                records=len(message.records),
                start=message.records[0].start,
                end=message.records[-1].end,
            )
        if not plan.crashed(src, self.now):
            self._transmit(link, data, control=control)
        self._push(
            self.now + self.retransmit_timeout,
            _RETRY,
            (src, dst, channel.epoch, seq),
        )

    # -- reliable channel plumbing --------------------------------------------------

    def _send_channel(self, src: str, dst: str) -> _SendChannel:
        channel = self._send_channels.get((src, dst))
        if channel is None:
            channel = self._send_channels[(src, dst)] = _SendChannel()
        return channel

    def _recv_channel(self, src: str, dst: str) -> _RecvChannel:
        channel = self._recv_channels.get((src, dst))
        if channel is None:
            channel = self._recv_channels[(src, dst)] = _RecvChannel()
        return channel

    def _rng(self, src: str, dst: str) -> random.Random:
        rng = self._rngs.get((src, dst))
        if rng is None:
            rng = self._rngs[(src, dst)] = self.fault_plan.rng_for_link(src, dst)
        return rng

    def _update_stall(self, src: str, dst: str, channel: _SendChannel) -> None:
        """Re-evaluate a channel's credit state after occupancy changed.

        A channel stalls when its unacked buffer reaches either credit cap
        and resumes, with hysteresis, once occupancy drops to
        ``credit_resume_fraction`` of the cap — acks are the credit grants
        (the receiver piggybacks them on every delivery), so no extra wire
        traffic is involved.
        """
        cap_bytes = self.channel_credit_bytes
        cap_frames = self.channel_credit_frames
        if cap_bytes is None and cap_frames is None:
            return
        if channel.stalled_since is None:
            exhausted = (
                cap_bytes is not None and channel.unacked_bytes >= cap_bytes
            ) or (
                cap_frames is not None and len(channel.unacked) >= cap_frames
            )
            if exhausted:
                channel.stalled_since = self.now
                link = self.links.get((src, dst))
                if link is not None:
                    link.credit_stalls += 1
                if self.recorder.enabled:
                    self.recorder.record(
                        "credit.stall",
                        self.now,
                        node=src,
                        link=f"{src}->{dst}",
                        unacked_bytes=channel.unacked_bytes,
                        unacked_frames=len(channel.unacked),
                    )
            return
        resume = self.credit_resume_fraction
        below_bytes = (
            cap_bytes is None or channel.unacked_bytes <= cap_bytes * resume
        )
        below_frames = (
            cap_frames is None or len(channel.unacked) <= cap_frames * resume
        )
        if below_bytes and below_frames:
            channel.stalled_since = None

    def channel_stalled(self, src: str, dst: str) -> bool:
        """Whether the ``src -> dst`` reliable channel is out of credit."""
        channel = self._send_channels.get((src, dst))
        return channel is not None and channel.stalled_since is not None

    def channel_stalled_since(self, src: str, dst: str) -> float | None:
        """Sim time the channel stalled (``None`` when it has credit)."""
        channel = self._send_channels.get((src, dst))
        return channel.stalled_since if channel is not None else None

    def channel_occupancy(self, src: str, dst: str) -> tuple[int, int]:
        """Current ``(unacked_bytes, unacked_frames)`` of a send channel."""
        channel = self._send_channels.get((src, dst))
        if channel is None:
            return (0, 0)
        return (channel.unacked_bytes, len(channel.unacked))

    def note_shed(self, node_id: str, group: int, records) -> int:
        """Account slice records shed from a node's bounded staging buffer.

        Returns the serialized size the shed records would have cost on the
        wire (measured with the default codec — the shedding path is cold,
        so the extra encode is irrelevant).  Also emits the ``buffer.shed``
        trace event carrying the shed coverage span.
        """
        records = list(records)
        if not records:
            return 0
        probe = PartialBatchMessage(
            sender=node_id,
            group_id=group,
            first_slice_seq=0,
            covered_to=0,
            records=records,
        )
        nbytes = len(self.default_codec.encode(probe))
        self.records_shed += len(records)
        self.bytes_shed += nbytes
        if self.recorder.enabled:
            self.recorder.record(
                "buffer.shed",
                self.now,
                node=node_id,
                group=group,
                records=len(records),
                bytes=nbytes,
                start=records[0].start,
                end=records[-1].end,
            )
        return nbytes

    def forget_node_channels(self, node_id: str) -> None:
        """Free every reliable-channel (and fault-rng) entry touching
        ``node_id`` — called on hard removal so no per-child transport
        state outlives the node."""
        for table in (self._send_channels, self._recv_channels, self._rngs):
            for key in [k for k in table if node_id in k]:
                del table[key]
        # In-flight frames involving the node still sit in the event
        # queue; mark it so their late arrival cannot lazily re-create
        # the state freed above (re-registering the id clears the mark).
        self._forgotten.add(node_id)

    def reset_channel(self, src: str, dst: str, epoch: int) -> None:
        """Restart the ``src -> dst`` reliable channel at ``epoch``.

        Called on resync: the sender abandons its unacked backlog (those
        slices belong to windows the parent already closed without it) and
        renumbers from zero; stale-epoch frames still in flight are
        discarded by the receiver.
        """
        self._send_channel(src, dst).reset(epoch)

    def abandon_channel(self, src: str, dst: str) -> None:
        """Drop the ``src -> dst`` send backlog without renumbering.

        Used at failover, when ``dst`` is permanently dead and ``src`` has
        been adopted by another parent: the unacked frames can never be
        acked, and their retained payload is re-shipped to the adopter, so
        pending retry timers should find nothing to resend.
        """
        channel = self._send_channels.get((src, dst))
        if channel is not None:
            channel.unacked.clear()
            channel.retries.clear()
            channel.unacked_bytes = 0
            channel.stalled_since = None

    def expect_resync(self, src: str, dst: str) -> int:
        """Receiver-side half of a channel restart; returns the new epoch.

        The parent calls this when it re-admits an evicted child, so that
        pre-eviction frames the child is still retrying are rejected as
        stale instead of resurrecting the old slice sequence.
        """
        channel = self._recv_channel(src, dst)
        channel.reset(channel.epoch + 1)
        return channel.epoch

    def _transmit(self, link: Link, data: bytes, *, control: bool) -> None:
        """Put one message's copies on a link through the fault rolls."""
        plan = self.fault_plan
        faults = plan.for_link(link.src, link.dst)
        rng = self._rng(link.src, link.dst)
        copies = 1
        if faults.duplicate_rate and rng.random() < faults.duplicate_rate:
            copies = 2
        for copy in range(copies):
            arrival = link.transfer(len(data), self.now, control=control)
            if copy:
                link.duplicates += 1
                if not control:
                    link.duplicate_data_bytes += len(data)
            if faults.drop_rate and rng.random() < faults.drop_rate:
                link.drops += 1
                continue
            delay = 0.0
            if faults.jitter_ms:
                delay += rng.uniform(0.0, faults.jitter_ms)
            if faults.reorder_rate and rng.random() < faults.reorder_rate:
                delay += rng.uniform(0.0, faults.reorder_delay_ms)
            self._push(arrival + delay, _MESSAGE, (link.dst, link.codec, data, link))

    def _handle_retry(self, at: float, payload: tuple[str, str, int, int]) -> None:
        src, dst, epoch, seq = payload
        channel = self._send_channels.get((src, dst))
        if channel is None or channel.epoch != epoch or seq not in channel.unacked:
            return  # acked (or resynced away) meanwhile: no clock trace
        self.now = max(self.now, at)
        plan = self.fault_plan
        link = self.links[(src, dst)]
        data, control = channel.unacked[seq]
        if plan.crashed(src, self.now):
            if plan.permanent(src, self.now):
                # The sender never restarts within this run: abandon the
                # frame now rather than parking a timer past the horizon.
                channel.drop_frame(seq)
                self._update_stall(src, dst, channel)
                link.retransmit_exhausted += 1
                return
            # The interface is down; retry after restart without spending
            # the retry budget on a frame that never reached the wire.
            retry_at = max(plan.crash_end(src, self.now), at + self.retransmit_timeout)
            self._push(retry_at, _RETRY, (src, dst, epoch, seq))
            return
        attempt = channel.retries.get(seq, 0) + 1
        if attempt > self.max_retries:
            channel.drop_frame(seq)
            self._update_stall(src, dst, channel)
            link.retransmit_exhausted += 1
            return
        channel.retries[seq] = attempt
        link.retransmits += 1
        if not control:
            link.retransmit_bytes += len(data)
        if self.recorder.enabled:
            self.recorder.record(
                "net.retransmit",
                self.now,
                link=f"{src}->{dst}",
                seq=seq,
                attempt=attempt,
            )
        self._transmit(link, data, control=control)
        self._push(
            at + self.retransmit_timeout * (2 ** attempt),
            _RETRY,
            (src, dst, epoch, seq),
        )

    def _handle_ack(self, receiver: str, ack: AckMessage) -> None:
        """Transport-level ack processing at the original sender."""
        channel = self._send_channels.get((receiver, ack.sender))
        if channel is None or channel.epoch != ack.epoch:
            return
        if self.recorder.enabled:
            # The data flowed receiver -> ack.sender; the ack rides the
            # reverse link back to the channel we are clearing here.
            self.recorder.record(
                "net.ack",
                self.now,
                link=f"{receiver}->{ack.sender}",
                epoch=ack.epoch,
                cumulative=ack.cumulative,
            )
        for seq in [s for s in channel.unacked if s < ack.cumulative]:
            channel.drop_frame(seq)
        for seq in ack.selective:
            if seq in channel.unacked:
                channel.drop_frame(seq)
        self._update_stall(receiver, ack.sender, channel)

    def _record_transit(
        self, link: Link, message: PartialBatchMessage, at: int
    ) -> None:
        """Trace a partial batch finishing its hop, just before delivery.

        Recorded ahead of ``node.on_message`` so a window's ``net.transit``
        always sequences before the ``merge.release`` / ``root.consume`` it
        enables — the span builder relies on that ordering.
        """
        self.recorder.record(
            "net.transit",
            at,
            group=message.group_id,
            link=f"{link.src}->{link.dst}",
            first_seq=message.first_slice_seq,
            records=len(message.records),
            start=message.records[0].start,
            end=message.records[-1].end,
        )

    def _deliver_frame(
        self, node: "SimNode", link: Link, frame: SequencedMessage
    ) -> None:
        """Dedup, re-order, deliver in sequence, and ack one data frame."""
        channel = self._recv_channel(link.src, link.dst)
        if frame.epoch > channel.epoch:
            channel.reset(frame.epoch)
        if frame.epoch < channel.epoch:
            link.dedup_dropped += 1
        elif frame.seq < channel.next_deliver or frame.seq in channel.buffer:
            link.dedup_dropped += 1
        else:
            channel.buffer[frame.seq] = frame.inner
        now = int(self.now)
        while channel.next_deliver in channel.buffer:
            inner = channel.buffer.pop(channel.next_deliver)
            channel.next_deliver += 1
            if (
                self.recorder.enabled
                and isinstance(inner, PartialBatchMessage)
                and inner.records
            ):
                self._record_transit(link, inner, now)
            node.on_message(inner, now, self)
            node.messages_handled += 1
            self.delivered += 1
        reverse = self.links.get((link.dst, link.src))
        if reverse is None:
            return  # no ack path: the sender will retry until exhausted
        ack = AckMessage(
            sender=link.dst,
            epoch=channel.epoch,
            cumulative=channel.next_deliver,
            selective=sorted(channel.buffer),
        )
        data = reverse.codec.encode(ack)
        reverse.acks += 1
        reverse.ack_bytes += len(data)
        self._transmit(reverse, data, control=True)

    # -- running ---------------------------------------------------------------------

    def run(self, until: float | None = None) -> None:
        """Process queued activity in time order (optionally up to ``until``)."""
        queue = self._queue
        while queue:
            if until is not None and queue[0][0] > until:
                return
            at, _, kind, payload = heapq.heappop(queue)
            if kind == _RETRY:
                # _handle_retry advances the clock only when it acts, so
                # timers for long-acked frames leave no trace.
                self._handle_retry(at, payload)
                continue
            self.now = max(self.now, at)
            if kind == _EVENT:
                node_id, event = payload
                node = self.nodes[node_id]
                started = _time.perf_counter()
                node.on_event(event, int(self.now), self)
                node.cpu_time += _time.perf_counter() - started
                node.events_handled += 1
            elif kind == _EVENT_BATCH:
                node_id, events = payload
                node = self.nodes[node_id]
                started = _time.perf_counter()
                node.on_events(events, int(self.now), self)
                node.cpu_time += _time.perf_counter() - started
                node.events_handled += len(events)
            elif kind == _MESSAGE:
                node_id, codec, data, link = payload
                if self.fault_plan is not None and self.fault_plan.crashed(
                    node_id, self.now
                ):
                    link.drops += 1  # dead interface: nothing gets in
                    continue
                if link.src in self._forgotten or link.dst in self._forgotten:
                    # A hard-removed peer: late frames (and the acks they
                    # would trigger) fall on the floor instead of lazily
                    # resurrecting freed channel state.
                    link.drops += 1
                    continue
                node = self.nodes[node_id]
                started = _time.perf_counter()
                message = codec.decode(data)
                if isinstance(message, AckMessage):
                    # Transport housekeeping at the sender; no node handler
                    # runs and no cpu time is billed to the node.
                    self._handle_ack(node_id, message)
                elif isinstance(message, SequencedMessage):
                    self._deliver_frame(node, link, message)
                    node.cpu_time += _time.perf_counter() - started
                else:
                    if (
                        self.recorder.enabled
                        and isinstance(message, PartialBatchMessage)
                        and message.records
                    ):
                        self._record_transit(link, message, int(self.now))
                    node.on_message(message, int(self.now), self)
                    node.cpu_time += _time.perf_counter() - started
                    node.messages_handled += 1
                    self.delivered += 1
            elif kind == _TICK:
                node_id, tick_time = payload
                node = self.nodes[node_id]
                started = _time.perf_counter()
                node.on_tick(tick_time, self)
                node.cpu_time += _time.perf_counter() - started
            elif kind == _RESTART:
                node = self.nodes.get(payload)
                if node is None:
                    continue  # removed (e.g. failed over) before restarting
                started = _time.perf_counter()
                node.on_restart(int(self.now), self)
                node.cpu_time += _time.perf_counter() - started
            elif kind == _FINISH:
                node = self.nodes[payload]
                started = _time.perf_counter()
                node.on_finish(int(self.now), self)
                node.cpu_time += _time.perf_counter() - started

    # -- statistics --------------------------------------------------------------------

    def stats(self) -> NetworkStats:
        stats = NetworkStats()
        for (src, dst), link in self.links.items():
            # Reliability counters aggregate before the idle-link skip: a
            # crashed sender's dropped control messages bill no bytes.
            stats.drops += link.drops
            stats.duplicates += link.duplicates
            stats.duplicate_data_bytes += link.duplicate_data_bytes
            stats.retransmits += link.retransmits
            stats.retransmit_bytes += link.retransmit_bytes
            stats.retransmit_exhausted += link.retransmit_exhausted
            stats.acks += link.acks
            stats.ack_bytes += link.ack_bytes
            stats.dedup_dropped += link.dedup_dropped
            stats.credit_stalls += link.credit_stalls
            if link.messages_sent == 0:
                continue
            stats.bytes_by_link[(src, dst)] = link.bytes_sent
            stats.messages_by_link[(src, dst)] = link.messages_sent
            stats.control_bytes += link.control_bytes
            role = self.nodes[src].role
            stats.bytes_from_role[role] = (
                stats.bytes_from_role.get(role, 0) + link.bytes_sent
            )
            stats.data_bytes_from_role[role] = (
                stats.data_bytes_from_role.get(role, 0)
                + link.bytes_sent
                - link.control_bytes
            )
        # Shedding happens before serialization, so its totals live on the
        # network (reported by nodes via note_shed), not on any link.
        stats.bytes_shed = self.bytes_shed
        stats.records_shed = self.records_shed
        stats.peak_unacked_bytes = self.peak_unacked_bytes
        stats.peak_unacked_frames = self.peak_unacked_frames
        return stats

    def cpu_time_by_role(self) -> dict[NodeRole, float]:
        """Total handler wall-clock seconds per node role."""
        rollup: dict[NodeRole, float] = defaultdict(float)
        for node in self.nodes.values():
            rollup[node.role] += node.cpu_time
        return dict(rollup)
