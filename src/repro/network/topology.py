"""Decentralized network topologies (Sec 2.4).

A topology is a tree: one root, any number of intermediate layers, and
local nodes at the leaves where data streams arrive.  Builders cover the
shapes used in the evaluation:

* :func:`star` — locals connect directly to the root (minimal topology).
* :func:`three_tier` — locals → intermediates → root (the scalability
  experiments use one intermediate; Fig 7a).
* :func:`chain` — ``hops`` intermediate layers between each local and the
  root (the "complicated topology" of Sec 6.4.1).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.errors import TopologyError
from repro.core.types import NodeRole

__all__ = ["Topology", "star", "three_tier", "chain"]


@dataclass(slots=True)
class Topology:
    """A validated tree of node ids with roles."""

    root: str
    parents: dict[str, str] = field(default_factory=dict)  # child -> parent
    roles: dict[str, NodeRole] = field(default_factory=dict)

    def __post_init__(self) -> None:
        self.roles.setdefault(self.root, NodeRole.ROOT)
        self.validate()

    # -- structure ---------------------------------------------------------------

    def validate(self) -> None:
        if self.root in self.parents:
            raise TopologyError("the root node cannot have a parent")
        for child, parent in self.parents.items():
            if parent != self.root and parent not in self.parents:
                raise TopologyError(f"parent {parent!r} of {child!r} is unknown")
        for node in self.parents:
            seen = {node}
            cursor = node
            while cursor != self.root:
                cursor = self.parents[cursor]
                if cursor in seen:
                    raise TopologyError(f"cycle through {cursor!r}")
                seen.add(cursor)
        for node, role in self.roles.items():
            if node != self.root and node not in self.parents:
                raise TopologyError(f"node {node!r} has a role but no parent")
            if role is NodeRole.ROOT and node != self.root:
                raise TopologyError(f"{node!r} claims the root role")

    def children(self, node: str) -> list[str]:
        return sorted(
            child for child, parent in self.parents.items() if parent == node
        )

    def nodes(self) -> list[str]:
        return [self.root, *sorted(self.parents)]

    def locals_(self) -> list[str]:
        return [n for n in self.nodes() if self.roles.get(n) is NodeRole.LOCAL]

    def intermediates(self) -> list[str]:
        return [
            n for n in self.nodes() if self.roles.get(n) is NodeRole.INTERMEDIATE
        ]

    def role(self, node: str) -> NodeRole:
        try:
            return self.roles[node]
        except KeyError:
            raise TopologyError(f"unknown node: {node!r}") from None

    def parent(self, node: str) -> str | None:
        if node == self.root:
            return None
        try:
            return self.parents[node]
        except KeyError:
            raise TopologyError(f"unknown node: {node!r}") from None

    def hops_to_root(self, node: str) -> int:
        hops = 0
        cursor = node
        while cursor != self.root:
            cursor = self.parents[cursor]
            hops += 1
        return hops

    def depth_order(self) -> list[str]:
        """Nodes sorted deepest-first (locals before their ancestors)."""
        return sorted(self.nodes(), key=self.hops_to_root, reverse=True)

    # -- runtime membership (Sec 3.2) ----------------------------------------------

    def add_node(self, node: str, parent: str, role: NodeRole) -> None:
        if node in self.parents or node == self.root:
            raise TopologyError(f"node {node!r} already exists")
        if parent != self.root and parent not in self.parents:
            raise TopologyError(f"unknown parent: {parent!r}")
        if role is NodeRole.ROOT:
            raise TopologyError("cannot add a second root")
        self.parents[node] = parent
        self.roles[node] = role

    def remove_node(self, node: str) -> None:
        """Remove a node; children of a removed intermediate reattach to
        the removed node's parent."""
        if node == self.root:
            raise TopologyError("cannot remove the root node")
        if node not in self.parents:
            raise TopologyError(f"unknown node: {node!r}")
        parent = self.parents.pop(node)
        self.roles.pop(node, None)
        for child, child_parent in list(self.parents.items()):
            if child_parent == node:
                self.parents[child] = parent

    def fail_over(self, dead: str) -> tuple[str, list[str]]:
        """Remove a permanently dead intermediate; children move to its
        parent.

        Returns ``(adoptive_parent, orphans)``.  The orphans are adopted
        by the dead node's *parent* (not a sibling): the parent's merger
        already covers exactly what the dead child forwarded, so re-shipped
        suffixes land on the same coverage floor and window emission order
        is preserved; a sibling adoption would splice two coverage frontiers
        and reorder releases.
        """
        if dead == self.root:
            raise TopologyError("cannot fail over the root node")
        if self.roles.get(dead) is not NodeRole.INTERMEDIATE:
            raise TopologyError(f"can only fail over intermediates, not {dead!r}")
        target = self.parents[dead]
        orphans = self.children(dead)
        self.remove_node(dead)
        return target, orphans

    def to_payload(self) -> dict:
        """JSON-compatible form for topology control messages."""
        return {
            "root": self.root,
            "parents": dict(self.parents),
            "roles": {node: role.value for node, role in self.roles.items()},
        }

    @classmethod
    def from_payload(cls, payload: dict) -> "Topology":
        return cls(
            root=payload["root"],
            parents=dict(payload["parents"]),
            roles={n: NodeRole(r) for n, r in payload["roles"].items()},
        )


def star(n_locals: int, *, root: str = "root") -> Topology:
    """``n_locals`` local nodes connected directly to the root."""
    if n_locals < 1:
        raise TopologyError("need at least one local node")
    parents = {f"local-{i}": root for i in range(n_locals)}
    roles = {f"local-{i}": NodeRole.LOCAL for i in range(n_locals)}
    roles[root] = NodeRole.ROOT
    return Topology(root=root, parents=parents, roles=roles)


def three_tier(n_locals: int, n_intermediates: int = 1, *, root: str = "root") -> Topology:
    """Locals spread round-robin over intermediates, intermediates on root."""
    if n_locals < 1 or n_intermediates < 1:
        raise TopologyError("need at least one local and one intermediate")
    parents: dict[str, str] = {}
    roles: dict[str, NodeRole] = {root: NodeRole.ROOT}
    for j in range(n_intermediates):
        parents[f"mid-{j}"] = root
        roles[f"mid-{j}"] = NodeRole.INTERMEDIATE
    for i in range(n_locals):
        parents[f"local-{i}"] = f"mid-{i % n_intermediates}"
        roles[f"local-{i}"] = NodeRole.LOCAL
    return Topology(root=root, parents=parents, roles=roles)


def chain(n_locals: int, hops: int, *, root: str = "root") -> Topology:
    """``hops`` intermediate layers between every local and the root."""
    if hops < 0:
        raise TopologyError("hops must be non-negative")
    if hops == 0:
        return star(n_locals, root=root)
    parents: dict[str, str] = {}
    roles: dict[str, NodeRole] = {root: NodeRole.ROOT}
    previous = root
    for level in range(hops):
        name = f"mid-{level}"
        parents[name] = previous
        roles[name] = NodeRole.INTERMEDIATE
        previous = name
    for i in range(n_locals):
        parents[f"local-{i}"] = previous
        roles[f"local-{i}"] = NodeRole.LOCAL
    return Topology(root=root, parents=parents, roles=roles)
