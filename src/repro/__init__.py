"""Reproduction of *Desis: Efficient Window Aggregation in Decentralized
Networks* (EDBT 2023).

This module is the stable public surface — user code imports from
``repro``, never from ``repro.core.*`` internals::

    from repro import DesisSession, EngineConfig

    session = DesisSession(config=EngineConfig(shards=1))
    session.submit("SELECT AVG(value) FROM stream WINDOW TUMBLING 5s")
    for event in my_stream:
        session.process(event)
    for result in session.close():
        print(result)

``EngineConfig(shards=4)`` (or the ``DesisSession(shards=4)`` sugar)
runs the multi-core sharded backend (DESIGN.md §13).  Decentralized
aggregation lives in :mod:`repro.cluster` (``DesisCluster`` /
``ClusterConfig`` are re-exported here); the paper's baselines in
:mod:`repro.baselines`; workload generators in :mod:`repro.datagen`;
experiment harnesses in :mod:`repro.harness`.
"""

from repro.core import (
    AggFunction,
    AggregationEngine,
    EngineConfig,
    EngineStats,
    Event,
    FunctionSpec,
    Query,
    QueryPlan,
    ReproError,
    ResultSink,
    Selection,
    SharingPolicy,
    Watermark,
    WindowMeasure,
    WindowResult,
    WindowSpec,
    WindowType,
    analyze,
)
from repro.cluster import ClusterConfig, DesisCluster
from repro.interface import DesisSession, parse_query

__version__ = "1.0.0"

__all__ = [
    "AggFunction",
    "AggregationEngine",
    "ClusterConfig",
    "DesisCluster",
    "DesisSession",
    "EngineConfig",
    "EngineStats",
    "Event",
    "FunctionSpec",
    "Query",
    "QueryPlan",
    "ReproError",
    "ResultSink",
    "Selection",
    "SharingPolicy",
    "Watermark",
    "WindowMeasure",
    "WindowResult",
    "WindowSpec",
    "WindowType",
    "analyze",
    "parse_query",
    "__version__",
]
