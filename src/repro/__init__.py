"""Reproduction of *Desis: Efficient Window Aggregation in Decentralized
Networks* (EDBT 2023).

Public API quick tour::

    from repro import (
        AggregationEngine, Query, WindowSpec, AggFunction, Selection, Event,
    )

    queries = [
        Query.of("q1", WindowSpec.tumbling(1_000), AggFunction.AVERAGE),
        Query.of("q2", WindowSpec.sliding(2_000, 500), AggFunction.MAX),
        Query.of("q3", WindowSpec.session(gap=300), AggFunction.MEDIAN),
    ]
    engine = AggregationEngine(queries)
    for event in my_stream:
        engine.process(event)
    for result in engine.close():
        print(result)

Decentralized aggregation lives in :mod:`repro.cluster`; the paper's
baselines in :mod:`repro.baselines`; workload generators in
:mod:`repro.datagen`; experiment harnesses in :mod:`repro.harness`.
"""

from repro.core import (
    AggFunction,
    AggregationEngine,
    EngineStats,
    Event,
    FunctionSpec,
    Query,
    QueryPlan,
    ReproError,
    ResultSink,
    Selection,
    SharingPolicy,
    Watermark,
    WindowMeasure,
    WindowResult,
    WindowSpec,
    WindowType,
    analyze,
)

__version__ = "1.0.0"

__all__ = [
    "AggFunction",
    "AggregationEngine",
    "EngineStats",
    "Event",
    "FunctionSpec",
    "Query",
    "QueryPlan",
    "ReproError",
    "ResultSink",
    "Selection",
    "SharingPolicy",
    "Watermark",
    "WindowMeasure",
    "WindowResult",
    "WindowSpec",
    "WindowType",
    "analyze",
    "__version__",
]
