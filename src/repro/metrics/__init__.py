"""Measurement utilities: throughput, latency, network overhead."""

from repro.metrics.latency import (
    LatencyProbe,
    LatencySummary,
    event_time_latencies,
    summarize,
)
from repro.metrics.network import NetworkBreakdown, breakdown, fmt_bytes
from repro.metrics.throughput import (
    ThroughputResult,
    measure_throughput,
    modeled_sustainable_throughput,
)

__all__ = [
    "LatencyProbe",
    "LatencySummary",
    "NetworkBreakdown",
    "ThroughputResult",
    "breakdown",
    "event_time_latencies",
    "fmt_bytes",
    "measure_throughput",
    "modeled_sustainable_throughput",
    "summarize",
]
