"""Event-time latency measurement (Sec 6.1).

The paper measures the time from an event's creation to the emission of
the first result involving it, avoiding coordinated omission.  Two
complementary measurements exist here:

* :class:`LatencyProbe` — wall-clock latency for centralized replay: it
  samples ingested events and timestamps the first emitted result whose
  window covers each sample.  This exposes e.g. CeBuffer's window-end
  iteration cost (Fig 6a).
* :func:`event_time_latencies` — simulated-time latency for cluster runs:
  ``emitted_at - window_end`` of every result, capturing tick cadence and
  per-hop link latency (Fig 12).
"""

from __future__ import annotations

import math
import statistics
import time as _time
from dataclasses import dataclass

from repro.core.event import Event
from repro.core.results import ResultSink, WindowResult

__all__ = ["LatencySummary", "LatencyProbe", "event_time_latencies", "summarize"]


@dataclass(slots=True)
class LatencySummary:
    """Percentile summary of latency samples."""

    count: int
    mean: float
    p50: float
    p95: float
    p99: float
    max: float
    #: samples evicted unmatched by the probe's bounded expiry horizon —
    #: nonzero means the percentiles above exclude events no window ever
    #: covered (surfaced as ``latency.expired_samples`` in the registry)
    expired_samples: int = 0


def summarize(samples: list[float]) -> LatencySummary:
    if not samples:
        return LatencySummary(0, 0.0, 0.0, 0.0, 0.0, 0.0)
    ordered = sorted(samples)

    def pct(q: float) -> float:
        # Nearest-rank: the smallest sample >= q of the distribution, so
        # p99 of 10 samples is the 10th, not the 9th.
        index = min(max(math.ceil(q * len(ordered)) - 1, 0), len(ordered) - 1)
        return ordered[index]

    return LatencySummary(
        count=len(ordered),
        mean=statistics.fmean(ordered),
        p50=pct(0.50),
        p95=pct(0.95),
        p99=pct(0.99),
        max=ordered[-1],
    )


class LatencyProbe(ResultSink):
    """A result sink that measures wall-clock event-to-result latency.

    Use as the processor's sink, and call :meth:`on_ingest` for every
    event before handing it to the processor::

        probe = LatencyProbe(sample_every=100)
        processor = DesisProcessor(queries, sink=probe)
        for event in events:
            probe.on_ingest(event)
            processor.process(event)
        processor.close()
        summary = probe.summary()
    """

    def __init__(self, sample_every: int = 100, keep: bool = False,
                 expiry_horizon_ms: int | None = 600_000) -> None:
        super().__init__(keep=keep)
        self.sample_every = sample_every
        #: event-time distance after which an unmatched sample is dropped.
        #: Bounded by default (10 min of event time) so a query that never
        #: covers a sampled event (e.g. filtered markers) cannot grow the
        #: pending buffer without limit; evictions are counted in
        #: ``expired_samples`` and surfaced through the obs bridge.
        #: Passing ``None`` opts into keeping every sample forever —
        #: unbounded memory, only for short bounded replays.
        self.expiry_horizon_ms = expiry_horizon_ms
        self._ingested = 0
        #: pending samples: (event_time, wall_clock_at_ingest)
        self._pending: list[tuple[int, float]] = []
        self.samples: list[float] = []
        #: samples evicted unmatched because the stream moved past them
        self.expired_samples = 0

    def on_ingest(self, event: Event) -> None:
        if self._ingested % self.sample_every == 0:
            self._pending.append((event.time, _time.perf_counter()))
            horizon = self.expiry_horizon_ms
            if horizon is not None:
                floor = event.time - horizon
                if self._pending[0][0] < floor:
                    kept = [s for s in self._pending if s[0] >= floor]
                    self.expired_samples += len(self._pending) - len(kept)
                    self._pending = kept
        self._ingested += 1

    def emit(self, result: WindowResult) -> None:
        super().emit(result)
        if not self._pending:
            return
        emitted = _time.perf_counter()
        remaining = []
        for event_time, ingested in self._pending:
            if result.start <= event_time <= result.end:
                self.samples.append(emitted - ingested)
            else:
                remaining.append((event_time, ingested))
        self._pending = remaining

    def summary(self) -> LatencySummary:
        result = summarize(self.samples)
        result.expired_samples = self.expired_samples
        return result


def event_time_latencies(sink: ResultSink) -> list[float]:
    """Simulated event-time latency (ms) of every regularly-closed result."""
    return [
        float(result.emitted_at - result.end)
        for result in sink
        if result.emitted_at >= result.end
    ]
