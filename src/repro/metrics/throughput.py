"""Throughput measurement (Sec 6.1).

The paper reports *sustainable* throughput — the rate a system handles
without an ever-growing backlog.  In a replay setting each stage's
processing rate is measured directly, so sustainable throughput is the
minimum over stages, optionally capped by link bandwidth (the Raspberry Pi
experiment's 1G ceiling, Fig 13b/13c).
"""

from __future__ import annotations

import time as _time
from dataclasses import dataclass
from typing import Iterable

from repro.baselines.api import StreamProcessor
from repro.core.errors import ReproError
from repro.core.event import Event

__all__ = ["ThroughputResult", "measure_throughput", "modeled_sustainable_throughput"]


@dataclass(slots=True)
class ThroughputResult:
    """Outcome of one replay measurement.

    ``seconds`` is the full replay (ingest loop plus end-of-stream
    ``close()``); ``process_seconds``/``close_seconds`` split the two so
    the one-off flush cost does not pollute sustained-rate numbers.
    """

    events: int
    seconds: float
    results: int
    #: ingest-loop time only; 0.0 on results from older callers that
    #: never measured the split
    process_seconds: float = 0.0
    #: end-of-stream ``close()`` time only
    close_seconds: float = 0.0

    @property
    def events_per_second(self) -> float:
        """Sustained ingest rate (excludes ``close()`` when measured)."""
        elapsed = self.process_seconds if self.process_seconds > 0 else self.seconds
        return self.events / elapsed if elapsed > 0 else 0.0


def measure_throughput(
    processor: StreamProcessor, events: Iterable[Event], *, close: bool = True
) -> ThroughputResult:
    """Replay ``events`` through ``processor`` and time the hot loop."""
    materialized = events if isinstance(events, list) else list(events)
    process = processor.process
    started = _time.perf_counter()
    for event in materialized:
        process(event)
    processed = _time.perf_counter()
    if close:
        processor.close()
    closed = _time.perf_counter()
    return ThroughputResult(
        events=len(materialized),
        seconds=closed - started,
        results=processor.sink.count,
        process_seconds=processed - started,
        close_seconds=closed - processed,
    )


def modeled_sustainable_throughput(
    *,
    node_rates: Iterable[float],
    bytes_per_event: float | None = None,
    link_bandwidth_bytes_per_s: float | None = None,
) -> float:
    """Sustainable throughput = the slowest stage of the pipeline.

    Args:
        node_rates: measured per-node processing rates (events/s); for a
            scale-out tier, pass the tier's aggregate rate.
        bytes_per_event: wire bytes each event costs on the bottleneck
            link (raw event size for centralized shipping; amortized
            partial-result bytes for decentralized aggregation).
        link_bandwidth_bytes_per_s: bandwidth of the bottleneck link.

    Models Fig 13b/13c: Scotty on the Pi cluster is pinned at
    ``bandwidth / bytes_per_event`` (~3.2M events/s over 1G Ethernet)
    while Desis' tiny partial results never hit the cap.
    """
    rates = list(node_rates)
    if not rates:
        raise ReproError("need at least one node rate")
    bottleneck = min(rates)
    if bytes_per_event is not None and link_bandwidth_bytes_per_s is not None:
        if bytes_per_event > 0:
            bottleneck = min(
                bottleneck, link_bandwidth_bytes_per_s / bytes_per_event
            )
    return bottleneck
