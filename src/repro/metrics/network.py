"""Network overhead roll-ups (Sec 6.4.1, Fig 11/13c)."""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.types import NodeRole
from repro.network.simnet import NetworkStats

__all__ = ["NetworkBreakdown", "breakdown", "fmt_bytes"]


@dataclass(slots=True)
class NetworkBreakdown:
    """Bytes sent per node class, the unit Fig 11 plots."""

    local_bytes: int
    intermediate_bytes: int
    total_bytes: int
    control_bytes: int

    @property
    def data_bytes(self) -> int:
        return self.total_bytes - self.control_bytes


def breakdown(stats: NetworkStats) -> NetworkBreakdown:
    """Roll a run's data traffic up by sending node class."""
    return NetworkBreakdown(
        local_bytes=stats.data_bytes_from_role.get(NodeRole.LOCAL, 0),
        intermediate_bytes=stats.data_bytes_from_role.get(NodeRole.INTERMEDIATE, 0),
        total_bytes=stats.total_bytes,
        control_bytes=stats.control_bytes,
    )


def fmt_bytes(n: float) -> str:
    """Human-readable byte counts for result tables."""
    for unit in ("B", "KB", "MB", "GB"):
        if abs(n) < 1024.0:
            return f"{n:.1f} {unit}"
        n /= 1024.0
    return f"{n:.1f} TB"
