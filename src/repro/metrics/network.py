"""Network overhead roll-ups (Sec 6.4.1, Fig 11/13c)."""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.types import NodeRole
from repro.network.simnet import NetworkStats

__all__ = ["NetworkBreakdown", "breakdown", "fmt_bytes"]


@dataclass(slots=True)
class NetworkBreakdown:
    """Bytes sent per node class, the unit Fig 11 plots.

    The reliability fields are all zero without a
    :class:`~repro.network.simnet.FaultPlan`; under one they make the
    degradation observable — how much of the wire traffic was repair
    (retransmissions, network duplicates) rather than payload.
    """

    local_bytes: int
    intermediate_bytes: int
    total_bytes: int
    control_bytes: int
    drops: int = 0
    duplicates: int = 0
    retransmits: int = 0
    retransmit_bytes: int = 0
    retransmit_exhausted: int = 0
    acks: int = 0
    ack_bytes: int = 0
    dedup_dropped: int = 0
    goodput_data_bytes: int = 0

    @property
    def data_bytes(self) -> int:
        return self.total_bytes - self.control_bytes


def breakdown(stats: NetworkStats) -> NetworkBreakdown:
    """Roll a run's data traffic up by sending node class."""
    return NetworkBreakdown(
        local_bytes=stats.data_bytes_from_role.get(NodeRole.LOCAL, 0),
        intermediate_bytes=stats.data_bytes_from_role.get(NodeRole.INTERMEDIATE, 0),
        total_bytes=stats.total_bytes,
        control_bytes=stats.control_bytes,
        drops=stats.drops,
        duplicates=stats.duplicates,
        retransmits=stats.retransmits,
        retransmit_bytes=stats.retransmit_bytes,
        retransmit_exhausted=stats.retransmit_exhausted,
        acks=stats.acks,
        ack_bytes=stats.ack_bytes,
        dedup_dropped=stats.dedup_dropped,
        goodput_data_bytes=stats.goodput_data_bytes,
    )


def fmt_bytes(n: float) -> str:
    """Human-readable byte counts for result tables."""
    for unit in ("B", "KB", "MB", "GB"):
        if abs(n) < 1024.0:
            return f"{n:.1f} {unit}"
        n /= 1024.0
    return f"{n:.1f} TB"
