"""The conformance reference oracle and its tolerance policies.

The oracle computes window results directly from the full event list with
no slicing, no sharing, and no incremental state — the most obviously
correct implementation possible.  It was promoted here from
``tests/oracle.py`` (which remains as a compatibility shim) so the
conformance harness can use it as the independent reference every engine,
baseline, and cluster deployment is differentially checked against.

Semantics mirrored from the engine:

* Tumbling/sliding time windows align to the first event's timestamp (or
  an explicit ``origin``, matching a cluster's global time origin) and
  fire when stream time passes their end; windows still open at close time
  are emitted with their declared end but only the observed events.
* Session windows close ``gap`` ms after their last matching event (an
  event exactly at ``last + gap`` starts a new session).
* User-defined windows (no start marker) open at the first key-relevant
  event after the previous window closed and close with the end-marker
  event inclusive.
* Count windows cover ``length`` matching events, advancing every
  ``slide`` matching events.
* Empty windows are not emitted.

Tolerance policies
------------------

Differential comparison needs to know how close is close enough.  The
contract (DESIGN.md §9, §10):

* ``merge_mode="exact"`` paths are **byte-identical** to the reference
  fold — zero tolerance.
* ``merge_mode="incremental"`` re-associates floating-point folds, so
  float-valued operator kinds (sum, multiplication, sum-of-squares — i.e.
  SUM/AVERAGE/PRODUCT/GEOMETRIC_MEAN/VARIANCE/STDDEV) are compared within
  ``1e-9`` **relative**; count, extrema, and sorted-value functions
  (COUNT/MAX/MIN/MEDIAN/QUANTILE) stay exact because their partials carry
  the original values unchanged.
* Cross-implementation comparisons (a distributed fold vs a centralized
  one, or either vs this oracle) re-order float additions, so the same
  float-fold kinds get a relative tolerance while everything else stays
  exact.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.core.event import Event
from repro.core.query import Query
from repro.core.types import AggFunction, WindowMeasure, WindowType

__all__ = [
    "OracleWindow",
    "TolerancePolicy",
    "EXACT",
    "FLOAT_FOLD_FUNCTIONS",
    "tolerance_for",
    "values_match",
    "naive_value",
    "naive_windows",
    "naive_results",
]


# -- tolerance policies ------------------------------------------------------

#: Functions whose finalized value is produced by re-associable float
#: arithmetic (sum / product / sum-of-squares operator folds).
FLOAT_FOLD_FUNCTIONS = frozenset(
    {
        AggFunction.SUM,
        AggFunction.AVERAGE,
        AggFunction.PRODUCT,
        AggFunction.GEOMETRIC_MEAN,
        AggFunction.VARIANCE,
        AggFunction.STDDEV,
    }
)


@dataclass(frozen=True, slots=True)
class TolerancePolicy:
    """How close two finalized window values must be to count as equal.

    ``rel_tol == abs_tol == 0`` demands byte-identical values.
    """

    rel_tol: float = 0.0
    abs_tol: float = 0.0

    @property
    def exact(self) -> bool:
        return self.rel_tol == 0.0 and self.abs_tol == 0.0


#: The zero-tolerance policy (byte-identical).
EXACT = TolerancePolicy()

#: 1e-9 relative: the incremental-merge contract for float folds.
_INCREMENTAL_FLOAT = TolerancePolicy(rel_tol=1e-9, abs_tol=1e-12)


def tolerance_for(query: Query, *, merge_mode: str = "incremental",
                  cross_fold: bool = False) -> TolerancePolicy:
    """The comparison policy for one query's finalized values.

    ``merge_mode="exact"`` paths are byte-identical unless the comparison
    crosses independently-ordered folds (``cross_fold=True``: distributed
    vs centralized, engine vs oracle), which re-associate float additions.
    ``merge_mode="incremental"`` gets the 1e-9-relative float-fold
    allowance of DESIGN.md §9; count/extrema/sorted functions are exact in
    every mode because their partials carry original values unchanged.
    """
    if query.function.fn not in FLOAT_FOLD_FUNCTIONS:
        return EXACT
    if merge_mode == "incremental" or cross_fold:
        return _INCREMENTAL_FLOAT
    return EXACT


def values_match(expected, got, policy: TolerancePolicy = EXACT) -> bool:
    """Whether two finalized window values agree under ``policy``."""
    if expected is None or got is None:
        return expected is got
    if policy.exact:
        return expected == got
    if isinstance(expected, bool) or isinstance(got, bool):
        return expected == got
    try:
        return expected == got or math.isclose(
            float(expected), float(got),
            rel_tol=policy.rel_tol, abs_tol=policy.abs_tol,
        )
    except (TypeError, OverflowError, ValueError):
        return expected == got


# -- the naive oracle --------------------------------------------------------


@dataclass
class OracleWindow:
    start: int
    end: int
    values: list[float]


def naive_value(query: Query, values: list[float]):
    """Directly compute the aggregation function over ``values``."""
    fn = query.function.fn
    if fn is AggFunction.SUM:
        return sum(values)
    if fn is AggFunction.COUNT:
        return len(values)
    if fn is AggFunction.AVERAGE:
        return sum(values) / len(values) if values else None
    if fn is AggFunction.PRODUCT:
        return math.prod(values)
    if fn is AggFunction.GEOMETRIC_MEAN:
        if not values:
            return None
        return math.prod(values) ** (1.0 / len(values))
    if fn is AggFunction.MAX:
        return max(values) if values else None
    if fn is AggFunction.MIN:
        return min(values) if values else None
    if fn in (AggFunction.VARIANCE, AggFunction.STDDEV):
        if not values:
            return None
        mean = sum(values) / len(values)
        variance = max(
            sum(v * v for v in values) / len(values) - mean * mean, 0.0
        )
        return variance if fn is AggFunction.VARIANCE else variance**0.5
    if not values:
        return None
    q = 0.5 if fn is AggFunction.MEDIAN else query.function.quantile
    ordered = sorted(values)
    position = q * (len(ordered) - 1)
    lower = int(position)
    upper = min(lower + 1, len(ordered) - 1)
    fraction = position - lower
    return ordered[lower] * (1.0 - fraction) + ordered[upper] * fraction


def _matching(query: Query, events: list[Event]) -> list[Event]:
    return [event for event in events if query.selection.matches(event)]


def _fixed_windows(
    query: Query, events: list[Event], final: int, origin: int | None
) -> list[OracleWindow]:
    if origin is None:
        origin = events[0].time
    length = query.window.length
    slide = query.window.effective_slide
    matching = _matching(query, events)
    windows = []
    start = origin
    while start <= final:
        end = start + length
        if end <= final:
            values = [e.value for e in matching if start <= e.time < end]
        else:
            values = [e.value for e in matching if start <= e.time <= final]
        windows.append(OracleWindow(start, end, values))
        start += slide
    return windows


def _session_windows(query: Query, events: list[Event], final: int) -> list[OracleWindow]:
    gap = query.window.gap
    matching = _matching(query, events)
    windows: list[OracleWindow] = []
    current: OracleWindow | None = None
    last = None
    for event in matching:
        if current is None:
            current = OracleWindow(event.time, event.time, [event.value])
        elif event.time - last >= gap:
            current.end = last + gap
            windows.append(current)
            current = OracleWindow(event.time, event.time, [event.value])
        else:
            current.values.append(event.value)
        last = event.time
    if current is not None:
        current.end = min(last + gap, final)
        windows.append(current)
    return windows


def _userdef_windows(query: Query, events: list[Event], final: int) -> list[OracleWindow]:
    spec = query.window
    key = query.selection.key
    windows: list[OracleWindow] = []
    current: OracleWindow | None = None
    for event in events:
        relevant = key is None or event.key == key
        if not relevant:
            continue
        if current is None:
            opens = (
                spec.start_marker is None or event.marker == spec.start_marker
            )
            if not opens:
                continue
            current = OracleWindow(event.time, event.time, [])
        if query.selection.matches(event):
            current.values.append(event.value)
        if event.marker == spec.end_marker:
            current.end = event.time
            windows.append(current)
            current = None
    if current is not None:
        current.end = final
        windows.append(current)
    return windows


def _count_windows(query: Query, events: list[Event], final: int) -> list[OracleWindow]:
    length = query.window.length
    slide = query.window.effective_slide
    matching = _matching(query, events)
    windows = []
    start_index = 0
    while start_index < len(matching):
        chunk = matching[start_index : start_index + length]
        if not chunk:
            break
        end = chunk[-1].time if len(chunk) == length else final
        windows.append(
            OracleWindow(chunk[0].time, end, [e.value for e in chunk])
        )
        start_index += slide
    return windows


def naive_windows(
    query: Query,
    events: list[Event],
    final: int | None = None,
    *,
    origin: int | None = None,
) -> list[OracleWindow]:
    """All (possibly empty) windows of ``query`` over ``events``.

    ``origin`` anchors fixed-window schedules explicitly (a cluster's
    global time origin); ``None`` keeps the classic first-event anchor.
    """
    if not events:
        return []
    if final is None:
        final = events[-1].time
    if query.window.measure is WindowMeasure.COUNT:
        return _count_windows(query, events, final)
    kind = query.window.window_type
    if kind in (WindowType.TUMBLING, WindowType.SLIDING):
        return _fixed_windows(query, events, final, origin)
    if kind is WindowType.SESSION:
        return _session_windows(query, events, final)
    return _userdef_windows(query, events, final)


def naive_results(
    query: Query,
    events: list[Event],
    final: int | None = None,
    *,
    origin: int | None = None,
) -> list[tuple[int, int, object, int]]:
    """Emitted results: ``(start, end, value, event_count)`` per window.

    Empty windows are skipped, matching the engine's default.
    """
    out = []
    for window in naive_windows(query, events, final, origin=origin):
        if not window.values:
            continue
        out.append(
            (window.start, window.end, naive_value(query, window.values), len(window.values))
        )
    return out
