"""Delta-debugging shrinker: minimize a failing scenario to its essence.

Given a scenario the checkers reject, the shrinker searches for a smaller
scenario that *still fails*, in four phases:

1. **Knob simplification** — drop the overload caps, fault plan,
   checkpointing, batching, and disorder if the failure survives without
   them (a failure that needs none of them is an engine bug, not a
   distributed-systems bug).
2. **Query reduction** — remove queries one at a time while the failure
   persists.
3. **Event reduction (ddmin)** — classic delta debugging over the global
   event list: remove exponentially-narrowing chunks, keeping per-node
   order (Zeller & Hildebrandt's ddmin adapted to a partitioned stream).
4. **Node reduction** — drop now-empty (or droppable) local streams.

The result carries its surviving events explicitly
(:attr:`~repro.conformance.scenario.Scenario.explicit_streams`), so the
minimized scenario replays without the generator, and
:func:`write_repro_script` emits a standalone script that re-runs it and
exits non-zero while the failure reproduces.

Every candidate evaluation is deterministic, so shrinking the same failure
twice yields the same minimized scenario.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Callable

from repro.conformance.check import evaluate_scenario
from repro.conformance.scenario import Scenario

__all__ = ["ShrinkResult", "shrink_scenario", "write_repro_script"]

Predicate = Callable[[Scenario], bool]


@dataclass(slots=True)
class ShrinkResult:
    """Outcome of one minimization."""

    scenario: Scenario  # the minimized, explicit-stream scenario
    failures: list[str]  # failure descriptions of the minimized scenario
    events_before: int
    events_after: int
    queries_before: int
    queries_after: int
    predicate_runs: int


class _Budget:
    def __init__(self, limit: int) -> None:
        self.limit = limit
        self.used = 0

    def spend(self) -> bool:
        self.used += 1
        return self.used <= self.limit


def default_predicate(scenario: Scenario) -> bool:
    """True while the scenario still fails conformance (no metamorphic
    re-checks: the differential layer is the cheap, deterministic core)."""
    failures, _ = evaluate_scenario(scenario, metamorphic=False)
    return bool(failures)


def _events_of(scenario: Scenario) -> list[tuple[str, list]]:
    """The global event list as (node, row) in merged time order."""
    assert scenario.explicit_streams is not None
    tagged = [
        (row[0], node, row)
        for node, rows in sorted(scenario.explicit_streams.items())
        for row in rows
    ]
    tagged.sort(key=lambda item: (item[0], item[1]))
    return [(node, row) for _, node, row in tagged]


def _with_events(scenario: Scenario,
                 events: list[tuple[str, list]]) -> Scenario:
    streams: dict[str, list[list]] = {
        node: [] for node in scenario.explicit_streams
    }
    for node, row in events:
        streams[node].append(row)
    return replace(scenario, explicit_streams=streams)


def _shrink_knobs(scenario: Scenario, predicate: Predicate,
                  budget: _Budget) -> Scenario:
    for simplify in (
        lambda s: replace(s, overload=None),
        lambda s: replace(s, fault=None),
        lambda s: replace(s, checkpoint_interval=None),
        lambda s: replace(s, batch_ms=None),
        lambda s: replace(s, max_lateness=0),
        lambda s: replace(s, merge_mode="exact"),
        lambda s: replace(s, punctuation_mode="heap"),
    ):
        candidate = simplify(scenario)
        if candidate == scenario:
            continue
        if not budget.spend():
            return scenario
        if predicate(candidate):
            scenario = candidate
    return scenario


def _shrink_queries(scenario: Scenario, predicate: Predicate,
                    budget: _Budget) -> Scenario:
    changed = True
    while changed and len(scenario.queries) > 1:
        changed = False
        for index in range(len(scenario.queries)):
            remaining = (
                scenario.queries[:index] + scenario.queries[index + 1:]
            )
            candidate = replace(scenario, queries=remaining)
            if not budget.spend():
                return scenario
            if predicate(candidate):
                scenario = candidate
                changed = True
                break
    return scenario


def _ddmin_events(scenario: Scenario, predicate: Predicate,
                  budget: _Budget) -> Scenario:
    events = _events_of(scenario)
    granularity = 2
    while len(events) >= 2:
        chunk = max(1, len(events) // granularity)
        reduced = False
        start = 0
        while start < len(events):
            candidate_events = events[:start] + events[start + chunk:]
            if not candidate_events:
                start += chunk
                continue
            if not budget.spend():
                return _with_events(scenario, events)
            if predicate(_with_events(scenario, candidate_events)):
                events = candidate_events
                granularity = max(granularity - 1, 2)
                reduced = True
            else:
                start += chunk
        if not reduced:
            if chunk == 1:
                break
            granularity = min(granularity * 2, len(events))
    return _with_events(scenario, events)


def _drop_empty_nodes(scenario: Scenario, predicate: Predicate,
                      budget: _Budget) -> Scenario:
    streams = scenario.explicit_streams
    assert streams is not None
    live = {node: rows for node, rows in streams.items() if rows}
    if len(live) >= 2 and len(live) < len(streams):
        # Renumber onto a dense local-0..k-1 star-compatible layout.
        renamed = {
            f"local-{i}": rows
            for i, (_, rows) in enumerate(sorted(live.items()))
        }
        candidate = replace(
            scenario,
            explicit_streams=renamed,
            n_nodes=len(renamed),
            topology="star",
            n_intermediates=1,
        )
        if budget.spend() and predicate(candidate):
            return candidate
    return scenario


def shrink_scenario(
    scenario: Scenario,
    predicate: Predicate | None = None,
    *,
    max_predicate_runs: int = 400,
) -> ShrinkResult:
    """Minimize ``scenario`` while ``predicate`` keeps returning True."""
    if predicate is None:
        predicate = default_predicate
    scenario = scenario.materialized()
    events_before = sum(
        len(rows) for rows in scenario.explicit_streams.values()
    )
    queries_before = len(scenario.queries)
    budget = _Budget(max_predicate_runs)
    if not predicate(scenario):
        raise ValueError(
            "scenario does not fail its predicate; nothing to shrink"
        )
    budget.used += 1

    previous = None
    while previous != scenario:
        previous = scenario
        scenario = _shrink_knobs(scenario, predicate, budget)
        scenario = _shrink_queries(scenario, predicate, budget)
        scenario = _ddmin_events(scenario, predicate, budget)
        scenario = _drop_empty_nodes(scenario, predicate, budget)
        if budget.used >= budget.limit:
            break

    scenario = replace(scenario, name=f"{scenario.name}-min")
    failures, _ = evaluate_scenario(scenario, metamorphic=False)
    return ShrinkResult(
        scenario=scenario,
        failures=failures,
        events_before=events_before,
        events_after=sum(
            len(rows) for rows in scenario.explicit_streams.values()
        ),
        queries_before=queries_before,
        queries_after=len(scenario.queries),
        predicate_runs=budget.used,
    )


_REPRO_TEMPLATE = '''\
#!/usr/bin/env python
"""Standalone conformance repro (auto-generated by the shrinker).

Scenario: {name}  (digest {digest})
Original failures:
{failure_lines}

Run with the repro package on PYTHONPATH::

    python {filename}

Exits 0 when the failure no longer reproduces.
"""

import json
import sys

from repro.conformance import Scenario, evaluate_scenario

SCENARIO = json.loads(r\'\'\'
{scenario_json}
\'\'\')


def main() -> int:
    scenario = Scenario.from_dict(SCENARIO)
    failures, executions = evaluate_scenario(scenario)
    for name in sorted(executions):
        print(f"{{name}}: {{len(executions[name].rows)}} rows")
    if failures:
        print(f"REPRODUCED: {{len(failures)}} failure(s)")
        for line in failures:
            print(f"  {{line}}")
        return 1
    print("no failures: the scenario now conforms")
    return 0


if __name__ == "__main__":
    sys.exit(main())
'''


def write_repro_script(result: ShrinkResult, path: str) -> str:
    """Write the minimized scenario as a runnable repro script."""
    import os

    scenario = result.scenario
    failure_lines = "\n".join(f"  {line}" for line in result.failures) or "  -"
    content = _REPRO_TEMPLATE.format(
        name=scenario.name,
        digest=scenario.digest,
        failure_lines=failure_lines,
        filename=os.path.basename(path),
        scenario_json=scenario.to_json(),
    )
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(content)
    return path
