"""Declarative conformance scenarios and their seeded generator.

A :class:`Scenario` is a fully self-describing, JSON-serializable recipe
for one differential-fuzzing case: the stream shape (nodes, events, keys,
inter-arrival steps, session gaps, user-defined markers), the query mix
over every operator kind and window type, the disorder bound, the cluster
topology, the fault plan, and the full knob cross-product the engines
expose (batch vs per-event ingestion, ``merge_mode``, checkpoint cadence,
punctuation mode).

Determinism is the whole point: ``Scenario.build_streams()`` derives every
event from the scenario seed alone, so a scenario file replays bit-for-bit
anywhere (the committed corpus under ``tests/conformance/corpus/`` and the
shrinker's repro scripts rely on this).  A scenario that has been shrunk
carries its surviving events *explicitly* (``explicit_streams``) so event
deletion is expressible.

Timestamps are globally unique by construction — node ``i`` starts at
``i`` and advances by multiples of ``n_nodes`` — because with colliding
cross-node timestamps the merge order at a root is physically arbitrary
and count-window contents could not be compared across deployments (see
``tests/cluster/test_desis_parity.py``).
"""

from __future__ import annotations

import hashlib
import json
import random
from dataclasses import dataclass, field, replace
from typing import Any

from repro.core.event import Event
from repro.core.predicates import Selection
from repro.core.query import Query, WindowSpec
from repro.core.types import AggFunction, WindowMeasure, WindowType
from repro.network.simnet import CrashWindow, FaultPlan
from repro.network.topology import Topology, chain, star, three_tier

__all__ = [
    "QuerySpec",
    "CrashSpec",
    "FaultSpec",
    "OverloadSpec",
    "Scenario",
    "ScenarioGenerator",
    "NEVER",
]

#: a node_timeout that never fires — conformance scenarios isolate the
#: fault/recovery paths from heartbeat eviction (same as the chaos suite)
NEVER = 10**9

_END_MARKER = "end"


# -- query specs -------------------------------------------------------------


@dataclass(frozen=True, slots=True)
class QuerySpec:
    """One query of a scenario, in plain-JSON-able form."""

    query_id: str
    window_type: str  # tumbling | sliding | session | user_defined
    function: str  # AggFunction value
    measure: str = "time"  # time | count
    length: int | None = None
    slide: int | None = None
    gap: int | None = None
    start_marker: str | None = None
    end_marker: str | None = None
    quantile: float | None = None
    key: str | None = None  # selection: key equality
    lo: float | None = None  # selection: value range
    hi: float | None = None

    def build(self) -> Query:
        kind = WindowType(self.window_type)
        measure = WindowMeasure(self.measure)
        if kind is WindowType.TUMBLING:
            window = WindowSpec.tumbling(self.length, measure=measure)
        elif kind is WindowType.SLIDING:
            window = WindowSpec.sliding(self.length, self.slide, measure=measure)
        elif kind is WindowType.SESSION:
            window = WindowSpec.session(self.gap)
        else:
            window = WindowSpec.user_defined(
                self.end_marker, start_marker=self.start_marker
            )
        selection = Selection(key=self.key, lo=self.lo, hi=self.hi)
        return Query.of(
            self.query_id,
            window,
            AggFunction(self.function),
            quantile=self.quantile,
            selection=selection,
        )

    def to_dict(self) -> dict[str, Any]:
        out: dict[str, Any] = {
            "query_id": self.query_id,
            "window_type": self.window_type,
            "function": self.function,
            "measure": self.measure,
        }
        for name in ("length", "slide", "gap", "start_marker", "end_marker",
                     "quantile", "key", "lo", "hi"):
            value = getattr(self, name)
            if value is not None:
                out[name] = value
        return out

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "QuerySpec":
        return cls(**data)


# -- fault specs -------------------------------------------------------------


@dataclass(frozen=True, slots=True)
class CrashSpec:
    """A recoverable, state-losing crash window (DESIGN.md §8)."""

    node: str
    start: int
    end: int
    lose_state: bool = True

    def build(self) -> CrashWindow:
        return CrashWindow(self.node, self.start, self.end,
                           lose_state=self.lose_state)

    def to_dict(self) -> dict[str, Any]:
        return {"node": self.node, "start": self.start, "end": self.end,
                "lose_state": self.lose_state}

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "CrashSpec":
        return cls(**data)


@dataclass(frozen=True, slots=True)
class FaultSpec:
    """A seeded, *recoverable* fault plan: results must not change."""

    seed: int = 0
    drop_rate: float = 0.0
    duplicate_rate: float = 0.0
    reorder_rate: float = 0.0
    reorder_delay_ms: float = 20.0
    jitter_ms: float = 0.0
    crashes: tuple[CrashSpec, ...] = ()

    def build(self) -> FaultPlan:
        return FaultPlan(
            seed=self.seed,
            drop_rate=self.drop_rate,
            duplicate_rate=self.duplicate_rate,
            reorder_rate=self.reorder_rate,
            reorder_delay_ms=self.reorder_delay_ms,
            jitter_ms=self.jitter_ms,
            crashes=tuple(c.build() for c in self.crashes),
        )

    @property
    def link_faults_only(self) -> bool:
        return not self.crashes

    def to_dict(self) -> dict[str, Any]:
        out: dict[str, Any] = {"seed": self.seed}
        for name in ("drop_rate", "duplicate_rate", "reorder_rate",
                     "jitter_ms"):
            value = getattr(self, name)
            if value:
                out[name] = value
        if self.reorder_delay_ms != 20.0:
            out["reorder_delay_ms"] = self.reorder_delay_ms
        if self.crashes:
            out["crashes"] = [c.to_dict() for c in self.crashes]
        return out

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "FaultSpec":
        crashes = tuple(
            CrashSpec.from_dict(c) for c in data.get("crashes", ())
        )
        kwargs = {k: v for k, v in data.items() if k != "crashes"}
        return cls(crashes=crashes, **kwargs)


@dataclass(frozen=True, slots=True)
class OverloadSpec:
    """Overload-control caps for the Desis deployment (DESIGN.md §12).

    Conformance caps are *generous* on purpose: with the scenario's fast
    links the credit windows rarely exhaust, so most runs shed nothing —
    and a run that sheds nothing must be byte-identical to the unbounded
    faulty run (the metamorphic invariant ``evaluate_scenario`` checks).
    A run that does shed is audited instead: every degraded window's
    ``completeness`` must equal what its own ``shed_slices`` imply.
    """

    channel_credit_bytes: int | None = None
    channel_credit_frames: int | None = None
    staging_limit: int | None = None

    def to_dict(self) -> dict[str, Any]:
        return {
            name: value
            for name in ("channel_credit_bytes", "channel_credit_frames",
                         "staging_limit")
            if (value := getattr(self, name)) is not None
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "OverloadSpec":
        return cls(**data)


# -- the scenario ------------------------------------------------------------


@dataclass(frozen=True, slots=True)
class Scenario:
    """One declarative conformance case (see module docstring)."""

    name: str
    seed: int
    # stream shape
    n_nodes: int = 2
    events_per_node: int = 100
    n_keys: int = 2
    dt_units: tuple[int, ...] = (1, 2, 5)  # × n_nodes ms between events
    gap_every: int | None = None  # long pause every N events (sessions)
    gap_ms: int = 2_000
    marker_every: int | None = None  # user-defined end marker cadence
    value_lo: float = 0.0
    value_hi: float = 100.0
    # query mix
    queries: tuple[QuerySpec, ...] = ()
    # disorder
    max_lateness: int = 0
    # topology
    topology: str = "three_tier"  # star | three_tier | chain
    n_intermediates: int = 1  # three_tier width / chain hops
    # knob cross-product
    tick_interval: int = 500
    batch_ms: int | None = None
    merge_mode: str = "exact"
    punctuation_mode: str = "heap"
    #: worker count for the parallel-sharded executor (DESIGN.md §13);
    #: only meaningful when the query mix is fixed-size time windows
    shards: int = 1
    checkpoint_interval: int | None = None
    fault: FaultSpec | None = None
    # overload-control caps for an extra bounded Desis run (None = no run)
    overload: OverloadSpec | None = None
    # set by the shrinker: surviving events, replacing seeded generation
    explicit_streams: dict[str, list[list]] | None = field(default=None)

    # -- construction --------------------------------------------------------

    def build_queries(self) -> list[Query]:
        return [spec.build() for spec in self.queries]

    def build_topology(self) -> Topology:
        if self.topology == "star":
            return star(self.n_nodes)
        if self.topology == "chain":
            return chain(self.n_nodes, self.n_intermediates)
        return three_tier(self.n_nodes, self.n_intermediates)

    def build_streams(self) -> dict[str, list[Event]]:
        """Per-node in-order streams, derived from the seed (or explicit)."""
        if self.explicit_streams is not None:
            return {
                node: [Event(t, k, v, m) for t, k, v, m in rows]
                for node, rows in sorted(self.explicit_streams.items())
            }
        keys = tuple(f"k{i}" for i in range(self.n_keys))
        streams: dict[str, list[Event]] = {}
        n = self.n_nodes
        gap_dt = ((self.gap_ms // n) + 1) * n  # stays on node residue
        for i in range(n):
            rng = random.Random(self.seed * 7_919 + i)
            t = i
            events = []
            for j in range(self.events_per_node):
                if self.gap_every is not None and j and j % self.gap_every == 0:
                    t += gap_dt
                else:
                    t += rng.choice(self.dt_units) * n
                marker = (
                    _END_MARKER
                    if self.marker_every is not None
                    and j % self.marker_every == self.marker_every - 1
                    else None
                )
                events.append(
                    Event(t, rng.choice(keys),
                          rng.uniform(self.value_lo, self.value_hi), marker)
                )
            streams[f"local-{i}"] = events
        return streams

    def disordered_streams(self) -> dict[str, list[Event]]:
        """The same streams in a bounded-disorder arrival order.

        Each event's arrival rank is ``time + U(0, max_lateness)``, which
        guarantees no event arrives after the stream's high-water mark has
        advanced more than ``max_lateness`` past it — i.e. a
        :class:`~repro.core.ordering.ReorderBuffer` with the scenario's
        bound restores exact timestamp order losslessly.
        """
        streams = self.build_streams()
        if self.max_lateness <= 0:
            return streams
        out = {}
        for node, events in streams.items():
            rng = random.Random((self.seed, "disorder", node).__repr__())
            ranked = [
                (e.time + rng.uniform(0.0, float(self.max_lateness)), i, e)
                for i, e in enumerate(events)
            ]
            ranked.sort()
            out[node] = [e for _, _, e in ranked]
        return out

    def build_fault_plan(self) -> FaultPlan | None:
        return self.fault.build() if self.fault is not None else None

    # -- derived properties --------------------------------------------------

    @property
    def horizon(self) -> int:
        """Last event timestamp over all nodes."""
        streams = self.build_streams()
        return max(
            (events[-1].time for events in streams.values() if events),
            default=0,
        )

    @property
    def total_events(self) -> int:
        return sum(len(v) for v in self.build_streams().values())

    @property
    def has_user_defined(self) -> bool:
        return any(
            q.window_type == WindowType.USER_DEFINED.value for q in self.queries
        )

    @property
    def fixed_time_only(self) -> bool:
        """Whether every query is a fixed-size time window (Disco's domain)."""
        return all(
            q.window_type in (WindowType.TUMBLING.value, WindowType.SLIDING.value)
            and q.measure == WindowMeasure.TIME.value
            for q in self.queries
        )

    # -- serialization -------------------------------------------------------

    def to_dict(self) -> dict[str, Any]:
        out: dict[str, Any] = {
            "name": self.name,
            "seed": self.seed,
            "n_nodes": self.n_nodes,
            "events_per_node": self.events_per_node,
            "n_keys": self.n_keys,
            "dt_units": list(self.dt_units),
            "value_lo": self.value_lo,
            "value_hi": self.value_hi,
            "queries": [q.to_dict() for q in self.queries],
            "max_lateness": self.max_lateness,
            "topology": self.topology,
            "n_intermediates": self.n_intermediates,
            "tick_interval": self.tick_interval,
            "merge_mode": self.merge_mode,
            "punctuation_mode": self.punctuation_mode,
        }
        if self.gap_every is not None:
            out["gap_every"] = self.gap_every
            out["gap_ms"] = self.gap_ms
        if self.marker_every is not None:
            out["marker_every"] = self.marker_every
        if self.batch_ms is not None:
            out["batch_ms"] = self.batch_ms
        if self.shards != 1:
            # emitted only when set, so the committed corpus digests
            # (written before the knob existed) stay stable
            out["shards"] = self.shards
        if self.checkpoint_interval is not None:
            out["checkpoint_interval"] = self.checkpoint_interval
        if self.fault is not None:
            out["fault"] = self.fault.to_dict()
        if self.overload is not None:
            out["overload"] = self.overload.to_dict()
        if self.explicit_streams is not None:
            out["explicit_streams"] = {
                node: [list(row) for row in rows]
                for node, rows in sorted(self.explicit_streams.items())
            }
        return out

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "Scenario":
        data = dict(data)
        queries = tuple(QuerySpec.from_dict(q) for q in data.pop("queries"))
        fault = data.pop("fault", None)
        if fault is not None:
            fault = FaultSpec.from_dict(fault)
        overload = data.pop("overload", None)
        if overload is not None:
            overload = OverloadSpec.from_dict(overload)
        dt_units = tuple(data.pop("dt_units", (1, 2, 5)))
        explicit = data.pop("explicit_streams", None)
        if explicit is not None:
            explicit = {
                node: [
                    [row[0], row[1], row[2], row[3]] for row in rows
                ]
                for node, rows in explicit.items()
            }
        return cls(queries=queries, fault=fault, overload=overload,
                   dt_units=dt_units, explicit_streams=explicit, **data)

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), sort_keys=True, indent=2)

    @classmethod
    def from_json(cls, text: str) -> "Scenario":
        return cls.from_dict(json.loads(text))

    @property
    def digest(self) -> str:
        """Stable content hash identifying this exact scenario."""
        canonical = json.dumps(
            self.to_dict(), sort_keys=True, separators=(",", ":")
        )
        return hashlib.sha256(canonical.encode()).hexdigest()[:16]

    def materialized(self) -> "Scenario":
        """A copy carrying its streams explicitly (shrinker entry form)."""
        if self.explicit_streams is not None:
            return self
        explicit = {
            node: [[e.time, e.key, e.value, e.marker] for e in events]
            for node, events in self.build_streams().items()
        }
        return replace(self, explicit_streams=explicit)


# -- the generator -----------------------------------------------------------

_FUNCTIONS = [fn for fn in AggFunction]
_PRODUCT_FAMILY = {AggFunction.PRODUCT.value, AggFunction.GEOMETRIC_MEAN.value}


class ScenarioGenerator:
    """Seeded random scenarios over the full knob cross-product.

    ``generate(i)`` is a pure function of ``(seed, i)``: two generators
    with the same seed produce identical scenarios in the same order.
    """

    def __init__(self, seed: int = 0, *, max_events_per_node: int = 160) -> None:
        self.seed = seed
        self.max_events_per_node = max(20, max_events_per_node)

    def generate(self, index: int) -> Scenario:
        rng = random.Random((self.seed, "scenario", index).__repr__())
        n_nodes = rng.randint(2, 4)
        events_per_node = rng.randint(60, self.max_events_per_node)
        n_keys = rng.randint(1, 3)
        dt_units = tuple(sorted(rng.sample((1, 2, 3, 5, 8), rng.randint(2, 3))))

        queries, needs_gap, needs_marker = self._queries(rng, n_keys, n_nodes,
                                                         dt_units)
        product_family = any(q.function in _PRODUCT_FAMILY for q in queries)

        topology = rng.choice(("star", "three_tier", "three_tier", "chain"))
        n_intermediates = rng.randint(1, 2) if topology != "star" else 1
        checkpoint_interval = rng.choice((None, None, 2_000))
        fault = self._fault(rng, topology, checkpoint_interval,
                            n_nodes, events_per_node, dt_units)
        if fault is not None and fault.crashes and checkpoint_interval is None:
            checkpoint_interval = 2_000
        # Overload caps ride along on ~1/3 of faulty scenarios: the fast
        # conformance links rarely exhaust these generous credit windows,
        # so the bounded run usually sheds nothing and must then be
        # byte-identical to the unbounded faulty run (see OverloadSpec).
        overload = None
        if fault is not None and rng.random() < 0.35:
            overload = OverloadSpec(
                channel_credit_bytes=rng.choice((4_096, 16_384)),
                channel_credit_frames=rng.choice((16, 64)),
                staging_limit=rng.choice((64, 256)),
            )

        scenario = Scenario(
            name=f"gen-{self.seed}-{index}",
            seed=self.seed * 1_000_003 + index,
            n_nodes=n_nodes,
            events_per_node=events_per_node,
            n_keys=n_keys,
            dt_units=dt_units,
            gap_every=rng.choice((23, 41)) if needs_gap else None,
            gap_ms=rng.choice((1_500, 2_500)) if needs_gap else 2_000,
            marker_every=rng.choice((17, 29)) if needs_marker else None,
            # product folds overflow on wide windows; keep their values ~1
            value_lo=0.5 if product_family else 0.0,
            value_hi=1.5 if product_family else 100.0,
            queries=queries,
            max_lateness=rng.choice((0, 0, 0, 40, 150)),
            topology=topology,
            n_intermediates=n_intermediates,
            tick_interval=500,
            batch_ms=rng.choice((None, None, 500)),
            merge_mode=rng.choice(("incremental", "exact")),
            punctuation_mode=rng.choice(("heap", "scan")),
            checkpoint_interval=checkpoint_interval,
            fault=fault,
            overload=overload,
        )
        # drawn LAST so every earlier draw — and therefore every scenario
        # generated before the shards knob existed — is unchanged
        if scenario.fixed_time_only and scenario.queries:
            shards = rng.choice((1, 1, 2, 4))
            if shards != 1:
                scenario = replace(scenario, shards=shards)
        return scenario

    # -- pieces --------------------------------------------------------------

    def _queries(self, rng: random.Random, n_keys: int, n_nodes: int,
                 dt_units: tuple[int, ...]):
        count = rng.randint(1, 4)
        mean_dt = n_nodes * sum(dt_units) / len(dt_units)
        queries = []
        needs_gap = needs_marker = False
        for qi in range(count):
            window_type = rng.choice(
                (WindowType.TUMBLING, WindowType.TUMBLING, WindowType.SLIDING,
                 WindowType.SLIDING, WindowType.SESSION,
                 WindowType.USER_DEFINED)
            )
            fn = rng.choice(_FUNCTIONS)
            quantile = (
                rng.choice((0.1, 0.25, 0.75, 0.9))
                if fn is AggFunction.QUANTILE else None
            )
            measure = "time"
            length = slide = gap = None
            end_marker = None
            if window_type in (WindowType.TUMBLING, WindowType.SLIDING):
                if rng.random() < 0.25:
                    measure = "count"
                    length = rng.randint(5, 40)
                    slide = (
                        rng.randint(1, length)
                        if window_type is WindowType.SLIDING else None
                    )
                else:
                    length = rng.randint(4, 40) * 50
                    slide = (
                        max(50, (length // rng.choice((2, 4, 8))) // 50 * 50)
                        if window_type is WindowType.SLIDING else None
                    )
            elif window_type is WindowType.SESSION:
                # a gap a few inter-arrivals wide, so sessions actually split
                gap = int(mean_dt * rng.randint(3, 8))
                needs_gap = True
            else:
                end_marker = _END_MARKER
                needs_marker = True
            key = (
                f"k{rng.randrange(n_keys)}" if rng.random() < 0.3 else None
            )
            lo = hi = None
            if rng.random() < 0.2:
                lo, hi = 10.0, 80.0
            queries.append(
                QuerySpec(
                    query_id=f"q{qi}",
                    window_type=window_type.value,
                    function=fn.value,
                    measure=measure,
                    length=length,
                    slide=slide,
                    gap=gap,
                    end_marker=end_marker,
                    quantile=quantile,
                    key=key,
                    lo=lo,
                    hi=hi,
                )
            )
        return tuple(queries), needs_gap, needs_marker

    def _fault(self, rng: random.Random, topology: str,
               checkpoint_interval: int | None, n_nodes: int,
               events_per_node: int, dt_units: tuple[int, ...]) -> FaultSpec | None:
        roll = rng.random()
        if roll < 0.45:
            return None
        link = FaultSpec(
            seed=rng.randrange(1 << 16),
            drop_rate=round(rng.uniform(0.0, 0.12), 3),
            duplicate_rate=round(rng.uniform(0.0, 0.08), 3),
            reorder_rate=round(rng.uniform(0.0, 0.15), 3),
            jitter_ms=round(rng.uniform(0.0, 4.0), 1),
        )
        # Recoverable, state-losing crashes need a checkpointed three_tier
        # deployment and a window that closes well before end-of-stream.
        if roll < 0.8 or topology != "three_tier":
            return link
        span = events_per_node * n_nodes * (sum(dt_units) // len(dt_units))
        start = int(span * 0.4)
        end = min(int(span * 0.6), start + 4_000)
        if end <= start or checkpoint_interval is None and rng.random() < 0.0:
            return link
        node = rng.choice(("mid-0", "root"))
        return replace(
            link, crashes=(CrashSpec(node, start, end, lose_state=True),)
        )
