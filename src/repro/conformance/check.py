"""Equivalence checkers and metamorphic relations.

Two layers of checking:

1. **Differential**: every executor configuration of a scenario is
   compared against the reference (``engine-exact``), plus a handful of
   *byte-identical* pairs where the contract is exact (alternate
   punctuation mode, batched ingestion under ``merge_mode="exact"``, and
   fault-plan runs vs their clean twin).  Value comparison is governed by
   the per-operator-kind :func:`~repro.conformance.oracle.tolerance_for`
   policy — exact for count/extrema/sorted functions, 1e-9 relative for
   float folds whenever the two sides fold in different orders.

2. **Metamorphic**: properties that need no reference implementation —
   re-sharding the same global event multiset over a different number of
   local nodes must not change results; re-dealing the key space over a
   different number of parallel worker processes (DESIGN.md §13) must not
   change results either; submitting the same query twice
   must yield twice the identical rows; a recoverable fault plan must
   leave both the results and the *goodput* (unique delivered payload
   bytes) of the clean reliable run unchanged; on a traced run every
   window's critical-path stage breakdown must sum *exactly* to its
   end-to-end emission latency in sim-ms (see repro.obs.critical_path);
   and a Desis run under overload caps (DESIGN.md §12) that shed nothing
   must be byte-identical to the unbounded faulty run, while a run that
   did shed must account every degraded window's ``completeness``
   exactly from its own ``shed_slices``.

:func:`evaluate_scenario` drives all of it and returns the flat list of
failure descriptions the runner and the shrinker share as their predicate.
"""

from __future__ import annotations

from dataclasses import replace

from repro.cluster import ClusterConfig, DesisCluster
from repro.core.engine import AggregationEngine
from repro.core.event import Event, merge_streams
from repro.core.query import Query
from repro.network.simnet import FaultPlan
from repro.network.topology import star
from repro.conformance.executors import (
    ExecutionResult,
    Row,
    canonical_rows,
    executor_matrix,
    in_order_streams,
    _final_time,
    _merged,
)
from repro.conformance.oracle import TolerancePolicy, tolerance_for, values_match
from repro.conformance.scenario import NEVER, Scenario
from repro.obs import compute_critical_path

__all__ = [
    "compare_results",
    "evaluate_scenario",
    "check_duplicate_query_invariance",
    "check_engine_shard_invariance",
    "check_reshard_invariance",
    "check_fault_goodput",
    "check_span_stage_sum",
]

_MAX_REPORTED = 5  # mismatch lines reported per comparison


# -- row comparison ----------------------------------------------------------


def _drop_queries(rows: list[Row], excluded: frozenset[str]) -> list[Row]:
    if not excluded:
        return rows
    return [row for row in rows if row[0] not in excluded]


def _policies(scenario: Scenario, *, merge_mode: str,
              cross_fold: bool) -> dict[str, TolerancePolicy]:
    return {
        query.query_id: tolerance_for(query, merge_mode=merge_mode,
                                      cross_fold=cross_fold)
        for query in scenario.build_queries()
    }


def compare_results(
    scenario: Scenario,
    left: ExecutionResult,
    right: ExecutionResult,
    *,
    merge_mode: str = "exact",
    cross_fold: bool = False,
) -> list[str]:
    """Mismatch descriptions between two executions (empty = equivalent).

    Queries flagged incomparable by exactly one side (user-defined windows
    under decentralized, watermark-granular termination) are skipped; when
    both sides flag them (two cluster runs over the same sharding) their
    rows are compared like any other.
    """
    excluded = left.incomparable_queries ^ right.incomparable_queries
    left_rows = _drop_queries(left.rows, excluded)
    right_rows = _drop_queries(right.rows, excluded)
    policies = _policies(scenario, merge_mode=merge_mode,
                         cross_fold=cross_fold)
    label = f"{right.name} vs {left.name}"
    failures: list[str] = []
    if len(left_rows) != len(right_rows):
        failures.append(
            f"{label}: {len(right_rows)} rows, expected {len(left_rows)}"
        )
    for lrow, rrow in zip(left_rows, right_rows):
        lq, ls, le, ln, lv = lrow
        rq, rs, re_, rn, rv = rrow
        policy = policies.get(lq, TolerancePolicy())
        if (lq, ls, le, ln) != (rq, rs, re_, rn):
            failures.append(f"{label}: window {rrow!r}, expected {lrow!r}")
        elif not values_match(lv, rv, policy):
            failures.append(
                f"{label}: {lq}[{ls}..{le}) value {rv!r}, expected {lv!r}"
                f" (rel_tol={policy.rel_tol})"
            )
        if len(failures) >= _MAX_REPORTED:
            failures.append(f"{label}: ... further mismatches suppressed")
            break
    return failures


# -- metamorphic relations ---------------------------------------------------


def check_duplicate_query_invariance(
    scenario: Scenario, streams: dict[str, list[Event]]
) -> list[str]:
    """Submitting the first query twice must not change anything.

    The clone's rows must be byte-identical to the original's, and every
    pre-existing query's rows must match the reference run exactly.
    """
    queries = scenario.build_queries()
    if not queries:
        return []
    original = queries[0]
    clone = Query(
        query_id="__dup__",
        window=original.window,
        function=original.function,
        selection=original.selection,
    )
    merged = _merged(streams)
    engine = AggregationEngine(queries + [clone], merge_mode="exact")
    engine.advance(0)
    for event in merged:
        engine.process(event)
    sink = engine.close(_final_time(scenario, merged))
    original_rows = [
        (r.start, r.end, r.event_count, r.value)
        for r in sink.for_query(original.query_id)
    ]
    clone_rows = [
        (r.start, r.end, r.event_count, r.value)
        for r in sink.for_query("__dup__")
    ]
    if original_rows != clone_rows:
        return [
            "duplicate-query: clone of "
            f"{original.query_id!r} produced {len(clone_rows)} rows vs "
            f"{len(original_rows)}, or differing values"
        ]
    return []


def check_reshard_invariance(
    scenario: Scenario,
    streams: dict[str, list[Event]],
    baseline: ExecutionResult,
) -> list[str]:
    """Re-dealing the same global events over more locals is invisible.

    The global event multiset is redistributed round-robin (preserving
    time order within each node) over ``n_nodes + 1`` locals on a star
    topology; the clean Desis run over that sharding must match the
    scenario's own clean Desis run, float folds within tolerance.
    """
    merged = _merged(streams)
    n = scenario.n_nodes + 1
    resharded: dict[str, list[Event]] = {f"local-{i}": [] for i in range(n)}
    for index, event in enumerate(merged):
        resharded[f"local-{index % n}"].append(event)
    config = ClusterConfig(
        tick_interval=scenario.tick_interval,
        batch_ms=scenario.batch_ms,
        punctuation_mode=scenario.punctuation_mode,
        merge_mode=scenario.merge_mode,
        checkpoint_interval=scenario.checkpoint_interval,
    )
    result = DesisCluster(
        scenario.build_queries(), star(n), config=config
    ).run(resharded)
    # user-defined windows open per-node, so their rows are legitimately
    # shard-dependent: flag them on this side only, which excludes them
    # from the comparison against the baseline cluster run
    resharded_result = ExecutionResult(
        "cluster-desis-resharded",
        canonical_rows(result.sink),
        incomparable_queries=frozenset(),
    )
    if baseline.incomparable_queries:
        resharded_result = ExecutionResult(
            resharded_result.name,
            _drop_queries(resharded_result.rows,
                          baseline.incomparable_queries),
            incomparable_queries=frozenset(),
        )
        baseline = ExecutionResult(
            baseline.name,
            _drop_queries(baseline.rows, baseline.incomparable_queries),
            incomparable_queries=frozenset(),
            meta=baseline.meta,
        )
    return compare_results(
        scenario, baseline, resharded_result,
        merge_mode=scenario.merge_mode, cross_fold=True,
    )


def check_engine_shard_invariance(
    scenario: Scenario,
    streams: dict[str, list[Event]],
    baseline: ExecutionResult,
) -> list[str]:
    """Re-sharding the key space across workers is invisible (DESIGN.md §13).

    ``baseline`` is the matrix's ``parallel-sharded`` run over ``S``
    workers; the same scenario over ``S + 1`` workers deals every key to a
    different shard (the routing hash is taken modulo the worker count),
    so the reduce combines per-key state in a genuinely different
    partitioning.  Canonical rows must agree exactly for count/extrema/
    sorted operator kinds and within float-fold tolerance for the rest.
    """
    from repro.core.config import EngineConfig
    from repro.parallel import ShardedEngine

    merged = _merged(streams)
    shards = int(baseline.meta.get("shards", 2)) + 1
    engine = ShardedEngine(
        scenario.build_queries(),
        config=EngineConfig(
            merge_mode=scenario.merge_mode,
            punctuation_mode=scenario.punctuation_mode,
            shards=shards,
        ),
    )
    engine.advance(0)
    engine.process_batch(merged)
    sink = engine.close(_final_time(scenario, merged))
    resharded = ExecutionResult(
        f"parallel-sharded-x{shards}", canonical_rows(sink)
    )
    return compare_results(
        scenario, baseline, resharded,
        merge_mode=scenario.merge_mode, cross_fold=True,
    )


def check_fault_goodput(
    scenario: Scenario,
    faulty: ExecutionResult,
    clean: ExecutionResult,
) -> list[str]:
    """A recoverable link-fault plan must not change goodput.

    Both runs use the reliable channel (the clean twin runs an all-zero
    plan so envelopes are identical); the faulty run's goodput — data
    bytes minus retransmitted and duplicated copies — must equal the
    clean run's, and the clean run must waste nothing.
    """
    failures = []
    clean_goodput = clean.meta.get("goodput_data_bytes")
    clean_data = clean.meta.get("data_bytes")
    faulty_goodput = faulty.meta.get("goodput_data_bytes")
    if clean_goodput != clean_data:
        failures.append(
            f"goodput: clean reliable run wasted bytes "
            f"(goodput {clean_goodput} != data {clean_data})"
        )
    if faulty_goodput != clean_goodput:
        failures.append(
            f"goodput: faulty run goodput {faulty_goodput} != clean "
            f"{clean_goodput}"
        )
    return failures


def check_span_stage_sum(
    scenario: Scenario, streams: dict[str, list[Event]]
) -> list[str]:
    """Critical-path stages must sum exactly to each window's latency.

    A traced clean Desis run of the scenario; for every emitted window
    the stage segments must be positive, contiguous, and telescope to
    ``emitted_at - first ingest`` in integer sim-ms.  Windows evicted
    from the trace ring are skipped only when eviction actually happened.
    """
    config = ClusterConfig(
        tick_interval=scenario.tick_interval,
        batch_ms=scenario.batch_ms,
        punctuation_mode=scenario.punctuation_mode,
        merge_mode=scenario.merge_mode,
        checkpoint_interval=scenario.checkpoint_interval,
        trace=True,
    )
    result = DesisCluster(
        scenario.build_queries(), scenario.build_topology(), config=config
    ).run({k: list(v) for k, v in streams.items()})
    failures: list[str] = []
    for row in result.sink.results:
        label = f"span-sum: {row.query_id}[{row.start}..{row.end})"
        try:
            path = compute_critical_path(result.recorder, row)
        except KeyError:
            if result.recorder.dropped:
                continue  # evicted from the ring: legitimately gone
            failures.append(f"{label} has no window.emit trace")
            continue
        total = sum(segment.duration for segment in path.segments)
        if total != path.latency:
            failures.append(
                f"{label} stages sum to {total} ms, emission latency is "
                f"{path.latency} ms"
            )
        elif any(segment.duration <= 0 for segment in path.segments):
            failures.append(f"{label} has a non-positive stage segment")
        elif any(
            a.end != b.start
            for a, b in zip(path.segments, path.segments[1:])
        ):
            failures.append(f"{label} stage segments are not contiguous")
        if len(failures) >= _MAX_REPORTED:
            failures.append("span-sum: ... further failures suppressed")
            break
    return failures


def _run_zero_plan_twin(scenario: Scenario,
                        streams: dict[str, list[Event]]) -> ExecutionResult:
    from repro.conformance.executors import _run_cluster

    zero = replace(scenario, fault=None)
    return _run_cluster(
        zero, streams, name="cluster-desis-zeroplan", deployment="desis",
        fault=FaultPlan(seed=0),
    )


# -- the full evaluation -----------------------------------------------------


def evaluate_scenario(
    scenario: Scenario, *, metamorphic: bool = True
) -> tuple[list[str], dict[str, ExecutionResult]]:
    """Run every applicable executor and checker; return the failures.

    Returns ``(failures, executions)`` where ``executions`` maps executor
    name to its :class:`ExecutionResult` (for reporting/digesting).
    """
    streams = in_order_streams(scenario)
    executions: dict[str, ExecutionResult] = {}
    failures: list[str] = []
    for name, fn in executor_matrix(scenario):
        try:
            executions[name] = fn(scenario, streams)
        except Exception as exc:  # a crash is a conformance failure too
            failures.append(f"{name}: raised {type(exc).__name__}: {exc}")
    reference = executions.get("engine-exact")
    if reference is None:
        return failures, executions

    def against_reference(name: str, *, merge_mode: str, cross_fold: bool):
        execution = executions.get(name)
        if execution is not None:
            failures.extend(
                compare_results(scenario, reference, execution,
                                merge_mode=merge_mode, cross_fold=cross_fold)
            )

    # byte-identical contracts
    against_reference("engine-alt", merge_mode="exact", cross_fold=False)
    against_reference("engine-batch", merge_mode=scenario.merge_mode,
                      cross_fold=False)
    # independently-ordered folds: tolerance on float folds only
    against_reference("oracle", merge_mode="exact", cross_fold=True)
    against_reference("baseline-scotty", merge_mode="exact", cross_fold=True)
    against_reference("cluster-desis", merge_mode=scenario.merge_mode,
                      cross_fold=True)
    against_reference("cluster-centralized", merge_mode=scenario.merge_mode,
                      cross_fold=True)
    against_reference("cluster-disco", merge_mode=scenario.merge_mode,
                      cross_fold=True)
    against_reference("parallel-sharded", merge_mode=scenario.merge_mode,
                      cross_fold=True)
    # the faulty run must be byte-identical to its clean twin
    clean = executions.get("cluster-desis")
    faulty = executions.get("cluster-desis-faulty")
    if clean is not None and faulty is not None:
        failures.extend(
            compare_results(scenario, clean, faulty,
                            merge_mode="exact", cross_fold=False)
        )
    # overload caps (DESIGN.md §12): shed accounting always holds, and a
    # bounded run that shed nothing is byte-identical to the unbounded one
    overload = executions.get("cluster-desis-overload")
    if overload is not None:
        failures.extend(overload.meta.get("audit_failures", ()))
        if faulty is not None and not overload.meta.get("slices_shed", 0):
            failures.extend(
                compare_results(scenario, faulty, overload,
                                merge_mode="exact", cross_fold=False)
            )

    if metamorphic:
        try:
            failures.extend(
                check_duplicate_query_invariance(scenario, streams)
            )
        except Exception as exc:
            failures.append(
                f"duplicate-query: raised {type(exc).__name__}: {exc}"
            )
        if clean is not None:
            try:
                failures.extend(
                    check_reshard_invariance(scenario, streams, clean)
                )
            except Exception as exc:
                failures.append(
                    f"reshard: raised {type(exc).__name__}: {exc}"
                )
        sharded = executions.get("parallel-sharded")
        if sharded is not None:
            try:
                failures.extend(
                    check_engine_shard_invariance(scenario, streams, sharded)
                )
            except Exception as exc:
                failures.append(
                    f"shard-invariance: raised {type(exc).__name__}: {exc}"
                )
        try:
            failures.extend(check_span_stage_sum(scenario, streams))
        except Exception as exc:
            failures.append(
                f"span-sum: raised {type(exc).__name__}: {exc}"
            )
        if (
            faulty is not None
            and scenario.fault is not None
            and scenario.fault.link_faults_only
        ):
            try:
                twin = _run_zero_plan_twin(scenario, streams)
                failures.extend(
                    compare_results(scenario, twin, faulty,
                                    merge_mode="exact", cross_fold=False)
                )
                failures.extend(check_fault_goodput(scenario, faulty, twin))
            except Exception as exc:
                failures.append(
                    f"goodput: raised {type(exc).__name__}: {exc}"
                )
    return failures, executions
