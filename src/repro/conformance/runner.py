"""The conformance run loop: generate, execute, compare, shrink, report.

:func:`run_conformance` drives ``--runs`` seeded scenarios through the
full executor matrix and checker stack, shrinks every failure to a minimal
repro, and produces a **deterministic** report: same seed, same code, same
report bytes (no wall-clock, no unseeded randomness — the property tier-1
asserts).  Failures additionally write a standalone repro script and the
minimized scenario JSON next to the report (``--out``).

Per-run counters are published into a
:class:`~repro.obs.registry.MetricsRegistry` under stable names::

    conformance.scenarios      scenarios evaluated
    conformance.executions     executor configurations run
    conformance.comparisons    row-set comparisons performed
    conformance.failures       scenarios with at least one mismatch
    conformance.mismatches     individual mismatch lines
    conformance.shrink_runs    predicate evaluations spent shrinking
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import replace
from typing import Any

from repro.obs import MetricsRegistry, publish_conformance_counters
from repro.obs.log import get_logger
from repro.conformance.check import evaluate_scenario
from repro.conformance.executors import ExecutionResult, executor_matrix
from repro.conformance.scenario import Scenario, ScenarioGenerator
from repro.conformance.shrink import shrink_scenario, write_repro_script

_log = get_logger(__name__)

__all__ = [
    "run_scenario",
    "run_conformance",
    "publish_conformance_counters",
    "render_conformance_summary",
]


def _rows_digest(execution: ExecutionResult) -> str:
    payload = repr(execution.rows).encode()
    return hashlib.sha256(payload).hexdigest()[:16]


def run_scenario(scenario: Scenario, *, metamorphic: bool = True) -> dict[str, Any]:
    """Evaluate one scenario; return its JSON-able verdict."""
    failures, executions = evaluate_scenario(scenario, metamorphic=metamorphic)
    return {
        "name": scenario.name,
        "digest": scenario.digest,
        "total_events": scenario.total_events,
        "queries": len(scenario.queries),
        "executors": {
            name: {"rows": len(execution.rows),
                   "rows_digest": _rows_digest(execution)}
            for name, execution in sorted(executions.items())
        },
        "failures": failures,
        "ok": not failures,
    }


def run_conformance(
    seed: int = 0,
    runs: int = 10,
    *,
    out: str | None = None,
    shrink: bool = True,
    metamorphic: bool = True,
    max_events_per_node: int = 160,
    registry: MetricsRegistry | None = None,
    overrides: dict[str, Any] | None = None,
) -> dict[str, Any]:
    """Run the differential-fuzzing campaign; return the full report.

    ``overrides`` pins scenario knobs across the whole campaign — e.g.
    ``{"merge_mode": "exact", "shards": 4}`` replays every generated
    scenario under those settings instead of the generator's own draws
    (``repro conformance --shards 4`` uses this).  Keys must be
    :class:`~repro.conformance.scenario.Scenario` field names.
    """
    registry = registry if registry is not None else MetricsRegistry()
    generator = ScenarioGenerator(seed, max_events_per_node=max_events_per_node)
    verdicts: list[dict[str, Any]] = []
    repro_paths: list[str] = []
    shrink_runs = 0
    for index in range(runs):
        scenario = generator.generate(index)
        if overrides:
            scenario = replace(scenario, **overrides)
        verdict = run_scenario(scenario, metamorphic=metamorphic)
        if not verdict["ok"] and shrink:
            try:
                shrunk = shrink_scenario(scenario)
                shrink_runs += shrunk.predicate_runs
                verdict["shrunk"] = {
                    "events_before": shrunk.events_before,
                    "events_after": shrunk.events_after,
                    "queries_before": shrunk.queries_before,
                    "queries_after": shrunk.queries_after,
                    "predicate_runs": shrunk.predicate_runs,
                    "digest": shrunk.scenario.digest,
                    "failures": shrunk.failures,
                }
                if out is not None:
                    os.makedirs(out, exist_ok=True)
                    stem = f"repro-{scenario.digest}"
                    script = write_repro_script(
                        shrunk, os.path.join(out, f"{stem}.py")
                    )
                    with open(os.path.join(out, f"{stem}.json"), "w",
                              encoding="utf-8") as handle:
                        handle.write(shrunk.scenario.to_json())
                    repro_paths.append(script)
            except ValueError:
                # A metamorphic-only failure the differential predicate
                # cannot see; report it unshrunk.
                verdict["shrunk"] = None
        verdicts.append(verdict)
        _log.info(
            "conformance scenario %s: %s",
            scenario.name,
            "ok" if verdict["ok"] else f"{len(verdict['failures'])} failure(s)",
        )
    failures = [v for v in verdicts if not v["ok"]]
    report = {
        "seed": seed,
        "runs": runs,
        "metamorphic": metamorphic,
        **({"overrides": dict(overrides)} if overrides else {}),
        "scenarios": verdicts,
        "failed": len(failures),
        "repro_scripts": [os.path.basename(p) for p in repro_paths],
        "ok": not failures,
    }
    publish_conformance_counters(registry, report, shrink_runs=shrink_runs)
    if out is not None:
        os.makedirs(out, exist_ok=True)
        with open(os.path.join(out, "report.json"), "w",
                  encoding="utf-8") as handle:
            json.dump(report, handle, indent=2, sort_keys=True)
            handle.write("\n")
    return report


def render_conformance_summary(report: dict[str, Any]) -> str:
    """A short human-readable summary of one report."""
    lines = [
        f"conformance: seed={report['seed']} runs={report['runs']} "
        f"failed={report['failed']}"
    ]
    for verdict in report["scenarios"]:
        executors = verdict["executors"]
        status = "ok" if verdict["ok"] else "FAIL"
        lines.append(
            f"  {verdict['name']} [{verdict['digest']}] "
            f"{verdict['total_events']} events, {verdict['queries']} "
            f"queries, {len(executors)} executors: {status}"
        )
        for failure in verdict["failures"]:
            lines.append(f"    {failure}")
        shrunk = verdict.get("shrunk")
        if shrunk:
            lines.append(
                f"    shrunk: {shrunk['events_before']} -> "
                f"{shrunk['events_after']} events, "
                f"{shrunk['queries_before']} -> {shrunk['queries_after']} "
                f"queries in {shrunk['predicate_runs']} runs"
            )
    if report.get("repro_scripts"):
        lines.append(
            "  repro scripts: " + ", ".join(report["repro_scripts"])
        )
    return "\n".join(lines)
