"""Executor adapters: one scenario, every engine, one canonical form.

Each adapter runs a :class:`~repro.conformance.scenario.Scenario` through
one implementation — the single-node engine (per-event and batched, both
merge modes and punctuation modes), the Scotty baseline, the naive oracle,
and the Desis / Disco / Centralized cluster deployments — and normalizes
the emitted windows into canonical rows::

    (query_id, start, end, event_count, value)

sorted by ``(query_id, start, end, event_count)``, so two runs are
comparable regardless of emission order.  User-defined windows open and
terminate at watermark granularity in the decentralized deployments
(Sec 5.1.2), so their decentralized rows legitimately differ from the
centralized ones *and* across shardings; cluster executions flag them in
``incomparable_queries`` and comparisons against a centralized reference
skip them (cluster-vs-cluster comparisons over the same sharding still
check them byte-for-byte).

Disordered scenarios (``max_lateness > 0``) are fed through the standard
:class:`~repro.core.ordering.ReorderBuffer` front-end first — with
``on_late="raise"`` so a scenario whose disorder exceeds its declared
bound fails loudly instead of silently dropping events.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable

from repro.baselines import ScottyProcessor
from repro.cluster import (
    CentralizedCluster,
    ClusterConfig,
    DesisCluster,
    DiscoCluster,
)
from repro.core.config import EngineConfig
from repro.core.engine import AggregationEngine
from repro.core.event import Event, merge_streams
from repro.core.ordering import ReorderBuffer
from repro.core.types import WindowType
from repro.conformance.oracle import naive_results
from repro.conformance.scenario import NEVER, Scenario

__all__ = [
    "Row",
    "ExecutionResult",
    "canonical_rows",
    "in_order_streams",
    "executor_matrix",
    "run_executor",
]

#: canonical window row: (query_id, start | None, end, event_count, value)
Row = tuple


def canonical_rows(sink) -> list[Row]:
    """Normalize a result sink into sorted canonical rows."""
    rows = [
        (r.query_id, r.start, r.end, r.event_count, r.value) for r in sink
    ]
    rows.sort(key=lambda row: (row[0], -1 if row[1] is None else row[1],
                               row[2], row[3], repr(row[4])))
    return rows


@dataclass(slots=True)
class ExecutionResult:
    """One executor's canonical output plus comparison metadata."""

    name: str
    rows: list[Row]
    #: query ids whose rows cannot be compared against a centralized
    #: reference (user-defined windows in cluster deployments)
    incomparable_queries: frozenset[str] = frozenset()
    #: extra observables (network byte counters, work stats) for
    #: metamorphic relations; never part of row equality
    meta: dict[str, Any] = field(default_factory=dict)


# -- stream plumbing ---------------------------------------------------------


def in_order_streams(scenario: Scenario) -> dict[str, list[Event]]:
    """The scenario's per-node streams after the reorder front-end.

    In-order scenarios pass through untouched.  Disordered scenarios are
    arrival-ordered, pushed through a :class:`ReorderBuffer` with the
    scenario's lateness bound, and come out in exact timestamp order
    (timestamps are globally unique by construction).
    """
    if scenario.max_lateness <= 0:
        return scenario.build_streams()
    out = {}
    for node, arrived in scenario.disordered_streams().items():
        buffer = ReorderBuffer(scenario.max_lateness, on_late="raise")
        released: list[Event] = []
        for event in arrived:
            released.extend(buffer.push(event))
        released.extend(buffer.flush())
        out[node] = released
    return out


def _merged(streams: dict[str, list[Event]]) -> list[Event]:
    return list(merge_streams(*(streams[k] for k in sorted(streams))))


def _final_time(scenario: Scenario, merged: list[Event]) -> int:
    if not merged:
        return scenario.tick_interval
    tick = scenario.tick_interval
    return ((merged[-1].time // tick) + 1) * tick


def _cluster_incomparable(scenario: Scenario) -> frozenset[str]:
    return frozenset(
        q.query_id for q in scenario.queries
        if q.window_type == WindowType.USER_DEFINED.value
    )


# -- centralized adapters ----------------------------------------------------


def run_oracle(scenario: Scenario, streams: dict[str, list[Event]]) -> ExecutionResult:
    merged = _merged(streams)
    final = _final_time(scenario, merged)
    rows: list[Row] = []
    for query in scenario.build_queries():
        for start, end, value, count in naive_results(
            query, merged, final, origin=0
        ):
            rows.append((query.query_id, start, end, count, value))
    rows.sort(key=lambda row: (row[0], -1 if row[1] is None else row[1],
                               row[2], row[3], repr(row[4])))
    return ExecutionResult("oracle", rows)


def _run_engine(scenario, streams, *, name, merge_mode, punctuation_mode,
                batched: bool) -> ExecutionResult:
    merged = _merged(streams)
    engine = AggregationEngine(
        scenario.build_queries(),
        punctuation_mode=punctuation_mode,
        merge_mode=merge_mode,
    )
    engine.advance(0)  # anchor fixed windows at the global origin
    if batched:
        engine.process_batch(merged)
    else:
        for event in merged:
            engine.process(event)
    sink = engine.close(_final_time(scenario, merged))
    return ExecutionResult(
        name, canonical_rows(sink),
        meta={"calculations": engine.stats.calculations},
    )


def run_engine_reference(scenario, streams) -> ExecutionResult:
    """The differential reference: per-event, exact merge, heap punctuation."""
    return _run_engine(scenario, streams, name="engine-exact",
                       merge_mode="exact", punctuation_mode="heap",
                       batched=False)


def run_engine_alt_punctuation(scenario, streams) -> ExecutionResult:
    """Opposite punctuation mode — must be byte-identical to the reference."""
    alt = "scan" if scenario.punctuation_mode == "heap" else "heap"
    return _run_engine(scenario, streams, name=f"engine-{alt}",
                       merge_mode="exact", punctuation_mode=alt,
                       batched=False)


def run_engine_batched(scenario, streams) -> ExecutionResult:
    """Batched ingestion with the scenario's merge mode."""
    return _run_engine(
        scenario, streams,
        name=f"engine-batch-{scenario.merge_mode}",
        merge_mode=scenario.merge_mode,
        punctuation_mode=scenario.punctuation_mode,
        batched=True,
    )


def run_parallel_sharded(scenario, streams) -> ExecutionResult:
    """The multi-core sharded backend (DESIGN.md §13).

    Joins the matrix only for fixed-size time-window scenarios (the
    backend's domain).  Always runs with at least two shards so the
    cross-worker reduce path is actually exercised; ``scenario.shards``
    raises the count when the generator drew a wider fan-out.
    """
    merged = _merged(streams)
    shards = scenario.shards if scenario.shards > 1 else 2
    from repro.parallel import ShardedEngine

    engine = ShardedEngine(
        scenario.build_queries(),
        config=EngineConfig(
            merge_mode=scenario.merge_mode,
            punctuation_mode=scenario.punctuation_mode,
            shards=shards,
        ),
    )
    engine.advance(0)
    engine.process_batch(merged)
    sink = engine.close(_final_time(scenario, merged))
    return ExecutionResult(
        "parallel-sharded",
        canonical_rows(sink),
        meta={"shards": shards, "events": engine.stats.events},
    )


def run_scotty(scenario, streams) -> ExecutionResult:
    merged = _merged(streams)
    processor = ScottyProcessor(scenario.build_queries())
    processor.advance(0)
    processor.process_batch(merged)
    sink = processor.close(_final_time(scenario, merged))
    return ExecutionResult("baseline-scotty", canonical_rows(sink))


# -- cluster adapters --------------------------------------------------------


def _cluster_config(scenario: Scenario, *, fault) -> ClusterConfig:
    return ClusterConfig(
        tick_interval=scenario.tick_interval,
        batch_ms=scenario.batch_ms,
        punctuation_mode=scenario.punctuation_mode,
        merge_mode=scenario.merge_mode,
        fault_plan=fault,
        checkpoint_interval=scenario.checkpoint_interval,
        node_timeout=NEVER if fault is not None else 15_000,
    )


def _run_cluster(scenario, streams, *, name, deployment, fault=None,
                 topology=None) -> ExecutionResult:
    topo = topology if topology is not None else scenario.build_topology()
    config = _cluster_config(scenario, fault=fault)
    queries = scenario.build_queries()
    if deployment == "desis":
        cluster = DesisCluster(queries, topo, config=config)
    elif deployment == "disco":
        cluster = DiscoCluster(queries, topo, config=config)
    else:
        cluster = CentralizedCluster(queries, topo, ScottyProcessor,
                                     config=config)
    result = cluster.run({k: list(v) for k, v in streams.items()})
    net = result.network
    return ExecutionResult(
        name,
        canonical_rows(result.sink),
        incomparable_queries=_cluster_incomparable(scenario),
        meta={
            "data_bytes": net.data_bytes,
            "goodput_data_bytes": net.goodput_data_bytes,
            "drops": net.drops,
            "retransmits": net.retransmits,
            "retransmit_exhausted": net.retransmit_exhausted,
            "checkpoints": result.checkpoints,
            "recoveries": result.recoveries,
            "duplicates_suppressed": result.duplicates_suppressed,
        },
    )


def run_desis_cluster(scenario, streams) -> ExecutionResult:
    return _run_cluster(scenario, streams, name="cluster-desis",
                        deployment="desis")


def run_desis_cluster_faulty(scenario, streams) -> ExecutionResult:
    return _run_cluster(scenario, streams, name="cluster-desis-faulty",
                        deployment="desis", fault=scenario.build_fault_plan())


def run_desis_cluster_overload(scenario, streams) -> ExecutionResult:
    """The faulty Desis run again, under the scenario's overload caps.

    Meta carries the shed/degradation counters plus a per-row audit:
    every degraded window's ``completeness`` must equal
    ``1 - union(shed_slices ∩ window) / span`` recomputed from its own
    metadata, and a pristine row must carry none.  When nothing was shed
    the rows must be byte-identical to the unbounded faulty run — that
    comparison happens in ``evaluate_scenario``.
    """
    spec = scenario.overload
    config = _cluster_config(scenario, fault=scenario.build_fault_plan())
    config.channel_credit_bytes = spec.channel_credit_bytes
    config.channel_credit_frames = spec.channel_credit_frames
    config.staging_limit = spec.staging_limit
    cluster = DesisCluster(
        scenario.build_queries(), scenario.build_topology(), config=config
    )
    result = cluster.run({k: list(v) for k, v in streams.items()})
    audit: list[str] = []
    for row in result.sink:
        shed = getattr(row, "shed_slices", ())
        completeness = getattr(row, "completeness", 1.0)
        label = f"overload-audit: {row.query_id}[{row.start}..{row.end})"
        if not shed:
            if completeness != 1.0:
                audit.append(
                    f"{label} completeness {completeness} without shed_slices"
                )
            continue
        clipped = sorted(
            (max(s, row.start), min(e, row.end)) for _, s, e in shed
        )
        union, cursor = 0, row.start
        for s, e in clipped:
            s = max(s, cursor)
            if e > s:
                union += e - s
                cursor = e
        expected = max(1.0 - union / max(row.end - row.start, 1), 0.0)
        if abs(completeness - expected) > 1e-12:
            audit.append(
                f"{label} completeness {completeness} != {expected} "
                f"recomputed from shed_slices"
            )
    if (
        scenario.overload.staging_limit is not None
        and result.peak_staging > scenario.overload.staging_limit
    ):
        audit.append(
            f"overload-audit: peak staging {result.peak_staging} exceeded "
            f"the cap {scenario.overload.staging_limit}"
        )
    return ExecutionResult(
        "cluster-desis-overload",
        canonical_rows(result.sink),
        incomparable_queries=_cluster_incomparable(scenario),
        meta={
            "slices_shed": result.slices_shed,
            "degraded_windows": result.degraded_windows,
            "peak_staging": result.peak_staging,
            "audit_failures": audit,
        },
    )


def run_centralized_cluster(scenario, streams) -> ExecutionResult:
    return _run_cluster(scenario, streams, name="cluster-centralized",
                        deployment="centralized")


def run_disco_cluster(scenario, streams) -> ExecutionResult:
    return _run_cluster(scenario, streams, name="cluster-disco",
                        deployment="disco")


# -- the matrix --------------------------------------------------------------

ExecutorFn = Callable[[Scenario, dict[str, list[Event]]], ExecutionResult]


def executor_matrix(scenario: Scenario) -> list[tuple[str, ExecutorFn]]:
    """The applicable executor configurations for ``scenario``, in order.

    The first entry is always the differential reference.  Every scenario
    gets at least six configurations; Disco joins when the query mix is
    inside its supported domain (fixed-size time windows), and the faulty
    Desis run joins when the scenario carries a fault plan.
    """
    matrix: list[tuple[str, ExecutorFn]] = [
        ("engine-exact", run_engine_reference),
        ("oracle", run_oracle),
        ("engine-alt", run_engine_alt_punctuation),
        ("engine-batch", run_engine_batched),
        ("baseline-scotty", run_scotty),
        ("cluster-desis", run_desis_cluster),
        ("cluster-centralized", run_centralized_cluster),
    ]
    if scenario.fixed_time_only:
        matrix.append(("cluster-disco", run_disco_cluster))
        matrix.append(("parallel-sharded", run_parallel_sharded))
    if scenario.fault is not None:
        matrix.append(("cluster-desis-faulty", run_desis_cluster_faulty))
    if scenario.overload is not None and scenario.fault is not None:
        matrix.append(("cluster-desis-overload", run_desis_cluster_overload))
    return matrix


def run_executor(name: str, scenario: Scenario,
                 streams: dict[str, list[Event]] | None = None) -> ExecutionResult:
    """Run one executor by matrix name (used by shrunk repro scripts)."""
    if streams is None:
        streams = in_order_streams(scenario)
    for candidate, fn in executor_matrix(scenario):
        if candidate == name:
            return fn(scenario, streams)
    raise KeyError(f"unknown executor {name!r} for scenario {scenario.name!r}")
