"""Conformance: randomized differential fuzzing across every engine.

The subsystem (DESIGN.md §10) generates seeded
:class:`~repro.conformance.scenario.Scenario` descriptions over the full
knob cross-product — stream shape, query mix, disorder bound, topology,
fault plan, batching, merge mode, checkpointing, punctuation mode — runs
each through every applicable executor (single-node engine, baselines,
Desis/Disco/Centralized clusters), checks equivalence against the naive
oracle and a web of byte-identical and metamorphic relations, and shrinks
any failure to a minimal standalone repro via delta debugging.

Entry points::

    python -m repro conformance --seed 7 --runs 25 --out conformance-out

    from repro.conformance import run_conformance
    report = run_conformance(seed=7, runs=25)
"""

from repro.conformance.check import (
    check_duplicate_query_invariance,
    check_fault_goodput,
    check_reshard_invariance,
    compare_results,
    evaluate_scenario,
)
from repro.conformance.executors import (
    ExecutionResult,
    canonical_rows,
    executor_matrix,
    in_order_streams,
    run_executor,
)
from repro.conformance.oracle import (
    EXACT,
    FLOAT_FOLD_FUNCTIONS,
    OracleWindow,
    TolerancePolicy,
    naive_results,
    naive_value,
    naive_windows,
    tolerance_for,
    values_match,
)
from repro.conformance.runner import (
    publish_conformance_counters,
    render_conformance_summary,
    run_conformance,
    run_scenario,
)
from repro.conformance.scenario import (
    CrashSpec,
    FaultSpec,
    QuerySpec,
    Scenario,
    ScenarioGenerator,
)
from repro.conformance.shrink import (
    ShrinkResult,
    shrink_scenario,
    write_repro_script,
)

__all__ = [
    "CrashSpec",
    "EXACT",
    "ExecutionResult",
    "FLOAT_FOLD_FUNCTIONS",
    "FaultSpec",
    "OracleWindow",
    "QuerySpec",
    "Scenario",
    "ScenarioGenerator",
    "ShrinkResult",
    "TolerancePolicy",
    "canonical_rows",
    "check_duplicate_query_invariance",
    "check_fault_goodput",
    "check_reshard_invariance",
    "compare_results",
    "evaluate_scenario",
    "executor_matrix",
    "in_order_streams",
    "naive_results",
    "naive_value",
    "naive_windows",
    "publish_conformance_counters",
    "render_conformance_summary",
    "run_conformance",
    "run_executor",
    "run_scenario",
    "shrink_scenario",
    "tolerance_for",
    "values_match",
    "write_repro_script",
]
