"""Checkpoint persistence and state snapshot/restore helpers (DESIGN.md §8).

A checkpoint is a list of codec-serialized messages: one
:class:`~repro.network.messages.CheckpointMessage` header (sequence
numbers, forward floors, per-child merge cursors, the root's emit ledger)
followed by :class:`~repro.network.messages.SnapshotChunk` payloads — the
per-child pending slice records, the retained upward batches an
intermediate may still be asked to re-ship, and the root's per-group
window-assembly state.  Serializing through the codec keeps snapshots
deterministic (the same state always produces the same bytes) and reuses
the round-trip-fuzzed wire format instead of inventing a second one.

Stores are pluggable: :class:`InMemoryCheckpointStore` for simulation and
tests, :class:`DirCheckpointStore` for crash-surviving files written with
an atomic rename.  Only the latest checkpoint per node is kept — recovery
never reads history, and retention trimming is keyed off the newest floor.
"""

from __future__ import annotations

import os
from typing import Any

from repro.core.errors import ClusterError
from repro.core.operators import OperatorSetState
from repro.core.types import OperatorKind
from repro.network.codec import (
    BinaryCodec,
    _ops_from_jsonable,
    _ops_to_jsonable,
)
from repro.network.messages import (
    CheckpointMessage,
    Message,
    PartialBatchMessage,
    SnapshotChunk,
)

__all__ = [
    "CheckpointStore",
    "InMemoryCheckpointStore",
    "DirCheckpointStore",
    "encode_checkpoint",
    "decode_checkpoint",
    "merger_cursors",
    "pending_chunks",
    "restore_mergers",
    "retained_chunks",
    "restore_retained",
    "assembler_chunks",
    "restore_assembler",
    "seed_operator_set",
    "shed_chunks",
    "restore_shed",
]

#: canonical serialization for persisted chunks, independent of the wire
#: codec the deployment happens to use (a StringCodec cluster still saves
#: compact deterministic snapshots)
_CODEC = BinaryCodec()

_U32_MAX = 0xFFFFFFFF


class CheckpointStore:
    """Persistence interface: keep the latest checkpoint per node."""

    def save(self, node_id: str, checkpoint_id: int, chunks: list[bytes]) -> None:
        raise NotImplementedError

    def load_latest(self, node_id: str) -> tuple[int, list[bytes]] | None:
        """``(checkpoint_id, chunks)`` of the newest checkpoint, or ``None``."""
        raise NotImplementedError


class InMemoryCheckpointStore(CheckpointStore):
    """Latest-only in-process store (simulation and tests)."""

    def __init__(self) -> None:
        self._snapshots: dict[str, tuple[int, list[bytes]]] = {}
        self.saves = 0
        self.bytes_written = 0

    def save(self, node_id: str, checkpoint_id: int, chunks: list[bytes]) -> None:
        self._snapshots[node_id] = (checkpoint_id, list(chunks))
        self.saves += 1
        self.bytes_written += sum(len(chunk) for chunk in chunks)

    def load_latest(self, node_id: str) -> tuple[int, list[bytes]] | None:
        found = self._snapshots.get(node_id)
        if found is None:
            return None
        checkpoint_id, chunks = found
        return checkpoint_id, list(chunks)


class DirCheckpointStore(CheckpointStore):
    """One ``<node>.ckpt`` file per node, replaced atomically on save.

    File layout: ``u32 chunk-count`` then per chunk ``u32 length + bytes``,
    preceded by a ``u32`` checkpoint id.  The write goes to a ``.tmp``
    sibling first and is moved into place with :func:`os.replace`, so a
    crash mid-save leaves the previous checkpoint intact.
    """

    def __init__(self, directory: str) -> None:
        self.directory = directory
        os.makedirs(directory, exist_ok=True)
        self.saves = 0
        self.bytes_written = 0

    def _path(self, node_id: str) -> str:
        return os.path.join(self.directory, f"{node_id}.ckpt")

    def save(self, node_id: str, checkpoint_id: int, chunks: list[bytes]) -> None:
        if not 0 <= checkpoint_id <= _U32_MAX:
            raise ClusterError(f"checkpoint id out of range: {checkpoint_id}")
        parts = [checkpoint_id.to_bytes(4, "big"), len(chunks).to_bytes(4, "big")]
        for chunk in chunks:
            parts.append(len(chunk).to_bytes(4, "big"))
            parts.append(chunk)
        blob = b"".join(parts)
        path = self._path(node_id)
        tmp = path + ".tmp"
        with open(tmp, "wb") as handle:
            handle.write(blob)
        os.replace(tmp, path)
        self.saves += 1
        self.bytes_written += len(blob)

    def load_latest(self, node_id: str) -> tuple[int, list[bytes]] | None:
        path = self._path(node_id)
        try:
            with open(path, "rb") as handle:
                blob = handle.read()
        except FileNotFoundError:
            return None
        if len(blob) < 8:
            raise ClusterError(f"corrupt checkpoint file: {path}")
        checkpoint_id = int.from_bytes(blob[0:4], "big")
        count = int.from_bytes(blob[4:8], "big")
        chunks: list[bytes] = []
        pos = 8
        for _ in range(count):
            if pos + 4 > len(blob):
                raise ClusterError(f"corrupt checkpoint file: {path}")
            size = int.from_bytes(blob[pos : pos + 4], "big")
            pos += 4
            if pos + size > len(blob):
                raise ClusterError(f"corrupt checkpoint file: {path}")
            chunks.append(blob[pos : pos + size])
            pos += size
        return checkpoint_id, chunks


# -- serialization ---------------------------------------------------------------


def encode_checkpoint(messages: list[Message]) -> list[bytes]:
    return [_CODEC.encode(message) for message in messages]


def decode_checkpoint(
    blobs: list[bytes],
) -> tuple[CheckpointMessage, list[SnapshotChunk]]:
    """Split a loaded checkpoint back into its header and chunks."""
    if not blobs:
        raise ClusterError("empty checkpoint")
    header = _CODEC.decode(blobs[0])
    if not isinstance(header, CheckpointMessage):
        raise ClusterError(
            f"checkpoint does not start with a header: {type(header).__name__}"
        )
    chunks: list[SnapshotChunk] = []
    for blob in blobs[1:]:
        chunk = _CODEC.decode(blob)
        if not isinstance(chunk, SnapshotChunk):
            raise ClusterError(
                f"unexpected checkpoint chunk: {type(chunk).__name__}"
            )
        chunks.append(chunk)
    return header, chunks


# -- merger state ----------------------------------------------------------------


def merger_cursors(mergers) -> list[tuple[int, str, int, int]]:
    """Per-child reliable merge cursors for the checkpoint header."""
    return [
        (group_id, child, state.next_seq, state.covered)
        for group_id, merger in enumerate(mergers)
        for child, state in merger.children.items()
    ]


def pending_chunks(node_id: str, checkpoint_id: int, mergers) -> list[SnapshotChunk]:
    """One chunk per (group, child) with buffered-but-unreleased records."""
    return [
        SnapshotChunk(
            sender=node_id,
            checkpoint_id=checkpoint_id,
            group_id=group_id,
            kind="pending",
            child=child,
            records=list(state.pending),
        )
        for group_id, merger in enumerate(mergers)
        for child, state in merger.children.items()
        if state.pending
    ]


def restore_mergers(
    mergers, header: CheckpointMessage, chunks: list[SnapshotChunk]
) -> None:
    """Apply checkpointed coverage, cursors, and pending buffers to fresh
    mergers (children must already be attached)."""
    for group_id, (_, _, forwarded_to) in header.groups.items():
        if group_id < len(mergers):
            mergers[group_id].forwarded_to = forwarded_to
    for group_id, child, next_seq, covered in header.cursors:
        if group_id >= len(mergers):
            continue
        state = mergers[group_id].children.get(child)
        if state is not None:
            state.next_seq = next_seq
            state.covered = covered
    for chunk in chunks:
        if chunk.kind != "pending" or chunk.group_id >= len(mergers):
            continue
        state = mergers[chunk.group_id].children.get(chunk.child)
        if state is not None:
            state.pending = list(chunk.records)


# -- retained upward batches ------------------------------------------------------


def retained_chunks(
    node_id: str, checkpoint_id: int, retained: list[PartialBatchMessage]
) -> list[SnapshotChunk]:
    """The retained upward batches, in original ship order."""
    return [
        SnapshotChunk(
            sender=node_id,
            checkpoint_id=checkpoint_id,
            group_id=batch.group_id,
            kind="retained",
            seq=batch.first_slice_seq,
            covered=batch.covered_to,
            records=list(batch.records),
        )
        for batch in retained
    ]


def restore_retained(
    node_id: str, chunks: list[SnapshotChunk]
) -> list[PartialBatchMessage]:
    """Rebuild the retention list (chunk order is the original ship order)."""
    return [
        PartialBatchMessage(
            sender=node_id,
            group_id=chunk.group_id,
            first_slice_seq=chunk.seq,
            covered_to=chunk.covered,
            records=list(chunk.records),
        )
        for chunk in chunks
        if chunk.kind == "retained"
    ]


# -- shed-coverage ledger (DESIGN.md §12) ------------------------------------------


def shed_chunks(
    node_id: str, checkpoint_id: int, shed_pending: list[list[tuple[str, int, int]]]
) -> list[SnapshotChunk]:
    """One chunk per group with shed coverage not yet reported upward.

    The ledger is snapshot state: a recovering node must still forward the
    shed intervals it had accumulated, or the root would stamp affected
    windows complete after a crash.
    """
    return [
        SnapshotChunk(
            sender=node_id,
            checkpoint_id=checkpoint_id,
            group_id=group_id,
            kind="shed",
            state=[list(entry) for entry in entries],
        )
        for group_id, entries in enumerate(shed_pending)
        if entries
    ]


def restore_shed(
    n_groups: int, chunks: list[SnapshotChunk]
) -> list[list[tuple[str, int, int]]]:
    """Rebuild the per-group pending shed ledger from its chunks."""
    shed_pending: list[list[tuple[str, int, int]]] = [[] for _ in range(n_groups)]
    for chunk in chunks:
        if chunk.kind == "shed" and chunk.group_id < n_groups:
            shed_pending[chunk.group_id] = [
                (node, int(start), int(end)) for node, start, end in chunk.state
            ]
    return shed_pending


# -- root assembler state ---------------------------------------------------------


def seed_operator_set(kinds, inserts: int, partials: dict[OperatorKind, Any]):
    """Rebuild an :class:`OperatorSetState` from frozen partials.

    Exact for every operator: the scalar accumulators resume from the
    precise value they held, and sort buffers resume from the (sorted)
    value multiset — ``partial()`` sorts again on the next freeze, so the
    result is identical to an uninterrupted run.
    """
    ops = OperatorSetState(kinds)
    ops.inserts = inserts
    for state in ops.states:
        partial = partials.get(state.kind)
        if partial is None and state.kind is not OperatorKind.DECOMPOSABLE_SORT:
            continue
        if state.kind in (OperatorKind.SUM, OperatorKind.SUM_OF_SQUARES):
            state.total = float(partial)
        elif state.kind is OperatorKind.COUNT:
            state.count = int(partial)
        elif state.kind is OperatorKind.MULTIPLICATION:
            state.product = float(partial)
        elif state.kind is OperatorKind.DECOMPOSABLE_SORT:
            if partial is None:
                state.lo = None
                state.hi = None
            else:
                state.lo, state.hi = float(partial[0]), float(partial[1])
        elif state.kind is OperatorKind.NON_DECOMPOSABLE_SORT:
            state.values = [float(v) for v in partial]
    return ops


def assembler_chunks(node_id: str, checkpoint_id: int, assemblers) -> list[SnapshotChunk]:
    """One chunk per group with the record buffer and per-query progress."""
    chunks = []
    for assembler in assemblers:
        state = {
            "covered": assembler.covered,
            "base": assembler.base,
            "fixed": [
                [s.query.query_id, s.next_close_start] for s in assembler.fixed
            ],
            "sessions": [
                [
                    s.query.query_id,
                    s.open_start,
                    s.last,
                    s.count,
                    _ops_to_jsonable(s.ops),
                ]
                for s in assembler.sessions
            ],
            "userdef": [
                [s.query.query_id, list(s.eps), s.prev_end, s.pointer]
                for s in assembler.userdef
            ],
            "counts": [
                [
                    s.query.query_id,
                    s.seen,
                    [
                        [start, ops.inserts, _ops_to_jsonable(ops.partials())]
                        for start, ops in s.open
                    ],
                ]
                for s in assembler.counts
            ],
        }
        if assembler.shed:
            # Optional key: checkpoints without shedding stay byte-identical
            # to pre-overload snapshots (restore uses ``.get`` defaults).
            state["shed"] = [list(entry) for entry in assembler.shed]
        chunks.append(
            SnapshotChunk(
                sender=node_id,
                checkpoint_id=checkpoint_id,
                group_id=assembler.group.group_id,
                kind="assembler",
                covered=assembler.covered,
                records=list(assembler.records),
                state=state,
            )
        )
    return chunks


def restore_assembler(assembler, chunk: SnapshotChunk) -> None:
    """Load one group's window-assembly progress from its chunk."""
    state = chunk.state or {}
    assembler.records = list(chunk.records)
    assembler.ends = [record.end for record in assembler.records]
    assembler.covered = state.get("covered", assembler.origin)
    assembler.base = state.get("base", 0)
    assembler.shed = [
        (node, int(start), int(end))
        for node, start, end in state.get("shed", [])
    ]
    fixed = {s.query.query_id: s for s in assembler.fixed}
    for state_ in assembler.fixed:
        # The incremental merge aggregate is a derived cache over consumed
        # records; drop it so it rebuilds lazily from the restored records.
        state_.agg = None
        state_.next_abs = assembler.base
    for query_id, next_close_start in state.get("fixed", []):
        found = fixed.get(query_id)
        if found is not None:
            found.next_close_start = next_close_start
    sessions = {s.query.query_id: s for s in assembler.sessions}
    for query_id, open_start, last, count, ops in state.get("sessions", []):
        found = sessions.get(query_id)
        if found is None:
            continue
        found.open_start = open_start
        found.last = last
        found.count = count
        found.ops = _ops_from_jsonable(ops)
    userdef = {s.query.query_id: s for s in assembler.userdef}
    for query_id, eps, prev_end, pointer in state.get("userdef", []):
        found = userdef.get(query_id)
        if found is None:
            continue
        found.eps = list(eps)
        found.prev_end = prev_end
        found.pointer = pointer
    counts = {s.query.query_id: s for s in assembler.counts}
    for query_id, seen, open_windows in state.get("counts", []):
        found = counts.get(query_id)
        if found is None:
            continue
        found.seen = seen
        found.open = [
            (start, seed_operator_set(found.kinds, inserts, _ops_from_jsonable(ops)))
            for start, inserts, ops in open_windows
        ]
