"""Heartbeat-driven soft eviction and rejoin (the fault-tolerant half of
Sec 3.2's membership protocol).

The paper's management protocol evicts a silent node; with a
:class:`~repro.network.simnet.FaultPlan` active a node may merely be
partitioned, so parents (root and intermediates) *soft*-evict instead:
the child is dropped from every :class:`~repro.cluster.merger.GroupMerger`
— coverage resumes without it, results degrade gracefully — but the
parent remembers it.  When the child's heartbeats come back, the parent
re-attaches it and sends a :class:`~repro.network.messages.ResyncMessage`:
a fresh reliable-channel epoch (stale in-flight frames die at the
transport) plus, per query-group, the slice sequence to resume at and the
coverage already assembled without it (the child prunes work for windows
that closed degraded during the outage).
"""

from __future__ import annotations

from repro.cluster.merger import GroupMerger

__all__ = ["ChildLiveness", "resync_entries", "recovery_entries"]


class ChildLiveness:
    """Tracks one parent's direct children by heartbeat recency."""

    __slots__ = ("timeout", "last_seen", "evicted", "soft_evictions", "rejoins")

    def __init__(self, children, origin: int, timeout: int) -> None:
        self.timeout = timeout
        self.last_seen: dict[str, int] = {child: origin for child in children}
        self.evicted: set[str] = set()
        self.soft_evictions = 0
        self.rejoins = 0

    def tracks(self, child: str) -> bool:
        """Whether ``child`` is a direct child (live or soft-evicted) —
        parents also see forwarded heartbeats of deeper descendants."""
        return child in self.last_seen or child in self.evicted

    def beat(self, child: str, now: int) -> bool:
        """Record a heartbeat; returns True when ``child`` must rejoin."""
        if child in self.evicted:
            self.evicted.discard(child)
            self.last_seen[child] = now
            self.rejoins += 1
            return True
        if child in self.last_seen:
            self.last_seen[child] = now
        return False

    def force_evict(self, child: str) -> bool:
        """Soft-evict a live child immediately (slow-consumer detection,
        DESIGN.md §12): same evicted state — and therefore the same
        heartbeat-rejoin/resync path — as a silent child swept by timeout.
        Returns True when the child was live."""
        if child not in self.last_seen or child in self.evicted:
            return False
        del self.last_seen[child]
        self.evicted.add(child)
        self.soft_evictions += 1
        return True

    def sweep(self, now: int) -> list[str]:
        """Soft-evict (and return) children silent for over the timeout."""
        dead = sorted(
            child
            for child, seen in self.last_seen.items()
            if now - seen > self.timeout
        )
        for child in dead:
            del self.last_seen[child]
            self.evicted.add(child)
            self.soft_evictions += 1
        return dead

    def add(self, child: str, now: int) -> None:
        self.evicted.discard(child)
        self.last_seen[child] = now

    def remove(self, child: str) -> None:
        """Hard removal (node left the cluster): forget it entirely."""
        self.last_seen.pop(child, None)
        self.evicted.discard(child)


def resync_entries(mergers: list[GroupMerger]) -> dict[int, tuple[int, int]]:
    """Per-group ``(next_slice_seq, covered_to)`` for a rejoining child.

    A re-attached child starts a fresh slice sequence at zero, and must
    not re-ship records for coverage the parent already assembled without
    it — exactly the state :meth:`GroupMerger.add_child` initializes.
    """
    return {
        group_id: (0, merger.forwarded_to)
        for group_id, merger in enumerate(mergers)
    }


def recovery_entries(
    mergers: list[GroupMerger], child: str
) -> dict[int, tuple[int, int]]:
    """Per-group restored merge cursors for one child after a parent
    recovered from a checkpoint (DESIGN.md §8).

    Unlike :func:`resync_entries` the sequence does *not* restart at zero:
    the parent resumes at the checkpointed ``next_seq``, and the child
    fast-forwards — re-shipping only the retained suffix past
    ``(next_seq, covered)`` with its original sequence numbers.
    """
    out: dict[int, tuple[int, int]] = {}
    for group_id, merger in enumerate(mergers):
        state = merger.children.get(child)
        if state is not None:
            out[group_id] = (state.next_seq, state.covered)
    return out
