"""The Disco baseline (Benson et al., EDBT 2020) — Sec 6.1.1.

Disco also pushes window aggregation down to local nodes, but with three
differences from Desis that the evaluation measures:

1. locals use Scotty-style slicing, i.e. sharing only between identical
   aggregation functions, and check punctuations per event;
2. partial results travel **per window**, not per slice — overlapping
   windows each ship their own partials, and intermediate/root nodes
   process every window individually (Fig 11d: traffic grows with the
   number of concurrent windows);
3. messages are JSON **strings** rather than bytes (Fig 11b: higher
   network overhead for the same payload).

This implementation supports fixed-size time windows (the window types the
paper's decentralized experiments exercise) and both decomposable and
holistic functions (holistic windows ship their collected values).
"""

from __future__ import annotations

import time as _time
from typing import Iterable

from repro.core.analyzer import analyze
from repro.core.engine import EngineStats, GroupRuntime
from repro.core.errors import ClusterError
from repro.core.event import Event
from repro.core.functions import finalize
from repro.core.operators import merge_partials
from repro.core.query import Query
from repro.core.results import ResultSink, WindowResult
from repro.core.types import NodeRole, OperatorKind, SharingPolicy, WindowMeasure, WindowType
from repro.cluster.config import ClusterConfig
from repro.cluster.desis import ClusterRunResult
from repro.network.codec import StringCodec
from repro.network.messages import ControlMessage, WindowPartialMessage
from repro.network.simnet import SimNetwork, SimNode
from repro.network.topology import Topology

__all__ = ["DiscoCluster"]


def _check_supported(queries: list[Query]) -> None:
    for query in queries:
        if query.window.window_type not in (WindowType.TUMBLING, WindowType.SLIDING):
            raise ClusterError(
                f"Disco baseline supports fixed-size windows only, got "
                f"{query.window.window_type.value} ({query.query_id})"
            )
        if query.window.measure is not WindowMeasure.TIME:
            raise ClusterError(
                f"Disco baseline supports time-based windows only "
                f"({query.query_id})"
            )


class _DiscoLocal(SimNode):
    """Scotty slicing on the local node; one partial message per window."""

    def __init__(self, node_id: str, parent: str, queries: list[Query],
                 config: ClusterConfig) -> None:
        super().__init__(node_id, NodeRole.LOCAL)
        self.parent = parent
        self.config = config
        self.stats = EngineStats()
        self._net: SimNetwork | None = None
        self._now = config.origin
        plan = analyze(queries, policy=SharingPolicy.SAME_FUNCTION)
        self.runtimes = [
            GroupRuntime(
                group,
                ResultSink(keep=False),
                self.stats,
                punctuation_mode="scan",
                window_sink=self._on_window,
            )
            for group in plan.groups
        ]
        for runtime in self.runtimes:
            runtime.advance(config.origin)

    def _on_window(self, window, merged_ops, count, end) -> None:
        if count == 0 or self._net is None:
            return
        values = merged_ops.get(OperatorKind.NON_DECOMPOSABLE_SORT)
        ops = {
            kind: partial
            for kind, partial in merged_ops.items()
            if kind is not OperatorKind.NON_DECOMPOSABLE_SORT
        }
        # Disco ships per-window partials per query: one message each,
        # which is what makes its traffic grow with concurrent windows
        # (Fig 11d).
        for query in window.queries:
            self._net.send(
                self.node_id,
                self.parent,
                WindowPartialMessage(
                    sender=self.node_id,
                    query_id=query.query_id,
                    start=window.start,
                    end=end,
                    count=count,
                    covered_to=self._now,
                    ops=ops,
                    values=values,
                ),
            )

    def on_event(self, event: Event, now: int, net: SimNetwork) -> None:
        self._net, self._now = net, now
        self.stats.events += 1
        for runtime in self.runtimes:
            runtime.process(event)

    def on_tick(self, now: int, net: SimNetwork) -> None:
        self._net, self._now = net, now
        for runtime in self.runtimes:
            runtime.advance(now)
        net.send(
            self.node_id,
            self.parent,
            ControlMessage(sender=self.node_id, kind="progress", payload=now),
        )

    def on_finish(self, now: int, net: SimNetwork) -> None:
        self._net, self._now = net, now
        for runtime in self.runtimes:
            runtime.close(now)
        net.send(
            self.node_id,
            self.parent,
            ControlMessage(sender=self.node_id, kind="progress", payload=now),
        )


class _WindowMergeState:
    """Per-(query, window) accumulation of child partials."""

    __slots__ = ("ops", "values", "count")

    def __init__(self) -> None:
        self.ops: dict = {}
        self.values: list[float] | None = None
        self.count = 0

    def merge(self, message: WindowPartialMessage) -> None:
        self.count += message.count
        for kind, partial in message.ops.items():
            if kind in self.ops:
                self.ops[kind] = merge_partials(kind, self.ops[kind], partial)
            else:
                self.ops[kind] = partial
        if message.values is not None:
            if self.values is None:
                self.values = list(message.values)
            else:
                self.values = merge_partials(
                    OperatorKind.NON_DECOMPOSABLE_SORT, self.values, message.values
                )


class _DiscoMergeNode(SimNode):
    """Shared per-window merge logic for intermediate and root nodes.

    Windows are processed individually (no cross-window sharing) — the
    behaviour Desis improves on (Sec 5).
    """

    def __init__(self, node_id: str, role: NodeRole, children: list[str],
                 origin: int) -> None:
        super().__init__(node_id, role)
        self.covered = {child: origin for child in children}
        self.windows: dict[tuple[str, int, int], _WindowMergeState] = {}
        self.forwarded_to = origin

    def _ingest(self, message, now: int, net: SimNetwork) -> int | None:
        """Returns the new coverage boundary when it advanced.

        Only ``progress`` messages advance coverage: a sender emits them
        *after* all window partials for that boundary, so a window is never
        considered complete while a sibling partial is still in flight.
        """
        if isinstance(message, ControlMessage):
            if message.kind == "progress":
                sender = message.sender
                if sender in self.covered:
                    self.covered[sender] = max(self.covered[sender], message.payload)
                return self._advance()
            return None
        if isinstance(message, WindowPartialMessage):
            key = (message.query_id, message.start, message.end)
            state = self.windows.get(key)
            if state is None:
                state = self.windows[key] = _WindowMergeState()
            state.merge(message)
        return None

    def _advance(self) -> int | None:
        covered = min(self.covered.values()) if self.covered else self.forwarded_to
        if covered <= self.forwarded_to:
            return None
        self.forwarded_to = covered
        return covered

    def _complete_windows(self, covered: int):
        done = [key for key in self.windows if key[2] <= covered]
        done.sort(key=lambda key: (key[2], key[1], key[0]))
        return done


class _DiscoIntermediate(_DiscoMergeNode):
    def __init__(self, node_id: str, parent: str, children: list[str],
                 origin: int) -> None:
        super().__init__(node_id, NodeRole.INTERMEDIATE, children, origin)
        self.parent = parent

    def _forward(self, keys, covered: int, net: SimNetwork) -> None:
        for key in keys:
            state = self.windows.pop(key)
            query_id, start, end = key
            net.send(
                self.node_id,
                self.parent,
                WindowPartialMessage(
                    sender=self.node_id,
                    query_id=query_id,
                    start=start,
                    end=end,
                    count=state.count,
                    covered_to=covered,
                    ops=state.ops,
                    values=state.values,
                ),
            )
        net.send(
            self.node_id,
            self.parent,
            ControlMessage(sender=self.node_id, kind="progress", payload=covered),
        )

    def on_message(self, message, now: int, net: SimNetwork) -> None:
        covered = self._ingest(message, now, net)
        if covered is None:
            return
        self._forward(self._complete_windows(covered), covered, net)

    def finish(self, net: SimNetwork) -> None:
        """Forward windows force-closed past the final coverage boundary."""
        remaining = sorted(self.windows, key=lambda key: (key[2], key[1], key[0]))
        self._forward(remaining, self.forwarded_to, net)


class _DiscoRoot(_DiscoMergeNode):
    def __init__(self, node_id: str, children: list[str], queries: list[Query],
                 origin: int) -> None:
        super().__init__(node_id, NodeRole.ROOT, children, origin)
        self.queries = {query.query_id: query for query in queries}
        self.sink = ResultSink()

    def _emit(self, key, state, now: int) -> None:
        query_id, start, end = key
        query = self.queries[query_id]
        ops = dict(state.ops)
        if state.values is not None:
            ops[OperatorKind.NON_DECOMPOSABLE_SORT] = state.values
        self.sink.emit(
            WindowResult(
                query_id=query_id,
                start=start,
                end=end,
                value=finalize(query.function, ops),
                event_count=state.count,
                emitted_at=now,
            )
        )

    def on_message(self, message, now: int, net: SimNetwork) -> None:
        covered = self._ingest(message, now, net)
        if covered is None:
            return
        for key in self._complete_windows(covered):
            self._emit(key, self.windows.pop(key), now)

    def finish(self, now: int) -> None:
        for key in sorted(self.windows, key=lambda k: (k[2], k[1], k[0])):
            self._emit(key, self.windows.pop(key), now)


class DiscoCluster:
    """The Disco deployment: Scotty locals, per-window string messages."""

    name = "Disco"

    def __init__(self, queries: Iterable[Query], topology: Topology, *,
                 config: ClusterConfig | None = None) -> None:
        base = config if config is not None else ClusterConfig()
        # Disco always talks JSON strings, whatever the cluster default is.
        self.config = ClusterConfig(
            origin=base.origin,
            tick_interval=base.tick_interval,
            latency_ms=base.latency_ms,
            bandwidth_bytes_per_ms=base.bandwidth_bytes_per_ms,
            codec=StringCodec(),
            heartbeat_interval=base.heartbeat_interval,
            node_timeout=base.node_timeout,
            fault_plan=base.fault_plan,
            retransmit_timeout=base.retransmit_timeout,
            max_retries=base.max_retries,
        )
        self.topology = topology
        self.queries = list(queries)
        _check_supported(self.queries)
        self.net = SimNetwork(
            default_codec=self.config.codec,
            default_latency_ms=self.config.latency_ms,
            default_bandwidth_bytes_per_ms=self.config.bandwidth_bytes_per_ms,
            fault_plan=self.config.fault_plan,
            retransmit_timeout_ms=self.config.retransmit_timeout,
            max_retries=self.config.max_retries,
        )
        origin = self.config.origin
        self.root = _DiscoRoot(
            topology.root, topology.children(topology.root), self.queries, origin
        )
        self.net.add_node(self.root)
        self.locals: dict[str, _DiscoLocal] = {}
        self.mids: dict[str, _DiscoIntermediate] = {}
        for node_id in topology.nodes():
            role = topology.role(node_id)
            if role is NodeRole.LOCAL:
                node = _DiscoLocal(
                    node_id, topology.parent(node_id), self.queries, self.config
                )
                self.locals[node_id] = node
                self.net.add_node(node)
            elif role is NodeRole.INTERMEDIATE:
                mid = _DiscoIntermediate(
                    node_id,
                    topology.parent(node_id),
                    topology.children(node_id),
                    origin,
                )
                self.mids[node_id] = mid
                self.net.add_node(mid)
        for child, parent in topology.parents.items():
            self.net.connect(child, parent)

    def _align_up(self, time: int) -> int:
        interval = self.config.tick_interval
        return ((time // interval) + 1) * interval

    def run(self, streams: dict[str, Iterable[Event]]) -> ClusterRunResult:
        started = _time.perf_counter()
        last = self.config.origin
        events = 0
        for node_id, stream in streams.items():
            if node_id not in self.locals:
                raise ClusterError(f"{node_id!r} is not a local node")
            materialized = list(stream)
            events += len(materialized)
            last = max(last, self.net.inject_stream(node_id, materialized))
        end = self._align_up(last)
        for node_id in self.locals:
            self.net.schedule_ticks(
                node_id,
                start=self.config.origin,
                end=end,
                interval=self.config.tick_interval,
            )
        self.net.run()
        for node in self.locals.values():
            node.on_finish(end, self.net)
        self.net.run()
        # Flush windows force-closed past coverage, deepest layer first.
        for node_id in sorted(
            self.mids, key=self.topology.hops_to_root, reverse=True
        ):
            self.mids[node_id].finish(self.net)
            self.net.run()
        self.root.finish(int(self.net.now))
        wall = _time.perf_counter() - started
        return ClusterRunResult(
            sink=self.root.sink,
            network=self.net.stats(),
            cpu_by_role=self.net.cpu_time_by_role(),
            wall_seconds=wall,
            events=events,
            local_stats={
                node_id: node.stats for node_id, node in self.locals.items()
            },
            node_cpu={
                node_id: node.cpu_time
                for node_id, node in self.net.nodes.items()
            },
        )
