"""The Desis decentralized deployment (Sec 3, Sec 5).

:class:`DesisCluster` wires local, intermediate, and root nodes over the
simulated network, broadcasts the window attributes (query-groups), drives
the local event streams and watermark ticks, and collects results, traffic,
and per-node work statistics.

Runtime management (Sec 3.2) is supported through scheduled *actions*:
``add_query`` / ``remove_query`` and ``add_local_node`` / ``remove_node``
can be invoked mid-run, and heartbeat timeouts surface dead nodes via
``evict_timed_out``.
"""

from __future__ import annotations

import time as _time
from dataclasses import dataclass, field
from typing import Callable, Iterable

from repro.core.analyzer import QueryGroup, QueryPlan, analyze
from repro.core.engine import EngineStats
from repro.core.errors import ClusterError
from repro.core.event import Event
from repro.core.query import Query
from repro.core.results import ResultSink
from repro.core.serde import query_to_dict
from repro.core.types import NodeRole, SharingPolicy
from repro.cluster.checkpoint import (
    CheckpointStore,
    DirCheckpointStore,
    InMemoryCheckpointStore,
)
from repro.cluster.config import ClusterConfig
from repro.cluster.intermediate import IntermediateNode
from repro.cluster.local import LocalNode
from repro.cluster.root import RootAssembler, RootNode
from repro.network.messages import ControlMessage, ResyncMessage
from repro.network.simnet import NetworkStats, SimNetwork
from repro.network.topology import Topology
from repro.obs.log import get_logger, kv
from repro.obs.tracing import NULL_RECORDER, TraceRecorder

_log = get_logger(__name__)

__all__ = ["DesisCluster", "ClusterRunResult"]


@dataclass(slots=True)
class ClusterRunResult:
    """Everything a decentralized run produced."""

    sink: ResultSink
    network: NetworkStats
    cpu_by_role: dict[NodeRole, float]
    wall_seconds: float
    events: int
    local_stats: dict[str, EngineStats] = field(default_factory=dict)
    node_cpu: dict[str, float] = field(default_factory=dict)
    #: the run's trace recorder (the shared no-op unless ``config.trace``);
    #: feed emitted results to ``recorder.explain_window`` for provenance
    recorder: TraceRecorder = field(default_factory=lambda: NULL_RECORDER)
    #: recovery accounting (DESIGN.md §8): checkpoints persisted, nodes
    #: restored from a state-losing crash, children rerouted at failover,
    #: and replayed window results the exactly-once ledger kept out of the
    #: sink.  All zero when checkpointing is off and no node loses state.
    checkpoints: int = 0
    recoveries: int = 0
    reroutes: int = 0
    duplicates_suppressed: int = 0
    #: merge operator executions during root window assembly — the work
    #: the incremental merge layer (``config.merge_mode``) shrinks for
    #: overlapping fixed windows (see repro.core.incmerge)
    root_merge_ops: int = 0
    #: overload-control accounting (DESIGN.md §12): windows emitted with
    #: ``completeness`` below 1.0, whole slices deliberately shed under
    #: the staging cap, the cluster-wide staging high-water mark, and
    #: children soft-evicted for persistent credit stalls.  All zero
    #: without the opt-in caps.
    degraded_windows: int = 0
    slices_shed: int = 0
    peak_staging: int = 0
    slow_consumer_evictions: int = 0

    @property
    def throughput(self) -> float:
        """Events per wall-clock second across the whole cluster run.

        The simulation executes every node on one CPU, so this is total
        cluster work, not scale-out throughput — see
        :attr:`modeled_parallel_throughput` for the paper's metric.
        """
        return self.events / self.wall_seconds if self.wall_seconds > 0 else 0.0

    @property
    def bottleneck_node(self) -> tuple[str, float]:
        """The node whose handlers consumed the most CPU time."""
        if not self.node_cpu:
            return ("", 0.0)
        node = max(self.node_cpu, key=self.node_cpu.__getitem__)
        return node, self.node_cpu[node]

    @property
    def modeled_parallel_throughput(self) -> float:
        """Sustainable throughput with one core per node (Sec 6.1).

        Every node runs concurrently in a real deployment, so the system
        sustains ``events / busiest-node-time``: pushed-down aggregation
        scales with local nodes (Fig 7a) while root-bound work does not
        (Fig 7b).
        """
        _, busiest = self.bottleneck_node
        return self.events / busiest if busiest > 0 else 0.0


class DesisCluster:
    """A Desis deployment over a topology (Sec 2.4)."""

    name = "Desis"

    def __init__(
        self,
        queries: Iterable[Query],
        topology: Topology,
        *,
        config: ClusterConfig | None = None,
        policy: SharingPolicy = SharingPolicy.FULL,
    ) -> None:
        self.config = config if config is not None else ClusterConfig()
        self.topology = topology
        self.plan: QueryPlan = analyze(
            queries, policy=policy, decentralized=True
        )
        self.recorder = TraceRecorder() if self.config.trace else NULL_RECORDER
        self.net = SimNetwork(
            default_codec=self.config.codec,
            default_latency_ms=self.config.latency_ms,
            default_bandwidth_bytes_per_ms=self.config.bandwidth_bytes_per_ms,
            fault_plan=self.config.fault_plan,
            retransmit_timeout_ms=self.config.retransmit_timeout,
            max_retries=self.config.max_retries,
            channel_credit_bytes=self.config.channel_credit_bytes,
            channel_credit_frames=self.config.channel_credit_frames,
            recorder=self.recorder,
        )
        self.checkpoint_store: CheckpointStore | None = None
        if self.config.checkpoint_interval is not None:
            store = self.config.checkpoint_store
            if store is None:
                store = (
                    DirCheckpointStore(self.config.checkpoint_dir)
                    if self.config.checkpoint_dir is not None
                    else InMemoryCheckpointStore()
                )
            self.checkpoint_store = store
        self.reroutes = 0
        self._dead_intermediates: list[IntermediateNode] = []
        self._build_nodes()

    # -- construction -------------------------------------------------------------------

    def _build_nodes(self) -> None:
        topo = self.topology
        self.root = RootNode(
            topo.root, topo.children(topo.root), self.plan, self.config,
            recorder=self.recorder,
        )
        self.net.add_node(self.root)
        self.locals: dict[str, LocalNode] = {}
        self.intermediates: dict[str, IntermediateNode] = {}
        for node_id in topo.nodes():
            role = topo.role(node_id)
            if role is NodeRole.LOCAL:
                node = LocalNode(
                    node_id, topo.parent(node_id), self.plan, self.config,
                    recorder=self.recorder,
                )
                self.locals[node_id] = node
                self.net.add_node(node)
            elif role is NodeRole.INTERMEDIATE:
                node = IntermediateNode(
                    node_id,
                    topo.parent(node_id),
                    topo.children(node_id),
                    self.plan,
                    self.config,
                    recorder=self.recorder,
                )
                self.intermediates[node_id] = node
                self.net.add_node(node)
        for child, parent in topo.parents.items():
            self.net.connect(child, parent)
        store = self.checkpoint_store
        if store is not None:
            self.root.store = store
            for node in self.intermediates.values():
                node.store = store
        self.root.on_child_dead = self._on_child_dead
        for node in self.intermediates.values():
            node.on_child_dead = self._on_child_dead

    def _broadcast_attributes(self) -> None:
        """Ship window attributes and topology down the tree (Sec 3.1)."""
        payload = {
            "queries": [query_to_dict(q) for q in self.plan.queries],
            "topology": self.topology.to_payload(),
        }
        for child in self.topology.children(self.topology.root):
            self.net.send(
                self.topology.root,
                child,
                ControlMessage(
                    sender=self.topology.root, kind="queries", payload=payload
                ),
            )

    # -- runtime management (Sec 3.2) ------------------------------------------------------

    def add_query(self, query: Query) -> None:
        """Register a new query at runtime as its own query-group."""
        if any(q.query_id == query.query_id for q in self.plan.queries):
            raise ClusterError(f"duplicate query id: {query.query_id!r}")
        group = QueryGroup(group_id=len(self.plan.groups))
        group.root_evaluated = (
            not query.is_decomposable or query.is_count_based
        )
        group._admit(query)
        group._replan()
        self.plan.groups.append(group)
        progress = int(self.net.now) - int(self.net.now) % self.config.tick_interval
        origin = max(self.config.origin, progress)
        from repro.cluster.local import _RootEvalLocalGroup, _SlicedLocalGroup
        from repro.cluster.merger import GroupMerger

        for node in self.locals.values():
            handler_cls = (
                _RootEvalLocalGroup if group.root_evaluated else _SlicedLocalGroup
            )
            shifted = ClusterConfig(
                origin=origin,
                tick_interval=self.config.tick_interval,
                heartbeat_interval=self.config.heartbeat_interval,
                punctuation_mode=self.config.punctuation_mode,
            )
            node.groups.append(
                handler_cls(node.node_id, group, shifted, node.stats, node.recorder)
            )
        for node in self.intermediates.values():
            node.mergers.append(
                GroupMerger(group, self.topology.children(node.node_id), origin)
            )
            node.ship_seq.append(0)
            node.forward_floor.append(origin)
            node._shed_pending.append([])
        self.root.mergers.append(
            GroupMerger(group, self.topology.children(self.topology.root), origin)
        )
        shifted = ClusterConfig(
            origin=origin,
            tick_interval=self.config.tick_interval,
            merge_mode=self.config.merge_mode,
        )
        self.root.assemblers.append(
            RootAssembler(group, origin, self.root._emit, shifted,
                          recorder=self.root.recorder)
        )

    def remove_query(self, query_id: str) -> None:
        """Remove a running query immediately on every node."""
        group = self.plan.group_of(query_id)
        for node in self.locals.values():
            node.on_message(
                ControlMessage(sender="user", kind="query_remove", payload=query_id),
                int(self.net.now),
                self.net,
            )
        assembler = self.root.assemblers[group.group_id]
        for bucket in (
            assembler.fixed,
            assembler.sessions,
            assembler.userdef,
            assembler.counts,
        ):
            bucket[:] = [s for s in bucket if s.query.query_id != query_id]
        group.remove_query(query_id)

    def add_local_node(self, node_id: str, parent: str,
                       stream: Iterable[Event] = ()) -> None:
        """Attach a new local node at runtime and announce the topology."""
        self.topology.add_node(node_id, parent, NodeRole.LOCAL)
        node = LocalNode(
            node_id, parent, self.plan, self.config, recorder=self.recorder
        )
        self.locals[node_id] = node
        self.net.add_node(node)
        self.net.connect(node_id, parent)
        parent_node = (
            self.root if parent == self.topology.root else self.intermediates[parent]
        )
        parent_node.add_child(node_id)
        if parent_node.liveness is not None:
            # The node joins now, not at the origin: it must not be swept
            # for silence it predates.
            parent_node.liveness.add(node_id, int(self.net.now))
        last = self.net.inject_stream(node_id, stream)
        if last:
            end = self._align_up(last)
            self._end_boundary = max(self._end_boundary, end)
            self.net.schedule_ticks(
                node_id,
                start=int(self.net.now)
                - int(self.net.now) % self.config.tick_interval,
                end=end,
                interval=self.config.tick_interval,
            )
        self._broadcast_attributes()

    def remove_node(self, node_id: str) -> None:
        """Detach a local node (churned edge device) at runtime."""
        node = self.locals.get(node_id)
        if node is None:
            raise ClusterError(f"{node_id!r} is not a local node")
        parent = self.topology.parent(node_id)
        node.alive = False
        self.topology.remove_node(node_id)
        del self.locals[node_id]
        parent_node = (
            self.root if parent == self.topology.root else self.intermediates[parent]
        )
        parent_node.remove_child(node_id)
        # Hard removal frees the transport too: reliable-channel state for
        # a departed node must not linger (or retransmit into the void).
        self.net.forget_node_channels(node_id)
        self._broadcast_attributes()

    def evict_timed_out(self, now: int | None = None) -> list[str]:
        """Evict nodes whose heartbeats timed out; returns evicted ids."""
        at = now if now is not None else int(self.net.now)
        dead = [n for n in self.root.timed_out_nodes(at) if n in self.locals]
        for node_id in dead:
            self.remove_node(node_id)
        return dead

    # -- recovery and failover (DESIGN.md §8) ----------------------------------------------

    def _arm_recovery(self, end: int) -> None:
        """Seal the fault plan at end-of-stream, enable batch retention
        where recovery could re-request shipped suffixes, and schedule the
        restarts of finite state-losing crash windows."""
        plan = self.config.fault_plan
        if plan is None:
            return
        plan.seal(end)
        needs_retention = self.checkpoint_store is not None or any(
            w.lose_state or w.end is None or w.end >= end for w in plan.crashes
        )
        if needs_retention:
            for node in self.locals.values():
                node._retain = True
            for node in self.intermediates.values():
                node._retain = True
        for window in plan.crashes:
            if not window.lose_state:
                continue
            if window.node in self.locals:
                raise ClusterError(
                    f"lose_state crash on local node {window.node!r}: local "
                    "input cannot be replayed, only intermediates and the "
                    "root support state-losing restarts"
                )
            if window.end is None or window.end >= end:
                continue  # permanent death: failover, not restart
            self.net.schedule_restart(window.node, window.end)

    def _on_child_dead(self, child: str, now: int, net: SimNetwork) -> None:
        """Fail over a permanently dead intermediate (DESIGN.md §8).

        Invoked from the parent's liveness sweep, atomically before any
        further coverage advance: the dead node's children are adopted by
        its *parent* at the parent's current coverage floors, then told to
        reparent — renumber and re-ship their retained suffix past the
        floors — so the parent's mergers resume exactly where the dead
        node's forwarding stopped.
        """
        if child not in self.intermediates:
            return  # dead locals are not rerouted: their source is gone
        target, orphans = self.topology.fail_over(child)
        dead = self.intermediates.pop(child)
        dead.alive = False
        self._dead_intermediates.append(dead)
        target_node = (
            self.root if target == self.topology.root else self.intermediates[target]
        )
        target_node.remove_child(child)
        floors = {
            group_id: (0, merger.forwarded_to)
            for group_id, merger in enumerate(target_node.mergers)
        }
        for orphan in orphans:
            if (orphan, target) not in net.links:
                net.connect(orphan, target)
            target_node.add_child(orphan)
            if target_node.liveness is not None:
                # The orphan joins now, not at the origin: it must not be
                # swept for silence it predates.
                target_node.liveness.add(orphan, now)
            net.abandon_channel(orphan, child)
            epoch = net.expect_resync(orphan, target)
            net.send(
                target,
                orphan,
                ResyncMessage(
                    sender=target,
                    epoch=epoch,
                    entries=dict(floors),
                    recover=True,
                    new_parent=target,
                ),
            )
            self.reroutes += 1
            if self.recorder.enabled:
                self.recorder.record(
                    "child.reroute",
                    now,
                    node=orphan,
                    dead_parent=child,
                    new_parent=target,
                )

    # -- driving ---------------------------------------------------------------------------

    def _align_up(self, time: int) -> int:
        interval = self.config.tick_interval
        return ((time // interval) + 1) * interval

    def run(
        self,
        streams: dict[str, Iterable[Event]],
        *,
        actions: list[tuple[int, Callable[["DesisCluster"], None]]] | None = None,
    ) -> ClusterRunResult:
        """Replay per-local streams through the cluster.

        ``actions`` are ``(sim_time, callback)`` pairs executed when
        simulated time passes their timestamp (runtime query/node changes).
        """
        started = _time.perf_counter()
        self._broadcast_attributes()
        # Batched injection is only safe without runtime actions: an
        # action fires between queue pops (``net.run(until=at)``), and a
        # batch spanning its timestamp would let events past the action
        # be processed before it runs.
        batch_ms = self.config.batch_ms if not actions else None
        last = self.config.origin
        events = 0
        for node_id, stream in streams.items():
            if node_id not in self.locals:
                raise ClusterError(f"{node_id!r} is not a local node")
            materialized = list(stream)
            events += len(materialized)
            last = max(
                last,
                self.net.inject_stream(node_id, materialized, batch_ms=batch_ms),
            )
        end = self._align_up(last)
        self._end_boundary = end
        self._arm_recovery(end)
        for node_id in list(self.locals):
            self.net.schedule_ticks(
                node_id,
                start=self.config.origin,
                end=end,
                interval=self.config.tick_interval,
            )
        for node_id in self.intermediates:
            self.net.schedule_ticks(
                node_id,
                start=self.config.origin,
                end=end,
                interval=self.config.heartbeat_interval,
            )
        if self.config.fault_plan is not None or self.checkpoint_store is not None:
            # The root ticks for the heartbeat-silence sweep (nodes can go
            # silent) and for the checkpoint cadence.
            self.net.schedule_ticks(
                self.topology.root,
                start=self.config.origin,
                end=end,
                interval=self.config.heartbeat_interval,
            )
        for at, action in sorted(actions or [], key=lambda pair: pair[0]):
            self.net.run(until=at)
            action(self)
        self.net.run()
        # Flush every surviving local at the global end boundary (it may
        # have moved if nodes with longer streams joined mid-run).
        for node in self.locals.values():
            node.on_finish(self._end_boundary, self.net)
        self.net.run()
        # Under overload control, intermediates may hold deferred staging
        # and unshipped shed metadata behind a stalled channel; end of
        # stream overrides backpressure so every closable window closes
        # with truthful completeness.
        for node in self.intermediates.values():
            node.on_finish(self._end_boundary, self.net)
        self.net.run()
        self.root.finish(int(self.net.now))
        wall = _time.perf_counter() - started
        _log.info(
            "run finished %s",
            kv(
                events=events,
                results=len(self.root.sink),
                wall_s=round(wall, 3),
                traced=len(self.recorder) if self.recorder.enabled else 0,
            ),
        )
        return ClusterRunResult(
            sink=self.root.sink,
            network=self.net.stats(),
            cpu_by_role=self.net.cpu_time_by_role(),
            wall_seconds=wall,
            events=events,
            local_stats={
                node_id: node.stats for node_id, node in self.locals.items()
            },
            node_cpu={
                node_id: node.cpu_time
                for node_id, node in self.net.nodes.items()
            },
            recorder=self.recorder,
            checkpoints=self.root.checkpoints_taken
            + sum(n.checkpoints_taken for n in self.intermediates.values())
            + sum(n.checkpoints_taken for n in self._dead_intermediates),
            recoveries=self.root.recoveries
            + sum(n.recoveries for n in self.intermediates.values())
            + sum(n.recoveries for n in self._dead_intermediates),
            reroutes=self.reroutes,
            duplicates_suppressed=self.root.duplicates_suppressed,
            root_merge_ops=self.root.root_merge_ops,
            degraded_windows=self.root.degraded_windows,
            slices_shed=self.root.slices_shed
            + sum(n.slices_shed for n in self.locals.values())
            + sum(n.slices_shed for n in self.intermediates.values())
            + sum(n.slices_shed for n in self._dead_intermediates),
            peak_staging=max(
                [self.root.peak_staging]
                + [n.peak_staging for n in self.locals.values()]
                + [n.peak_staging for n in self.intermediates.values()]
                + [n.peak_staging for n in self._dead_intermediates]
            ),
            slow_consumer_evictions=self.root.slow_consumer_evictions
            + sum(
                n.slow_consumer_evictions for n in self.intermediates.values()
            )
            + sum(n.slow_consumer_evictions for n in self._dead_intermediates),
        )
