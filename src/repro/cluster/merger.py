"""Child-coverage tracking and slice-record merging (Sec 5.1.1).

Intermediate and root nodes share this machinery: per query-group they
collect :class:`~repro.network.messages.SliceRecord` batches from their
children, advance a coverage watermark (the minimum ``covered_to`` over
all children), and release records whose interval is fully covered.

Released records from different children with the *same* interval are
merged (the paper's "intermediate slice whose length equals the number of
child nodes").  Groups containing session windows are passed through
unmerged instead: merging would fuse different children's activity spans
and hide cross-child gaps, breaking exact session assembly at the root
(Sec 5.1.2).

Duplicate and missing slices are detected with the per-child
auto-incrementing slice ids (Sec 5.1.1): a batch whose ``first_slice_seq``
is behind the expected sequence has its already-seen prefix dropped.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.analyzer import QueryGroup
from repro.core.errors import ClusterError
from repro.core.operators import merge_partials
from repro.core.types import WindowType
from repro.network.messages import ContextPartial, PartialBatchMessage, SliceRecord

__all__ = ["GroupMerger", "group_has_sessions", "merge_records"]


def group_has_sessions(group: QueryGroup) -> bool:
    return any(
        q.window.window_type is WindowType.SESSION for q in group.queries
    )


def _merge_context(left: ContextPartial, right: ContextPartial) -> ContextPartial:
    ops = dict(left.ops)
    for kind, partial in right.ops.items():
        if kind in ops:
            ops[kind] = merge_partials(kind, ops[kind], partial)
        else:
            ops[kind] = partial
    span = left.span
    if right.span is not None:
        span = (
            right.span
            if span is None
            else (min(span[0], right.span[0]), max(span[1], right.span[1]))
        )
    timed = None
    if left.timed is not None or right.timed is not None:
        timed = sorted((left.timed or []) + (right.timed or []))
    return ContextPartial(
        count=left.count + right.count, ops=ops, span=span, timed=timed
    )


def merge_records(records: list[SliceRecord]) -> list[SliceRecord]:
    """Merge records with identical ``[start, end)`` intervals."""
    merged: dict[tuple[int, int], SliceRecord] = {}
    for record in records:
        key = (record.start, record.end)
        existing = merged.get(key)
        if existing is None:
            merged[key] = SliceRecord(
                start=record.start,
                end=record.end,
                contexts=dict(record.contexts),
                userdef_eps=list(record.userdef_eps),
            )
            continue
        for ctx, part in record.contexts.items():
            if ctx in existing.contexts:
                existing.contexts[ctx] = _merge_context(existing.contexts[ctx], part)
            else:
                existing.contexts[ctx] = part
        existing.userdef_eps.extend(record.userdef_eps)
    return sorted(merged.values(), key=lambda r: (r.end, r.start))


@dataclass(slots=True)
class _ChildState:
    covered: int
    next_seq: int = 0
    #: buffered (record) entries not yet released
    pending: list[SliceRecord] = field(default_factory=list)


class GroupMerger:
    """Per-group record collection for one parent node."""

    def __init__(self, group: QueryGroup, children: list[str], origin: int) -> None:
        self.group = group
        self.origin = origin
        self.children: dict[str, _ChildState] = {
            child: _ChildState(covered=origin) for child in children
        }
        self.forwarded_to = origin
        self.merge_intervals = not group_has_sessions(group)
        self.duplicates_dropped = 0
        #: batches from unknown senders (e.g. in flight when their node was
        #: removed, Sec 3.2); dropped, not fatal.
        self.stray_batches = 0

    # -- membership (Sec 3.2) -----------------------------------------------------

    def add_child(self, child: str) -> None:
        if child in self.children:
            raise ClusterError(f"child {child!r} already attached")
        # A new child starts covered up to the merger's progress so it does
        # not stall coverage retroactively.
        self.children[child] = _ChildState(covered=self.forwarded_to)

    def remove_child(self, child: str) -> None:
        self.children.pop(child, None)

    # -- ingestion ------------------------------------------------------------------

    def on_batch(self, message: PartialBatchMessage) -> None:
        state = self.children.get(message.sender)
        if state is None:
            # The sender is not (or no longer) a child — e.g. its batch was
            # in flight when the node was removed from the cluster.
            self.stray_batches += 1
            return
        records = message.records
        seq = message.first_slice_seq
        if seq < state.next_seq:
            # Duplicate delivery: drop the already-seen prefix (Sec 5.1.1).
            skip = min(state.next_seq - seq, len(records))
            self.duplicates_dropped += skip
            records = records[skip:]
            seq = state.next_seq
        elif seq > state.next_seq:
            raise ClusterError(
                f"missing slices from {message.sender!r}: expected seq "
                f"{state.next_seq}, got {seq}"
            )
        state.next_seq = seq + len(records)
        state.pending.extend(records)
        if message.covered_to > state.covered:
            state.covered = message.covered_to

    def coverage(self) -> int:
        if not self.children:
            return self.forwarded_to
        return min(state.covered for state in self.children.values())

    # -- overload control (DESIGN.md §12) -------------------------------------------

    def staging_occupancy(self) -> int:
        """Pending (buffered, unreleased) slice records across all children
        — the occupancy the staging cap bounds."""
        return sum(len(state.pending) for state in self.children.values())

    def shed_oldest(self, count: int) -> list[SliceRecord]:
        """Deterministically shed the ``count`` oldest pending records.

        Whole slices only, ordered by ``(end, start, child)`` so two runs
        of the same scenario shed identical coverage.  Returns the shed
        records (the caller accounts their coverage intervals); sequence
        numbers are untouched — they were assigned upstream and releases
        simply skip the shed contributions.
        """
        if count <= 0:
            return []
        entries = sorted(
            (
                (record.end, record.start, child, record)
                for child, state in self.children.items()
                for record in state.pending
            ),
            key=lambda entry: entry[:3],
        )[:count]
        victims = {id(record) for *_, record in entries}
        for state in self.children.values():
            state.pending = [
                record
                for record in state.pending
                if id(record) not in victims
            ]
        return [record for *_, record in entries]

    def advance(self) -> tuple[int, list[SliceRecord]] | None:
        """Release records once every child covers a later boundary.

        Returns ``(covered, records)`` with records sorted by interval, or
        ``None`` when coverage has not advanced.
        """
        covered = self.coverage()
        if covered <= self.forwarded_to:
            return None
        self.forwarded_to = covered
        released: list[SliceRecord] = []
        for state in self.children.values():
            keep: list[SliceRecord] = []
            for record in state.pending:
                if record.end <= covered:
                    released.append(record)
                else:
                    keep.append(record)
            state.pending = keep
        if self.merge_intervals:
            released = merge_records(released)
        else:
            released.sort(key=lambda r: (r.end, r.start))
        return covered, released
