"""Local nodes: slicing and partial aggregation at the data source (Sec 5.1).

A local node runs the aggregation engine in *slicing-only* mode for every
pushed-down query-group: events are incrementally aggregated into shared
slices, and at every watermark tick the closed slices are shipped upward
as per-slice partial results.  Window *assembly* never happens here — that
is the root's job — but window punctuations still drive the cuts, so the
slices a local produces align with every window boundary it can know about
(fixed schedules, its own session gaps, its own marker events).

Root-evaluated groups (count-based windows, non-decomposable functions;
Sec 5.2) do not run window logic at all: the local batches each slice's
matching values — sorted, executing the non-decomposable sort operator
locally — or ``(time, value)`` pairs when the root must count events.
"""

from __future__ import annotations

from repro.core.analyzer import QueryGroup, QueryPlan
from repro.core.engine import EngineStats, GroupRuntime
from repro.core.event import Event
from repro.core.results import ResultSink
from repro.core.types import NodeRole, OperatorKind, WindowType
from repro.cluster.config import ClusterConfig
from repro.cluster.merger import group_has_sessions
from repro.network.messages import (
    CheckpointMessage,
    ContextPartial,
    ControlMessage,
    PartialBatchMessage,
    ResyncMessage,
    SliceRecord,
)
from repro.network.simnet import SimNetwork, SimNode
from repro.obs.tracing import NULL_RECORDER

__all__ = ["LocalNode"]


class _SlicedLocalGroup:
    """Slicing-only engine runtime for one pushed-down query-group."""

    def __init__(self, node_id: str, group: QueryGroup, config: ClusterConfig,
                 stats: EngineStats, recorder=None) -> None:
        self.node_id = node_id
        self.group = group
        self.recorder = recorder if recorder is not None else NULL_RECORDER
        self.runtime = GroupRuntime(
            group,
            ResultSink(keep=False),
            stats,
            punctuation_mode=config.punctuation_mode,
            assemble=False,
            slice_sink=self._on_cut,
            track_spans=group_has_sessions(group),
            recorder=self.recorder,
            node_id=node_id,
        )
        # Anchor fixed-window schedules at the shared origin so slice
        # boundaries align across all local nodes (Sec 5.1.1).
        self.runtime.advance(config.origin)
        self.pending: list[SliceRecord] = []
        self.ship_seq = 0
        #: shed coverage awaiting the next flush: (node_id, start, end)
        self.shed_pending: list[tuple[str, int, int]] = []
        self._userdef_ids = {
            q.query_id
            for q in group.queries
            if q.window.window_type is WindowType.USER_DEFINED
        }

    def _on_cut(self, closed, eps, spans) -> None:
        contexts: dict[int, ContextPartial] = {}
        for ctx, partials in closed.partials.items():
            span = spans.get(ctx)
            contexts[ctx] = ContextPartial(
                count=closed.insert_counts.get(ctx, 0),
                ops=partials,
                span=tuple(span) if span is not None else None,
            )
        userdef_eps = [
            (query.query_id, end)
            for window, end in eps
            for query in window.queries
            if query.query_id in self._userdef_ids
        ]
        # A marker cut closes *after* inserting the marker event, so the
        # slice contains an event stamped exactly ``closed.end``.  Ship it
        # with its truthful exclusive end (``end + 1``) — otherwise a
        # marker landing on a fixed-window boundary leaks its event into
        # the windows *ending* there instead of the ones *starting* there.
        inclusive = any(end == closed.end for _, end in userdef_eps)
        if contexts or userdef_eps:
            self.pending.append(
                SliceRecord(
                    start=closed.start,
                    end=closed.end + 1 if inclusive else closed.end,
                    contexts=contexts,
                    userdef_eps=userdef_eps,
                )
            )

    def on_event(self, event: Event) -> None:
        self.runtime.process(event)

    def on_events(self, events: list[Event]) -> None:
        # Slice-run fast path: the runtime splits the batch at its own
        # punctuations (falling back per-event for data-driven windows).
        self.runtime.process_batch(events)

    def stage(self, now: int) -> None:
        """Cut at the watermark boundary without shipping.

        Used when the upward channel is credit-stalled: slices keep
        accumulating in the bounded staging buffer (``pending``) so the
        shedding policy has whole slices to account for, and the slice-seq
        protocol stays gapless — sequences are only assigned at flush.
        """
        self.runtime.advance(now)
        if self.runtime.current.start < now:
            self.runtime._cut(now, [], [])

    def flush(self, now: int) -> PartialBatchMessage:
        """Cut at the watermark boundary and drain pending slice records."""
        self.stage(now)
        message = PartialBatchMessage(
            sender=self.node_id,
            group_id=self.group.group_id,
            first_slice_seq=self.ship_seq,
            covered_to=now,
            records=self.pending,
            shed=self.shed_pending,
        )
        self.shed_pending = []
        if self.recorder.enabled and self.pending:
            self.recorder.record(
                "partial.ship",
                now,
                node=self.node_id,
                group=self.group.group_id,
                first_seq=self.ship_seq,
                records=len(self.pending),
                start=self.pending[0].start,
                end=self.pending[-1].end,
                covered_to=now,
            )
        self.ship_seq += len(self.pending)
        self.pending = []
        return message

    def resync(self, next_seq: int, covered: int) -> None:
        """Restart the upward slice sequence after a parent resync.

        Pending records at or below ``covered`` belong to windows the
        parent already closed (degraded) without this node — shipping
        them again would corrupt session and user-defined assembly.
        """
        self.ship_seq = next_seq
        self.pending = [r for r in self.pending if r.end > covered]


class _RootEvalLocalGroup:
    """Per-slice value batching for a root-evaluated group (Sec 5.2).

    Although windows of these groups are *evaluated* at the root, the
    local must still cut its batches at every boundary the root assembles
    on: the deterministic fixed-window punctuations, its own session gaps
    (so record activity spans never hide a gap), and user-defined end
    markers — in addition to the watermark-tick cadence.
    """

    def __init__(self, node_id: str, group: QueryGroup, config: ClusterConfig,
                 stats: EngineStats, recorder=None) -> None:
        self.node_id = node_id
        self.group = group
        self.stats = stats
        self.recorder = recorder if recorder is not None else NULL_RECORDER
        self.origin = config.origin
        self.selections = list(group.selections)
        self.needs_timestamps = group.needs_timestamps
        self.track_spans = group_has_sessions(group)
        self.window_start = config.origin
        #: ctx -> list of (time, value) pairs in the open slice
        self.buffers: dict[int, list[tuple[int, float]]] = {}
        self.pending: list[SliceRecord] = []
        self.pending_eps: list[tuple[str, int]] = []
        self.ship_seq = 0
        #: shed coverage awaiting the next flush: (node_id, start, end)
        self.shed_pending: list[tuple[str, int, int]] = []
        self._userdef_watch = [
            (q.query_id, q.selection.key, q.window.end_marker)
            for q in group.queries
            if q.window.window_type is WindowType.USER_DEFINED
        ]
        #: (length, slide) of fixed time windows: their punctuations are
        #: deterministic cut points shared with the root
        self._fixed_schedules = [
            (q.window.length, q.window.effective_slide)
            for q in group.queries
            if q.window.is_fixed_size and not q.is_count_based
        ]
        #: (ctx, gap) per session query, with last matching event times
        self._session_watch = [
            (group.context_of[q.query_id], q.window.gap)
            for q in group.queries
            if q.window.window_type is WindowType.SESSION
        ]
        self._session_last: dict[int, int] = {}

    def _next_fixed_boundary(self, after: int) -> int | None:
        """The earliest fixed-window punctuation strictly after ``after``."""
        best: int | None = None
        rel = after - self.origin
        for length, slide in self._fixed_schedules:
            for offset in (0, length % slide):
                candidate = (rel - offset) // slide * slide + offset
                while candidate <= rel:
                    candidate += slide
                absolute = candidate + self.origin
                if best is None or absolute < best:
                    best = absolute
        return best

    def _cut(self, at: int, *, inclusive: bool = False) -> None:
        """Close the open batch at ``at`` into a pending slice record."""
        contexts: dict[int, ContextPartial] = {}
        for ctx, buffer in list(self.buffers.items()):
            # Half-open intervals: events stamped exactly at the boundary
            # belong to the next slice — unless the cut is an inclusive
            # (post-insert) marker cut.
            if inclusive:
                shipped, kept = buffer, []
            else:
                shipped = [pair for pair in buffer if pair[0] < at]
                kept = buffer[len(shipped):]
            if kept:
                self.buffers[ctx] = kept
            else:
                del self.buffers[ctx]
            if not shipped:
                continue
            span = (shipped[0][0], shipped[-1][0]) if self.track_spans else None
            if self.needs_timestamps:
                contexts[ctx] = ContextPartial(
                    count=len(shipped), timed=shipped, span=span
                )
            else:
                # The local executes the non-decomposable sort (Sec 5.2) so
                # parents and the root only merge sorted runs.
                values = sorted(value for _, value in shipped)
                contexts[ctx] = ContextPartial(
                    count=len(shipped),
                    ops={OperatorKind.NON_DECOMPOSABLE_SORT: values},
                    span=span,
                )
        # Inclusive (post-insert) marker cuts contain an event stamped at
        # the boundary itself; label them with the exclusive end so root
        # interval assembly never misattributes the marker event.
        shipped_end = at + 1 if inclusive else at
        if contexts or self.pending_eps:
            self.pending.append(
                SliceRecord(
                    start=self.window_start,
                    end=shipped_end,
                    contexts=contexts,
                    userdef_eps=self.pending_eps,
                )
            )
            self.stats.slices_closed += 1
            self.pending_eps = []
            if self.recorder.enabled:
                self.recorder.record(
                    "slice.close",
                    at,
                    node=self.node_id,
                    group=self.group.group_id,
                    index=self.ship_seq + len(self.pending) - 1,
                    start=self.window_start,
                    end=shipped_end,
                )
        self.window_start = shipped_end

    def on_event(self, event: Event) -> None:
        # Pre-insert cuts: fixed punctuations passed by this event, and
        # session gaps this event's arrival proves.
        if self._fixed_schedules:
            boundary = self._next_fixed_boundary(self.window_start)
            while boundary is not None and boundary <= event.time:
                self._cut(boundary)
                boundary = self._next_fixed_boundary(boundary)
        matched = [
            index
            for index, selection in enumerate(self.selections)
            if selection.matches(event)
        ]
        if self._session_watch and matched:
            for ctx, gap in self._session_watch:
                if ctx not in matched:
                    continue
                last = self._session_last.get(ctx)
                if last is not None and event.time - last >= gap:
                    cut_at = last + gap
                    if cut_at > self.window_start:
                        self._cut(cut_at)
                self._session_last[ctx] = event.time
        for index in matched:
            self.buffers.setdefault(index, []).append((event.time, event.value))
        if matched:
            self.stats.inserts += 1
            self.stats.calculations += 1  # one (non-decomposable sort) operator
        if event.marker is not None:
            ended = False
            for query_id, key, end_marker in self._userdef_watch:
                if event.marker == end_marker and (
                    key is None or event.key == key
                ):
                    self.pending_eps.append((query_id, event.time))
                    ended = True
            if ended:
                # Post-insert marker cut: the marker event belongs to the
                # trip it ends.
                self._cut(event.time, inclusive=True)

    def on_events(self, events: list[Event]) -> None:
        # Root-evaluated groups cut on data-driven boundaries (session
        # gaps, end markers), so every event still runs the full check.
        for event in events:
            self.on_event(event)

    def stage(self, now: int) -> None:
        """Cut at every due boundary without shipping (stalled channel)."""
        if self._fixed_schedules:
            boundary = self._next_fixed_boundary(self.window_start)
            while boundary is not None and boundary <= now:
                self._cut(boundary)
                boundary = self._next_fixed_boundary(boundary)
        if self.window_start < now:
            self._cut(now)

    def flush(self, now: int) -> PartialBatchMessage:
        self.stage(now)
        message = PartialBatchMessage(
            sender=self.node_id,
            group_id=self.group.group_id,
            first_slice_seq=self.ship_seq,
            covered_to=now,
            records=self.pending,
            shed=self.shed_pending,
        )
        self.shed_pending = []
        if self.recorder.enabled and self.pending:
            self.recorder.record(
                "partial.ship",
                now,
                node=self.node_id,
                group=self.group.group_id,
                first_seq=self.ship_seq,
                records=len(self.pending),
                start=self.pending[0].start,
                end=self.pending[-1].end,
                covered_to=now,
            )
        self.ship_seq += len(self.pending)
        self.pending = []
        return message

    def resync(self, next_seq: int, covered: int) -> None:
        self.ship_seq = next_seq
        self.pending = [r for r in self.pending if r.end > covered]


class LocalNode(SimNode):
    """A Desis local node: one group handler per query-group."""

    def __init__(self, node_id: str, parent: str, plan: QueryPlan,
                 config: ClusterConfig, recorder=None) -> None:
        super().__init__(node_id, NodeRole.LOCAL)
        self.parent = parent
        self.config = config
        self.stats = EngineStats()
        self.recorder = recorder if recorder is not None else NULL_RECORDER
        self.groups: list[_SlicedLocalGroup | _RootEvalLocalGroup] = [
            (
                _RootEvalLocalGroup(
                    node_id, group, config, self.stats, self.recorder
                )
                if group.root_evaluated
                else _SlicedLocalGroup(
                    node_id, group, config, self.stats, self.recorder
                )
            )
            for group in plan.groups
        ]
        self.alive = True
        self._last_heartbeat = config.origin
        # Retention (DESIGN.md §8): when enabled by the deployment, every
        # shipped batch — including empty coverage steps — is kept until a
        # parent checkpoint trims it, so a recovering or adoptive parent
        # can be served the exact per-tick suffix it is missing.
        self._retain = False
        self._retained: list[PartialBatchMessage] = []
        # Overload control (DESIGN.md §12): high-water mark of the staging
        # buffers, slices deliberately shed, retained batches evicted by
        # the retention cap.  All stay zero at default config.
        self.peak_staging = 0
        self.slices_shed = 0
        self.retention_evicted = 0

    # -- overload control (DESIGN.md §12) ----------------------------------------------

    def _shed_overflow(self, group, net: SimNetwork) -> None:
        """Shed oldest whole slices once staging exceeds its cap.

        Deterministic oldest-slice-first policy with hysteresis: shed down
        to ``staging_limit * shed_watermark`` records so the buffer does
        not oscillate at the cap.  Shed coverage is remembered per group
        and rides up with the next flushed batch, so the root can stamp
        affected windows with ``completeness < 1.0``.
        """
        limit = self.config.staging_limit
        if limit is None or len(group.pending) <= limit:
            return
        low = max(int(limit * self.config.shed_watermark), 0)
        shed = group.pending[: len(group.pending) - low]
        group.pending = group.pending[len(shed):]
        self.slices_shed += len(shed)
        net.note_shed(self.node_id, group.group.group_id, shed)
        group.shed_pending.extend(
            (self.node_id, record.start, record.end) for record in shed
        )

    def _note_staging(self) -> None:
        occupancy = sum(len(group.pending) for group in self.groups)
        if occupancy > self.peak_staging:
            self.peak_staging = occupancy

    def _cap_retention(self) -> None:
        limit = self.config.retention_limit
        if limit is not None and len(self._retained) > limit:
            self.retention_evicted += len(self._retained) - limit
            self._retained = self._retained[-limit:]

    def on_event(self, event: Event, now: int, net: SimNetwork) -> None:
        self.stats.events += 1
        for group in self.groups:
            group.on_event(event)

    def on_events(self, events: list[Event], now: int, net: SimNetwork) -> None:
        self.stats.events += len(events)
        for group in self.groups:
            group.on_events(events)

    def on_tick(self, now: int, net: SimNetwork) -> None:
        if not self.alive:
            return
        # Credit-based backpressure: a stalled upward channel defers the
        # flush — slices accumulate in the bounded staging buffer instead
        # of growing the channel's unacked backlog without limit.
        deferred = self.config.overload_control and net.channel_stalled(
            self.node_id, self.parent
        )
        for group in self.groups:
            if deferred:
                group.stage(now)
                self._shed_overflow(group, net)
                continue
            self._shed_overflow(group, net)
            message = group.flush(now)
            net.send(self.node_id, self.parent, message)
            if self._retain:
                self._retained.append(message)
        if deferred or self.config.staging_limit is not None:
            self._note_staging()
        self._cap_retention()
        if now - self._last_heartbeat >= self.config.heartbeat_interval:
            self._last_heartbeat = now
            net.send(
                self.node_id,
                self.parent,
                ControlMessage(sender=self.node_id, kind="heartbeat", payload=now),
            )

    def on_finish(self, now: int, net: SimNetwork) -> None:
        if not self.alive:
            return
        for group in self.groups:
            # End of stream overrides backpressure: ship what survived the
            # cap so every closable window still closes.
            self._shed_overflow(group, net)
            message = group.flush(now)
            net.send(self.node_id, self.parent, message)
            if self._retain:
                self._retained.append(message)
        self._cap_retention()

    def on_message(self, message, now: int, net: SimNetwork) -> None:
        # Locals receive control traffic (queries, topology) and, after a
        # soft-eviction outage, a state resync from their parent.
        if isinstance(message, CheckpointMessage):
            self._apply_trim(message.safe_to)
            return
        if isinstance(message, ResyncMessage):
            if message.new_parent:
                self._reparent(message, net)
            elif message.recover:
                self._fast_forward(message, net)
            else:
                for group_id, (next_seq, covered) in message.entries.items():
                    if group_id < len(self.groups):
                        group = self.groups[group_id]
                        if self.config.overload_control:
                            # Records the resync prunes are data dropped
                            # under overload (the outage was a stalled,
                            # not a silent, channel) — account them like
                            # any other shed so the completeness ledger
                            # stays truthful.
                            pruned = [r for r in group.pending if r.end <= covered]
                            if pruned:
                                self.slices_shed += len(pruned)
                                net.note_shed(
                                    self.node_id, group.group.group_id, pruned
                                )
                                group.shed_pending.extend(
                                    (self.node_id, r.start, r.end) for r in pruned
                                )
                        group.resync(next_seq, covered)
                net.reset_channel(self.node_id, self.parent, message.epoch)
            return
        if isinstance(message, ControlMessage) and message.kind == "query_remove":
            query_id = message.payload
            for group in self.groups:
                if isinstance(group, _SlicedLocalGroup):
                    if query_id in group.runtime.needed:
                        group.runtime.remove_query(query_id)

    # -- recovery support (DESIGN.md §8) -----------------------------------------------

    def _apply_trim(self, safe_to: dict[int, int]) -> None:
        """Drop retained batches the parent has durably checkpointed past."""
        if not self._retained:
            return
        self._retained = [
            batch
            for batch in self._retained
            if (floor := safe_to.get(batch.group_id)) is None
            or batch.covered_to > floor
        ]

    def _fast_forward(self, message: ResyncMessage, net: SimNetwork) -> None:
        """Serve a parent that restarted from a checkpoint: re-ship only
        the retained suffix past its restored cursors, with the original
        sequence numbers (the merger prefix-drops any overlap with frames
        that survived in the reliable channel)."""
        net.reset_channel(self.node_id, self.parent, message.epoch)
        for batch in self._retained:
            cursor = message.entries.get(batch.group_id)
            if cursor is None or batch.covered_to > cursor[1]:
                net.send(self.node_id, self.parent, batch)

    def _reparent(self, message: ResyncMessage, net: SimNetwork) -> None:
        """Fail over to the adopter of this node after its parent died.

        The adoptive parent attached this node at its own coverage floors
        (``entries`` carries them with ``next_seq`` 0), so the retained
        suffix past each floor is renumbered from slice seq zero, records
        at or below the floor are pruned, and emptied batches are *kept* —
        their coverage steps reproduce the original release granularity.
        """
        self.parent = message.new_parent
        counts: dict[int, int] = {}
        kept: list[PartialBatchMessage] = []
        for batch in self._retained:
            entry = message.entries.get(batch.group_id)
            floor = entry[1] if entry is not None else None
            if floor is not None:
                if batch.covered_to <= floor:
                    continue
                batch.records = [r for r in batch.records if r.end > floor]
            batch.first_slice_seq = counts.get(batch.group_id, 0)
            counts[batch.group_id] = batch.first_slice_seq + len(batch.records)
            kept.append(batch)
        self._retained = kept
        for group in self.groups:
            entry = message.entries.get(group.group.group_id)
            if entry is None:
                continue
            floor = entry[1]
            group.pending = [r for r in group.pending if r.end > floor]
            group.ship_seq = counts.get(group.group.group_id, 0)
        net.reset_channel(self.node_id, self.parent, message.epoch)
        for batch in kept:
            net.send(self.node_id, self.parent, batch)
