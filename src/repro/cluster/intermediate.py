"""Intermediate nodes: merge partial results by slice and forward (Sec 5.1).

An intermediate node maintains one :class:`~repro.cluster.merger.GroupMerger`
per query-group.  When all of its children have covered a boundary, the
released records — merged across children for slice-aligned groups,
passed through for session groups — are re-sequenced and forwarded to the
parent in a single batch, so one intermediate serves many children with
one upward message per tick (the fan-in the scalability experiment of
Fig 7c exercises).
"""

from __future__ import annotations

from repro.core.analyzer import QueryPlan
from repro.core.types import NodeRole
from repro.cluster.checkpoint import (
    decode_checkpoint,
    encode_checkpoint,
    merger_cursors,
    pending_chunks,
    restore_mergers,
    restore_retained,
    restore_shed,
    retained_chunks,
    shed_chunks,
)
from repro.cluster.config import ClusterConfig
from repro.cluster.merger import GroupMerger
from repro.cluster.reliability import (
    ChildLiveness,
    recovery_entries,
    resync_entries,
)
from repro.network.messages import (
    CheckpointMessage,
    ControlMessage,
    PartialBatchMessage,
    ResyncMessage,
)
from repro.network.simnet import SimNetwork, SimNode
from repro.obs.tracing import NULL_RECORDER

__all__ = ["IntermediateNode"]


class IntermediateNode(SimNode):
    """A Desis intermediate node for one parent and a set of children."""

    def __init__(self, node_id: str, parent: str, children: list[str],
                 plan: QueryPlan, config: ClusterConfig, recorder=None) -> None:
        super().__init__(node_id, NodeRole.INTERMEDIATE)
        self.parent = parent
        self.children = list(children)
        self.plan = plan
        self.config = config
        self.recorder = recorder if recorder is not None else NULL_RECORDER
        self.mergers = [
            GroupMerger(group, children, config.origin) for group in plan.groups
        ]
        self.ship_seq = [0 for _ in plan.groups]
        #: per-group coverage boundary below which records are not forwarded
        #: (set by a parent resync: those windows closed degraded upstream)
        self.forward_floor = [config.origin for _ in plan.groups]
        self.alive = True
        self._last_heartbeat = config.origin
        self.liveness = (
            ChildLiveness(children, config.origin, config.node_timeout)
            if config.fault_plan is not None
            else None
        )
        # Checkpointing and retention (DESIGN.md §8); the deployment wires
        # ``store`` and ``_retain`` when recovery is in play.
        self.store = None
        self._retain = False
        self._retained: list[PartialBatchMessage] = []
        #: per-group trim floor last broadcast by the parent — our own
        #: trim to children is capped by it, so grandchildren never drop
        #: batches an ancestor recovery could still re-request
        self._trim_floor = [config.origin for _ in plan.groups]
        self._ckpt_id = 0
        self._last_ckpt = config.origin
        self._slices_since_ckpt = 0
        self.checkpoints_taken = 0
        self.recoveries = 0
        #: deployment hook: called with ``(child, now, net)`` when liveness
        #: sweeps a child whose crash the fault plan declares permanent
        self.on_child_dead = None
        # Overload control (DESIGN.md §12): shed coverage awaiting the
        # next upward forward, staging high-water mark, eviction counters.
        # All stay empty/zero at default config.
        self._shed_pending: list[list[tuple[str, int, int]]] = [
            [] for _ in plan.groups
        ]
        self.peak_staging = 0
        self.slices_shed = 0
        self.retention_evicted = 0
        self.slow_consumer_evictions = 0

    def on_tick(self, now: int, net: SimNetwork) -> None:
        if not self.alive:
            return
        if now - self._last_heartbeat >= self.config.heartbeat_interval:
            self._last_heartbeat = now
            net.send(
                self.node_id,
                self.parent,
                ControlMessage(sender=self.node_id, kind="heartbeat", payload=now),
            )
        liveness = self.liveness
        if liveness is not None:
            plan = net.fault_plan
            for child in liveness.sweep(now):
                for merger in self.mergers:
                    merger.remove_child(child)
                if (
                    self.on_child_dead is not None
                    and plan is not None
                    and plan.permanent(child, now)
                ):
                    self.on_child_dead(child, now, net)
            if self.config.overload_control:
                self._sweep_slow_consumers(now, net)
        if self.config.overload_control and not net.channel_stalled(
            self.node_id, self.parent
        ):
            # The upward channel regained credit since the last batch:
            # drain coverage that was staged behind the stall.
            for group_id, merger in enumerate(self.mergers):
                advanced = merger.advance()
                if advanced is not None:
                    self._forward(group_id, advanced, now, net)
        if self.store is not None:
            self._maybe_checkpoint(now, net)

    def _sweep_slow_consumers(self, now: int, net: SimNetwork) -> None:
        """Soft-evict children whose upward channel has been credit-stalled
        past the stall timeout — the same resync path as a silent child
        (their heartbeats keep flowing, so the next one re-admits them)."""
        liveness = self.liveness
        timeout = self.config.stall_timeout
        if timeout is None:
            timeout = self.config.node_timeout
        for child in list(self.children):
            since = net.channel_stalled_since(child, self.node_id)
            if (
                since is not None
                and now - since > timeout
                and liveness.force_evict(child)
            ):
                self.slow_consumer_evictions += 1
                for merger in self.mergers:
                    merger.remove_child(child)

    def _readmit(self, child: str, net: SimNetwork) -> None:
        for merger in self.mergers:
            merger.add_child(child)
        epoch = net.expect_resync(child, self.node_id)
        net.send(
            self.node_id,
            child,
            ResyncMessage(
                sender=self.node_id,
                epoch=epoch,
                entries=resync_entries(self.mergers),
            ),
        )

    def on_message(self, message, now: int, net: SimNetwork) -> None:
        if isinstance(message, ControlMessage):
            if not self.alive:
                return
            if message.kind == "heartbeat":
                liveness = self.liveness
                if liveness is not None and liveness.tracks(message.sender):
                    if liveness.beat(message.sender, now):
                        self._readmit(message.sender, net)
                net.send(self.node_id, self.parent, message)
            elif message.kind in ("queries", "topology"):
                for child in self.children:
                    net.send(self.node_id, child, message)
            return
        if isinstance(message, CheckpointMessage):
            # Parent's retention-trim broadcast: remember its floors (they
            # cap our own trim to children) and drop retained batches it
            # can never ask for again.
            for group_id, floor in message.safe_to.items():
                if group_id < len(self._trim_floor):
                    if floor > self._trim_floor[group_id]:
                        self._trim_floor[group_id] = floor
            self._apply_trim(message.safe_to)
            return
        if isinstance(message, ResyncMessage):
            if message.new_parent:
                self._reparent(message, net)
            elif message.recover:
                self._fast_forward(message, net)
            else:
                # Our parent soft-evicted and re-admitted us: restart the
                # upward slice sequences and never re-ship records for
                # coverage it already assembled without us.
                for group_id, (next_seq, covered) in message.entries.items():
                    if group_id < len(self.ship_seq):
                        self.ship_seq[group_id] = next_seq
                        self.forward_floor[group_id] = covered
                net.reset_channel(self.node_id, self.parent, message.epoch)
            return
        if not isinstance(message, PartialBatchMessage):
            return
        merger = self.mergers[message.group_id]
        merger.on_batch(message)
        if message.shed:
            # Coverage shed further down rides up with our next forward.
            self._shed_pending[message.group_id].extend(message.shed)
        if self.config.overload_control:
            if net.channel_stalled(self.node_id, self.parent):
                # Backpressure: leave the released coverage staged in the
                # merger's pending buffers (bounded below) instead of
                # growing the stalled channel's unacked backlog.
                self._shed_staging_overflow(message.group_id, net)
                self._note_staging()
                return
            self._shed_staging_overflow(message.group_id, net)
            self._note_staging()
        advanced = merger.advance()
        if advanced is None or not self.alive:
            return
        self._forward(message.group_id, advanced, now, net)

    def _forward(
        self,
        group_id: int,
        advanced: tuple[int, list],
        now: int,
        net: SimNetwork,
    ) -> None:
        covered, records = advanced
        floor = self.forward_floor[group_id]
        if floor > self.config.origin:
            records = [record for record in records if record.end > floor]
        shed = self._shed_pending[group_id]
        out = PartialBatchMessage(
            sender=self.node_id,
            group_id=group_id,
            first_slice_seq=self.ship_seq[group_id],
            covered_to=covered,
            records=records,
            shed=shed,
        )
        if shed:
            self._shed_pending[group_id] = []
        if self.recorder.enabled and records:
            self.recorder.record(
                "merge.release",
                now,
                node=self.node_id,
                group=group_id,
                first_seq=self.ship_seq[group_id],
                records=len(records),
                start=records[0].start,
                end=records[-1].end,
                covered_to=covered,
            )
        self.ship_seq[group_id] += len(records)
        net.send(self.node_id, self.parent, out)
        if self._retain:
            self._retained.append(out)
            self._cap_retention()
        if self.store is not None:
            self._slices_since_ckpt += len(records)
            self._maybe_checkpoint(now, net)

    # -- overload control (DESIGN.md §12) ----------------------------------------------

    def _shed_staging_overflow(self, group_id: int, net: SimNetwork) -> None:
        """Shed oldest pending slices once a merger exceeds the staging cap.

        Whole slices only, oldest (smallest ``(end, start)``) first, down
        to the hysteresis low watermark; shed coverage joins the pending
        shed report for the next upward batch.
        """
        limit = self.config.staging_limit
        if limit is None:
            return
        merger = self.mergers[group_id]
        occupancy = merger.staging_occupancy()
        if occupancy <= limit:
            return
        low = max(int(limit * self.config.shed_watermark), 0)
        shed = merger.shed_oldest(occupancy - low)
        self.slices_shed += len(shed)
        net.note_shed(self.node_id, group_id, shed)
        self._shed_pending[group_id].extend(
            (self.node_id, record.start, record.end) for record in shed
        )

    def _note_staging(self) -> None:
        occupancy = sum(
            merger.staging_occupancy() for merger in self.mergers
        )
        if occupancy > self.peak_staging:
            self.peak_staging = occupancy

    def _cap_retention(self) -> None:
        limit = self.config.retention_limit
        if limit is not None and len(self._retained) > limit:
            self.retention_evicted += len(self._retained) - limit
            self._retained = self._retained[-limit:]

    def on_finish(self, now: int, net: SimNetwork) -> None:
        """End of stream overrides backpressure: release anything still
        staged behind a stalled channel so every closable window closes."""
        if not self.alive or not self.config.overload_control:
            return
        for group_id, merger in enumerate(self.mergers):
            advanced = merger.advance()
            if advanced is not None:
                self._forward(group_id, advanced, now, net)
            elif self._shed_pending[group_id]:
                # No coverage left to release, but shed metadata must still
                # reach the root: ship a records-free coverage step.
                self._forward(
                    group_id, (merger.forwarded_to, []), now, net
                )

    # -- checkpointing and recovery (DESIGN.md §8) ----------------------------------

    def _maybe_checkpoint(self, now: int, net: SimNetwork) -> None:
        if not self.alive:
            return
        interval = self.config.checkpoint_interval
        if interval is None:
            return
        due = now - self._last_ckpt >= interval
        every = self.config.checkpoint_every_slices
        if not due and every is not None and self._slices_since_ckpt >= every:
            due = True
        if not due:
            return
        plan = net.fault_plan
        if plan is not None and plan.crashed(self.node_id, now):
            # A crashed process takes no snapshots; the last one persisted
            # before the fault is what recovery will see.
            return
        self._checkpoint(now, net)

    def _checkpoint(self, now: int, net: SimNetwork) -> None:
        self._ckpt_id += 1
        safe_to = {
            group_id: min(merger.forwarded_to, self._trim_floor[group_id])
            for group_id, merger in enumerate(self.mergers)
        }
        header = CheckpointMessage(
            sender=self.node_id,
            checkpoint_id=self._ckpt_id,
            at=now,
            groups={
                group_id: (
                    self.ship_seq[group_id],
                    self.forward_floor[group_id],
                    merger.forwarded_to,
                )
                for group_id, merger in enumerate(self.mergers)
            },
            cursors=merger_cursors(self.mergers),
            safe_to=safe_to,
        )
        chunks = pending_chunks(self.node_id, self._ckpt_id, self.mergers)
        chunks.extend(retained_chunks(self.node_id, self._ckpt_id, self._retained))
        chunks.extend(shed_chunks(self.node_id, self._ckpt_id, self._shed_pending))
        self.store.save(
            self.node_id, self._ckpt_id, encode_checkpoint([header, *chunks])
        )
        self.checkpoints_taken += 1
        self._last_ckpt = now
        self._slices_since_ckpt = 0
        if self.recorder.enabled:
            self.recorder.record(
                "checkpoint.save",
                now,
                node=self.node_id,
                checkpoint_id=self._ckpt_id,
                chunks=len(chunks) + 1,
            )
        for child in self.children:
            net.send(
                self.node_id,
                child,
                CheckpointMessage(
                    sender=self.node_id,
                    checkpoint_id=self._ckpt_id,
                    at=now,
                    safe_to=dict(safe_to),
                ),
            )

    def on_restart(self, now: int, net: SimNetwork) -> None:
        """Come back from a state-losing crash (DESIGN.md §8).

        Cluster metadata (parent, children, queries) is durable and
        re-read; merge state is wiped and reloaded from the latest
        checkpoint — or left virgin when there is none, the
        checkpoint-less baseline.  Children are then asked to fast-forward
        re-ship only the retained suffix past the restored cursors.  No
        upward resync is needed: the send channel to the parent lives in
        the transport, and the re-forwarded batches replay the original
        sequence numbers, so the parent prefix-drops what it already has.
        """
        self.recoveries += 1
        config = self.config
        self.mergers = [
            GroupMerger(group, self.children, config.origin)
            for group in self.plan.groups
        ]
        self.ship_seq = [0 for _ in self.plan.groups]
        self.forward_floor = [config.origin for _ in self.plan.groups]
        self._trim_floor = [config.origin for _ in self.plan.groups]
        self._retained = []
        self._shed_pending = [[] for _ in self.plan.groups]
        self._last_heartbeat = now
        self._last_ckpt = now
        self._slices_since_ckpt = 0
        if self.liveness is not None:
            self.liveness = ChildLiveness(self.children, now, config.node_timeout)
        loaded = self.store.load_latest(self.node_id) if self.store else None
        restored_id = 0
        if loaded is not None:
            restored_id, blobs = loaded
            header, chunks = decode_checkpoint(blobs)
            self._ckpt_id = restored_id
            for group_id, (ship, floor, _) in header.groups.items():
                if group_id < len(self.ship_seq):
                    self.ship_seq[group_id] = ship
                    self.forward_floor[group_id] = floor
            restore_mergers(self.mergers, header, chunks)
            self._retained = restore_retained(self.node_id, chunks)
            self._shed_pending = restore_shed(len(self.plan.groups), chunks)
        if self.recorder.enabled:
            self.recorder.record(
                "node.recover",
                now,
                node=self.node_id,
                checkpoint_id=restored_id,
                from_checkpoint=loaded is not None,
            )
        for child in self.children:
            epoch = net.expect_resync(child, self.node_id)
            net.send(
                self.node_id,
                child,
                ResyncMessage(
                    sender=self.node_id,
                    epoch=epoch,
                    entries=recovery_entries(self.mergers, child),
                    recover=True,
                ),
            )

    def _apply_trim(self, safe_to: dict[int, int]) -> None:
        if not self._retained:
            return
        self._retained = [
            batch
            for batch in self._retained
            if (floor := safe_to.get(batch.group_id)) is None
            or batch.covered_to > floor
        ]

    def _fast_forward(self, message: ResyncMessage, net: SimNetwork) -> None:
        """Serve a parent restart: re-ship the retained suffix past its
        restored cursors with the original sequence numbers."""
        net.reset_channel(self.node_id, self.parent, message.epoch)
        for batch in self._retained:
            cursor = message.entries.get(batch.group_id)
            if cursor is None or batch.covered_to > cursor[1]:
                net.send(self.node_id, self.parent, batch)

    def _reparent(self, message: ResyncMessage, net: SimNetwork) -> None:
        """Fail over to the adopter after our parent died permanently.

        The adopter attached us at its own coverage floors; the retained
        suffix past each floor is renumbered from slice seq zero, records
        at or below the floor are pruned, and emptied batches are kept —
        their coverage steps reproduce the original release granularity.
        """
        self.parent = message.new_parent
        counts: dict[int, int] = {}
        kept: list[PartialBatchMessage] = []
        for batch in self._retained:
            entry = message.entries.get(batch.group_id)
            floor = entry[1] if entry is not None else None
            if floor is not None:
                if batch.covered_to <= floor:
                    continue
                batch.records = [r for r in batch.records if r.end > floor]
            batch.first_slice_seq = counts.get(batch.group_id, 0)
            counts[batch.group_id] = batch.first_slice_seq + len(batch.records)
            kept.append(batch)
        self._retained = kept
        for group_id, (_, floor) in message.entries.items():
            if group_id < len(self.ship_seq):
                self.ship_seq[group_id] = counts.get(group_id, 0)
                self.forward_floor[group_id] = max(
                    self.forward_floor[group_id], floor
                )
        net.reset_channel(self.node_id, self.parent, message.epoch)
        for batch in kept:
            net.send(self.node_id, self.parent, batch)

    # -- membership (Sec 3.2) -------------------------------------------------------

    def add_child(self, child: str) -> None:
        self.children.append(child)
        for merger in self.mergers:
            merger.add_child(child)
        if self.liveness is not None:
            self.liveness.add(child, self.config.origin)

    def remove_child(self, child: str) -> None:
        if child in self.children:
            self.children.remove(child)
        for merger in self.mergers:
            merger.remove_child(child)
        if self.liveness is not None:
            self.liveness.remove(child)
