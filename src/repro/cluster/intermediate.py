"""Intermediate nodes: merge partial results by slice and forward (Sec 5.1).

An intermediate node maintains one :class:`~repro.cluster.merger.GroupMerger`
per query-group.  When all of its children have covered a boundary, the
released records — merged across children for slice-aligned groups,
passed through for session groups — are re-sequenced and forwarded to the
parent in a single batch, so one intermediate serves many children with
one upward message per tick (the fan-in the scalability experiment of
Fig 7c exercises).
"""

from __future__ import annotations

from repro.core.analyzer import QueryPlan
from repro.core.types import NodeRole
from repro.cluster.config import ClusterConfig
from repro.cluster.merger import GroupMerger
from repro.network.messages import ControlMessage, PartialBatchMessage
from repro.network.simnet import SimNetwork, SimNode

__all__ = ["IntermediateNode"]


class IntermediateNode(SimNode):
    """A Desis intermediate node for one parent and a set of children."""

    def __init__(self, node_id: str, parent: str, children: list[str],
                 plan: QueryPlan, config: ClusterConfig) -> None:
        super().__init__(node_id, NodeRole.INTERMEDIATE)
        self.parent = parent
        self.children = list(children)
        self.config = config
        self.mergers = [
            GroupMerger(group, children, config.origin) for group in plan.groups
        ]
        self.ship_seq = [0 for _ in plan.groups]
        self.alive = True
        self._last_heartbeat = config.origin

    def on_tick(self, now: int, net: SimNetwork) -> None:
        if self.alive and now - self._last_heartbeat >= self.config.heartbeat_interval:
            self._last_heartbeat = now
            net.send(
                self.node_id,
                self.parent,
                ControlMessage(sender=self.node_id, kind="heartbeat", payload=now),
            )

    def on_message(self, message, now: int, net: SimNetwork) -> None:
        if isinstance(message, ControlMessage):
            if not self.alive:
                return
            if message.kind == "heartbeat":
                net.send(self.node_id, self.parent, message)
            elif message.kind in ("queries", "topology"):
                for child in self.children:
                    net.send(self.node_id, child, message)
            return
        if not isinstance(message, PartialBatchMessage):
            return
        merger = self.mergers[message.group_id]
        merger.on_batch(message)
        advanced = merger.advance()
        if advanced is None or not self.alive:
            return
        covered, records = advanced
        out = PartialBatchMessage(
            sender=self.node_id,
            group_id=message.group_id,
            first_slice_seq=self.ship_seq[message.group_id],
            covered_to=covered,
            records=records,
        )
        self.ship_seq[message.group_id] += len(records)
        net.send(self.node_id, self.parent, out)

    # -- membership (Sec 3.2) -------------------------------------------------------

    def add_child(self, child: str) -> None:
        self.children.append(child)
        for merger in self.mergers:
            merger.add_child(child)

    def remove_child(self, child: str) -> None:
        if child in self.children:
            self.children.remove(child)
        for merger in self.mergers:
            merger.remove_child(child)
