"""Intermediate nodes: merge partial results by slice and forward (Sec 5.1).

An intermediate node maintains one :class:`~repro.cluster.merger.GroupMerger`
per query-group.  When all of its children have covered a boundary, the
released records — merged across children for slice-aligned groups,
passed through for session groups — are re-sequenced and forwarded to the
parent in a single batch, so one intermediate serves many children with
one upward message per tick (the fan-in the scalability experiment of
Fig 7c exercises).
"""

from __future__ import annotations

from repro.core.analyzer import QueryPlan
from repro.core.types import NodeRole
from repro.cluster.config import ClusterConfig
from repro.cluster.merger import GroupMerger
from repro.cluster.reliability import ChildLiveness, resync_entries
from repro.network.messages import (
    ControlMessage,
    PartialBatchMessage,
    ResyncMessage,
)
from repro.network.simnet import SimNetwork, SimNode
from repro.obs.tracing import NULL_RECORDER

__all__ = ["IntermediateNode"]


class IntermediateNode(SimNode):
    """A Desis intermediate node for one parent and a set of children."""

    def __init__(self, node_id: str, parent: str, children: list[str],
                 plan: QueryPlan, config: ClusterConfig, recorder=None) -> None:
        super().__init__(node_id, NodeRole.INTERMEDIATE)
        self.parent = parent
        self.children = list(children)
        self.config = config
        self.recorder = recorder if recorder is not None else NULL_RECORDER
        self.mergers = [
            GroupMerger(group, children, config.origin) for group in plan.groups
        ]
        self.ship_seq = [0 for _ in plan.groups]
        #: per-group coverage boundary below which records are not forwarded
        #: (set by a parent resync: those windows closed degraded upstream)
        self.forward_floor = [config.origin for _ in plan.groups]
        self.alive = True
        self._last_heartbeat = config.origin
        self.liveness = (
            ChildLiveness(children, config.origin, config.node_timeout)
            if config.fault_plan is not None
            else None
        )

    def on_tick(self, now: int, net: SimNetwork) -> None:
        if not self.alive:
            return
        if now - self._last_heartbeat >= self.config.heartbeat_interval:
            self._last_heartbeat = now
            net.send(
                self.node_id,
                self.parent,
                ControlMessage(sender=self.node_id, kind="heartbeat", payload=now),
            )
        liveness = self.liveness
        if liveness is not None:
            for child in liveness.sweep(now):
                for merger in self.mergers:
                    merger.remove_child(child)

    def _readmit(self, child: str, net: SimNetwork) -> None:
        for merger in self.mergers:
            merger.add_child(child)
        epoch = net.expect_resync(child, self.node_id)
        net.send(
            self.node_id,
            child,
            ResyncMessage(
                sender=self.node_id,
                epoch=epoch,
                entries=resync_entries(self.mergers),
            ),
        )

    def on_message(self, message, now: int, net: SimNetwork) -> None:
        if isinstance(message, ControlMessage):
            if not self.alive:
                return
            if message.kind == "heartbeat":
                liveness = self.liveness
                if liveness is not None and liveness.tracks(message.sender):
                    if liveness.beat(message.sender, now):
                        self._readmit(message.sender, net)
                net.send(self.node_id, self.parent, message)
            elif message.kind in ("queries", "topology"):
                for child in self.children:
                    net.send(self.node_id, child, message)
            return
        if isinstance(message, ResyncMessage):
            # Our parent soft-evicted and re-admitted us: restart the
            # upward slice sequences and never re-ship records for
            # coverage it already assembled without us.
            for group_id, (next_seq, covered) in message.entries.items():
                if group_id < len(self.ship_seq):
                    self.ship_seq[group_id] = next_seq
                    self.forward_floor[group_id] = covered
            net.reset_channel(self.node_id, self.parent, message.epoch)
            return
        if not isinstance(message, PartialBatchMessage):
            return
        merger = self.mergers[message.group_id]
        merger.on_batch(message)
        advanced = merger.advance()
        if advanced is None or not self.alive:
            return
        covered, records = advanced
        floor = self.forward_floor[message.group_id]
        if floor > self.config.origin:
            records = [record for record in records if record.end > floor]
        out = PartialBatchMessage(
            sender=self.node_id,
            group_id=message.group_id,
            first_slice_seq=self.ship_seq[message.group_id],
            covered_to=covered,
            records=records,
        )
        if self.recorder.enabled and records:
            self.recorder.record(
                "merge.release",
                now,
                node=self.node_id,
                group=message.group_id,
                records=len(records),
                start=records[0].start,
                end=records[-1].end,
                covered_to=covered,
            )
        self.ship_seq[message.group_id] += len(records)
        net.send(self.node_id, self.parent, out)

    # -- membership (Sec 3.2) -------------------------------------------------------

    def add_child(self, child: str) -> None:
        self.children.append(child)
        for merger in self.mergers:
            merger.add_child(child)
        if self.liveness is not None:
            self.liveness.add(child, self.config.origin)

    def remove_child(self, child: str) -> None:
        if child in self.children:
            self.children.remove(child)
        for merger in self.mergers:
            merger.remove_child(child)
        if self.liveness is not None:
            self.liveness.remove(child)
