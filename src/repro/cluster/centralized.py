"""Centralized aggregation over a decentralized topology (Sec 2.4, 6.1.1).

The CeBuffer and Scotty deployments of the evaluation: all nodes except
the root only *move* data — locals batch their raw events per tick,
intermediates re-forward the batches (paying the bytes again on every
hop), and the root runs an ordinary centralized
:class:`~repro.baselines.api.StreamProcessor` over the merged stream.
"""

from __future__ import annotations

import heapq
import time as _time
from typing import Callable, Iterable

from repro.core.errors import ClusterError
from repro.core.event import Event
from repro.core.query import Query
from repro.core.types import NodeRole
from repro.cluster.config import ClusterConfig
from repro.cluster.desis import ClusterRunResult
from repro.network.messages import ControlMessage, EventBatchMessage
from repro.network.simnet import SimNetwork, SimNode
from repro.network.topology import Topology

__all__ = ["CentralizedCluster"]


class _ForwardingLocal(SimNode):
    """Ships its raw events upward in per-tick batches."""

    def __init__(self, node_id: str, parent: str) -> None:
        super().__init__(node_id, NodeRole.LOCAL)
        self.parent = parent
        self.pending: list[Event] = []

    def on_event(self, event: Event, now: int, net: SimNetwork) -> None:
        self.pending.append(event)

    def on_events(self, events: list[Event], now: int, net: SimNetwork) -> None:
        self.pending.extend(events)

    def _flush(self, now: int, net: SimNetwork) -> None:
        net.send(
            self.node_id,
            self.parent,
            EventBatchMessage(
                sender=self.node_id, covered_to=now, events=self.pending
            ),
        )
        self.pending = []

    def on_tick(self, now: int, net: SimNetwork) -> None:
        self._flush(now, net)

    def on_finish(self, now: int, net: SimNetwork) -> None:
        self._flush(now, net)


class _ForwardingIntermediate(SimNode):
    """Transfers data without processing it (Sec 6.1): every hop re-pays
    the serialization bytes, which is why centralized network overhead
    grows linearly with intermediate layers (Sec 6.4.1)."""

    def __init__(self, node_id: str, parent: str) -> None:
        super().__init__(node_id, NodeRole.INTERMEDIATE)
        self.parent = parent

    def on_message(self, message, now: int, net: SimNetwork) -> None:
        net.send(self.node_id, self.parent, message)


class _CentralRoot(SimNode):
    """Runs the actual stream processor over the merged child streams."""

    def __init__(self, node_id: str, locals_: list[str], processor) -> None:
        super().__init__(node_id, NodeRole.ROOT)
        self.processor = processor
        self.covered = {local: None for local in locals_}
        self.pending: dict[str, list[Event]] = {local: [] for local in locals_}
        self.fed_to: int | None = None

    def on_message(self, message, now: int, net: SimNetwork) -> None:
        if isinstance(message, ControlMessage):
            return
        if not isinstance(message, EventBatchMessage):
            return
        if message.sender not in self.pending:
            raise ClusterError(f"events from unknown local {message.sender!r}")
        self.pending[message.sender].extend(message.events)
        self.covered[message.sender] = message.covered_to
        self._advance()

    def _advance(self) -> None:
        if any(covered is None for covered in self.covered.values()):
            return
        covered = min(self.covered.values())
        if self.fed_to is not None and covered <= self.fed_to:
            return
        self.fed_to = covered
        ready: list[list[Event]] = []
        for sender, buffer in self.pending.items():
            split = 0
            while split < len(buffer) and buffer[split].time <= covered:
                split += 1
            ready.append(buffer[:split])
            self.pending[sender] = buffer[split:]
        # Replay the merged span as one ordered batch; processors without
        # a batched fast path (Scotty, CeBuffer, ...) fall back to the
        # per-event loop inside their ``process_batch``.
        merged = list(heapq.merge(*ready, key=lambda e: e.time))
        if merged:
            self.processor.process_batch(merged)
        self.processor.advance(covered)

    def finish(self) -> None:
        self.processor.close(self.fed_to)


class CentralizedCluster:
    """CeBuffer/Scotty deployed over a topology: only the root computes."""

    def __init__(
        self,
        queries: Iterable[Query],
        topology: Topology,
        processor_factory: Callable[[list[Query]], object],
        *,
        config: ClusterConfig | None = None,
    ) -> None:
        self.config = config if config is not None else ClusterConfig()
        self.topology = topology
        self.queries = list(queries)
        self.net = SimNetwork(
            default_codec=self.config.codec,
            default_latency_ms=self.config.latency_ms,
            default_bandwidth_bytes_per_ms=self.config.bandwidth_bytes_per_ms,
            fault_plan=self.config.fault_plan,
            retransmit_timeout_ms=self.config.retransmit_timeout,
            max_retries=self.config.max_retries,
        )
        self.processor = processor_factory(self.queries)
        # Anchor fixed-window schedules at the shared origin, like every
        # node of the decentralized deployments.
        self.processor.advance(self.config.origin)
        self.name = getattr(self.processor, "name", "centralized")
        self.root = _CentralRoot(topology.root, topology.locals_(), self.processor)
        self.net.add_node(self.root)
        self.locals: dict[str, _ForwardingLocal] = {}
        for node_id in topology.nodes():
            role = topology.role(node_id)
            if role is NodeRole.LOCAL:
                node = _ForwardingLocal(node_id, topology.parent(node_id))
                self.locals[node_id] = node
                self.net.add_node(node)
            elif role is NodeRole.INTERMEDIATE:
                self.net.add_node(
                    _ForwardingIntermediate(node_id, topology.parent(node_id))
                )
        for child, parent in topology.parents.items():
            self.net.connect(child, parent)

    def _align_up(self, time: int) -> int:
        interval = self.config.tick_interval
        return ((time // interval) + 1) * interval

    def run(self, streams: dict[str, Iterable[Event]]) -> ClusterRunResult:
        started = _time.perf_counter()
        last = self.config.origin
        events = 0
        for node_id, stream in streams.items():
            if node_id not in self.locals:
                raise ClusterError(f"{node_id!r} is not a local node")
            materialized = list(stream)
            events += len(materialized)
            last = max(
                last,
                self.net.inject_stream(
                    node_id, materialized, batch_ms=self.config.batch_ms
                ),
            )
        end = self._align_up(last)
        for node_id in self.locals:
            self.net.schedule_ticks(
                node_id,
                start=self.config.origin,
                end=end,
                interval=self.config.tick_interval,
            )
        self.net.run()
        for node in self.locals.values():
            node.on_finish(end, self.net)
        self.net.run()
        self.root.finish()
        wall = _time.perf_counter() - started
        return ClusterRunResult(
            sink=self.processor.sink,
            network=self.net.stats(),
            cpu_by_role=self.net.cpu_time_by_role(),
            wall_seconds=wall,
            events=events,
            node_cpu={
                node_id: node.cpu_time
                for node_id, node in self.net.nodes.items()
            },
        )
