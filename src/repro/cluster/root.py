"""The root node: final window assembly from covered slice records (Sec 5.1).

The root maintains, per query-group, a :class:`GroupMerger` over its
children plus a :class:`RootAssembler` that turns released slice records
into window results:

* **Fixed windows** close when coverage passes their deterministic end;
  their result merges the records fully inside ``[start, end)``.  Slices
  are cut at every fixed punctuation on every node, so records never
  straddle a fixed-window boundary.
* **Session windows** are reassembled by gap covering (Sec 5.1.2): each
  record carries its per-context activity span ``(first, last)``; spans
  closer than the gap cluster into one session, and a session closes once
  every child has covered ``last + gap`` — exactly "when all session gaps
  from different child nodes cover each other".
* **User-defined windows** close at their end-marker punctuation once
  coverage (the watermark) passes it; the window consumes the records up
  to the marker time.
* **Count-based windows** (root-evaluated groups, Sec 5.2) replay the
  shipped ``(time, value)`` pairs in time order through per-window
  operator states, since only the root can count the merged stream.
"""

from __future__ import annotations

import bisect
import heapq

from repro.core.analyzer import QueryGroup, QueryPlan
from repro.core.engine import required_kinds
from repro.core.errors import ClusterError
from repro.core.functions import finalize, operators_for
from repro.core.incmerge import DECOMPOSABLE_MERGE_KINDS, FifoAggregator
from repro.core.operators import (
    OperatorSetState,
    merge_many_partials,
    merge_partials,
)
from repro.core.query import Query
from repro.core.results import ResultSink, WindowResult
from repro.core.types import NodeRole, OperatorKind, WindowMeasure, WindowType
from repro.cluster.checkpoint import (
    assembler_chunks,
    decode_checkpoint,
    encode_checkpoint,
    merger_cursors,
    pending_chunks,
    restore_assembler,
    restore_mergers,
)
from repro.cluster.config import ClusterConfig
from repro.cluster.merger import GroupMerger
from repro.cluster.reliability import (
    ChildLiveness,
    recovery_entries,
    resync_entries,
)
from repro.network.messages import (
    CheckpointMessage,
    ControlMessage,
    PartialBatchMessage,
    ResyncMessage,
    SliceRecord,
)
from repro.network.simnet import SimNetwork, SimNode
from repro.obs.tracing import NULL_RECORDER

__all__ = ["RootNode", "RootAssembler"]


class _FixedState:
    __slots__ = ("query", "ctx", "kinds", "length", "slide",
                 "next_close_start", "agg", "next_abs")

    def __init__(self, query: Query, ctx: int, kinds, origin: int) -> None:
        self.query = query
        self.ctx = ctx
        self.kinds = kinds
        self.length = query.window.length
        self.slide = query.window.effective_slide
        self.next_close_start = origin
        #: Two-Stacks FIFO aggregate over consumed records, created lazily
        #: at the first incremental close; ``None`` on the plain-scan path
        #: and after a checkpoint restore (it is a derived cache).
        self.agg: FifoAggregator | None = None
        #: absolute index of the next record to push into ``agg``
        self.next_abs = 0


class _SessionState:
    __slots__ = ("query", "ctx", "kinds", "gap", "open_start", "last", "ops", "count")

    def __init__(self, query: Query, ctx: int, kinds) -> None:
        self.query = query
        self.ctx = ctx
        self.kinds = kinds
        self.gap = query.window.gap
        self.open_start: int | None = None
        self.last = 0
        self.ops: dict = {}
        self.count = 0


class _UserDefState:
    __slots__ = ("query", "ctx", "kinds", "eps", "prev_end", "pointer")

    def __init__(self, query: Query, ctx: int, kinds, origin: int) -> None:
        self.query = query
        self.ctx = ctx
        self.kinds = kinds
        self.eps: list[int] = []
        self.prev_end = origin
        self.pointer = 0  # absolute index of the next unconsumed record


class _CountState:
    __slots__ = ("query", "ctx", "kinds", "length", "slide", "seen", "open")

    def __init__(self, query: Query, ctx: int) -> None:
        self.query = query
        self.ctx = ctx
        self.kinds = tuple(operators_for(query.function))
        self.length = query.window.length
        self.slide = query.window.effective_slide
        self.seen = 0
        #: open windows: (start_time, operator states)
        self.open: list[tuple[int, OperatorSetState]] = []


def derive_ops_from_timed(record: SliceRecord, planned) -> None:
    """Fill each context's ``ops`` (and span) from its ``timed`` pairs.

    Root-evaluated groups with count-based windows ship raw timed values
    (Sec 5.2); time-based queries in the same group still assemble from
    per-record operator partials, which this derives on arrival.
    """
    for part in record.contexts.values():
        if part.timed is None or part.ops:
            continue
        values = [value for _, value in part.timed]
        ops: dict[OperatorKind, object] = {}
        for kind in planned:
            if kind is OperatorKind.SUM:
                ops[kind] = sum(values)
            elif kind is OperatorKind.COUNT:
                ops[kind] = len(values)
            elif kind is OperatorKind.MULTIPLICATION:
                product = 1.0
                for value in values:
                    product *= value
                ops[kind] = product
            elif kind is OperatorKind.DECOMPOSABLE_SORT:
                ops[kind] = (min(values), max(values)) if values else None
            elif kind is OperatorKind.NON_DECOMPOSABLE_SORT:
                ops[kind] = sorted(values)
        part.ops = ops
        if part.span is None and part.timed:
            part.span = (part.timed[0][0], part.timed[-1][0])


class RootAssembler:
    """Turns covered slice records of one query-group into window results."""

    def __init__(self, group: QueryGroup, origin: int, emit,
                 config: ClusterConfig, recorder=None):
        self.group = group
        self.origin = origin
        self._emit_cb = emit  # emit(query, start, end, merged_ops, count, now, ...)
        self.covered = origin
        self.records: list[SliceRecord] = []
        self.ends: list[int] = []
        self.base = 0  # absolute index of records[0]
        #: shed-coverage ledger (DESIGN.md §12): ``(node_id, start, end)``
        #: intervals dropped under overload anywhere below (or at) the
        #: root; consulted when each window closes to stamp the result
        #: with its completeness.  Empty — and free — without overload
        #: control.
        self.shed: list[tuple[str, int, int]] = []
        self.recorder = recorder if recorder is not None else NULL_RECORDER
        #: merge operator executions during window assembly (partials
        #: consumed by the plain scans plus ``merge_partials`` calls on
        #: the incremental path) — surfaced as ``cluster.root_merge_ops``
        self.merge_ops = 0

        self.fixed: list[_FixedState] = []
        self.sessions: list[_SessionState] = []
        self.userdef: list[_UserDefState] = []
        self.counts: list[_CountState] = []
        for query in group.queries:
            ctx = group.context_of[query.query_id]
            if query.window.measure is WindowMeasure.COUNT:
                self.counts.append(_CountState(query, ctx))
                continue
            kinds = required_kinds(query, group.operators)
            kind = query.window.window_type
            if kind in (WindowType.TUMBLING, WindowType.SLIDING):
                self.fixed.append(_FixedState(query, ctx, kinds, origin))
            elif kind is WindowType.SESSION:
                self.sessions.append(_SessionState(query, ctx, kinds))
            else:
                self.userdef.append(_UserDefState(query, ctx, kinds, origin))
        #: Incremental merging is only safe when the whole group windows on
        #: fixed time boundaries: then every child cuts at every fixed
        #: punctuation, the merger releases non-overlapping aligned records
        #: in start order, and each state's closes follow the FIFO
        #: discipline the Two-Stacks structure needs.  Sessions, marker
        #: windows, and count replays produce data-driven (overlapping or
        #: unaligned) records, so their groups keep the plain scans.
        self._inc_enabled = (
            config.merge_mode == "incremental"
            and not self.sessions
            and not self.userdef
            and not self.counts
        )

    # -- overload control (DESIGN.md §12) ----------------------------------------------

    def note_shed(self, entries) -> None:
        """Record shed coverage intervals — reported upward by descendants
        or shed at the root itself.  Must land before the coverage advance
        that closes the windows they degrade (guaranteed by the slice-seq
        protocol: shed metadata rides the batch that advances coverage)."""
        self.shed.extend(entries)

    def _shed_for(self, start: int, end: int):
        """``(shed_slices, completeness)`` for a closing window.

        Clips ledger entries to ``[start, end)`` and measures the interval
        *union*, so duplicate entries — a retransmitted batch re-reporting
        the same shed — cannot double-count lost coverage.
        """
        if not self.shed:
            return (), 1.0
        clipped = set()
        for node, shed_start, shed_end in self.shed:
            lo = max(shed_start, start)
            hi = min(shed_end, end)
            if lo < hi:
                clipped.add((node, lo, hi))
        if not clipped:
            return (), 1.0
        ordered = sorted(clipped, key=lambda entry: (entry[1], entry[2], entry[0]))
        union = 0
        cursor = start
        for _, lo, hi in ordered:
            if hi > cursor:
                union += hi - max(lo, cursor)
                cursor = hi
        completeness = max(1.0 - union / max(end - start, 1), 0.0)
        return tuple(ordered), completeness

    def _shed_intersects(self, start: int, end: int) -> bool:
        """Whether any shed coverage falls inside ``[start, end)`` — used
        to emit a window the shedding fully starved (``count == 0``)
        instead of silently skipping it like a genuinely empty one."""
        return any(
            max(shed_start, start) < min(shed_end, end)
            for _, shed_start, shed_end in self.shed
        )

    def emit(self, query, start, end, ops, count, now: int) -> None:
        """Stamp the closing window with shed coverage before emission.

        Undegraded windows take the plain call — emit callbacks without
        the overload keywords (tests, custom sinks) keep working, and the
        default path stays byte-identical.
        """
        shed_slices, completeness = self._shed_for(start, end)
        if not shed_slices:
            self._emit_cb(query, start, end, ops, count, now)
            return
        self._emit_cb(query, start, end, ops, count, now,
                      shed_slices=shed_slices, completeness=completeness)

    # -- record access ----------------------------------------------------------------

    def _merge_interval(self, start: int, end: int, ctx: int, kinds):
        """Merge context partials of records fully inside ``[start, end)``."""
        collected: dict[OperatorKind, list] = {kind: [] for kind in kinds}
        count = 0
        index = bisect.bisect_right(self.ends, start)
        while index < len(self.records) and self.ends[index] <= end:
            record = self.records[index]
            index += 1
            if record.start < start:
                continue
            part = record.contexts.get(ctx)
            if part is None:
                continue
            count += part.count
            for kind, bucket in collected.items():
                if kind in part.ops:
                    bucket.append(part.ops[kind])
        merged = {}
        for kind, bucket in collected.items():
            if bucket:
                merged[kind] = merge_many_partials(kind, bucket)
                self.merge_ops += len(bucket)
        return merged, count

    def _merge_fixed_window(self, state: _FixedState, start: int, end: int):
        """Merge ``[start, end)`` for one fixed state, incrementally when
        the window overlaps its predecessor (``slide < length``); tumbling
        states and gated groups take the plain interval scan."""
        if (
            not self._inc_enabled
            or state.slide >= state.length
            or not any(k in DECOMPOSABLE_MERGE_KINDS for k in state.kinds)
        ):
            return self._merge_interval(start, end, state.ctx, state.kinds)
        agg = state.agg
        if agg is None:
            agg = state.agg = FifoAggregator(state.kinds)
            state.next_abs = self.base
        ops_before = agg.merge_ops
        pushed = 0
        index = max(state.next_abs - self.base, 0)
        while index < len(self.records) and self.ends[index] <= end:
            record = self.records[index]
            index += 1
            part = record.contexts.get(state.ctx)
            if part is None:
                continue
            # Pushed in start order (aligned records sort equally by end
            # and start); anything before the window start is evicted
            # before the query below ever sees it.
            agg.push(record.start, part.ops, part.count)
            pushed += 1
        state.next_abs = self.base + index
        agg.evict_below(start)
        merged, count = agg.query()
        merge_ops = agg.merge_ops - ops_before
        self.merge_ops += merge_ops
        rest = tuple(k for k in state.kinds if k not in DECOMPOSABLE_MERGE_KINDS)
        if rest:
            extra, extra_count = self._merge_interval(start, end, state.ctx, rest)
            merged.update(extra)
            count = max(count, extra_count)
        if self.recorder.enabled:
            self.recorder.record(
                "merge.reuse",
                end,
                node="root",
                group=self.group.group_id,
                ctx=state.ctx,
                query_id=state.query.query_id,
                start=start,
                pushed=pushed,
                merge_ops=merge_ops,
            )
        return merged, count

    # -- consumption --------------------------------------------------------------------

    def consume(self, covered: int, records: list[SliceRecord], now: int) -> None:
        self.records.extend(records)
        self.ends.extend(record.end for record in records)
        self.covered = covered
        for state in self.userdef:
            added = False
            for record in records:
                for query_id, end in record.userdef_eps:
                    if query_id == state.query.query_id:
                        state.eps.append(end)
                        added = True
            if added:
                state.eps.sort()
        for state in self.sessions:
            self._feed_session(state, records, now)
        for state in self.counts:
            self._feed_count(state, records, now)
        self._close_fixed(now)
        self._close_sessions(now)
        self._close_userdef(now)
        self._gc()

    # -- fixed windows --------------------------------------------------------------------

    def _close_fixed(self, now: int) -> None:
        for state in self.fixed:
            while state.next_close_start + state.length <= self.covered:
                start = state.next_close_start
                end = start + state.length
                merged, count = self._merge_fixed_window(state, start, end)
                if count or self._shed_intersects(start, end):
                    self.emit(state.query, start, end, merged, count, now)
                state.next_close_start += state.slide

    # -- session windows (gap covering) ------------------------------------------------------

    def _emit_session(self, state: _SessionState, end: int, now: int) -> None:
        if state.count:
            self.emit(state.query, state.open_start, end, state.ops, state.count, now)
        state.open_start = None
        state.ops = {}
        state.count = 0

    def _feed_session(self, state: _SessionState, records, now: int) -> None:
        items = []
        for record in records:
            part = record.contexts.get(state.ctx)
            if part is None or part.count == 0:
                continue
            if part.span is None:
                raise ClusterError(
                    f"record [{record.start}..{record.end}) lacks the activity "
                    f"span required for session assembly of "
                    f"{state.query.query_id!r}"
                )
            items.append((part.span[0], part.span[1], part.ops, part.count))
        items.sort(key=lambda item: item[0])
        for first, last, ops, count in items:
            if state.open_start is None:
                state.open_start = first
                state.last = last
                state.ops = dict(ops)
                state.count = count
                continue
            if first - state.last >= state.gap:
                self._emit_session(state, state.last + state.gap, now)
                state.open_start = first
                state.last = last
                state.ops = dict(ops)
                state.count = count
                continue
            state.last = max(state.last, last)
            state.count += count
            for kind, partial in ops.items():
                if kind in state.ops:
                    state.ops[kind] = merge_partials(kind, state.ops[kind], partial)
                else:
                    state.ops[kind] = partial

    def _close_sessions(self, now: int) -> None:
        for state in self.sessions:
            if state.open_start is not None and self.covered >= state.last + state.gap:
                self._emit_session(state, state.last + state.gap, now)

    # -- user-defined windows --------------------------------------------------------------

    def _consume_until(self, state: _UserDefState, boundary: int):
        collected: dict[OperatorKind, list] = {kind: [] for kind in state.kinds}
        count = 0
        index = max(state.pointer - self.base, 0)
        while index < len(self.records) and self.ends[index] <= boundary:
            part = self.records[index].contexts.get(state.ctx)
            index += 1
            if part is None:
                continue
            count += part.count
            for kind, bucket in collected.items():
                if kind in part.ops:
                    bucket.append(part.ops[kind])
        state.pointer = self.base + index
        merged = {}
        for kind, bucket in collected.items():
            if bucket:
                merged[kind] = merge_many_partials(kind, bucket)
                self.merge_ops += len(bucket)
        return merged, count

    def _close_userdef(self, now: int) -> None:
        for state in self.userdef:
            # The marker event belongs to the trip it ends, and its slice
            # is labeled with the exclusive end ``marker + 1`` — so wait
            # for coverage strictly past the marker and consume through it.
            while state.eps and state.eps[0] < self.covered:
                marker = state.eps.pop(0)
                merged, count = self._consume_until(state, marker + 1)
                if count or self._shed_intersects(state.prev_end, marker):
                    self.emit(
                        state.query, state.prev_end, marker, merged, count, now
                    )
                state.prev_end = marker

    # -- count windows (root-evaluated replay, Sec 5.2) ---------------------------------------

    def _feed_count(self, state: _CountState, records, now: int) -> None:
        runs = []
        for record in records:
            part = record.contexts.get(state.ctx)
            if part is not None and part.timed:
                runs.append(part.timed)
        if not runs:
            return
        for time, value in heapq.merge(*runs):
            if state.seen % state.slide == 0:
                state.open.append((time, OperatorSetState(state.kinds)))
            for _, ops in state.open:
                ops.insert(value)
            state.seen += 1
            still_open = []
            for start_time, ops in state.open:
                if ops.inserts >= state.length:
                    self.emit(
                        state.query,
                        start_time,
                        time,
                        ops.partials(),
                        ops.inserts,
                        now,
                    )
                else:
                    still_open.append((start_time, ops))
            state.open = still_open

    # -- garbage collection ---------------------------------------------------------------------

    def _low_watermark(self) -> int:
        lows = [self.covered]
        for state in self.fixed:
            lows.append(state.next_close_start)
        for state in self.sessions:
            lows.append(
                state.open_start if state.open_start is not None else self.covered
            )
        for state in self.userdef:
            lows.append(state.prev_end)
        return min(lows)

    def _gc(self) -> None:
        low = self._low_watermark()
        drop = bisect.bisect_right(self.ends, low)
        if drop:
            del self.records[:drop]
            del self.ends[:drop]
            self.base += drop
        if self.shed:
            # A shed interval entirely below the low watermark can no
            # longer intersect any window still to close.
            self.shed = [entry for entry in self.shed if entry[2] > low]

    # -- end of stream ------------------------------------------------------------------------

    def finish(self, now: int) -> None:
        """Force-close everything still open (mirrors engine ``close()``)."""
        for state in self.fixed:
            while state.next_close_start < self.covered:
                start = state.next_close_start
                end = start + state.length
                merged, count = self._merge_fixed_window(
                    state, start, min(end, self.covered)
                )
                if count or self._shed_intersects(start, min(end, self.covered)):
                    self.emit(state.query, start, end, merged, count, now)
                state.next_close_start += state.slide
        for state in self.sessions:
            if state.open_start is not None:
                self._emit_session(
                    state, min(state.last + state.gap, self.covered), now
                )
        for state in self.userdef:
            merged, count = self._consume_until(state, self.covered)
            if count:
                self.emit(
                    state.query, state.prev_end, self.covered, merged, count, now
                )
            state.prev_end = self.covered
        for state in self.counts:
            for start_time, ops in state.open:
                if ops.inserts:
                    self.emit(
                        state.query,
                        start_time,
                        self.covered,
                        ops.partials(),
                        ops.inserts,
                        now,
                    )
            state.open = []


class RootNode(SimNode):
    """The Desis root: merges children, assembles windows, emits results."""

    def __init__(self, node_id: str, children: list[str], plan: QueryPlan,
                 config: ClusterConfig, sink: ResultSink | None = None,
                 recorder=None) -> None:
        super().__init__(node_id, NodeRole.ROOT)
        self.plan = plan
        self.config = config
        self.recorder = recorder if recorder is not None else NULL_RECORDER
        self.sink = sink if sink is not None else ResultSink()
        self.children = list(children)
        self.mergers = [
            GroupMerger(group, children, config.origin) for group in plan.groups
        ]
        self.assemblers = [
            RootAssembler(group, config.origin, self._emit, config,
                          recorder=self.recorder)
            for group in plan.groups
        ]
        self.last_seen: dict[str, int] = {}
        #: merge-op counts of assemblers discarded by crash recovery (the
        #: replacement assemblers restart their counters at zero)
        self.merge_ops_carried = 0
        # Overload-control accounting (DESIGN.md §12); all stay zero
        # without the opt-in caps.
        self.degraded_windows = 0
        self.slices_shed = 0
        self.peak_staging = 0
        self.slow_consumer_evictions = 0
        # Soft-eviction state, only active under a fault plan: without one
        # the network is lossless and partitions cannot happen.
        self.liveness = (
            ChildLiveness(children, config.origin, config.node_timeout)
            if config.fault_plan is not None
            else None
        )
        # Exactly-once emission ledger and checkpointing (DESIGN.md §8).
        # Every window result gets an emit sequence number; after a
        # state-losing restart the deterministic replay regenerates the
        # results already emitted before the crash, and ``_suppress_below``
        # keeps them out of the sink.
        self._emit_seq = 0
        self._suppress_below = 0
        self.duplicates_suppressed = 0
        self.store = None
        self._ckpt_id = 0
        self._last_ckpt = config.origin
        self._slices_since_ckpt = 0
        self.checkpoints_taken = 0
        self.recoveries = 0
        #: deployment hook: called with ``(child, now, net)`` when liveness
        #: sweeps a child whose crash the fault plan declares permanent
        self.on_child_dead = None

    def _emit(self, query: Query, start: int, end: int, ops, count: int,
              now: int, shed_slices=(), completeness: float = 1.0) -> None:
        seq = self._emit_seq
        self._emit_seq = seq + 1
        if seq < self._suppress_below:
            # Replayed emission from before the crash — already in the
            # sink, exactly-once says drop it here.
            self.duplicates_suppressed += 1
            return
        if completeness < 1.0:
            self.degraded_windows += 1
        if self.recorder.enabled:
            extra = {}
            if completeness < 1.0:
                extra["completeness"] = completeness
                extra["shed_slices"] = len(shed_slices)
            self.recorder.record(
                "window.emit",
                now,
                node=self.node_id,
                group=self.plan.group_of(query.query_id).group_id,
                query_id=query.query_id,
                start=start,
                end=end,
                event_count=count,
                **extra,
            )
        self.sink.emit(
            WindowResult(
                query_id=query.query_id,
                start=start,
                end=end,
                value=finalize(query.function, ops),
                event_count=count,
                emitted_at=now,
                shed_slices=tuple(shed_slices),
                completeness=completeness,
            )
        )

    def on_message(self, message, now: int, net: SimNetwork) -> None:
        if isinstance(message, ControlMessage):
            if message.kind == "heartbeat":
                self.last_seen[message.sender] = now
                liveness = self.liveness
                if liveness is not None and liveness.tracks(message.sender):
                    if liveness.beat(message.sender, now):
                        self._readmit(message.sender, net)
            return
        if not isinstance(message, PartialBatchMessage):
            return
        merger = self.mergers[message.group_id]
        if message.shed:
            # The ledger must see shed coverage before the advance below
            # can close the windows it degrades.
            self.assemblers[message.group_id].note_shed(message.shed)
        merger.on_batch(message)
        if self.config.overload_control:
            self._shed_staging_overflow(message.group_id, net)
            self._note_staging()
        advanced = merger.advance()
        if advanced is None:
            return
        covered, records = advanced
        group = self.plan.groups[message.group_id]
        if group.needs_timestamps:
            for record in records:
                derive_ops_from_timed(record, group.operators)
        if self.recorder.enabled and records:
            self.recorder.record(
                "root.consume",
                now,
                node=self.node_id,
                group=message.group_id,
                records=len(records),
                start=records[0].start,
                end=records[-1].end,
                covered_to=covered,
            )
        self.assemblers[message.group_id].consume(covered, records, now)
        if self.store is not None:
            self._slices_since_ckpt += len(records)
            self._maybe_checkpoint(now, net)

    def on_tick(self, now: int, net: SimNetwork) -> None:
        # Ticks are scheduled for the root under a fault plan (the
        # heartbeat-silence sweep that soft-evicts partitioned children)
        # and when checkpointing is on.
        liveness = self.liveness
        if liveness is not None:
            plan = net.fault_plan
            for child in liveness.sweep(now):
                for merger in self.mergers:
                    merger.remove_child(child)
                if (
                    self.on_child_dead is not None
                    and plan is not None
                    and plan.permanent(child, now)
                ):
                    self.on_child_dead(child, now, net)
            if self.config.overload_control:
                self._sweep_slow_consumers(now, net)
        if self.store is not None:
            self._maybe_checkpoint(now, net)

    # -- overload control (DESIGN.md §12) -------------------------------------------

    def _shed_staging_overflow(self, group_id: int, net: SimNetwork) -> None:
        """Shed the oldest pending slices of one merger when its staging
        occupancy exceeds the cap, down to the hysteresis watermark.  Shed
        coverage lands directly in the group's ledger — the root is its
        own final consumer."""
        limit = self.config.staging_limit
        if limit is None:
            return
        merger = self.mergers[group_id]
        occupancy = merger.staging_occupancy()
        if occupancy <= limit:
            return
        low = max(int(limit * self.config.shed_watermark), 0)
        shed = merger.shed_oldest(occupancy - low)
        if not shed:
            return
        self.slices_shed += len(shed)
        net.note_shed(self.node_id, group_id, shed)
        self.assemblers[group_id].note_shed(
            (self.node_id, record.start, record.end) for record in shed
        )

    def _note_staging(self) -> None:
        occupancy = sum(merger.staging_occupancy() for merger in self.mergers)
        if occupancy > self.peak_staging:
            self.peak_staging = occupancy

    def _sweep_slow_consumers(self, now: int, net: SimNetwork) -> None:
        """Soft-evict children whose reliable channel toward the root has
        been credit-stalled past the stall timeout (DESIGN.md §12):
        coverage resumes without them, and the usual heartbeat-rejoin
        resync path re-attaches them once the backlog drains."""
        liveness = self.liveness
        timeout = self.config.stall_timeout
        if timeout is None:
            timeout = self.config.node_timeout
        for child in sorted(liveness.last_seen):
            since = net.channel_stalled_since(child, self.node_id)
            if since is None or now - since <= timeout:
                continue
            if liveness.force_evict(child):
                self.slow_consumer_evictions += 1
                for merger in self.mergers:
                    merger.remove_child(child)

    # -- checkpointing and recovery (DESIGN.md §8) ---------------------------------

    def _maybe_checkpoint(self, now: int, net: SimNetwork) -> None:
        interval = self.config.checkpoint_interval
        if interval is None:
            return
        due = now - self._last_ckpt >= interval
        every = self.config.checkpoint_every_slices
        if not due and every is not None and self._slices_since_ckpt >= every:
            due = True
        if not due:
            return
        plan = net.fault_plan
        if plan is not None and plan.crashed(self.node_id, now):
            return
        self._checkpoint(now, net)

    def _checkpoint(self, now: int, net: SimNetwork) -> None:
        self._ckpt_id += 1
        safe_to = {
            group_id: merger.forwarded_to
            for group_id, merger in enumerate(self.mergers)
        }
        header = CheckpointMessage(
            sender=self.node_id,
            checkpoint_id=self._ckpt_id,
            at=now,
            emit_seq=self._emit_seq,
            groups={
                group_id: (0, 0, merger.forwarded_to)
                for group_id, merger in enumerate(self.mergers)
            },
            cursors=merger_cursors(self.mergers),
            safe_to=safe_to,
        )
        chunks = pending_chunks(self.node_id, self._ckpt_id, self.mergers)
        chunks.extend(assembler_chunks(self.node_id, self._ckpt_id, self.assemblers))
        self.store.save(
            self.node_id, self._ckpt_id, encode_checkpoint([header, *chunks])
        )
        self.checkpoints_taken += 1
        self._last_ckpt = now
        self._slices_since_ckpt = 0
        if self.recorder.enabled:
            self.recorder.record(
                "checkpoint.save",
                now,
                node=self.node_id,
                checkpoint_id=self._ckpt_id,
                chunks=len(chunks) + 1,
            )
        for child in self.children:
            net.send(
                self.node_id,
                child,
                CheckpointMessage(
                    sender=self.node_id,
                    checkpoint_id=self._ckpt_id,
                    at=now,
                    safe_to=dict(safe_to),
                ),
            )

    def on_restart(self, now: int, net: SimNetwork) -> None:
        """Come back from a state-losing crash with exactly-once emission.

        Merge and assembly state is wiped and reloaded from the latest
        checkpoint (or left virgin without one); the emit sequence resumes
        at the checkpointed ledger value while ``_suppress_below``
        remembers how far the sink already got, so the deterministic
        replay regenerates — and drops — exactly the window results
        emitted between the checkpoint and the crash.
        """
        self.recoveries += 1
        pre_crash_emits = self._emit_seq
        self.merge_ops_carried += sum(a.merge_ops for a in self.assemblers)
        config = self.config
        self.mergers = [
            GroupMerger(group, self.children, config.origin)
            for group in self.plan.groups
        ]
        self.assemblers = [
            RootAssembler(group, config.origin, self._emit, config,
                          recorder=self.recorder)
            for group in self.plan.groups
        ]
        self.last_seen = {}
        self._emit_seq = 0
        self._suppress_below = pre_crash_emits
        self._last_ckpt = now
        self._slices_since_ckpt = 0
        if self.liveness is not None:
            self.liveness = ChildLiveness(self.children, now, config.node_timeout)
        loaded = self.store.load_latest(self.node_id) if self.store else None
        restored_id = 0
        if loaded is not None:
            restored_id, blobs = loaded
            header, chunks = decode_checkpoint(blobs)
            self._ckpt_id = restored_id
            self._emit_seq = header.emit_seq
            restore_mergers(self.mergers, header, chunks)
            by_group = {
                chunk.group_id: chunk
                for chunk in chunks
                if chunk.kind == "assembler"
            }
            for assembler in self.assemblers:
                chunk = by_group.get(assembler.group.group_id)
                if chunk is not None:
                    restore_assembler(assembler, chunk)
        if self.recorder.enabled:
            self.recorder.record(
                "node.recover",
                now,
                node=self.node_id,
                checkpoint_id=restored_id,
                from_checkpoint=loaded is not None,
                suppress_below=pre_crash_emits,
            )
        for child in self.children:
            epoch = net.expect_resync(child, self.node_id)
            net.send(
                self.node_id,
                child,
                ResyncMessage(
                    sender=self.node_id,
                    epoch=epoch,
                    entries=recovery_entries(self.mergers, child),
                    recover=True,
                ),
            )

    def _readmit(self, child: str, net: SimNetwork) -> None:
        """Re-attach a soft-evicted child whose heartbeats came back."""
        for merger in self.mergers:
            merger.add_child(child)
        epoch = net.expect_resync(child, self.node_id)
        net.send(
            self.node_id,
            child,
            ResyncMessage(
                sender=self.node_id,
                epoch=epoch,
                entries=resync_entries(self.mergers),
            ),
        )

    def finish(self, now: int) -> None:
        for assembler in self.assemblers:
            assembler.finish(now)

    @property
    def root_merge_ops(self) -> int:
        """Total merge operator executions during window assembly."""
        return self.merge_ops_carried + sum(
            assembler.merge_ops for assembler in self.assemblers
        )

    # -- membership (Sec 3.2) ----------------------------------------------------------------

    def add_child(self, child: str) -> None:
        if child not in self.children:
            self.children.append(child)
        for merger in self.mergers:
            merger.add_child(child)
        if self.liveness is not None:
            self.liveness.add(child, int(self.config.origin))

    def remove_child(self, child: str) -> None:
        if child in self.children:
            self.children.remove(child)
        self.last_seen.pop(child, None)
        for merger in self.mergers:
            merger.remove_child(child)
        if self.liveness is not None:
            self.liveness.remove(child)

    def timed_out_nodes(self, now: int) -> list[str]:
        """Children whose heartbeats stopped for longer than the timeout."""
        timeout = self.config.node_timeout
        return sorted(
            node
            for node, seen in self.last_seen.items()
            if now - seen > timeout
        )
