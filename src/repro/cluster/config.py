"""Cluster deployment configuration."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.config import EngineConfig
from repro.network.codec import BinaryCodec, Codec
from repro.network.simnet import FaultPlan

__all__ = ["ClusterConfig"]


@dataclass(slots=True)
class ClusterConfig:
    """Knobs shared by all decentralized deployments.

    Attributes:
        origin: global time origin (ms); every node anchors fixed-window
            schedules here so slices align across nodes (Sec 5.1.1).
            Event timestamps must be >= origin.
        tick_interval: watermark cadence (ms).  Locals force a slice cut
            and ship pending partial results every tick; it is also the
            granularity at which coverage advances, i.e. the paper's
            watermark for terminating data-driven windows (Sec 5.1.2).
        latency_ms: per-link one-way latency.
        bandwidth_bytes_per_ms: per-link bandwidth cap (``None`` =
            unlimited; ~131 bytes/ms models the Pi cluster's 1G Ethernet).
        codec: wire format for data traffic.
        heartbeat_interval: cadence of node heartbeats to the root (ms).
        node_timeout: silence after which a parent evicts a node (ms).
        batch_ms: when set, inject each local stream in per-tick event
            batches of this granularity (see
            :meth:`~repro.network.simnet.SimNetwork.inject_stream`), so
            nodes with a batched ingestion path process slice-runs in one
            handler call.  ``None`` (the default) keeps per-event
            injection; deployments with runtime actions always use
            per-event injection regardless.
        punctuation_mode: how local engine runtimes find the next window
            punctuation: ``"heap"`` (default) or ``"scan"`` (see
            :class:`~repro.core.engine.GroupRuntime`).
        merge_mode: how the root assembles overlapping fixed windows from
            slice records: ``"incremental"`` (default) reuses shared-slice
            merges via the Two-Stacks layer (float aggregates within 1e-9
            relative of the plain fold, everything else identical);
            ``"exact"`` keeps the byte-identical full interval scan.  See
            :mod:`repro.core.incmerge`.
        fault_plan: seeded description of link faults and node crashes
            (see :class:`~repro.network.simnet.FaultPlan`).  ``None`` (the
            default) keeps the lossless network byte-for-byte; any plan —
            even an all-zero one — routes data traffic through the
            reliable ack/retransmit channel.
        retransmit_timeout: ms before an unacked reliable frame is
            retransmitted (doubling on each retry).
        max_retries: retransmissions before a frame is abandoned and the
            link counts it as ``retransmit_exhausted``.
        trace: opt into slice-lifecycle tracing: the deployment builds a
            :class:`~repro.obs.tracing.TraceRecorder`, threads it through
            every node and the network, and returns it on the run result.
            Off (the default) keeps all instrumented paths on the shared
            no-op recorder — byte-identical outputs, within-noise cost.
        checkpoint_interval: sim-time cadence (ms) at which intermediates
            and the root persist incremental state snapshots (DESIGN.md
            §8).  ``None`` (the default) disables checkpointing entirely —
            no snapshots, no retention trimming, zero overhead.
        checkpoint_every_slices: additionally checkpoint after this many
            slice records merged since the last snapshot (``None`` = time
            cadence only).  Only consulted when ``checkpoint_interval``
            is set.
        checkpoint_store: explicit
            :class:`~repro.cluster.checkpoint.CheckpointStore` to persist
            snapshots into.  ``None`` resolves to a
            :class:`~repro.cluster.checkpoint.DirCheckpointStore` when
            ``checkpoint_dir`` is set, else an in-memory store.
        checkpoint_dir: directory for on-disk checkpoints (one ``.ckpt``
            file per node, replaced atomically).  Ignored when
            ``checkpoint_store`` is given.
        channel_credit_bytes: per-channel credit window in bytes.  A
            sender whose unacked reliable frames hold at least this many
            bytes has exhausted its credit: the channel reports *stalled*
            and upstream nodes stop flushing into it, accumulating slices
            in their bounded staging buffer instead.  Credits are granted
            back by the acks the receiver already piggybacks on every
            delivery (DESIGN.md §12).  ``None`` (the default) disables
            flow control on the byte axis.
        channel_credit_frames: per-channel credit window in frames
            (unacked sequenced messages).  Same semantics as
            ``channel_credit_bytes`` on the frame axis; ``None`` disables.
        staging_limit: cap on a node's per-group staging buffer (pending
            slice records not yet shipped).  When a flush is deferred by a
            stalled channel and the buffer would exceed this many records,
            the oldest whole slices are shed deterministically and their
            coverage intervals are reported downstream so the root emits
            degraded windows with ``completeness < 1.0`` instead of
            silently wrong totals.  ``None`` (default) = unbounded.
        retention_limit: cap on the number of re-ship retention batches a
            node keeps for crash recovery.  Oldest batches are evicted
            beyond the cap (recovery may then need a checkpoint to cover
            the gap).  ``None`` (default) = unbounded.
        shed_watermark: low-watermark fraction of ``staging_limit``
            (hysteresis): once shedding starts, it continues down to
            ``staging_limit * shed_watermark`` records so the buffer does
            not oscillate at the cap.  Default 0.8.
        stall_timeout: ms a child's upward channel may stay credit-stalled
            before the parent treats it as a slow consumer and soft-evicts
            it through the same :class:`ChildLiveness` resync path as a
            silent child.  ``None`` (default) derives it from
            ``node_timeout``.
        engine: per-node :class:`~repro.core.config.EngineConfig`.  When
            given, its ``punctuation_mode``/``merge_mode`` override the
            loose legacy string fields above (which remain as aliases —
            cluster internals still read them); when omitted, one is
            derived from the legacy fields so ``config.engine`` is always
            populated.  ``engine.shards`` is carried for real multi-core
            deployments; the simulated clusters model per-node parallelism
            analytically (see
            :attr:`~repro.cluster.desis.DesisRunResult.modeled_parallel_throughput`)
            and execute each node's engine in-process regardless.
    """

    origin: int = 0
    tick_interval: int = 1_000
    latency_ms: float = 1.0
    bandwidth_bytes_per_ms: float | None = None
    codec: Codec = field(default_factory=BinaryCodec)
    heartbeat_interval: int = 5_000
    node_timeout: int = 15_000
    batch_ms: int | None = None
    punctuation_mode: str = "heap"
    merge_mode: str = "incremental"
    fault_plan: FaultPlan | None = None
    retransmit_timeout: float = 100.0
    max_retries: int = 8
    trace: bool = False
    checkpoint_interval: int | None = None
    checkpoint_every_slices: int | None = None
    checkpoint_store: object | None = None
    checkpoint_dir: str | None = None
    channel_credit_bytes: int | None = None
    channel_credit_frames: int | None = None
    staging_limit: int | None = None
    retention_limit: int | None = None
    shed_watermark: float = 0.8
    stall_timeout: int | None = None
    engine: EngineConfig | None = None

    def __post_init__(self) -> None:
        if self.engine is None:
            self.engine = EngineConfig(
                punctuation_mode=self.punctuation_mode,
                merge_mode=self.merge_mode,
            )
        else:
            self.punctuation_mode = self.engine.punctuation_mode
            self.merge_mode = self.engine.merge_mode

    @property
    def checkpointing(self) -> bool:
        return self.checkpoint_interval is not None

    @property
    def overload_control(self) -> bool:
        """Whether any overload-control knob deviates from unbounded."""
        return (
            self.channel_credit_bytes is not None
            or self.channel_credit_frames is not None
            or self.staging_limit is not None
            or self.retention_limit is not None
        )
