"""Cluster deployment configuration."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.network.codec import BinaryCodec, Codec
from repro.network.simnet import FaultPlan

__all__ = ["ClusterConfig"]


@dataclass(slots=True)
class ClusterConfig:
    """Knobs shared by all decentralized deployments.

    Attributes:
        origin: global time origin (ms); every node anchors fixed-window
            schedules here so slices align across nodes (Sec 5.1.1).
            Event timestamps must be >= origin.
        tick_interval: watermark cadence (ms).  Locals force a slice cut
            and ship pending partial results every tick; it is also the
            granularity at which coverage advances, i.e. the paper's
            watermark for terminating data-driven windows (Sec 5.1.2).
        latency_ms: per-link one-way latency.
        bandwidth_bytes_per_ms: per-link bandwidth cap (``None`` =
            unlimited; ~131 bytes/ms models the Pi cluster's 1G Ethernet).
        codec: wire format for data traffic.
        heartbeat_interval: cadence of node heartbeats to the root (ms).
        node_timeout: silence after which a parent evicts a node (ms).
        batch_ms: when set, inject each local stream in per-tick event
            batches of this granularity (see
            :meth:`~repro.network.simnet.SimNetwork.inject_stream`), so
            nodes with a batched ingestion path process slice-runs in one
            handler call.  ``None`` (the default) keeps per-event
            injection; deployments with runtime actions always use
            per-event injection regardless.
        punctuation_mode: how local engine runtimes find the next window
            punctuation: ``"heap"`` (default) or ``"scan"`` (see
            :class:`~repro.core.engine.GroupRuntime`).
        merge_mode: how the root assembles overlapping fixed windows from
            slice records: ``"incremental"`` (default) reuses shared-slice
            merges via the Two-Stacks layer (float aggregates within 1e-9
            relative of the plain fold, everything else identical);
            ``"exact"`` keeps the byte-identical full interval scan.  See
            :mod:`repro.core.incmerge`.
        fault_plan: seeded description of link faults and node crashes
            (see :class:`~repro.network.simnet.FaultPlan`).  ``None`` (the
            default) keeps the lossless network byte-for-byte; any plan —
            even an all-zero one — routes data traffic through the
            reliable ack/retransmit channel.
        retransmit_timeout: ms before an unacked reliable frame is
            retransmitted (doubling on each retry).
        max_retries: retransmissions before a frame is abandoned and the
            link counts it as ``retransmit_exhausted``.
        trace: opt into slice-lifecycle tracing: the deployment builds a
            :class:`~repro.obs.tracing.TraceRecorder`, threads it through
            every node and the network, and returns it on the run result.
            Off (the default) keeps all instrumented paths on the shared
            no-op recorder — byte-identical outputs, within-noise cost.
        checkpoint_interval: sim-time cadence (ms) at which intermediates
            and the root persist incremental state snapshots (DESIGN.md
            §8).  ``None`` (the default) disables checkpointing entirely —
            no snapshots, no retention trimming, zero overhead.
        checkpoint_every_slices: additionally checkpoint after this many
            slice records merged since the last snapshot (``None`` = time
            cadence only).  Only consulted when ``checkpoint_interval``
            is set.
        checkpoint_store: explicit
            :class:`~repro.cluster.checkpoint.CheckpointStore` to persist
            snapshots into.  ``None`` resolves to a
            :class:`~repro.cluster.checkpoint.DirCheckpointStore` when
            ``checkpoint_dir`` is set, else an in-memory store.
        checkpoint_dir: directory for on-disk checkpoints (one ``.ckpt``
            file per node, replaced atomically).  Ignored when
            ``checkpoint_store`` is given.
    """

    origin: int = 0
    tick_interval: int = 1_000
    latency_ms: float = 1.0
    bandwidth_bytes_per_ms: float | None = None
    codec: Codec = field(default_factory=BinaryCodec)
    heartbeat_interval: int = 5_000
    node_timeout: int = 15_000
    batch_ms: int | None = None
    punctuation_mode: str = "heap"
    merge_mode: str = "incremental"
    fault_plan: FaultPlan | None = None
    retransmit_timeout: float = 100.0
    max_retries: int = 8
    trace: bool = False
    checkpoint_interval: int | None = None
    checkpoint_every_slices: int | None = None
    checkpoint_store: object | None = None
    checkpoint_dir: str | None = None

    @property
    def checkpointing(self) -> bool:
        return self.checkpoint_interval is not None
