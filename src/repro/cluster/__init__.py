"""Decentralized aggregation (Sec 5): Desis, Disco, and centralized shipping."""

from repro.cluster.centralized import CentralizedCluster
from repro.cluster.checkpoint import (
    CheckpointStore,
    DirCheckpointStore,
    InMemoryCheckpointStore,
)
from repro.cluster.config import ClusterConfig
from repro.cluster.desis import ClusterRunResult, DesisCluster
from repro.cluster.disco import DiscoCluster
from repro.cluster.intermediate import IntermediateNode
from repro.cluster.local import LocalNode
from repro.cluster.merger import GroupMerger, group_has_sessions, merge_records
from repro.cluster.reliability import ChildLiveness, recovery_entries, resync_entries
from repro.cluster.root import RootAssembler, RootNode

__all__ = [
    "CentralizedCluster",
    "CheckpointStore",
    "ChildLiveness",
    "ClusterConfig",
    "ClusterRunResult",
    "DesisCluster",
    "DirCheckpointStore",
    "DiscoCluster",
    "GroupMerger",
    "InMemoryCheckpointStore",
    "IntermediateNode",
    "LocalNode",
    "RootAssembler",
    "RootNode",
    "group_has_sessions",
    "merge_records",
    "recovery_entries",
    "resync_entries",
]
