"""Decentralized aggregation (Sec 5): Desis, Disco, and centralized shipping."""

from repro.cluster.centralized import CentralizedCluster
from repro.cluster.config import ClusterConfig
from repro.cluster.desis import ClusterRunResult, DesisCluster
from repro.cluster.disco import DiscoCluster
from repro.cluster.intermediate import IntermediateNode
from repro.cluster.local import LocalNode
from repro.cluster.merger import GroupMerger, group_has_sessions, merge_records
from repro.cluster.reliability import ChildLiveness, resync_entries
from repro.cluster.root import RootAssembler, RootNode

__all__ = [
    "CentralizedCluster",
    "ChildLiveness",
    "ClusterConfig",
    "ClusterRunResult",
    "DesisCluster",
    "DiscoCluster",
    "GroupMerger",
    "IntermediateNode",
    "LocalNode",
    "RootAssembler",
    "RootNode",
    "group_has_sessions",
    "merge_records",
    "resync_entries",
]
