"""Causal spans: per-window trace trees over the flat event recorder.

The flat :class:`~repro.obs.tracing.TraceRecorder` stays the recorded
substrate — hot paths still pay one guarded ``record()`` call, and the
byte-identity and overhead contracts of PR 3 are untouched.  This module
materializes *spans* on top of it, after the run: one trace per emitted
window, rooted at the first contributing event's ingest, with every hop
the window's records took hanging off that root causally.

Identifiers are derived, never generated:

* ``trace_id`` is ``"{query_id}:{start}:{end}"`` — the window identity;
* ``span_id`` is the underlying event's recorder sequence number (a total
  order within the run);
* ``parent_id`` points at the span that causally enabled this one — the
  slice a ship drained, the ship/release a link transit carried, the
  transit a merge/consume drained.

Because every id and timestamp comes from the deterministic recorder,
two same-seed runs produce **byte-identical span trees**
(:func:`render_spans_jsonl` output diffs empty), faulty runs included.

Span names and their parents:

==============  ==================================================
name            parent
==============  ==================================================
``window``      — (root; covers first ingest → emit)
``slice``       root (covers slice start → cut)
``ship``        the latest contributing slice cut on the same node
``send``        the ship/release whose batch entered the channel
``transit``     the ship/release at the link's source (covers the
                hop: sender's release time → delivery)
``retransmit``  the ``send`` of the re-sent frame (same link+seq)
``merge``       the transit that completed the intermediate's input
``consume``     the transit that completed the root's input
``reuse``       root (incremental merge-layer window close)
``checkpoint``  root (state snapshot during the window's lifetime)
``recover``     root (restart/restore during the window's lifetime)
``reroute``     root (failover adoption during the window's lifetime)
``shed``        root (bounded staging dropped coverage inside the
                window — the reason the result is degraded)
``credit-stall``  root (a channel ran out of credit during the
                window's lifetime, deferring upward progress)
==============  ==================================================

``net.ack`` events are deliberately excluded: an ack clears a sender's
backlog for *many* windows at once and cannot be attributed to one.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any

from repro.obs.tracing import TraceEvent, TraceRecorder

__all__ = [
    "Span",
    "WindowTrace",
    "build_window_trace",
    "build_window_traces",
    "render_spans_jsonl",
    "write_spans_jsonl",
]

#: node-lifecycle kinds attached to the root when they fall inside the
#: window's lifetime (they gate progress but carry no record spans)
_LIFECYCLE_KINDS = {
    "checkpoint.save": "checkpoint",
    "node.recover": "recover",
    "child.reroute": "reroute",
}


@dataclass(frozen=True, slots=True)
class Span:
    """One causal step in a window's pipeline, in simulated ms."""

    span_id: int
    parent_id: int | None
    trace_id: str
    name: str
    node: str
    start: int
    end: int
    attrs: dict[str, Any] = field(default_factory=dict)

    @property
    def duration(self) -> int:
        return self.end - self.start

    def to_dict(self) -> dict[str, Any]:
        return {
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "name": self.name,
            "node": self.node,
            "start": self.start,
            "end": self.end,
            **self.attrs,
        }


@dataclass(slots=True)
class WindowTrace:
    """The span tree of one emitted window."""

    trace_id: str
    query_id: str
    start: int
    end: int
    group: int
    ingested_at: int
    emitted_at: int
    #: root first, then children in ``span_id`` (= recorder seq) order
    spans: list[Span]

    @property
    def root(self) -> Span:
        return self.spans[0]

    @property
    def latency(self) -> int:
        """End-to-end emission latency: first ingest → emit, sim-ms."""
        return self.emitted_at - self.ingested_at

    def to_dict(self) -> dict[str, Any]:
        return {
            "trace_id": self.trace_id,
            "query_id": self.query_id,
            "start": self.start,
            "end": self.end,
            "group": self.group,
            "ingested_at": self.ingested_at,
            "emitted_at": self.emitted_at,
            "latency": self.latency,
            "spans": [span.to_dict() for span in self.spans],
        }


@dataclass(slots=True)
class _WindowEvents:
    """All recorder events attributable to one emitted window."""

    emit: TraceEvent
    group: int
    start: int
    end: int
    ingested_at: int
    slices: list[TraceEvent] = field(default_factory=list)
    ships: list[TraceEvent] = field(default_factory=list)
    releases: list[TraceEvent] = field(default_factory=list)
    consumes: list[TraceEvent] = field(default_factory=list)
    transits: list[TraceEvent] = field(default_factory=list)
    sends: list[TraceEvent] = field(default_factory=list)
    reuses: list[TraceEvent] = field(default_factory=list)
    retransmits: list[TraceEvent] = field(default_factory=list)
    lifecycle: list[TraceEvent] = field(default_factory=list)
    #: ``buffer.shed`` events whose coverage intersects the window
    sheds: list[TraceEvent] = field(default_factory=list)
    #: ``credit.stall`` events inside the window's lifetime
    stalls: list[TraceEvent] = field(default_factory=list)


def _reuse_matches(event: TraceEvent, result) -> bool:
    """Whether a ``merge.reuse`` event served this window's close.

    The root records the window's ``query_id``/``start``; the engine's
    per-instance record carries neither, but is stamped at the window's
    end time, which identifies the instance within its group.
    """
    query_id = event.data.get("query_id")
    if query_id is not None:
        return query_id == result.query_id and event.data.get("start") == result.start
    return event.at == result.end


def collect_window_events(recorder: TraceRecorder, result) -> _WindowEvents:
    """Gather every event attributable to ``result``'s window.

    Same lookup contract as :meth:`TraceRecorder.explain_window`: raises
    ``KeyError`` when the window's emit event is not in the ring buffer.
    """
    emit: TraceEvent | None = None
    for event in reversed(list(recorder.events())):
        if (
            event.kind == "window.emit"
            and event.data.get("query_id") == result.query_id
            and event.data.get("start") == result.start
            and event.data.get("end") == result.end
        ):
            emit = event
            break
    if emit is None:
        raise KeyError(
            f"no window.emit trace for {result.query_id!r} "
            f"[{result.start}..{result.end}); was tracing enabled, and "
            f"is the window still inside the ring buffer?"
        )
    group = emit.group
    start, end = result.start, result.end
    overlaps = TraceRecorder._overlaps
    ev = _WindowEvents(
        emit=emit, group=group, start=start, end=end, ingested_at=emit.at
    )
    for event in recorder.events():
        if event.seq >= emit.seq:
            break
        kind = event.kind
        if kind == "net.retransmit":
            ev.retransmits.append(event)
            continue
        if kind == "net.transit":
            if event.group == group and overlaps(event, start, end):
                ev.transits.append(event)
            continue
        if kind == "net.send":
            if event.group == group and overlaps(event, start, end):
                ev.sends.append(event)
            continue
        if kind in _LIFECYCLE_KINDS:
            ev.lifecycle.append(event)
            continue
        if kind == "credit.stall":
            ev.stalls.append(event)
            continue
        if event.group != group:
            continue
        if kind == "buffer.shed":
            if overlaps(event, start, end):
                ev.sheds.append(event)
            continue
        if kind == "slice.close":
            if overlaps(event, start, end):
                ev.slices.append(event)
        elif kind == "partial.ship":
            if overlaps(event, start, end):
                ev.ships.append(event)
        elif kind == "merge.release":
            if overlaps(event, start, end):
                ev.releases.append(event)
        elif kind == "root.consume":
            if overlaps(event, start, end):
                ev.consumes.append(event)
        elif kind == "merge.reuse":
            if _reuse_matches(event, result):
                ev.reuses.append(event)
    t0 = min((s.data["start"] for s in ev.slices), default=emit.at)
    ev.ingested_at = min(t0, emit.at)
    # Lifecycle events gate progress only within the window's lifetime.
    ev.lifecycle = [
        e for e in ev.lifecycle if ev.ingested_at <= e.at <= emit.at
    ]
    ev.stalls = [e for e in ev.stalls if ev.ingested_at <= e.at <= emit.at]
    return ev


def _latest(events: list[TraceEvent], before: int, **match: Any) -> TraceEvent | None:
    """The highest-seq event strictly before ``before`` matching ``match``.

    ``match`` keys name event attributes (``node``) or data keys; a
    ``link_dst`` key matches the destination half of a ``link`` datum.
    """
    best: TraceEvent | None = None
    for event in events:
        if event.seq >= before:
            continue
        ok = True
        for key, want in match.items():
            if key == "node":
                got = event.node
            elif key == "link_dst":
                link = event.data.get("link", "")
                got = link.split("->", 1)[1] if "->" in link else ""
            else:
                got = event.data.get(key)
            if got != want:
                ok = False
                break
        if ok and (best is None or event.seq > best.seq):
            best = event
    return best


def _match_sender(
    ev: _WindowEvents, src: str, transit: TraceEvent
) -> TraceEvent | None:
    """The ship/release at ``src`` whose batch the transit carried.

    Prefers an exact ``first_seq`` match (the batch's first slice id is
    carried end to end); falls back to the latest upward emission from
    ``src`` before the transit, which is right whenever the exact batch
    was trimmed by a forward floor or re-shipped after recovery.
    """
    senders = ev.ships + ev.releases
    exact = _latest(
        senders, transit.seq, node=src, first_seq=transit.data.get("first_seq")
    )
    if exact is not None:
        return exact
    return _latest(senders, transit.seq, node=src)


def build_window_trace(recorder: TraceRecorder, result) -> WindowTrace:
    """Materialize the causal span tree of one emitted window.

    ``result`` is a :class:`~repro.core.results.WindowResult` (or any
    object with ``query_id``/``start``/``end``).  Raises ``KeyError``
    when the window was never traced or already evicted from the ring.
    """
    ev = collect_window_events(recorder, result)
    emit = ev.emit
    trace_id = f"{result.query_id}:{result.start}:{result.end}"
    t0 = ev.ingested_at
    spans: list[Span] = [
        Span(
            span_id=emit.seq,
            parent_id=None,
            trace_id=trace_id,
            name="window",
            node=emit.node,
            start=t0,
            end=emit.at,
            attrs={
                "group": ev.group,
                "query_id": result.query_id,
                "window_start": result.start,
                "window_end": result.end,
                "event_count": emit.data.get("event_count", 0),
            },
        )
    ]
    root_id = emit.seq

    def child(
        event: TraceEvent,
        name: str,
        parent: TraceEvent | None,
        *,
        start: int | None = None,
        node: str | None = None,
        attrs: dict[str, Any] | None = None,
    ) -> None:
        begin = event.at if start is None else min(start, event.at)
        spans.append(
            Span(
                span_id=event.seq,
                parent_id=parent.seq if parent is not None else root_id,
                trace_id=trace_id,
                name=name,
                node=event.node if node is None else node,
                start=begin,
                end=event.at,
                attrs=dict(event.data) if attrs is None else attrs,
            )
        )

    for sl in ev.slices:
        child(sl, "slice", None, start=sl.data["start"])
    for ship in ev.ships:
        parent = _latest(ev.slices, ship.seq, node=ship.node)
        child(ship, "ship", parent)
    for send in ev.sends:
        link = send.data.get("link", "")
        src = link.split("->", 1)[0]
        child(send, "send", _match_sender(ev, src, send), node=src)
    for transit in ev.transits:
        link = transit.data.get("link", "")
        src = link.split("->", 1)[0]
        sender = _match_sender(ev, src, transit)
        child(
            transit,
            "transit",
            sender,
            start=sender.at if sender is not None else None,
            node=src,
        )
    for release in ev.releases:
        parent = _latest(ev.transits, release.seq, link_dst=release.node)
        child(release, "merge", parent)
    for consume in ev.consumes:
        parent = _latest(ev.transits, consume.seq, link_dst=consume.node)
        child(consume, "consume", parent)
    for reuse in ev.reuses:
        child(reuse, "reuse", None)
    for retrans in ev.retransmits:
        parent = _latest(
            ev.sends,
            retrans.seq,
            link=retrans.data.get("link"),
            seq=retrans.data.get("seq"),
        )
        child(retrans, "retransmit", parent)
    for event in ev.lifecycle:
        child(event, _LIFECYCLE_KINDS[event.kind], None)
    for shed in ev.sheds:
        child(shed, "shed", None, start=shed.data.get("start"))
    for stall in ev.stalls:
        child(stall, "credit-stall", None)
    root = spans[0]
    rest = sorted(spans[1:], key=lambda s: s.span_id)
    return WindowTrace(
        trace_id=trace_id,
        query_id=result.query_id,
        start=result.start,
        end=result.end,
        group=ev.group,
        ingested_at=t0,
        emitted_at=emit.at,
        spans=[root, *rest],
    )


def build_window_traces(recorder: TraceRecorder, results) -> list[WindowTrace]:
    """Span trees for every result still explainable from the ring.

    Windows whose emit event was evicted (or never traced) are skipped —
    :attr:`TraceRecorder.dropped` says whether eviction happened.
    """
    traces: list[WindowTrace] = []
    for result in results:
        try:
            traces.append(build_window_trace(recorder, result))
        except KeyError:
            continue
    return traces


def render_spans_jsonl(traces: list[WindowTrace]) -> str:
    """One JSON line per window trace, stable key order.

    Same-seed runs render byte-identically: every id is a recorder seq,
    every timestamp simulated ms.
    """
    return "\n".join(
        json.dumps(trace.to_dict(), sort_keys=False, separators=(",", ":"))
        for trace in traces
    )


def write_spans_jsonl(traces: list[WindowTrace], path: str) -> int:
    """Dump span trees to ``path``; returns the number of traces written."""
    text = render_spans_jsonl(traces)
    with open(path, "w", encoding="utf-8") as fh:
        if text:
            fh.write(text)
            fh.write("\n")
    return len(traces)
