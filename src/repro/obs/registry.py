"""A labeled metrics registry and bridges from the existing stat structs.

The evaluation (Sec 6) is built on measurements that so far lived in
disconnected ad-hoc structs — :class:`~repro.core.engine.EngineStats`,
:class:`~repro.network.simnet.NetworkStats`, per-node CPU samples.  The
registry gives them one namespace with stable metric names, so a run can
be exported (Prometheus text, JSON) and two runs can be diffed
counter-by-counter.

Three instrument kinds cover everything the repo measures:

* :class:`Counter` — monotone totals (``engine.calculations``,
  ``net.retransmits``);
* :class:`Gauge` — point-in-time values and high-water marks
  (``engine.peak_live_slices``, ``node.cpu_seconds``);
* :class:`Histogram` — fixed-bucket distributions (event-time latency).

Metrics are identified by ``(name, labels)``; labels are plain string
pairs (``net.bytes{link="local-0->mid-0"}``).  The ``publish_*`` bridges
snapshot the existing structs into a registry under the stable names
documented in DESIGN.md — call them once per run on a fresh registry (or
a fresh label set): they *add* to counters, so re-publishing the same
struct twice double-counts.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterator

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricSample",
    "MetricsRegistry",
    "publish_engine_stats",
    "publish_network_stats",
    "publish_shard_stats",
    "publish_cluster_result",
    "publish_latency_summary",
    "publish_conformance_counters",
]

#: default histogram buckets (ms): tuned for event-time result latency
DEFAULT_BUCKETS = (1.0, 5.0, 10.0, 25.0, 50.0, 100.0, 250.0, 500.0, 1_000.0,
                   2_500.0, 5_000.0)


class Counter:
    """A monotonically increasing total."""

    __slots__ = ("value",)
    kind = "counter"

    def __init__(self) -> None:
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError(f"counters only go up, got {amount}")
        self.value += amount


class Gauge:
    """A point-in-time value (may go up or down)."""

    __slots__ = ("value",)
    kind = "gauge"

    def __init__(self) -> None:
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = value

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount


class Histogram:
    """A fixed-bucket cumulative histogram (Prometheus semantics).

    ``counts[i]`` is the number of observations ``<= buckets[i]``
    (cumulative); observations above the last bound only land in the
    implicit ``+Inf`` bucket (``count``).
    """

    __slots__ = ("buckets", "counts", "sum", "count")
    kind = "histogram"

    def __init__(self, buckets: tuple[float, ...] = DEFAULT_BUCKETS) -> None:
        if not buckets or list(buckets) != sorted(buckets):
            raise ValueError(f"bucket bounds must be sorted, got {buckets!r}")
        self.buckets = tuple(float(b) for b in buckets)
        self.counts = [0] * len(self.buckets)
        self.sum = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        self.sum += value
        self.count += 1
        for index, bound in enumerate(self.buckets):
            if value <= bound:
                self.counts[index] += 1

    @property
    def value(self) -> float:
        """Mean observation (the scalar summary used in tables)."""
        return self.sum / self.count if self.count else 0.0


@dataclass(slots=True)
class MetricSample:
    """One collected metric: name, labels, kind, and value(s)."""

    name: str
    labels: dict[str, str]
    kind: str
    value: float
    #: histogram detail (``None`` for counters/gauges)
    buckets: list[tuple[float, int]] | None = None
    sum: float | None = None
    count: int | None = None


def _label_key(labels: dict[str, Any]) -> tuple[tuple[str, str], ...]:
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


class MetricsRegistry:
    """Get-or-create store of labeled metrics.

    The same ``(name, labels)`` always returns the same instrument; asking
    for an existing name with a different instrument kind is an error (a
    name is one kind forever — the invariant every scrape format relies
    on).
    """

    def __init__(self) -> None:
        self._metrics: dict[tuple[str, tuple[tuple[str, str], ...]], Any] = {}
        self._kinds: dict[str, str] = {}

    def _get(self, cls, name: str, labels: dict[str, Any], **kwargs):
        known = self._kinds.get(name)
        if known is None:
            self._kinds[name] = cls.kind
        elif known != cls.kind:
            raise ValueError(
                f"metric {name!r} is already registered as a {known}, "
                f"cannot re-register as a {cls.kind}"
            )
        key = (name, _label_key(labels))
        metric = self._metrics.get(key)
        if metric is None:
            metric = self._metrics[key] = cls(**kwargs)
        return metric

    def counter(self, name: str, **labels: Any) -> Counter:
        return self._get(Counter, name, labels)

    def gauge(self, name: str, **labels: Any) -> Gauge:
        return self._get(Gauge, name, labels)

    def histogram(
        self,
        name: str,
        buckets: tuple[float, ...] = DEFAULT_BUCKETS,
        **labels: Any,
    ) -> Histogram:
        metric = self._get(Histogram, name, labels, buckets=buckets)
        if metric.buckets != tuple(float(b) for b in buckets):
            raise ValueError(
                f"histogram {name!r} already exists with buckets "
                f"{metric.buckets!r}"
            )
        return metric

    def value(self, name: str, **labels: Any) -> float:
        """The current value of one metric (0.0 when never touched)."""
        metric = self._metrics.get((name, _label_key(labels)))
        return metric.value if metric is not None else 0.0

    def __len__(self) -> int:
        return len(self._metrics)

    def collect(self) -> Iterator[MetricSample]:
        """All metrics in deterministic (name, labels) order."""
        for (name, labels) in sorted(self._metrics):
            metric = self._metrics[(name, labels)]
            sample = MetricSample(
                name=name,
                labels=dict(labels),
                kind=metric.kind,
                value=metric.value,
            )
            if isinstance(metric, Histogram):
                sample.buckets = list(zip(metric.buckets, metric.counts))
                sample.sum = metric.sum
                sample.count = metric.count
            yield sample


# -- bridges from the existing stat structs ------------------------------------


def publish_engine_stats(registry: MetricsRegistry, stats,
                         **labels: Any) -> None:
    """Publish an :class:`~repro.core.engine.EngineStats` snapshot.

    Work counters land as ``engine.*`` counters; the memory high-water
    marks as gauges.  Pass extra labels (``node=...``) to distinguish
    per-node engine stats in a cluster run.
    """
    for name in (
        "events",
        "inserts",
        "calculations",
        "selection_checks",
        "slices_closed",
        "windows_opened",
        "windows_closed",
        "results",
        "duplicates_dropped",
        "merge_ops",
    ):
        registry.counter(f"engine.{name}", **labels).inc(
            getattr(stats, name, 0)
        )
    registry.gauge("engine.peak_live_slices", **labels).set(
        stats.peak_live_slices
    )
    registry.gauge("engine.peak_open_windows", **labels).set(
        stats.peak_open_windows
    )


def publish_shard_stats(registry: MetricsRegistry, shard_stats) -> None:
    """Publish a :class:`~repro.parallel.backend.ShardStats` snapshot.

    Per-shard counters land under ``shard="N"`` labels (events processed,
    worker CPU busy time, in-shard merge ops, peak in-flight frames — the
    queue-depth signal); reduce-side work lands unlabeled
    (``shard.reduce_merge_ops``, ``shard.windows_reduced``,
    ``shard.frames``) plus the parent's two serial-stage CPU times.
    """
    for shard in range(shard_stats.shards):
        label = str(shard)
        registry.counter("shard.events", shard=label).inc(
            shard_stats.events[shard]
        )
        registry.counter("shard.merge_ops", shard=label).inc(
            shard_stats.merge_ops[shard]
        )
        registry.gauge("shard.busy_seconds", shard=label).set(
            shard_stats.busy_ns[shard] / 1e9
        )
        registry.gauge("shard.peak_inflight_frames", shard=label).set(
            shard_stats.peak_inflight[shard]
        )
    registry.counter("shard.frames").inc(shard_stats.frames)
    registry.counter("shard.reduce_merge_ops").inc(
        shard_stats.reduce_merge_ops
    )
    registry.counter("shard.windows_reduced").inc(
        shard_stats.windows_reduced
    )
    registry.gauge("shard.parent_seconds").set(shard_stats.parent_ns / 1e9)
    registry.gauge("shard.reduce_seconds").set(shard_stats.reduce_ns / 1e9)


def publish_network_stats(registry: MetricsRegistry, stats) -> None:
    """Publish a :class:`~repro.network.simnet.NetworkStats` snapshot.

    Totals land unlabeled (``net.total_bytes``), per-link traffic under
    ``link="src->dst"``, per-role data traffic under ``role=...``, and
    every reliability counter under its ``net.*`` name.
    """
    registry.counter("net.total_bytes").inc(stats.total_bytes)
    registry.counter("net.data_bytes").inc(stats.data_bytes)
    registry.counter("net.control_bytes").inc(stats.control_bytes)
    registry.counter("net.messages").inc(stats.total_messages)
    registry.counter("net.goodput_data_bytes").inc(stats.goodput_data_bytes)
    for (src, dst), count in stats.bytes_by_link.items():
        registry.counter("net.bytes", link=f"{src}->{dst}").inc(count)
    for (src, dst), count in stats.messages_by_link.items():
        registry.counter("net.link_messages", link=f"{src}->{dst}").inc(count)
    for role, count in stats.bytes_from_role.items():
        registry.counter("net.bytes_from_role", role=role.value).inc(count)
    for role, count in stats.data_bytes_from_role.items():
        registry.counter("net.data_bytes_from_role", role=role.value).inc(count)
    for name in (
        "drops",
        "duplicates",
        "duplicate_data_bytes",
        "retransmits",
        "retransmit_bytes",
        "retransmit_exhausted",
        "acks",
        "ack_bytes",
        "dedup_dropped",
        "credit_stalls",
        "bytes_shed",
        "records_shed",
    ):
        registry.counter(f"net.{name}").inc(getattr(stats, name, 0))
    for name in ("peak_unacked_bytes", "peak_unacked_frames"):
        registry.gauge(f"net.{name}").set(getattr(stats, name, 0))


def publish_cluster_result(registry: MetricsRegistry, result) -> None:
    """Publish a :class:`~repro.cluster.desis.ClusterRunResult`.

    Covers the run totals (``cluster.*``), the full network snapshot, the
    per-node CPU gauges, and every local node's engine stats under
    ``role=local, node=...`` — the per-node-class breakdowns Figures 7,
    11, and 12 are built on.
    """
    registry.counter("cluster.events").inc(result.events)
    registry.counter("cluster.results").inc(len(result.sink))
    registry.gauge("cluster.wall_seconds").set(result.wall_seconds)
    registry.counter("cluster.checkpoints").inc(getattr(result, "checkpoints", 0))
    registry.counter("cluster.recoveries").inc(getattr(result, "recoveries", 0))
    registry.counter("net.reroutes").inc(getattr(result, "reroutes", 0))
    registry.counter("cluster.duplicates_suppressed").inc(
        getattr(result, "duplicates_suppressed", 0)
    )
    registry.counter("cluster.root_merge_ops").inc(
        getattr(result, "root_merge_ops", 0)
    )
    # Overload control (DESIGN.md §12): all zero without the opt-in caps.
    registry.counter("cluster.degraded_windows").inc(
        getattr(result, "degraded_windows", 0)
    )
    registry.counter("cluster.slices_shed").inc(
        getattr(result, "slices_shed", 0)
    )
    registry.gauge("cluster.peak_staging").set(
        getattr(result, "peak_staging", 0)
    )
    registry.counter("cluster.slow_consumer_evictions").inc(
        getattr(result, "slow_consumer_evictions", 0)
    )
    registry.counter("obs.trace_dropped").inc(
        getattr(getattr(result, "recorder", None), "dropped", 0)
    )
    publish_network_stats(registry, result.network)
    for role, seconds in result.cpu_by_role.items():
        registry.gauge("cluster.cpu_seconds", role=role.value).set(seconds)
    for node_id, seconds in result.node_cpu.items():
        registry.gauge("node.cpu_seconds", node=node_id).set(seconds)
    for node_id, stats in result.local_stats.items():
        publish_engine_stats(registry, stats, role="local", node=node_id)
        registry.counter(
            "node.slices_shipped", role="local", node=node_id
        ).inc(stats.slices_closed)


def publish_latency_summary(registry: MetricsRegistry, summary,
                            **labels: Any) -> None:
    """Publish a :class:`~repro.metrics.latency.LatencySummary` (gauges)."""
    registry.gauge("latency.count", **labels).set(summary.count)
    for name in ("mean", "p50", "p95", "p99", "max"):
        registry.gauge(f"latency.{name}", **labels).set(
            getattr(summary, name)
        )
    registry.counter("latency.expired_samples", **labels).inc(
        getattr(summary, "expired_samples", 0)
    )


def publish_conformance_counters(registry: MetricsRegistry, report: dict,
                                 *, shrink_runs: int = 0) -> None:
    """Publish a conformance report's roll-up under ``conformance.*``.

    ``report`` is the dict returned by
    :func:`repro.conformance.run_conformance`; stable names:

    * ``conformance.scenarios`` — scenarios evaluated
    * ``conformance.executions`` — executor configurations run
    * ``conformance.comparisons`` — row-set comparisons performed
    * ``conformance.failures`` — scenarios with at least one mismatch
    * ``conformance.mismatches`` — individual mismatch lines
    * ``conformance.shrink_runs`` — predicate evaluations spent shrinking
    """
    scenarios = report.get("scenarios", ())
    registry.counter("conformance.scenarios").inc(len(scenarios))
    registry.counter("conformance.executions").inc(
        sum(len(v.get("executors", {})) for v in scenarios)
    )
    registry.counter("conformance.comparisons").inc(
        # every non-reference executor is compared at least once
        sum(max(len(v.get("executors", {})) - 1, 0) for v in scenarios)
    )
    registry.counter("conformance.failures").inc(report.get("failed", 0))
    registry.counter("conformance.mismatches").inc(
        sum(len(v.get("failures", ())) for v in scenarios)
    )
    registry.counter("conformance.shrink_runs").inc(shrink_runs)
