"""Benchmark regression gate: compare BENCH_*.json against a baseline.

The repo's benchmarks write machine-readable reports (``BENCH_*.json``)
whose headline numbers are the perf claims earlier PRs earned — the hot
path speedup, the merge-op reduction at high overlap, goodput under
faults, recovery savings.  Nothing so far *enforces* them: a later PR
could quietly lose the 5× and every report would still be green.

This module closes the loop.  A committed **baseline manifest** pins,
per benchmark file, a set of dotted metric paths with a tolerance band
and a direction:

.. code-block:: json

    {"version": 1,
     "benchmarks": {
       "BENCH_hot_path.json": {
         "workloads.100_queries.speedup":
           {"value": 5.0, "tolerance": 0.15, "direction": "higher"}}}}

Directions:

* ``higher`` — bigger is better; regression when
  ``current < value * (1 - tolerance)`` (wall-clock ratios get a loose
  band: they are stable on one machine but not across machines);
* ``lower`` — smaller is better; regression when
  ``current > value * (1 + tolerance)``;
* ``both`` — the value is deterministic (sim-ms, counters); any
  relative deviation beyond the tolerance is a failure, and tolerance
  ``0`` demands exact equality.

A missing file or metric path is always a failure — renaming a metric
must update the baseline deliberately.  ``benchmarks/bench_check.py``
is the CLI wrapper wired into CI; ``--update`` regenerates the manifest
from the current reports using :data:`DEFAULT_GATES`.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from typing import Any

__all__ = [
    "DEFAULT_GATES",
    "BaselineManifest",
    "MetricCheck",
    "RegressionReport",
    "check_benchmarks",
    "extract_metric",
    "render_regression_report",
]

#: the gated metrics and their (tolerance, direction), per benchmark
#: file — the source of truth ``--update`` builds the manifest from.
#: Deterministic counters and sim-ms numbers gate exactly; wall-clock
#: ratios get a loose band.
DEFAULT_GATES: dict[str, dict[str, tuple[float, str]]] = {
    "BENCH_hot_path.json": {
        "workloads.single_query.speedup": (0.15, "higher"),
        "workloads.100_queries.speedup": (0.15, "higher"),
    },
    "BENCH_sliding.json": {
        "overlaps.64.merge_op_reduction": (0.05, "higher"),
        "overlaps.64.incremental.windows_closed": (0.0, "both"),
    },
    "BENCH_faults.json": {
        "rates.5%.results": (0.0, "both"),
        "rates.5%.goodput_data_bytes": (0.0, "both"),
        "rates.5%.retransmits": (0.0, "both"),
    },
    "BENCH_overload.json": {
        "scales.1500.bounded.degraded_windows": (0.0, "both"),
        "scales.1500.bounded.peak_staging": (0.0, "both"),
        "scales.1500.bounded.slices_shed": (0.0, "both"),
        "scales.1500.unbounded.peak_unacked_bytes": (0.0, "both"),
    },
    "BENCH_recovery.json": {
        "savings.reship_saved_pct": (0.0, "both"),
        "savings.latency_delta_ms": (0.0, "both"),
        "modes.checkpointed.checkpoints": (0.0, "both"),
    },
    # modeled bottleneck-stage speedup (see bench_parallel.py): the 0.3
    # band keeps the floor above the 2x acceptance bar while absorbing
    # process_time jitter; the counters are deterministic.
    "BENCH_parallel.json": {
        "shards.4.modeled_speedup": (0.3, "higher"),
        "shards.4.results": (0.0, "both"),
        "shards.4.reduce_merge_ops": (0.0, "both"),
    },
}


def extract_metric(document: Any, path: str) -> float:
    """Resolve a dotted path (``a.b.c``) into a loaded JSON document.

    Raises ``KeyError`` with the full path when any step is missing or
    the leaf is not a number.
    """
    value: Any = document
    for part in path.split("."):
        if not isinstance(value, dict) or part not in value:
            raise KeyError(path)
        value = value[part]
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise KeyError(path)
    return float(value)


@dataclass(frozen=True, slots=True)
class MetricCheck:
    """The verdict on one gated metric."""

    file: str
    metric: str
    direction: str
    tolerance: float
    baseline: float
    #: ``None`` when the report or metric is missing
    current: float | None
    #: ``ok`` | ``regression`` | ``missing``
    status: str
    detail: str = ""

    def to_dict(self) -> dict[str, Any]:
        return {
            "file": self.file,
            "metric": self.metric,
            "direction": self.direction,
            "tolerance": self.tolerance,
            "baseline": self.baseline,
            "current": self.current,
            "status": self.status,
            "detail": self.detail,
        }


@dataclass(slots=True)
class RegressionReport:
    """Every gated metric's verdict for one bench_check run."""

    checks: list[MetricCheck] = field(default_factory=list)

    @property
    def failures(self) -> list[MetricCheck]:
        return [c for c in self.checks if c.status != "ok"]

    @property
    def ok(self) -> bool:
        return not self.failures

    def to_dict(self) -> dict[str, Any]:
        return {
            "ok": self.ok,
            "checked": len(self.checks),
            "failures": len(self.failures),
            "checks": [c.to_dict() for c in self.checks],
        }


@dataclass(slots=True)
class BaselineManifest:
    """The committed perf contract: file → metric path → band."""

    benchmarks: dict[str, dict[str, dict[str, Any]]] = field(
        default_factory=dict
    )
    version: int = 1

    @classmethod
    def load(cls, path: str) -> "BaselineManifest":
        with open(path, "r", encoding="utf-8") as fh:
            document = json.load(fh)
        version = document.get("version")
        if version != 1:
            raise ValueError(f"unsupported baseline version: {version!r}")
        return cls(benchmarks=document.get("benchmarks", {}), version=1)

    def save(self, path: str) -> None:
        document = {"version": self.version, "benchmarks": self.benchmarks}
        with open(path, "w", encoding="utf-8") as fh:
            json.dump(document, fh, indent=2, sort_keys=True)
            fh.write("\n")

    @classmethod
    def from_reports(
        cls,
        bench_dir: str,
        gates: dict[str, dict[str, tuple[float, str]]] | None = None,
    ) -> "BaselineManifest":
        """Pin the current reports as the new baseline.

        Raises ``FileNotFoundError`` / ``KeyError`` when a gated report
        or metric is absent — an incomplete baseline must not be
        committed silently.
        """
        gates = DEFAULT_GATES if gates is None else gates
        benchmarks: dict[str, dict[str, dict[str, Any]]] = {}
        for filename, metrics in sorted(gates.items()):
            with open(
                os.path.join(bench_dir, filename), "r", encoding="utf-8"
            ) as fh:
                document = json.load(fh)
            pinned: dict[str, dict[str, Any]] = {}
            for metric, (tolerance, direction) in sorted(metrics.items()):
                pinned[metric] = {
                    "value": extract_metric(document, metric),
                    "tolerance": tolerance,
                    "direction": direction,
                }
            benchmarks[filename] = pinned
        return cls(benchmarks=benchmarks)


def _evaluate(
    spec: dict[str, Any], current: float
) -> tuple[str, str]:
    baseline = float(spec["value"])
    tolerance = float(spec.get("tolerance", 0.0))
    direction = spec.get("direction", "both")
    if direction == "higher":
        floor = baseline * (1.0 - tolerance)
        if current < floor:
            return "regression", f"{current:g} < floor {floor:g}"
        return "ok", ""
    if direction == "lower":
        ceiling = baseline * (1.0 + tolerance)
        if current > ceiling:
            return "regression", f"{current:g} > ceiling {ceiling:g}"
        return "ok", ""
    if direction == "both":
        scale = max(abs(baseline), 1e-12)
        deviation = abs(current - baseline) / scale
        if deviation > tolerance:
            return (
                "regression",
                f"{current:g} deviates {deviation:.3g} from {baseline:g} "
                f"(tolerance {tolerance:g})",
            )
        return "ok", ""
    raise ValueError(f"unknown direction: {direction!r}")


def check_benchmarks(
    manifest: BaselineManifest, bench_dir: str
) -> RegressionReport:
    """Compare every gated metric in ``bench_dir`` against the manifest."""
    report = RegressionReport()
    for filename, metrics in sorted(manifest.benchmarks.items()):
        path = os.path.join(bench_dir, filename)
        document: Any = None
        file_missing = not os.path.exists(path)
        if not file_missing:
            with open(path, "r", encoding="utf-8") as fh:
                document = json.load(fh)
        for metric, spec in sorted(metrics.items()):
            baseline = float(spec["value"])
            tolerance = float(spec.get("tolerance", 0.0))
            direction = spec.get("direction", "both")
            if file_missing:
                report.checks.append(
                    MetricCheck(
                        file=filename,
                        metric=metric,
                        direction=direction,
                        tolerance=tolerance,
                        baseline=baseline,
                        current=None,
                        status="missing",
                        detail="report file not found",
                    )
                )
                continue
            try:
                current = extract_metric(document, metric)
            except KeyError:
                report.checks.append(
                    MetricCheck(
                        file=filename,
                        metric=metric,
                        direction=direction,
                        tolerance=tolerance,
                        baseline=baseline,
                        current=None,
                        status="missing",
                        detail="metric path not found in report",
                    )
                )
                continue
            status, detail = _evaluate(spec, current)
            report.checks.append(
                MetricCheck(
                    file=filename,
                    metric=metric,
                    direction=direction,
                    tolerance=tolerance,
                    baseline=baseline,
                    current=current,
                    status=status,
                    detail=detail,
                )
            )
    return report


def render_regression_report(report: RegressionReport) -> str:
    """The regression report as the aligned text block CI logs show."""
    lines = []
    for check in report.checks:
        mark = {"ok": "ok  ", "regression": "FAIL", "missing": "MISS"}[
            check.status
        ]
        current = "-" if check.current is None else f"{check.current:g}"
        line = (
            f"[{mark}] {check.file}:{check.metric} "
            f"current={current} baseline={check.baseline:g} "
            f"({check.direction}, tol {check.tolerance:g})"
        )
        if check.detail:
            line += f" — {check.detail}"
        lines.append(line)
    verdict = (
        "benchmark baseline holds"
        if report.ok
        else f"{len(report.failures)} gated metric(s) failed"
    )
    lines.append(f"{len(report.checks)} metric(s) checked: {verdict}")
    return "\n".join(lines)
